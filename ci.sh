#!/usr/bin/env bash
# CI gate: build, test, lint. Any failure fails the script.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --workspace

echo "== test (thread matrix) =="
# The rt-par determinism contract: any pool size produces byte-identical
# results, so the whole suite must pass at both ends of the matrix. This
# includes the rt-prune `sparse_exec` proptests, which assert the sparse
# execution engine is bit-identical to masked-dense at every granularity
# and density — running them under both pool sizes closes the grid. The
# env var only sizes the worker pool — test *selection* is unchanged.
for threads in 1 4; do
    echo "-- RT_THREADS=$threads --"
    RT_THREADS=$threads cargo test -q --workspace
done

echo "== sparse kernel smoke (bit-identity gate + speedup report) =="
# bench_sparse exits nonzero if the compiled sparse plans ever produce
# different bytes than the masked-dense kernels, or if any thread count
# diverges from the serial pool.
cargo run --release -p rt-bench --bin bench_sparse -- --quick --reps 1 \
    --out target/BENCH_sparse_ci.json --no-history

echo "== serve smoke (batched inference: bit-identity + drain + history) =="
# bench_serve drives the rt-serve batching service with 1/2/4/8 closed-loop
# clients against a dense baseline and a density-0.125 ticket, and exits
# nonzero if any batched response's bytes differ from serial single-sample
# execution. The CI-local history append proves the loadgen feeds the
# perf-trend pipeline.
rm -f target/BENCH_serve_history_ci.jsonl
cargo run --release -p rt-bench --bin bench_serve -- --quick \
    --out target/BENCH_serve_ci.json --history target/BENCH_serve_history_ci.jsonl
if [[ ! -s target/BENCH_serve_history_ci.jsonl ]]; then
    echo "bench_serve did not append to the benchmark history"
    exit 1
fi
rm -f target/BENCH_serve_history_ci.jsonl

echo "== supervision smoke (deadlines, cancellation, kill-and-resume) =="
# The supervision acceptance surface, under both cell executors: the
# serial run_cell loop and the parallel batch fan-out (RT_PAR_CELLS=1).
# Covers injected-hang detection within the deadline, cooperative
# cancellation at batch/chunk boundaries, torn-journal truncation, and
# byte-identical resume — see crates/rt-bench/tests/supervision.rs and
# the runner/fault unit suites.
for cells in "" "1"; do
    echo "-- RT_PAR_CELLS=${cells:-0} --"
    RT_PAR_CELLS=$cells cargo test -q --release -p rt-bench --test supervision
    RT_PAR_CELLS=$cells cargo test -q --release -p rt-bench --test resume
done
# One end-to-end injected-hang run through the real driver binary: a
# persistent hang at cell 1 with a 5 s deadline must be broken by the
# watchdog on both attempts (default retry budget = 1) and abort with
# exit code 3 (deadline budget exhausted). `timeout` far above
# 2x-deadline-per-attempt is the backstop proving the watchdog, not the
# shell, broke the hang.
rm -f results/fig1-smoke.journal.jsonl results/fig1-smoke.stats.json
set +e
RT_FAULTS="hang:1" RT_DEADLINE=5 timeout 120 \
    cargo run --release -p rt-bench --bin fig1_omp_finetune -- --scale smoke
hang_status=$?
set -e
if [[ "$hang_status" != "3" ]]; then
    echo "injected-hang run: expected exit 3 (deadline budget exhausted), got $hang_status"
    exit 1
fi
rm -f results/fig1-smoke.journal.jsonl results/fig1-smoke.stats.json

echo "== kernel gates (packed speedup + bit-identity, supervision overhead) =="
# bench_kernels exits nonzero if (a) the cache-blocked packed GEMM is not
# at least 1.5x faster than the legacy ikj kernel at 1 thread on the
# fixed 192^3 gate shape, (b) packed output bytes diverge from legacy at
# 1 or 4 pool threads, (c) any workload's bytes change across thread
# counts, or (d) a live (never tripped) cancellation scope costs > 2%.
cargo run --release -p rt-bench --bin bench_kernels -- --quick --reps 3 \
    --out target/BENCH_kernels_ci.json --no-history

echo "== pipeline gate (prefetch + activation cache: bit-identity + speedup) =="
# bench_pipeline trains a frozen-prefix finetune workload under all eight
# {RT_PREFETCH, RT_ACT_CACHE_MB, RT_THREADS in {1,4}} combinations and
# exits nonzero if any diverges from the all-off serial reference, or if
# the steady-state (epochs 2+) epoch throughput with both features on is
# below 1.3x the all-off baseline. The CI-local history append proves it
# feeds the perf-trend pipeline; the JSON must record bit_identical=true.
rm -f target/BENCH_pipeline_history_ci.jsonl
cargo run --release -p rt-bench --bin bench_pipeline -- --quick --reps 2 \
    --out target/BENCH_pipeline_ci.json --history target/BENCH_pipeline_history_ci.jsonl
if [[ ! -s target/BENCH_pipeline_history_ci.jsonl ]]; then
    echo "bench_pipeline did not append to the benchmark history"
    exit 1
fi
if ! grep -q '"bit_identical": true' target/BENCH_pipeline_ci.json; then
    echo "bench_pipeline report does not record bit_identical=true"
    exit 1
fi
rm -f target/BENCH_pipeline_history_ci.jsonl

echo "== perf trend gate (bench_trend over a fresh two-run history) =="
# Self-seeded and fully offline: two bench_kernels runs populate a
# CI-local history, bench_trend must pass on the genuine second run (the
# run-to-run delta sits inside the 10% noise band), and must FAIL when a
# synthetic 20% regression is injected into the latest run — proving the
# gate actually fires before we trust it with real history.
rm -f target/BENCH_history_ci.jsonl
for i in 1 2; do
    cargo run --release -p rt-bench --bin bench_kernels -- --quick --reps 3 \
        --out target/BENCH_kernels_ci.json --history target/BENCH_history_ci.jsonl
done
cargo run --release -p rt-bench --bin bench_trend -- \
    --history target/BENCH_history_ci.jsonl
set +e
cargo run --release -p rt-bench --bin bench_trend -- \
    --history target/BENCH_history_ci.jsonl --inject-regression 0.8 \
    > /dev/null
trend_status=$?
set -e
if [[ "$trend_status" == "0" ]]; then
    echo "bench_trend: injected 20% regression was NOT caught"
    exit 1
fi
rm -f target/BENCH_history_ci.jsonl

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== console discipline (no bare print macros in library crates) =="
# Library crates must route user-facing output through rt_obs::console! /
# rt_obs::console_out! so that it is mirrored into the telemetry stream.
# Binaries (src/bin/) and rt-obs itself (the sanctioned implementation)
# are exempt. Comment lines are skipped so docs may mention the macros.
violations=$(grep -rnE '(^|[^a-zA-Z_:])e?println!\(' crates/*/src \
    --include='*.rs' \
    | grep -v '/src/bin/' \
    | grep -v '^crates/rt-obs/src' \
    | grep -vE '^[^:]+:[0-9]+:\s*//' \
    || true)
if [[ -n "$violations" ]]; then
    echo "bare println!/eprintln! in library code — use rt_obs::console! (stderr)"
    echo "or rt_obs::console_out! (stdout) so output reaches the telemetry stream:"
    echo "$violations"
    exit 1
fi

echo "== thread discipline (no raw spawns outside rt-par) =="
# All parallelism must flow through the rt-par pool so the determinism
# contract (size-derived chunking, ordered folds) is enforceable in one
# place. rt-par itself is the sanctioned implementation; rt-obs sits
# below rt-par in the crate graph and its metric-atomicity stress tests
# legitimately race raw threads (no numerics involved). Comments are
# skipped so docs may mention the API.
spawns=$(grep -rnE 'thread::spawn|thread::Builder' crates/*/src src \
    --include='*.rs' \
    | grep -v '^crates/rt-par/src' \
    | grep -v '^crates/rt-obs/src' \
    | grep -vE '^[^:]+:[0-9]+:\s*//' \
    || true)
if [[ -n "$spawns" ]]; then
    echo "raw std::thread spawn outside rt-par — route the work through"
    echo "rt_par::run_tasks / par_chunks so chunking stays deterministic:"
    echo "$spawns"
    exit 1
fi

echo "== timing discipline (no ad-hoc Instant::now outside the obs/bench layer) =="
# All wall-clock timing in library crates must go through rt_obs
# (Stopwatch / spans / histograms) so it is gated on the telemetry level
# and lands in the trace. rt-obs and rt-par implement the clock plumbing
# and are exempt; rt-bench is a harness whose timing IS the product.
# Comments are skipped so docs may mention the API.
timing=$(grep -rnE 'Instant::now' crates/*/src src \
    --include='*.rs' \
    | grep -v '^crates/rt-obs/src' \
    | grep -v '^crates/rt-par/src' \
    | grep -v '^crates/rt-bench/src' \
    | grep -vE '^[^:]+:[0-9]+:\s*//' \
    || true)
if [[ -n "$timing" ]]; then
    echo "ad-hoc Instant::now timing in library code — use rt_obs::Stopwatch"
    echo "(start_if gates on the telemetry level) or a span/histogram so the"
    echo "measurement reaches the trace:"
    echo "$timing"
    exit 1
fi

echo "== mask discipline (ticket masks apply by assignment, not multiply) =="
# Pruned weights are canonicalized to exactly +0.0 by Param::set_mask /
# BitMask::zero_pruned; multiplying by a 0/1 mask tensor instead can
# produce -0.0 (e.g. -1.5 * 0.0) and silently breaks the sparse engine's
# bit-identity contract. The only sanctioned elementwise mask multiply is
# rt-prune's LMP straight-through estimator (which immediately
# re-canonicalizes via set_mask); rt-sparse owns the packed machinery.
# Comments are skipped so docs may explain the rule.
maskmul=$(grep -rnE 'mul_assign\(&mask|\*\s*&?mask\b|\bmask\b\s*\*' crates/*/src src \
    --include='*.rs' \
    | grep -v '^crates/rt-prune/src' \
    | grep -v '^crates/rt-sparse/src' \
    | grep -vE '^[^:]+:[0-9]+:\s*//' \
    || true)
if [[ -n "$maskmul" ]]; then
    echo "elementwise mask multiply outside rt-prune/rt-sparse — apply masks"
    echo "through Param::set_mask / BitMask::zero_pruned (assignment keeps"
    echo "pruned entries at +0.0, which the sparse plans rely on):"
    echo "$maskmul"
    exit 1
fi

echo "== allocation discipline (layer hot paths lease scratch from the pool) =="
# The steady-state training step is allocation-free: every f32 scratch
# buffer in the rt-nn layer forward/backward paths must be leased from
# rt_tensor::pool (take / take_zeroed / lease), never freshly allocated
# per call. Only non-test code is scanned (each layer file's #[cfg(test)]
# module is its tail); shape/param vecs of references are not buffers and
# are not matched. The zero-alloc property itself is pinned by
# rt-nn's steady_state_training_step_reuses_pool_buffers test.
allocs=$(for f in crates/rt-nn/src/layers/*.rs; do
    awk -v f="$f" '/#\[cfg\(test\)\]/{exit}
        /vec!\[0\.|vec!\[0f|vec!\[0u8|Vec::with_capacity/{print f":"FNR": "$0}' "$f"
done)
if [[ -n "$allocs" ]]; then
    echo "fresh buffer allocation in a layer hot path — lease it from"
    echo "rt_tensor::pool (take/take_zeroed/lease + put) so the steady-state"
    echo "training step stays allocation-free:"
    echo "$allocs"
    exit 1
fi

echo "== loader discipline (training epochs route through PrefetchLoader) =="
# The finetune pipeline's determinism + zero-alloc contract lives in
# rt_data::PrefetchLoader (persistent permutation buffer, pool-leased
# batch buffers, deterministic staging). Direct dataset iteration inside
# the training loop would bypass the prefetch/cache path and silently
# fork the epoch semantics — the loop must consume batches only via the
# loader API. Comments are skipped so docs may name the legacy entry
# points.
rawiter=$(grep -rnHE 'shuffled_batches|\.batches\(' \
    crates/rt-transfer/src/training.rs \
    | grep -vE '^[^:]+:[0-9]+:\s*//' \
    || true)
if [[ -n "$rawiter" ]]; then
    echo "direct dataset iteration in rt-transfer::training — epochs must"
    echo "consume batches through rt_data::PrefetchLoader (begin_epoch /"
    echo "next_batch / release) so prefetch, caching, and the zero-alloc"
    echo "contract stay on one code path:"
    echo "$rawiter"
    exit 1
fi

echo "== gemm discipline (the deprecated matmul entry points stay deleted) =="
# The four pre-unification matmul shims (matmul / matmul_acc / matmul_at_b
# / matmul_a_bt) were removed in favor of the single tiled `linalg::gemm`
# entry point — every new call site must route through it so transpose
# handling, accumulation order, and rt-par chunking stay in one place.
# rt-sparse's `ref_matmul*` test oracles are independent reference
# implementations, not calls into the old API, and are exempt via the
# word boundary on the left. Comments are skipped so docs may name the
# history.
oldgemm=$(grep -rnE '(^|[^a-zA-Z0-9_])(matmul|matmul_acc|matmul_at_b|matmul_a_bt)\s*\(' \
    crates/*/src src --include='*.rs' \
    | grep -vE '^[^:]+:[0-9]+:\s*//' \
    || true)
if [[ -n "$oldgemm" ]]; then
    echo "call to a deleted matmul shim — route matrix products through"
    echo "rt_tensor::linalg::gemm (GemmOp handles transposes and accumulation):"
    echo "$oldgemm"
    exit 1
fi

echo "== ci OK =="
