#!/usr/bin/env bash
# CI gate: build, test, lint. Any failure fails the script.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --workspace

echo "== test =="
cargo test -q --workspace

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== ci OK =="
