#!/usr/bin/env bash
# CI gate: build, test, lint. Any failure fails the script.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --workspace

echo "== test =="
cargo test -q --workspace

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== console discipline (no bare print macros in library crates) =="
# Library crates must route user-facing output through rt_obs::console! /
# rt_obs::console_out! so that it is mirrored into the telemetry stream.
# Binaries (src/bin/) and rt-obs itself (the sanctioned implementation)
# are exempt. Comment lines are skipped so docs may mention the macros.
violations=$(grep -rnE '(^|[^a-zA-Z_:])e?println!\(' crates/*/src \
    --include='*.rs' \
    | grep -v '/src/bin/' \
    | grep -v '^crates/rt-obs/src' \
    | grep -vE '^[^:]+:[0-9]+:\s*//' \
    || true)
if [[ -n "$violations" ]]; then
    echo "bare println!/eprintln! in library code — use rt_obs::console! (stderr)"
    echo "or rt_obs::console_out! (stdout) so output reaches the telemetry stream:"
    echo "$violations"
    exit 1
fi

echo "== ci OK =="
