#!/usr/bin/env bash
# CI gate: build, test, lint. Any failure fails the script.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --workspace

echo "== test (thread matrix) =="
# The rt-par determinism contract: any pool size produces byte-identical
# results, so the whole suite must pass at both ends of the matrix. The
# env var only sizes the worker pool — test *selection* is unchanged.
for threads in 1 4; do
    echo "-- RT_THREADS=$threads --"
    RT_THREADS=$threads cargo test -q --workspace
done

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== console discipline (no bare print macros in library crates) =="
# Library crates must route user-facing output through rt_obs::console! /
# rt_obs::console_out! so that it is mirrored into the telemetry stream.
# Binaries (src/bin/) and rt-obs itself (the sanctioned implementation)
# are exempt. Comment lines are skipped so docs may mention the macros.
violations=$(grep -rnE '(^|[^a-zA-Z_:])e?println!\(' crates/*/src \
    --include='*.rs' \
    | grep -v '/src/bin/' \
    | grep -v '^crates/rt-obs/src' \
    | grep -vE '^[^:]+:[0-9]+:\s*//' \
    || true)
if [[ -n "$violations" ]]; then
    echo "bare println!/eprintln! in library code — use rt_obs::console! (stderr)"
    echo "or rt_obs::console_out! (stdout) so output reaches the telemetry stream:"
    echo "$violations"
    exit 1
fi

echo "== thread discipline (no raw spawns outside rt-par) =="
# All parallelism must flow through the rt-par pool so the determinism
# contract (size-derived chunking, ordered folds) is enforceable in one
# place. rt-par itself is the sanctioned implementation; rt-obs sits
# below rt-par in the crate graph and its metric-atomicity stress tests
# legitimately race raw threads (no numerics involved). Comments are
# skipped so docs may mention the API.
spawns=$(grep -rnE 'thread::spawn|thread::Builder' crates/*/src src \
    --include='*.rs' \
    | grep -v '^crates/rt-par/src' \
    | grep -v '^crates/rt-obs/src' \
    | grep -vE '^[^:]+:[0-9]+:\s*//' \
    || true)
if [[ -n "$spawns" ]]; then
    echo "raw std::thread spawn outside rt-par — route the work through"
    echo "rt_par::run_tasks / par_chunks so chunking stays deterministic:"
    echo "$spawns"
    exit 1
fi

echo "== ci OK =="
