//! Quickstart: the full robust-ticket pipeline in ~60 lines.
//!
//! Pretrains a dense model adversarially on the synthetic source task,
//! draws a 70%-sparse ticket by one-shot magnitude pruning, transfers it
//! to a downstream task with a domain gap, and prints the accuracies.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use robust_tickets::adv::attack::AttackConfig;
use robust_tickets::data::{DownstreamSpec, FamilyConfig, TaskFamily};
use robust_tickets::models::ResNetConfig;
use robust_tickets::prune::{model_sparsity, omp, OmpConfig, PruneScope};
use robust_tickets::transfer::evaluate::evaluate;
use robust_tickets::transfer::finetune::finetune;
use robust_tickets::transfer::pretrain::{pretrain, PretrainScheme};
use robust_tickets::transfer::training::TrainConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small synthetic universe (use `FamilyConfig::paper()` for the
    // experiment scale — this example favors wall-clock time).
    let family = TaskFamily::new(FamilyConfig::paper(), 42);
    let source = family.source_task(256, 128)?;
    println!(
        "source task: {} train / {} test samples, {} classes",
        source.train.len(),
        source.test.len(),
        source.train.num_classes()
    );

    // Robust pretraining: PGD adversarial training on the source task.
    println!("pretraining (PGD adversarial, 6 epochs)...");
    let scheme = PretrainScheme::Adversarial(AttackConfig::pgd(0.4, 3));
    let pre = pretrain(&ResNetConfig::r18_analog(12), &source, scheme, 6, 0.05, 0)?;
    let mut dense = pre.fresh_model(1)?;
    let source_report = evaluate(&mut dense, &source.test)?;
    println!("dense source accuracy: {:.3}", source_report.accuracy);

    // Draw the robust ticket: one-shot global magnitude pruning at 70%.
    let mut model = pre.fresh_model(2)?;
    let ticket = omp(&model, &OmpConfig::unstructured(0.7))?;
    ticket.apply(&mut model)?;
    println!(
        "ticket drawn: {:.1}% of backbone weights pruned",
        100.0 * model_sparsity(&model, &PruneScope::backbone())
    );

    // Transfer to a downstream task with a moderate domain gap.
    let spec = DownstreamSpec {
        name: "quickstart-downstream".to_string(),
        gap: 0.4,
        num_classes: 6,
        train_size: 128,
        test_size: 128,
    };
    let task = family.downstream_task(&spec)?;
    println!(
        "finetuning the ticket on `{}` (gap {:.2})...",
        task.name, task.gap
    );
    let report = finetune(
        &mut model,
        &task,
        &TrainConfig::paper_finetune(10, 32, 0.01, 7),
    )?;
    println!(
        "downstream: accuracy {:.3}, ECE {:.4}, NLL {:.4}",
        report.accuracy, report.ece, report.nll
    );
    println!(
        "sparsity preserved through finetuning: {:.1}%",
        100.0 * model_sparsity(&model, &PruneScope::backbone())
    );
    Ok(())
}
