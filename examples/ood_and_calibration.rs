//! Beyond accuracy (the paper's Fig. 8 / Table I axes): calibration (ECE,
//! NLL), adversarial accuracy, and out-of-distribution ROC-AUC of a
//! transferred ticket.
//!
//! ```text
//! cargo run --release --example ood_and_calibration
//! ```

use robust_tickets::adv::attack::AttackConfig;
use robust_tickets::data::{DownstreamSpec, FamilyConfig, TaskFamily};
use robust_tickets::models::ResNetConfig;
use robust_tickets::prune::{omp, OmpConfig};
use robust_tickets::transfer::evaluate::{evaluate_adversarial, ood_auc};
use robust_tickets::transfer::finetune::finetune;
use robust_tickets::transfer::pretrain::{pretrain, PretrainScheme};
use robust_tickets::transfer::training::TrainConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let family = TaskFamily::new(FamilyConfig::paper(), 13);
    let source = family.source_task(256, 96)?;
    let spec = DownstreamSpec {
        name: "metrics-demo".to_string(),
        gap: 0.4,
        num_classes: 6,
        train_size: 128,
        test_size: 160,
    };
    let task = family.downstream_task(&spec)?;
    let ood = family.ood_dataset(160)?;
    let arch = ResNetConfig::r18_analog(12);

    println!("| ticket | acc | ece | nll | adv-acc | ood-auc |");
    println!("|---|---|---|---|---|---|");
    for (name, scheme) in [
        ("natural", PretrainScheme::Natural),
        (
            "robust",
            PretrainScheme::Adversarial(AttackConfig::pgd(0.4, 3)),
        ),
    ] {
        let pre = pretrain(&arch, &source, scheme, 6, 0.05, 1)?;
        let mut model = pre.fresh_model(2)?;
        let ticket = omp(&model, &OmpConfig::unstructured(0.6))?;
        ticket.apply(&mut model)?;
        let report = finetune(
            &mut model,
            &task,
            &TrainConfig::paper_finetune(10, 32, 0.01, 7),
        )?;
        let adv = evaluate_adversarial(&mut model, &task.test, &AttackConfig::pgd(0.25, 4), 9)?;
        let auc = ood_auc(&mut model, &task.test, &ood)?;
        println!(
            "| {name} | {:.3} | {:.4} | {:.3} | {adv:.3} | {auc:.3} |",
            report.accuracy, report.ece, report.nll
        );
    }
    println!("\nexpected: the robust row dominates adv-acc (robustness is");
    println!("inherited through pruning and finetuning), as in Table I.");
    Ok(())
}
