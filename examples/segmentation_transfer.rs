//! Dense-prediction transfer (the paper's Fig. 7 path): a pruned robust
//! backbone finetuned as an FCN on synthetic segmentation scenes, scored
//! in mIoU.
//!
//! ```text
//! cargo run --release --example segmentation_transfer
//! ```

use robust_tickets::adv::attack::AttackConfig;
use robust_tickets::data::{FamilyConfig, SegTask, TaskFamily};
use robust_tickets::metrics::mean_iou;
use robust_tickets::models::{ResNetConfig, SegmentationNet};
use robust_tickets::nn::loss::CrossEntropyLoss;
use robust_tickets::nn::optim::Sgd;
use robust_tickets::nn::{ExecCtx, Layer};
use robust_tickets::prune::{omp, OmpConfig};
use robust_tickets::tensor::rng::SeedStream;
use robust_tickets::transfer::pretrain::{pretrain, PretrainScheme};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let family = TaskFamily::new(FamilyConfig::paper(), 5);
    let source = family.source_task(256, 64)?;
    let pool = SegTask::generate(&family, 4, 96)?;
    let (train, test) = pool.split_at(64);
    println!(
        "segmentation scenes: {} train / {} test, {} classes (incl. background)",
        train.len(),
        test.len(),
        train.num_classes()
    );

    println!("pretraining a robust backbone...");
    let pre = pretrain(
        &ResNetConfig::r18_analog(12),
        &source,
        PretrainScheme::Adversarial(AttackConfig::pgd(0.4, 3)),
        5,
        0.05,
        0,
    )?;
    let mut backbone = pre.fresh_model(1)?;
    let ticket = omp(&backbone, &OmpConfig::unstructured(0.5))?;
    ticket.apply(&mut backbone)?;

    let mut net = SegmentationNet::new(
        backbone,
        train.num_classes(),
        3, // 16x16 inputs are downsampled 8x by the backbone
        &mut SeedStream::new(2).rng(),
    )?;
    let loss_fn = CrossEntropyLoss::new();
    let opt = Sgd::paper_recipe(0.01);
    println!("finetuning the FCN for 5 epochs...");
    for epoch in 0..5 {
        let mut total = 0.0;
        let mut batches = 0;
        for (images, labels) in train.batches(4) {
            let ctx = ExecCtx::train();
            let logits = net.forward(&images, ctx)?;
            let out = loss_fn.forward_pixels(&logits, &labels)?;
            net.backward(&out.grad, ctx)?;
            opt.step(&mut net)?;
            total += out.loss;
            batches += 1;
        }
        println!(
            "  epoch {epoch}: mean pixel loss {:.4}",
            total / batches as f32
        );
    }

    // Score mIoU on the held-out scenes.
    let mut preds = Vec::new();
    for (images, _) in test.batches(4) {
        let logits = net.forward(&images, ExecCtx::eval())?;
        let s = logits.shape().to_vec();
        let (n, k, hw) = (s[0], s[1], s[2] * s[3]);
        let data = logits.data();
        for b in 0..n {
            for p in 0..hw {
                let best = (0..k)
                    .max_by(|&a, &c| {
                        data[(b * k + a) * hw + p]
                            .partial_cmp(&data[(b * k + c) * hw + p])
                            .expect("finite logits")
                    })
                    .expect("non-empty classes");
                preds.push(best);
            }
        }
    }
    let miou = mean_iou(&preds, test.labels(), test.num_classes());
    println!("held-out mIoU of the 50%-sparse robust ticket: {miou:.3}");
    Ok(())
}
