//! Tour of every ticket-drawing scheme in the workspace: OMP (global,
//! layer-wise, and structured), IMP/A-IMP with weight rewinding, and LMP
//! with learnable masks — each reported with a per-layer sparsity
//! breakdown.
//!
//! ```text
//! cargo run --release --example ticket_zoo
//! ```

use robust_tickets::adv::attack::AttackConfig;
use robust_tickets::data::{FamilyConfig, TaskFamily};
use robust_tickets::models::ResNetConfig;
use robust_tickets::prune::{
    layer_sparsity_report, omp, Granularity, ImpConfig, OmpConfig, PruneScope, TicketMask,
};
use robust_tickets::transfer::pretrain::{pretrain, PretrainScheme};
use robust_tickets::transfer::ticket::{imp_ticket, lmp_run, LmpRunConfig, LmpScoreInit};
use robust_tickets::transfer::training::{Objective, SchedulePolicy, TrainConfig};

fn describe(name: &str, ticket: &TicketMask, model: &robust_tickets::models::MicroResNet) {
    println!(
        "\n=== {name}: overall sparsity {:.1}% over {} masked weights",
        100.0 * ticket.sparsity(),
        ticket.masked_weight_count()
    );
    for layer in layer_sparsity_report(model, &PruneScope::backbone())
        .iter()
        .take(6)
    {
        println!(
            "    {:<28} {:>7.1}%  ({}/{} kept)",
            layer.name,
            100.0 * layer.sparsity,
            layer.active,
            layer.total
        );
    }
    println!("    ... (first 6 layers shown)");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let family = TaskFamily::new(FamilyConfig::paper(), 3);
    let source = family.source_task(256, 64)?;
    println!("pretraining a robust model...");
    let attack = AttackConfig::pgd(0.4, 3);
    let pre = pretrain(
        &ResNetConfig::r18_analog(12),
        &source,
        PretrainScheme::Adversarial(attack),
        5,
        0.05,
        0,
    )?;

    // ① OMP — unstructured, global threshold.
    let mut model = pre.fresh_model(1)?;
    let ticket = omp(&model, &OmpConfig::unstructured(0.8))?;
    ticket.apply(&mut model)?;
    describe("OMP global (unstructured, 80%)", &ticket, &model);

    // ① OMP — channel-structured (hardware friendly).
    let mut model = pre.fresh_model(2)?;
    let ticket = omp(&model, &OmpConfig::structured(0.5, Granularity::Channel))?;
    ticket.apply(&mut model)?;
    describe("OMP channel-structured (50%)", &ticket, &model);

    // ② A-IMP — iterative adversarial pruning with rewinding.
    let mut model = pre.fresh_model(3)?;
    let round_cfg = TrainConfig {
        epochs: 1,
        batch_size: 32,
        lr: 0.02,
        momentum: 0.9,
        weight_decay: 1e-4,
        schedule: SchedulePolicy::Constant,
        objective: Objective::Adversarial(attack),
        seed: 9,
    };
    let ticket = imp_ticket(
        &mut model,
        &pre,
        &source.train,
        &ImpConfig::paper(0.8, 3),
        &round_cfg,
    )?;
    describe("A-IMP (3 rounds to 80%, rewound)", &ticket, &model);

    // ③ LMP — learnable task-specific mask on frozen weights.
    let spec = family.vtab_suite(128, 64).remove(5);
    let task = family.downstream_task(&spec)?;
    let mut model = pre.fresh_model(4)?;
    let outcome = lmp_run(
        &mut model,
        &task,
        &LmpRunConfig {
            sparsity: 0.6,
            epochs: 3,
            batch_size: 32,
            score_lr: 0.1,
            head_lr: 0.02,
            init: LmpScoreInit::Magnitude,
            seed: 11,
        },
    )?;
    describe(
        &format!(
            "LMP on `{}` (60%, frozen weights) — test acc {:.3}",
            task.name, outcome.test_accuracy
        ),
        &outcome.ticket,
        &model,
    );
    Ok(())
}
