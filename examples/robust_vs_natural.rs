//! The paper's headline comparison, end to end: draw tickets from a
//! *robust* (adversarially pretrained) and a *natural* model at the same
//! sparsity and compare their transferability under both protocols —
//! whole-model finetuning and linear evaluation — on a far-domain task.
//!
//! ```text
//! cargo run --release --example robust_vs_natural
//! ```

use robust_tickets::adv::attack::AttackConfig;
use robust_tickets::data::{DownstreamSpec, FamilyConfig, TaskFamily};
use robust_tickets::models::ResNetConfig;
use robust_tickets::prune::{omp, OmpConfig};
use robust_tickets::transfer::evaluate::evaluate_adversarial;
use robust_tickets::transfer::finetune::finetune;
use robust_tickets::transfer::linear::{linear_eval, LinearEvalConfig};
use robust_tickets::transfer::pretrain::{pretrain, PretrainScheme, Pretrained};
use robust_tickets::transfer::training::TrainConfig;

fn transfer_scores(
    pre: &Pretrained,
    task: &robust_tickets::data::Task,
    sparsity: f64,
) -> Result<(f64, f64), Box<dyn std::error::Error>> {
    // Linear evaluation: frozen features + new classifier.
    let mut model = pre.fresh_model(10)?;
    let ticket = omp(&model, &OmpConfig::unstructured(sparsity))?;
    ticket.apply(&mut model)?;
    let lin = linear_eval(&mut model, task, &LinearEvalConfig::default())?;
    // Whole-model finetuning of a fresh copy of the same ticket.
    let mut model = pre.fresh_model(11)?;
    ticket.apply(&mut model)?;
    let ft = finetune(
        &mut model,
        task,
        &TrainConfig::paper_finetune(10, 32, 0.01, 7),
    )?
    .accuracy;
    Ok((lin, ft))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let family = TaskFamily::new(FamilyConfig::paper(), 7);
    let source = family.source_task(384, 192)?;
    let spec = DownstreamSpec {
        name: "far-domain".to_string(),
        gap: 0.7,
        num_classes: 6,
        train_size: 160,
        test_size: 192,
    };
    let task = family.downstream_task(&spec)?;
    let arch = ResNetConfig::r18_analog(12);
    let attack = AttackConfig::pgd(0.4, 3);

    println!("pretraining the natural model...");
    let natural = pretrain(&arch, &source, PretrainScheme::Natural, 8, 0.05, 1)?;
    println!("pretraining the robust model (PGD eps 0.4)...");
    let robust = pretrain(
        &arch,
        &source,
        PretrainScheme::Adversarial(attack),
        8,
        0.05,
        1,
    )?;

    // Source-task robustness contrast (the prior the tickets inherit).
    for (name, pre) in [("natural", &natural), ("robust", &robust)] {
        let mut m = pre.fresh_model(2)?;
        let adv = evaluate_adversarial(&mut m, &source.test, &AttackConfig::pgd(0.25, 4), 3)?;
        println!("{name} source adversarial accuracy: {adv:.3}");
    }

    println!(
        "\nticket transfer on `{}` (gap {:.2}):",
        task.name, task.gap
    );
    println!(
        "{:<10} {:>8} {:>10} {:>10}",
        "ticket", "sparsity", "linear", "finetune"
    );
    for sparsity in [0.5, 0.9] {
        for (name, pre) in [("natural", &natural), ("robust", &robust)] {
            let (lin, ft) = transfer_scores(pre, &task, sparsity)?;
            println!("{name:<10} {sparsity:>8.2} {lin:>10.3} {ft:>10.3}");
        }
    }
    println!("\nexpected: the robust rows dominate the linear column — the");
    println!("paper's core claim — with smaller but consistent finetune gains.");
    Ok(())
}
