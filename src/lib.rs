//! **robust-tickets** — a from-scratch Rust reproduction of
//! *"Robust Tickets Can Transfer Better: Drawing More Transferable
//! Subnetworks in Transfer Learning"* (Fu, Yuan, Wu, Yuan, Lin — DAC 2023).
//!
//! The paper's finding: subnetworks ("tickets") drawn from *adversarially
//! robust* pretrained models transfer to downstream tasks better than
//! tickets drawn from naturally pretrained models. This workspace rebuilds
//! the entire experimental stack — tensor kernels, layer-wise backprop,
//! micro-ResNets, adversarial training, three ticket-drawing schemes, the
//! transfer protocols, and every figure/table driver — on synthetic vision
//! tasks engineered to carry the same mechanism (see `DESIGN.md`).
//!
//! This facade crate re-exports each subsystem under a short module name:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tensor`] | `rt-tensor` | tensors, linalg, conv kernels, seeded RNG |
//! | [`nn`] | `rt-nn` | layers, losses, SGD, schedules, checkpoints |
//! | [`models`] | `rt-models` | MicroResNet (R18/R50 analogs), FCN head |
//! | [`data`] | `rt-data` | synthetic task family, segmentation, FID |
//! | [`adv`] | `rt-adv` | FGSM/PGD, randomized smoothing, robust eval |
//! | [`prune`] | `rt-prune` | OMP, IMP/A-IMP, LMP, structured patterns |
//! | [`sparse`] | `rt-sparse` | packed masks, compiled sparse plans & kernels |
//! | [`metrics`] | `rt-metrics` | accuracy, ECE/NLL, ROC-AUC, mIoU |
//! | [`transfer`] | `rt-transfer` | pretrain → ticket → finetune/linear |
//!
//! # Quickstart
//!
//! Draw a robust ticket and transfer it:
//!
//! ```rust
//! use robust_tickets::data::{FamilyConfig, TaskFamily};
//! use robust_tickets::models::ResNetConfig;
//! use robust_tickets::prune::{omp, OmpConfig};
//! use robust_tickets::transfer::{
//!     finetune::finetune, pretrain::pretrain, pretrain::PretrainScheme,
//!     training::TrainConfig,
//! };
//! use robust_tickets::adv::attack::AttackConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. A synthetic universe: source task + downstream tasks.
//! let family = TaskFamily::new(FamilyConfig::smoke(), 42);
//! let source = family.source_task(64, 32)?;
//!
//! // 2. Robust pretraining (PGD adversarial training) of a dense model.
//! let scheme = PretrainScheme::Adversarial(AttackConfig::pgd(0.4, 2));
//! let pre = pretrain(&ResNetConfig::smoke(4), &source, scheme, 2, 0.05, 0)?;
//!
//! // 3. Draw the robust ticket by one-shot magnitude pruning at 50%.
//! let mut model = pre.fresh_model(1)?;
//! let ticket = omp(&model, &OmpConfig::unstructured(0.5))?;
//! ticket.apply(&mut model)?;
//!
//! // 4. Transfer: finetune the subnetwork on a downstream task.
//! let spec = family.vtab_suite(32, 32).remove(3);
//! let task = family.downstream_task(&spec)?;
//! let report = finetune(&mut model, &task, &TrainConfig::paper_finetune(2, 16, 0.03, 7))?;
//! assert!(report.accuracy > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! # Reproducing the paper
//!
//! Every figure and table has a driver binary in the `rt-bench` crate:
//!
//! ```text
//! cargo run --release -p rt-bench --bin fig1_omp_finetune -- --scale standard
//! ```
//!
//! See `EXPERIMENTS.md` for the per-experiment index and recorded results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rt_adv as adv;
pub use rt_data as data;
pub use rt_metrics as metrics;
pub use rt_models as models;
pub use rt_nn as nn;
pub use rt_prune as prune;
pub use rt_sparse as sparse;
pub use rt_tensor as tensor;
pub use rt_transfer as transfer;
