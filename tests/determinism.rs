//! Integration test: the whole experiment universe is a pure function of
//! its seeds — rerunning any pipeline with the same seed yields identical
//! results, and different seeds diverge.

use robust_tickets::adv::attack::AttackConfig;
use robust_tickets::data::{DownstreamSpec, FamilyConfig, TaskFamily};
use robust_tickets::models::ResNetConfig;
use robust_tickets::prune::{omp, OmpConfig, TicketMask};
use robust_tickets::transfer::finetune::finetune;
use robust_tickets::transfer::pretrain::{pretrain, PretrainScheme};
use robust_tickets::transfer::training::TrainConfig;

fn run_pipeline(seed: u64) -> (TicketMask, f64) {
    let family = TaskFamily::new(FamilyConfig::smoke(), seed);
    let source = family.source_task(48, 24).expect("source");
    let spec = DownstreamSpec {
        name: "det".to_string(),
        gap: 0.4,
        num_classes: 2,
        train_size: 32,
        test_size: 32,
    };
    let task = family.downstream_task(&spec).expect("task");
    let pre = pretrain(
        &ResNetConfig::smoke(4),
        &source,
        PretrainScheme::Adversarial(AttackConfig::pgd(0.3, 2)),
        3,
        0.05,
        seed,
    )
    .expect("pretrain");
    let mut model = pre.fresh_model(seed + 1).expect("model");
    let ticket = omp(&model, &OmpConfig::unstructured(0.5)).expect("omp");
    ticket.apply(&mut model).expect("apply");
    let report = finetune(
        &mut model,
        &task,
        &TrainConfig::paper_finetune(3, 8, 0.03, seed + 2),
    )
    .expect("finetune");
    (ticket, report.accuracy)
}

#[test]
fn same_seed_identical_results() {
    let (ticket_a, acc_a) = run_pipeline(5);
    let (ticket_b, acc_b) = run_pipeline(5);
    assert_eq!(ticket_a, ticket_b, "tickets must be bit-identical");
    assert_eq!(acc_a, acc_b, "accuracies must be bit-identical");
}

#[test]
fn different_seeds_diverge() {
    let (ticket_a, _) = run_pipeline(5);
    let (ticket_b, _) = run_pipeline(6);
    assert_ne!(ticket_a, ticket_b);
}

#[test]
fn data_generation_is_stable_across_family_instances() {
    let a = TaskFamily::new(FamilyConfig::smoke(), 9);
    let b = TaskFamily::new(FamilyConfig::smoke(), 9);
    let ta = a.source_task(16, 8).expect("task");
    let tb = b.source_task(16, 8).expect("task");
    assert_eq!(ta.train.images(), tb.train.images());
    assert_eq!(ta.test.images(), tb.test.images());
    let oa = a.ood_dataset(8).expect("ood");
    let ob = b.ood_dataset(8).expect("ood");
    assert_eq!(oa.images(), ob.images());
}
