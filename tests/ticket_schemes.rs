//! Integration test: the three ticket-drawing schemes (OMP / IMP / LMP)
//! agree on the accounting invariants the paper relies on.

use robust_tickets::adv::attack::AttackConfig;
use robust_tickets::data::{DownstreamSpec, FamilyConfig, TaskFamily};
use robust_tickets::models::ResNetConfig;
use robust_tickets::prune::{model_sparsity, omp, Granularity, ImpConfig, OmpConfig, PruneScope};
use robust_tickets::transfer::pretrain::{pretrain, PretrainScheme, Pretrained};
use robust_tickets::transfer::ticket::{
    imp_ticket_trajectory, lmp_run, LmpRunConfig, LmpScoreInit,
};
use robust_tickets::transfer::training::{Objective, SchedulePolicy, TrainConfig};

fn setup() -> (TaskFamily, robust_tickets::data::Task, Pretrained) {
    let family = TaskFamily::new(FamilyConfig::smoke(), 91);
    let source = family.source_task(48, 24).expect("source");
    let pre = pretrain(
        &ResNetConfig::smoke(4),
        &source,
        PretrainScheme::Adversarial(AttackConfig::pgd(0.3, 2)),
        3,
        0.05,
        1,
    )
    .expect("pretrain");
    (family, source, pre)
}

#[test]
fn all_schemes_hit_their_sparsity_targets() {
    let (family, source, pre) = setup();
    let target = 0.6;

    // OMP at every granularity.
    for granularity in [
        Granularity::Element,
        Granularity::Row,
        Granularity::Kernel,
        Granularity::Channel,
    ] {
        let model = pre.fresh_model(1).expect("model");
        let ticket = omp(&model, &OmpConfig::structured(target, granularity)).expect("omp");
        assert!(
            (ticket.sparsity() - target).abs() < 0.06,
            "{granularity:?}: {}",
            ticket.sparsity()
        );
    }

    // IMP trajectory: monotone sparsity, final at target.
    let mut model = pre.fresh_model(2).expect("model");
    let round_cfg = TrainConfig {
        epochs: 1,
        batch_size: 8,
        lr: 0.03,
        momentum: 0.9,
        weight_decay: 1e-4,
        schedule: SchedulePolicy::Constant,
        objective: Objective::Natural,
        seed: 3,
    };
    let trajectory = imp_ticket_trajectory(
        &mut model,
        &pre,
        &source.train,
        &ImpConfig::paper(target, 3),
        &round_cfg,
    )
    .expect("imp");
    assert_eq!(trajectory.len(), 3);
    for pair in trajectory.windows(2) {
        assert!(pair[0].0 < pair[1].0, "sparsity must grow");
        assert!(pair[0].1.sparsity() < pair[1].1.sparsity());
    }
    assert!((trajectory.last().unwrap().1.sparsity() - target).abs() < 0.03);

    // LMP.
    let spec = DownstreamSpec {
        name: "schemes".to_string(),
        gap: 0.3,
        num_classes: 2,
        train_size: 24,
        test_size: 24,
    };
    let task = family.downstream_task(&spec).expect("task");
    let mut model = pre.fresh_model(4).expect("model");
    let outcome = lmp_run(
        &mut model,
        &task,
        &LmpRunConfig {
            sparsity: target,
            epochs: 2,
            batch_size: 8,
            score_lr: 0.1,
            head_lr: 0.03,
            init: LmpScoreInit::Magnitude,
            seed: 5,
        },
    )
    .expect("lmp");
    assert!((outcome.ticket.sparsity() - target).abs() < 0.05);
    // Model-level accounting agrees with the ticket.
    let model_s = model_sparsity(&model, &PruneScope::backbone());
    assert!((model_s - outcome.ticket.sparsity()).abs() < 1e-9);
}

#[test]
fn imp_masks_nest_along_the_trajectory() {
    let (_, source, pre) = setup();
    let mut model = pre.fresh_model(6).expect("model");
    let round_cfg = TrainConfig {
        epochs: 1,
        batch_size: 8,
        lr: 0.03,
        momentum: 0.9,
        weight_decay: 0.0,
        schedule: SchedulePolicy::Constant,
        objective: Objective::Adversarial(AttackConfig::pgd(0.2, 2)),
        seed: 7,
    };
    let trajectory = imp_ticket_trajectory(
        &mut model,
        &pre,
        &source.train,
        &ImpConfig::paper(0.8, 3),
        &round_cfg,
    )
    .expect("imp");
    for pair in trajectory.windows(2) {
        for (early, late) in pair[0].1.masks().iter().zip(pair[1].1.masks()) {
            if let (Some(e), Some(l)) = (early, late) {
                assert!(
                    l.is_subset_of(e),
                    "pruned weights must stay pruned across rounds"
                );
            }
        }
    }
}

#[test]
fn structured_tickets_zero_whole_hardware_groups() {
    let (_, _, pre) = setup();
    let model = pre.fresh_model(8).expect("model");
    let ticket = omp(&model, &OmpConfig::structured(0.5, Granularity::Channel)).expect("omp");
    use robust_tickets::nn::Layer as _;
    for (mask, p) in ticket.masks().iter().zip(model.params()) {
        let Some(mask) = mask else { continue };
        let mask = mask.to_tensor();
        let glen = Granularity::Channel.group_len(p.data.shape());
        for group in mask.data().chunks(glen) {
            let sum: f32 = group.iter().sum();
            assert!(sum == 0.0 || sum == glen as f32, "split channel group");
        }
    }
}
