//! Integration test: tickets and pretrained snapshots survive disk
//! round-trips and re-apply to freshly built models with bit-identical
//! behavior — the workflow of drawing a ticket once and transferring it to
//! many downstream tasks.

use robust_tickets::data::{FamilyConfig, TaskFamily};
use robust_tickets::models::{MicroResNet, ResNetConfig};
use robust_tickets::nn::checkpoint::StateDict;
use robust_tickets::nn::{Layer, Mode};
use robust_tickets::prune::{omp, OmpConfig, TicketMask};
use robust_tickets::tensor::rng::SeedStream;
use robust_tickets::transfer::pretrain::{pretrain, PretrainScheme};

#[test]
fn ticket_and_snapshot_round_trip_through_json() {
    let family = TaskFamily::new(FamilyConfig::smoke(), 31);
    let source = family.source_task(32, 16).expect("source");
    let pre = pretrain(
        &ResNetConfig::smoke(4),
        &source,
        PretrainScheme::Natural,
        2,
        0.05,
        1,
    )
    .expect("pretrain");

    let mut model = pre.fresh_model(1).expect("model");
    let ticket = omp(&model, &OmpConfig::unstructured(0.7)).expect("omp");
    ticket.apply(&mut model).expect("apply");
    let x = source.test.images().slice_rows(0, 8).expect("slice");
    let reference = model.forward(&x, Mode::Eval).expect("forward");

    // Serialize ticket + snapshot to disk.
    let dir = std::env::temp_dir().join("rt-ticket-persistence");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let ticket_path = dir.join("ticket.json");
    let snap_path = dir.join("snapshot.json");
    std::fs::write(
        &ticket_path,
        serde_json::to_string(&ticket).expect("serialize ticket"),
    )
    .expect("write ticket");
    std::fs::write(
        &snap_path,
        pre.snapshot.to_json().expect("serialize snapshot"),
    )
    .expect("write snapshot");

    // A separate "process": rebuild everything from disk.
    let ticket_json = std::fs::read_to_string(&ticket_path).expect("read ticket");
    let loaded_ticket: TicketMask = serde_json::from_str(&ticket_json).expect("parse ticket");
    let snap_json = std::fs::read_to_string(&snap_path).expect("read snapshot");
    let loaded_snap = StateDict::from_json(&snap_json).expect("parse snapshot");

    let mut rebuilt = MicroResNet::new(
        &ResNetConfig::smoke(4),
        &mut SeedStream::new(999).rng(), // different init — overwritten below
    )
    .expect("model");
    loaded_snap.restore(&mut rebuilt).expect("restore");
    loaded_ticket.apply(&mut rebuilt).expect("apply");
    let replayed = rebuilt.forward(&x, Mode::Eval).expect("forward");
    assert_eq!(
        reference, replayed,
        "disk round-trip must preserve behavior exactly"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ticket_transfers_between_fresh_models_of_same_arch() {
    let family = TaskFamily::new(FamilyConfig::smoke(), 32);
    let source = family.source_task(32, 16).expect("source");
    let pre = pretrain(
        &ResNetConfig::smoke(4),
        &source,
        PretrainScheme::Natural,
        2,
        0.05,
        2,
    )
    .expect("pretrain");
    let model_a = pre.fresh_model(1).expect("model");
    let ticket = omp(&model_a, &OmpConfig::unstructured(0.4)).expect("omp");

    // Applying the same ticket to two fresh restorations gives the same
    // sparsity pattern and the same eval behavior.
    let mut m1 = pre.fresh_model(10).expect("model");
    let mut m2 = pre.fresh_model(20).expect("model");
    ticket.apply(&mut m1).expect("apply");
    ticket.apply(&mut m2).expect("apply");
    let x = source.test.images().slice_rows(0, 4).expect("slice");
    assert_eq!(
        m1.forward(&x, Mode::Eval).expect("fwd"),
        m2.forward(&x, Mode::Eval).expect("fwd")
    );
}
