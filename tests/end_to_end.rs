//! Integration test: the full pipeline — pretrain → draw ticket →
//! transfer → measure — across crate boundaries, at smoke scale.

use robust_tickets::adv::attack::AttackConfig;
use robust_tickets::data::{DownstreamSpec, FamilyConfig, TaskFamily};
use robust_tickets::models::ResNetConfig;
use robust_tickets::prune::{model_sparsity, omp, OmpConfig, PruneScope};
use robust_tickets::transfer::evaluate::{evaluate, evaluate_adversarial, ood_auc};
use robust_tickets::transfer::finetune::finetune;
use robust_tickets::transfer::linear::{linear_eval, LinearEvalConfig};
use robust_tickets::transfer::pretrain::{pretrain, PretrainScheme};
use robust_tickets::transfer::training::TrainConfig;

fn universe() -> (
    TaskFamily,
    robust_tickets::data::Task,
    robust_tickets::data::Task,
) {
    let family = TaskFamily::new(FamilyConfig::smoke(), 77);
    let source = family.source_task(64, 48).expect("source");
    let spec = DownstreamSpec {
        name: "e2e".to_string(),
        gap: 0.3,
        num_classes: 2,
        train_size: 40,
        test_size: 48,
    };
    let downstream = family.downstream_task(&spec).expect("downstream");
    (family, source, downstream)
}

#[test]
fn full_robust_ticket_pipeline() {
    let (family, source, downstream) = universe();
    let pre = pretrain(
        &ResNetConfig::smoke(4),
        &source,
        PretrainScheme::Adversarial(AttackConfig::pgd(0.3, 2)),
        5,
        0.05,
        1,
    )
    .expect("pretrain");

    // The pretrained dense model does something on the source task.
    let mut dense = pre.fresh_model(2).expect("model");
    let dense_report = evaluate(&mut dense, &source.test).expect("eval");
    assert!(dense_report.accuracy > 0.3, "{}", dense_report.accuracy);

    // Draw + apply + finetune a 60% ticket.
    let mut model = pre.fresh_model(3).expect("model");
    let ticket = omp(&model, &OmpConfig::unstructured(0.6)).expect("omp");
    ticket.apply(&mut model).expect("apply");
    let report = finetune(
        &mut model,
        &downstream,
        &TrainConfig::paper_finetune(6, 8, 0.03, 5),
    )
    .expect("finetune");
    assert!(
        report.accuracy > 0.55,
        "2-class finetune should beat chance, got {}",
        report.accuracy
    );
    assert!(report.nll.is_finite() && report.nll > 0.0);
    assert!((0.0..=1.0).contains(&report.ece));

    // Sparsity held through finetuning.
    let sparsity = model_sparsity(&model, &PruneScope::backbone());
    assert!((sparsity - 0.6).abs() < 0.02, "{sparsity}");

    // Linear evaluation also runs on the same ticket.
    let mut model = pre.fresh_model(4).expect("model");
    ticket.apply(&mut model).expect("apply");
    let lin = linear_eval(&mut model, &downstream, &LinearEvalConfig::default()).expect("linear");
    assert!(lin > 0.5, "linear eval {lin}");

    // Robustness + OoD metrics are well-formed.
    let mut model = pre.fresh_model(5).expect("model");
    ticket.apply(&mut model).expect("apply");
    finetune(
        &mut model,
        &downstream,
        &TrainConfig::paper_finetune(4, 8, 0.03, 6),
    )
    .expect("finetune");
    let adv = evaluate_adversarial(&mut model, &downstream.test, &AttackConfig::pgd(0.2, 2), 11)
        .expect("adv");
    assert!((0.0..=1.0).contains(&adv));
    let ood = family.ood_dataset(32).expect("ood");
    let auc = ood_auc(&mut model, &downstream.test, &ood).expect("auc");
    assert!((0.0..=1.0).contains(&auc));
}

#[test]
fn natural_pipeline_and_scheme_contrast() {
    let (_, source, _) = universe();
    // Natural and robust pretraining produce different weights from the
    // same init seed.
    let natural = pretrain(
        &ResNetConfig::smoke(4),
        &source,
        PretrainScheme::Natural,
        3,
        0.05,
        1,
    )
    .expect("natural");
    let robust = pretrain(
        &ResNetConfig::smoke(4),
        &source,
        PretrainScheme::Adversarial(AttackConfig::pgd(0.3, 2)),
        3,
        0.05,
        1,
    )
    .expect("robust");
    let diff: f32 = natural
        .snapshot
        .params
        .iter()
        .zip(&robust.snapshot.params)
        .map(|(a, b)| a.tensor.sub(&b.tensor).map(|d| d.l1_norm()).unwrap_or(0.0))
        .sum();
    assert!(diff > 1.0, "schemes must diverge, diff {diff}");

    // And they induce different tickets.
    let nat_ticket = omp(&natural.model, &OmpConfig::unstructured(0.5)).expect("omp");
    let rob_ticket = omp(&robust.model, &OmpConfig::unstructured(0.5)).expect("omp");
    assert_ne!(nat_ticket, rob_ticket);
}

#[test]
fn randomized_smoothing_pipeline_runs() {
    let (_, source, downstream) = universe();
    let pre = pretrain(
        &ResNetConfig::smoke(4),
        &source,
        PretrainScheme::RandomSmoothing(0.4),
        3,
        0.05,
        2,
    )
    .expect("rs pretrain");
    let mut model = pre.fresh_model(1).expect("model");
    let ticket = omp(&model, &OmpConfig::unstructured(0.5)).expect("omp");
    ticket.apply(&mut model).expect("apply");
    let lin = linear_eval(&mut model, &downstream, &LinearEvalConfig::default()).expect("linear");
    assert!(lin > 0.4, "{lin}");
}
