#!/bin/bash
# Runs every experiment driver at standard scale, sequentially.
cd /root/repo
for bin in fig1_omp_finetune fig2_omp_linear fig9_vtab fig6_pretrain_schemes fig3_structured fig5_lmp fig7_segmentation fig8_properties fig4_imp ablate_omp_scope ablate_imp_rewind ablate_aimp_strength ablate_criteria; do
  echo "=== START $bin $(date +%H:%M:%S)" >> results/run.log
  timeout 3000 ./target/release/$bin --scale standard > results/$bin.out.md 2> results/$bin.err.log
  echo "=== DONE $bin rc=$? $(date +%H:%M:%S)" >> results/run.log
done
echo "=== ALL DONE $(date +%H:%M:%S)" >> results/run.log
