//! Thread-local scratch-buffer arena.
//!
//! The convolution lowering allocates an `im2col` patch matrix (plus an
//! output staging matrix) *per sample per forward/backward call* — and the
//! Compact sparse path adds packed weight and activation buffers on top.
//! Those allocations dominate small-batch conv time and churn the
//! allocator from every pool worker at once.
//!
//! The arena removes that churn: [`take`] hands out a zeroed `Vec<f32>` of
//! the requested length, recycling a previously [`put`]-back buffer of the
//! same length when one is available. Buffers are keyed by **exact
//! length** — conv shapes repeat identically across samples and steps, so
//! exact keying hits nearly always and avoids the waste of bucket-rounded
//! sizes.
//!
//! # Lifetime and threading
//!
//! The arena is `thread_local!`: each `rt_par` pool worker (and the main
//! thread) owns a private free-list, so `take`/`put` are lock-free and
//! uncontended. Pool workers are persistent for the process lifetime, so
//! recycled buffers live until thread exit. Per-length free-lists are
//! capped at [`MAX_PER_LEN`] buffers and the whole arena at
//! [`MAX_ARENA_BYTES`]; anything beyond that is simply dropped, bounding
//! worst-case memory at a few transient conv workspaces per thread.
//!
//! # Determinism
//!
//! [`take`] zero-fills every buffer before returning it, so a recycled
//! buffer is indistinguishable from a fresh `vec![0.0; len]` — reuse can
//! never leak state between samples or change numerics.
//!
//! # Deprecation
//!
//! Superseded by `rt_tensor::pool`, the process-wide, observable pool
//! that the kernel layer and every rt-nn hot path now lease from (with
//! an explicit dirty/zeroed split instead of always zero-filling). This
//! module stays only for downstream code that has not migrated yet.

#![allow(deprecated)] // the module may still exercise its own deprecated API

use std::cell::RefCell;
use std::collections::HashMap;

/// Maximum recycled buffers kept per distinct length.
pub const MAX_PER_LEN: usize = 4;

/// Soft cap on total recycled bytes per thread (64 MiB).
pub const MAX_ARENA_BYTES: usize = 64 << 20;

#[derive(Default)]
struct Arena {
    pools: HashMap<usize, Vec<Vec<f32>>>,
    held_bytes: usize,
    hits: u64,
    misses: u64,
}

thread_local! {
    static ARENA: RefCell<Arena> = RefCell::new(Arena::default());
}

/// Takes a zero-filled `Vec<f32>` of exactly `len` elements, recycling a
/// previously returned buffer of the same length when available.
#[deprecated(
    since = "0.1.0",
    note = "use `rt_tensor::pool::take_zeroed` (same contract, process-wide pool with telemetry)"
)]
pub fn take(len: usize) -> Vec<f32> {
    ARENA.with(|a| {
        let mut a = a.borrow_mut();
        if let Some(mut buf) = a.pools.get_mut(&len).and_then(Vec::pop) {
            a.held_bytes -= len * std::mem::size_of::<f32>();
            a.hits += 1;
            buf.fill(0.0);
            buf
        } else {
            a.misses += 1;
            vec![0.0f32; len]
        }
    })
}

/// Returns a buffer to the arena for reuse. Buffers whose length bucket is
/// full (or that would push the arena past [`MAX_ARENA_BYTES`]) are
/// dropped instead.
#[deprecated(
    since = "0.1.0",
    note = "use `rt_tensor::pool::put` (same contract, process-wide pool with telemetry)"
)]
pub fn put(buf: Vec<f32>) {
    let len = buf.len();
    if len == 0 {
        return;
    }
    ARENA.with(|a| {
        let mut a = a.borrow_mut();
        let bytes = len * std::mem::size_of::<f32>();
        if a.held_bytes + bytes > MAX_ARENA_BYTES {
            return; // drop: arena full
        }
        let pool = a.pools.entry(len).or_default();
        if pool.len() >= MAX_PER_LEN {
            return; // drop: bucket full
        }
        pool.push(buf);
        a.held_bytes += bytes;
    });
}

/// `(hits, misses)` of this thread's arena since process start (or the
/// last [`reset_stats`]). Intended for tests and telemetry.
pub fn stats() -> (u64, u64) {
    ARENA.with(|a| {
        let a = a.borrow();
        (a.hits, a.misses)
    })
}

/// Resets this thread's hit/miss counters (buffers stay pooled).
pub fn reset_stats() {
    ARENA.with(|a| {
        let mut a = a.borrow_mut();
        a.hits = 0;
        a.misses = 0;
    });
}

/// Drops every pooled buffer on this thread (mainly for tests that want
/// a cold arena).
pub fn clear() {
    ARENA.with(|a| {
        let mut a = a.borrow_mut();
        a.pools.clear();
        a.held_bytes = 0;
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_take_reuses_the_buffer() {
        clear();
        reset_stats();
        let buf = take(128);
        assert_eq!(buf.len(), 128);
        assert!(buf.iter().all(|&v| v == 0.0));
        let ptr = buf.as_ptr();
        put(buf);
        let again = take(128);
        assert_eq!(again.as_ptr(), ptr, "same allocation must be recycled");
        let (hits, misses) = stats();
        assert_eq!((hits, misses), (1, 1));
        put(again);
    }

    #[test]
    fn recycled_buffers_are_zeroed() {
        clear();
        let mut buf = take(16);
        buf.iter_mut().for_each(|v| *v = f32::NAN);
        put(buf);
        let clean = take(16);
        assert!(clean.iter().all(|&v| v.to_bits() == 0));
        put(clean);
    }

    #[test]
    fn different_lengths_do_not_alias() {
        clear();
        reset_stats();
        put(take(32));
        let b = take(64); // different length: must be a fresh allocation
        assert_eq!(b.len(), 64);
        let (_, misses) = stats();
        assert_eq!(misses, 2);
        put(b);
    }

    #[test]
    fn bucket_cap_bounds_memory() {
        clear();
        let bufs: Vec<_> = (0..MAX_PER_LEN + 3).map(|_| take(8)).collect();
        for b in bufs {
            put(b);
        }
        let held = ARENA.with(|a| a.borrow().pools.get(&8).map_or(0, Vec::len));
        assert_eq!(held, MAX_PER_LEN);
    }

    #[test]
    fn zero_length_buffers_are_ignored() {
        clear();
        put(Vec::new());
        let held = ARENA.with(|a| a.borrow().pools.len());
        assert_eq!(held, 0);
        assert!(take(0).is_empty());
    }

    #[test]
    fn arena_is_per_thread() {
        clear();
        reset_stats();
        put(take(256));
        // A different thread sees a cold arena: its take() must miss.
        let handle = std::thread::Builder::new()
            .spawn(|| {
                reset_stats();
                let b = take(256);
                put(b);
                stats()
            })
            .unwrap();
        let (hits, misses) = handle.join().unwrap();
        assert_eq!((hits, misses), (0, 1));
        // And this thread still hits.
        let b = take(256);
        let (h, _) = stats();
        assert!(h >= 1);
        put(b);
    }
}
