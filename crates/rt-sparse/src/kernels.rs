//! Slice-level sparse kernels and pack/scatter helpers.
//!
//! Every kernel here replays the *effective* float-operation order of one
//! of the dense GEMM layouts in `rt-tensor::linalg` (see the crate docs
//! for the `±0.0` identity argument), restricted to a [`SparsePlan`]'s
//! support. Values are always read from the **dense** weight buffer via
//! `row * cols + col`, so the structure-only plans survive weight updates.
//!
//! Parallel fan-out goes through [`rt_par::par_chunks_mut`] with tile
//! sizes derived purely from the problem shape — the same determinism
//! discipline as the dense GEMM — so every kernel is bit-identical at any
//! pool size.

use crate::plan::SparsePlan;

/// Target multiply-adds per parallel task (mirrors the dense GEMM grain).
const SPARSE_GRAIN: usize = 1 << 15;

/// Output rows per parallel tile — a pure function of the problem shape.
fn row_tile(rows: usize, work_per_row: usize) -> usize {
    (SPARSE_GRAIN / work_per_row.max(1)).clamp(1, rows.max(1))
}

/// `out[rows, n] = W × B` restricted to the plan's support (the conv
/// forward product `W × im2col(x)`).
///
/// Mirrors the dense `(plain)` ikj kernel: per output row, entries are
/// visited in ascending column order and zero weight values are skipped —
/// exactly the dense kernel's zero-skip on `A`.
///
/// # Panics
///
/// Debug-asserts slice lengths against the plan; the plan must carry CSR
/// structure (i.e. be a [`crate::PlanKind::Csr`] plan).
pub fn csr_matmul(w: &[f32], b: &[f32], n: usize, plan: &SparsePlan, out: &mut [f32]) {
    let (rows, cols) = (plan.dims.rows, plan.dims.cols);
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(b.len(), cols * n);
    debug_assert_eq!(out.len(), rows * n);
    let csr = plan.csr.as_ref().expect("csr_matmul requires a CSR plan");
    let work = if rows == 0 { 0 } else { plan.nnz * n / rows.max(1) };
    let tile = row_tile(rows, work);
    out.fill(0.0);
    rt_par::par_chunks_mut(out, tile * n, |t, out_tile| {
        let row0 = t * tile;
        for (r_off, o_row) in out_tile.chunks_mut(n).enumerate() {
            let r = row0 + r_off;
            for e in csr.row_range(r) {
                let k = csr.col_idx[e] as usize;
                let wv = w[r * cols + k];
                if wv == 0.0 {
                    continue; // dense kernel's zero-skip on A
                }
                let b_row = &b[k * n..(k + 1) * n];
                for (o_el, &b_el) in o_row.iter_mut().zip(b_row) {
                    *o_el += wv * b_el;
                }
            }
        }
    });
}

/// `out[cols, n] = Wᵀ × B` restricted to the plan's support (the conv
/// backward patch gradient `Wᵀ × dY`).
///
/// Mirrors the dense `Aᵀ×B` kernel: for each output row (a column of
/// `W`), contributing weight rows are visited ascending with the dense
/// zero-skip, so per-element accumulation order matches bit-for-bit.
pub fn csc_matmul_t(w: &[f32], b: &[f32], n: usize, plan: &SparsePlan, out: &mut [f32]) {
    let (rows, cols) = (plan.dims.rows, plan.dims.cols);
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(b.len(), rows * n);
    debug_assert_eq!(out.len(), cols * n);
    let csc = plan.csc.as_ref().expect("csc_matmul_t requires a CSR plan");
    let work = if cols == 0 { 0 } else { plan.nnz * n / cols.max(1) };
    let tile = row_tile(cols, work);
    out.fill(0.0);
    rt_par::par_chunks_mut(out, tile * n, |t, out_tile| {
        let col0 = t * tile;
        for (c_off, o_row) in out_tile.chunks_mut(n).enumerate() {
            let c = col0 + c_off;
            for e in csc.row_range(c) {
                let r = csc.col_idx[e] as usize;
                let wv = w[r * cols + c];
                if wv == 0.0 {
                    continue;
                }
                let b_row = &b[r * n..(r + 1) * n];
                for (o_el, &b_el) in o_row.iter_mut().zip(b_row) {
                    *o_el += wv * b_el;
                }
            }
        }
    });
}

/// `out[batch, rows] = X × Wᵀ` restricted to the plan's support (the
/// linear forward product).
///
/// Mirrors the dense `A×Bᵀ` dot kernel: a fresh per-element accumulator
/// sums terms in ascending column order, skipping zero `X` entries (the
/// unified zero-skip policy). Overwrite semantics — dead output rows are
/// written as `+0.0`, exactly what the dense dot kernel produces for an
/// all-zero weight row.
pub fn csr_dot_xt(x: &[f32], batch: usize, w: &[f32], plan: &SparsePlan, out: &mut [f32]) {
    let (rows, cols) = (plan.dims.rows, plan.dims.cols);
    debug_assert_eq!(x.len(), batch * cols);
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(out.len(), batch * rows);
    let csr = plan.csr.as_ref().expect("csr_dot_xt requires a CSR plan");
    let tile = row_tile(batch, plan.nnz);
    rt_par::par_chunks_mut(out, tile * rows, |t, out_tile| {
        let i0 = t * tile;
        for (i_off, o_row) in out_tile.chunks_mut(rows).enumerate() {
            let x_row = &x[(i0 + i_off) * cols..(i0 + i_off + 1) * cols];
            for (r, o_el) in o_row.iter_mut().enumerate() {
                let mut sum = 0.0f32;
                for e in csr.row_range(r) {
                    let k = csr.col_idx[e] as usize;
                    let xv = x_row[k];
                    if xv == 0.0 {
                        continue; // unified zero-skip on A (= X here)
                    }
                    sum += xv * w[r * cols + k];
                }
                *o_el = sum;
            }
        }
    });
}

/// `gx[batch, cols] = dY × W` restricted to the plan's support (the
/// linear backward input gradient).
///
/// Mirrors the dense ikj kernel with `A = dY`: per sample, weight rows are
/// visited ascending, zero `dY` entries are skipped, and each live weight
/// entry contributes `dy · w` to its input column. Overwrite semantics.
pub fn csr_dyw(dy: &[f32], batch: usize, w: &[f32], plan: &SparsePlan, gx: &mut [f32]) {
    let (rows, cols) = (plan.dims.rows, plan.dims.cols);
    debug_assert_eq!(dy.len(), batch * rows);
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(gx.len(), batch * cols);
    let csr = plan.csr.as_ref().expect("csr_dyw requires a CSR plan");
    let tile = row_tile(batch, plan.nnz);
    gx.fill(0.0);
    rt_par::par_chunks_mut(gx, tile * cols, |t, gx_tile| {
        let i0 = t * tile;
        for (i_off, g_row) in gx_tile.chunks_mut(cols).enumerate() {
            let dy_row = &dy[(i0 + i_off) * rows..(i0 + i_off + 1) * rows];
            for (r, &dyv) in dy_row.iter().enumerate() {
                if dyv == 0.0 {
                    continue; // dense kernel's zero-skip on A (= dY here)
                }
                for e in csr.row_range(r) {
                    let k = csr.col_idx[e] as usize;
                    g_row[k] += dyv * w[r * cols + k];
                }
            }
        }
    });
}

/// `gw[live] += dYᵀ × X` restricted to the plan's support (the linear
/// backward weight gradient, accumulate semantics).
///
/// Mirrors the dense `Aᵀ×B` accumulating kernel with `A = dY`: each live
/// weight entry accumulates `dy[i, r] · x[i, k]` over samples `i`
/// ascending, starting from the existing gradient value, skipping zero
/// `dY` entries exactly like the dense kernel. Dead entries are untouched
/// (the reference writes garbage there which `mask_grad` later zeroes).
pub fn csr_grad_atb(dy: &[f32], x: &[f32], batch: usize, plan: &SparsePlan, gw: &mut [f32]) {
    let (rows, cols) = (plan.dims.rows, plan.dims.cols);
    debug_assert_eq!(dy.len(), batch * rows);
    debug_assert_eq!(x.len(), batch * cols);
    debug_assert_eq!(gw.len(), rows * cols);
    let csr = plan.csr.as_ref().expect("csr_grad_atb requires a CSR plan");
    let work = if rows == 0 {
        0
    } else {
        plan.nnz * batch / rows.max(1)
    };
    let tile = row_tile(rows, work);
    rt_par::par_chunks_mut(gw, tile * cols, |t, gw_tile| {
        let row0 = t * tile;
        for (r_off, g_row) in gw_tile.chunks_mut(cols).enumerate() {
            let r = row0 + r_off;
            for e in csr.row_range(r) {
                let k = csr.col_idx[e] as usize;
                let mut acc = g_row[k];
                for i in 0..batch {
                    let dyv = dy[i * rows + r];
                    if dyv == 0.0 {
                        continue; // dense kernel's zero-skip on A (= dY)
                    }
                    acc += dyv * x[i * cols + k];
                }
                g_row[k] = acc;
            }
        }
    });
}

/// Per-entry dot products `vals[e] = Σ_p a[r_e, p] · b[c_e, p]` over the
/// plan's live entries (the per-sample conv weight gradient
/// `dY × colsᵀ`, computed only where the mask is live).
///
/// Mirrors the dense `A×Bᵀ` dot kernel: fresh accumulator, `p` ascending,
/// zero `A` entries skipped. `vals` is aligned with
/// [`SparsePlan::live_idx`] (row-major entry order).
pub fn csr_dot_rows(a: &[f32], b: &[f32], n: usize, plan: &SparsePlan, vals: &mut [f32]) {
    let (rows, cols) = (plan.dims.rows, plan.dims.cols);
    debug_assert_eq!(a.len(), rows * n);
    debug_assert_eq!(b.len(), cols * n);
    debug_assert_eq!(vals.len(), plan.live_idx.len());
    let live = &plan.live_idx;
    let tile = row_tile(live.len(), n);
    rt_par::par_chunks_mut(vals, tile, |t, chunk| {
        let e0 = t * tile;
        for (j, v) in chunk.iter_mut().enumerate() {
            let flat = live[e0 + j] as usize;
            let (r, c) = (flat / cols, flat % cols);
            let a_row = &a[r * n..(r + 1) * n];
            let b_row = &b[c * n..(c + 1) * n];
            let mut sum = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                if av == 0.0 {
                    continue; // unified zero-skip on A
                }
                sum += av * bv;
            }
            *v = sum;
        }
    });
}

/// Scatter-accumulates per-entry values (from [`csr_dot_rows`]) into a
/// dense gradient buffer: `gw[live_idx[e]] += vals[e]`. Serial by design —
/// it is called inside the conv backward's ordered per-sample fold.
pub fn scatter_add_entries(vals: &[f32], plan: &SparsePlan, gw: &mut [f32]) {
    debug_assert_eq!(vals.len(), plan.live_idx.len());
    debug_assert_eq!(gw.len(), plan.dims.len());
    for (&flat, &v) in plan.live_idx.iter().zip(vals) {
        gw[flat as usize] += v;
    }
}

// ---------------------------------------------------------------------
// Structured-compaction pack/scatter helpers.
// ---------------------------------------------------------------------

/// Gathers `rows` (by index) of a `[*, row_len]` matrix into a packed
/// `[rows.len(), row_len]` destination.
pub fn gather_rows(src: &[f32], row_len: usize, rows: &[u32], dst: &mut [f32]) {
    debug_assert_eq!(dst.len(), rows.len() * row_len);
    for (j, &r) in rows.iter().enumerate() {
        let r = r as usize;
        dst[j * row_len..(j + 1) * row_len]
            .copy_from_slice(&src[r * row_len..(r + 1) * row_len]);
    }
}

/// Inverse of [`gather_rows`] with clear semantics: zero-fills `dst`
/// (shape `[total_rows, row_len]`) and writes the packed rows back to
/// their original positions.
pub fn scatter_rows_clear(src: &[f32], row_len: usize, rows: &[u32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), rows.len() * row_len);
    dst.fill(0.0);
    for (j, &r) in rows.iter().enumerate() {
        let r = r as usize;
        dst[r * row_len..(r + 1) * row_len]
            .copy_from_slice(&src[j * row_len..(j + 1) * row_len]);
    }
}

/// Inverse of [`gather_rows`] with keep semantics: writes the packed rows
/// back, leaving every other row of `dst` untouched (used for gradient
/// buffers whose dead entries are owned by `mask_grad`).
pub fn scatter_rows_keep(src: &[f32], row_len: usize, rows: &[u32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), rows.len() * row_len);
    for (j, &r) in rows.iter().enumerate() {
        let r = r as usize;
        dst[r * row_len..(r + 1) * row_len]
            .copy_from_slice(&src[j * row_len..(j + 1) * row_len]);
    }
}

/// Gathers columns (by index) of a `[n_rows, row_len]` matrix into a
/// packed `[n_rows, cols.len()]` destination (e.g. the live output
/// columns of `dY` for a row-compacted linear layer).
pub fn gather_cols(src: &[f32], n_rows: usize, row_len: usize, cols: &[u32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), n_rows * row_len);
    debug_assert_eq!(dst.len(), n_rows * cols.len());
    let w = cols.len();
    for i in 0..n_rows {
        let s_row = &src[i * row_len..(i + 1) * row_len];
        let d_row = &mut dst[i * w..(i + 1) * w];
        for (d, &c) in d_row.iter_mut().zip(cols) {
            *d = s_row[c as usize];
        }
    }
}

/// Inverse of [`gather_cols`] with clear semantics: zero-fills `dst`
/// (shape `[n_rows, total_cols]`) and writes the packed columns back.
pub fn scatter_cols_clear(
    src: &[f32],
    n_rows: usize,
    cols: &[u32],
    total_cols: usize,
    dst: &mut [f32],
) {
    debug_assert_eq!(src.len(), n_rows * cols.len());
    debug_assert_eq!(dst.len(), n_rows * total_cols);
    let w = cols.len();
    dst.fill(0.0);
    for i in 0..n_rows {
        let s_row = &src[i * w..(i + 1) * w];
        let d_row = &mut dst[i * total_cols..(i + 1) * total_cols];
        for (&v, &c) in s_row.iter().zip(cols) {
            d_row[c as usize] = v;
        }
    }
}

/// Packs a weight matrix down to its live rows × live column groups:
/// `dst[[j, g·cg..]] = w[live_rows[j], live_col_groups[g]·cg..]` with
/// `cg = dims.col_group`. This is the Compact plan's weight transform for
/// conv layers (live output channels × live input channels).
pub fn pack_matrix_groups(w: &[f32], plan: &SparsePlan, dst: &mut [f32]) {
    let cols = plan.dims.cols;
    let cg = plan.dims.col_group;
    let packed_cols = plan.live_col_groups.len() * cg;
    debug_assert_eq!(w.len(), plan.dims.len());
    debug_assert_eq!(dst.len(), plan.live_rows.len() * packed_cols);
    for (j, &r) in plan.live_rows.iter().enumerate() {
        let src_row = &w[r as usize * cols..(r as usize + 1) * cols];
        let dst_row = &mut dst[j * packed_cols..(j + 1) * packed_cols];
        for (g, &grp) in plan.live_col_groups.iter().enumerate() {
            let s = grp as usize * cg;
            dst_row[g * cg..(g + 1) * cg].copy_from_slice(&src_row[s..s + cg]);
        }
    }
}

/// Inverse of [`pack_matrix_groups`] with assign semantics into a
/// zero-initialized destination: writes packed values back to their live
/// positions, leaving everything else at its current value (callers pass
/// a freshly zeroed gradient buffer).
pub fn scatter_matrix_groups(src: &[f32], plan: &SparsePlan, dst: &mut [f32]) {
    let cols = plan.dims.cols;
    let cg = plan.dims.col_group;
    let packed_cols = plan.live_col_groups.len() * cg;
    debug_assert_eq!(dst.len(), plan.dims.len());
    debug_assert_eq!(src.len(), plan.live_rows.len() * packed_cols);
    for (j, &r) in plan.live_rows.iter().enumerate() {
        let src_row = &src[j * packed_cols..(j + 1) * packed_cols];
        let dst_row = &mut dst[r as usize * cols..(r as usize + 1) * cols];
        for (g, &grp) in plan.live_col_groups.iter().enumerate() {
            let d = grp as usize * cg;
            dst_row[d..d + cg].copy_from_slice(&src_row[g * cg..(g + 1) * cg]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::BitMask;
    use crate::plan::{build_plan, MatrixDims, PlanKind};

    /// xorshift PRNG for deterministic test data.
    struct Rng(u64);
    impl Rng {
        fn new(seed: u64) -> Self {
            Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
        }
        fn next_u64(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
        fn uniform(&mut self) -> f32 {
            (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
        }
        fn value(&mut self) -> f32 {
            self.uniform() * 4.0 - 2.0
        }
    }

    fn random_mask(len: usize, density: f64, rng: &mut Rng) -> BitMask {
        let mut m = BitMask::zeros(len);
        for i in 0..len {
            if (rng.uniform() as f64) < density {
                m.set(i, true);
            }
        }
        m
    }

    /// Masked random weight matrix: live entries random, dead exactly 0.0.
    fn masked_weights(bits: &BitMask, rng: &mut Rng) -> Vec<f32> {
        (0..bits.len())
            .map(|i| if bits.get(i) { rng.value() } else { 0.0 })
            .collect()
    }

    fn randoms(len: usize, rng: &mut Rng) -> Vec<f32> {
        (0..len).map(|_| rng.value()).collect()
    }

    fn bits_eq(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    // ---- dense reference kernels (the exact loops in rt-tensor) -------

    /// ikj with zero-skip on A; zero-fill then accumulate.
    fn ref_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[i * n + j] += av * b[p * n + j];
                }
            }
        }
        out
    }

    /// Aᵀ×B: p-outer with zero-skip on A; zero-fill then accumulate.
    fn ref_matmul_at_b(a: &[f32], b: &[f32], k: usize, m: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            for i in 0..m {
                let av = a[p * m + i];
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[i * n + j] += av * b[p * n + j];
                }
            }
        }
        out
    }

    /// A×Bᵀ dot kernel with the unified zero-skip on A; overwrite.
    fn ref_matmul_a_bt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut sum = 0.0f32;
                for p in 0..k {
                    let av = a[i * k + p];
                    if av == 0.0 {
                        continue;
                    }
                    sum += av * b[j * k + p];
                }
                out[i * n + j] = sum;
            }
        }
        out
    }

    /// Aᵀ×B accumulating into existing out (the dW reference).
    fn ref_matmul_at_b_acc(a: &[f32], b: &[f32], k: usize, m: usize, n: usize, out: &mut [f32]) {
        for p in 0..k {
            for i in 0..m {
                let av = a[p * m + i];
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[i * n + j] += av * b[p * n + j];
                }
            }
        }
    }

    fn csr_fixture(rows: usize, cols: usize, density: f64, seed: u64) -> (SparsePlan, Vec<f32>) {
        let mut rng = Rng::new(seed);
        let bits = random_mask(rows * cols, density, &mut rng);
        let plan = build_plan(&bits, MatrixDims::linear(rows, cols));
        assert_eq!(plan.kind, PlanKind::Csr, "fixture must select CSR");
        let w = masked_weights(&bits, &mut rng);
        (plan, w)
    }

    #[test]
    fn csr_matmul_matches_dense_reference_bitwise() {
        let (rows, cols, n) = (13, 17, 9);
        let (plan, w) = csr_fixture(rows, cols, 0.15, 1);
        let b = randoms(cols * n, &mut Rng::new(2));
        let mut out = vec![f32::NAN; rows * n];
        csr_matmul(&w, &b, n, &plan, &mut out);
        assert!(bits_eq(&out, &ref_matmul(&w, &b, rows, cols, n)));
    }

    #[test]
    fn csc_matmul_t_matches_dense_reference_bitwise() {
        let (rows, cols, n) = (11, 14, 6);
        let (plan, w) = csr_fixture(rows, cols, 0.2, 3);
        let b = randoms(rows * n, &mut Rng::new(4));
        let mut out = vec![f32::NAN; cols * n];
        csc_matmul_t(&w, &b, n, &plan, &mut out);
        assert!(bits_eq(&out, &ref_matmul_at_b(&w, &b, rows, cols, n)));
    }

    #[test]
    fn csr_dot_xt_matches_dense_reference_bitwise() {
        let (rows, cols, batch) = (10, 21, 7);
        let (plan, w) = csr_fixture(rows, cols, 0.12, 5);
        let mut rng = Rng::new(6);
        // Inputs with exact zeros sprinkled in, to exercise the X skip.
        let x: Vec<f32> = (0..batch * cols)
            .map(|_| {
                if rng.uniform() < 0.3 {
                    0.0
                } else {
                    rng.value()
                }
            })
            .collect();
        let mut out = vec![f32::NAN; batch * rows];
        csr_dot_xt(&x, batch, &w, &plan, &mut out);
        assert!(bits_eq(&out, &ref_matmul_a_bt(&x, &w, batch, cols, rows)));
    }

    #[test]
    fn csr_dyw_matches_dense_reference_bitwise() {
        let (rows, cols, batch) = (12, 19, 5);
        let (plan, w) = csr_fixture(rows, cols, 0.25, 7);
        let mut rng = Rng::new(8);
        let dy: Vec<f32> = (0..batch * rows)
            .map(|_| {
                if rng.uniform() < 0.3 {
                    0.0
                } else {
                    rng.value()
                }
            })
            .collect();
        let mut gx = vec![f32::NAN; batch * cols];
        csr_dyw(&dy, batch, &w, &plan, &mut gx);
        assert!(bits_eq(&gx, &ref_matmul(&dy, &w, batch, rows, cols)));
    }

    #[test]
    fn csr_grad_atb_matches_dense_reference_on_live_entries() {
        let (rows, cols, batch) = (9, 16, 6);
        let (plan, _) = csr_fixture(rows, cols, 0.2, 9);
        let mut rng = Rng::new(10);
        let dy: Vec<f32> = (0..batch * rows)
            .map(|_| {
                if rng.uniform() < 0.25 {
                    0.0
                } else {
                    rng.value()
                }
            })
            .collect();
        let x = randoms(batch * cols, &mut rng);
        // Start both from the same nonzero accumulated gradient.
        let seed_grad = randoms(rows * cols, &mut Rng::new(11));
        let mut expect = seed_grad.clone();
        ref_matmul_at_b_acc(&dy, &x, batch, rows, cols, &mut expect);
        let mut got = seed_grad.clone();
        csr_grad_atb(&dy, &x, batch, &plan, &mut got);
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            if plan.bits.get(i) {
                assert_eq!(g.to_bits(), e.to_bits(), "live entry {i}");
            } else {
                // Dead entries untouched by the sparse kernel.
                assert_eq!(g.to_bits(), seed_grad[i].to_bits(), "dead entry {i}");
            }
        }
    }

    #[test]
    fn csr_dot_rows_and_scatter_match_reference_fold() {
        let (rows, cols, n) = (8, 12, 10);
        let (plan, _) = csr_fixture(rows, cols, 0.3, 12);
        let mut rng = Rng::new(13);
        let a: Vec<f32> = (0..rows * n)
            .map(|_| {
                if rng.uniform() < 0.2 {
                    0.0
                } else {
                    rng.value()
                }
            })
            .collect();
        let b = randoms(cols * n, &mut rng);
        let mut vals = vec![f32::NAN; plan.nnz];
        csr_dot_rows(&a, &b, n, &plan, &mut vals);
        let expect = ref_matmul_a_bt(&a, &b, rows, n, cols);
        let mut gw = vec![0.0f32; rows * cols];
        scatter_add_entries(&vals, &plan, &mut gw);
        for i in 0..rows * cols {
            if plan.bits.get(i) {
                assert_eq!(gw[i].to_bits(), expect[i].to_bits(), "live entry {i}");
            } else {
                assert_eq!(gw[i], 0.0);
            }
        }
    }

    #[test]
    fn empty_plan_kernels_produce_zeros() {
        let plan = build_plan(&BitMask::zeros(12), MatrixDims::linear(3, 4));
        assert_eq!(plan.kind, PlanKind::Csr);
        let w = vec![0.0f32; 12];
        let b = randoms(4 * 5, &mut Rng::new(1));
        let mut out = vec![f32::NAN; 3 * 5];
        csr_matmul(&w, &b, 5, &plan, &mut out);
        assert!(out.iter().all(|&v| v.to_bits() == 0));
        let x = randoms(2 * 4, &mut Rng::new(2));
        let mut y = vec![f32::NAN; 2 * 3];
        csr_dot_xt(&x, 2, &w, &plan, &mut y);
        assert!(y.iter().all(|&v| v.to_bits() == 0));
    }

    #[test]
    fn gather_scatter_rows_round_trip() {
        let src: Vec<f32> = (0..20).map(|i| i as f32).collect(); // 5 rows × 4
        let rows = [1u32, 3, 4];
        let mut packed = vec![0.0f32; 12];
        gather_rows(&src, 4, &rows, &mut packed);
        assert_eq!(&packed[0..4], &[4.0, 5.0, 6.0, 7.0]);
        let mut back = vec![f32::NAN; 20];
        scatter_rows_clear(&packed, 4, &rows, &mut back);
        assert_eq!(&back[0..4], &[0.0; 4]);
        assert_eq!(&back[4..8], &src[4..8]);
        assert_eq!(&back[12..20], &src[12..20]);
        let mut kept = vec![9.0f32; 20];
        scatter_rows_keep(&packed, 4, &rows, &mut kept);
        assert_eq!(&kept[0..4], &[9.0; 4]);
        assert_eq!(&kept[4..8], &src[4..8]);
    }

    #[test]
    fn gather_scatter_cols_round_trip() {
        let src: Vec<f32> = (0..15).map(|i| i as f32).collect(); // 3 rows × 5
        let cols = [0u32, 2, 4];
        let mut packed = vec![0.0f32; 9];
        gather_cols(&src, 3, 5, &cols, &mut packed);
        assert_eq!(&packed[0..3], &[0.0, 2.0, 4.0]);
        assert_eq!(&packed[3..6], &[5.0, 7.0, 9.0]);
        let mut back = vec![f32::NAN; 15];
        scatter_cols_clear(&packed, 3, &cols, 5, &mut back);
        assert_eq!(&back[0..5], &[0.0, 0.0, 2.0, 0.0, 4.0]);
        assert_eq!(back[6], 0.0);
        assert_eq!(back[7], 7.0);
    }

    #[test]
    fn pack_scatter_matrix_groups_round_trip() {
        // 4 rows × 3 groups of 2; rows {0, 2} and groups {0, 2} live.
        let dims = MatrixDims::grouped(4, 6, 2);
        let mut bits = BitMask::zeros(24);
        for r in [0usize, 2] {
            for g in [0usize, 2] {
                for e in 0..2 {
                    bits.set(r * 6 + g * 2 + e, true);
                }
            }
        }
        let plan = build_plan(&bits, dims);
        assert_eq!(plan.kind, PlanKind::Compact);
        let w: Vec<f32> = (0..24).map(|i| i as f32).collect();
        let mut packed = vec![f32::NAN; 2 * 4];
        pack_matrix_groups(&w, &plan, &mut packed);
        assert_eq!(packed, vec![0.0, 1.0, 4.0, 5.0, 12.0, 13.0, 16.0, 17.0]);
        let mut back = vec![0.0f32; 24];
        scatter_matrix_groups(&packed, &plan, &mut back);
        for i in 0..24 {
            if bits.get(i) {
                assert_eq!(back[i], w[i]);
            } else {
                assert_eq!(back[i], 0.0);
            }
        }
    }

    #[test]
    fn kernels_are_bit_identical_across_pool_sizes() {
        // The full determinism contract at kernel level: every pool size
        // produces the same bytes. (ci.sh additionally runs the whole
        // suite under RT_THREADS=1 and 4.)
        let (rows, cols, n, batch) = (24, 40, 31, 13);
        let (plan, w) = csr_fixture(rows, cols, 0.1, 21);
        let b = randoms(cols * n, &mut Rng::new(22));
        let x = randoms(batch * cols, &mut Rng::new(23));
        let dy = randoms(batch * rows, &mut Rng::new(24));
        let mut reference: Option<(Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>)> = None;
        for &threads in &[1usize, 2, 4, 7] {
            rt_par::set_threads(threads);
            let mut o1 = vec![0.0f32; rows * n];
            csr_matmul(&w, &b, n, &plan, &mut o1);
            let mut o2 = vec![0.0f32; batch * rows];
            csr_dot_xt(&x, batch, &w, &plan, &mut o2);
            let mut o3 = vec![0.0f32; batch * cols];
            csr_dyw(&dy, batch, &w, &plan, &mut o3);
            let mut o4 = vec![0.0f32; rows * cols];
            csr_grad_atb(&dy, &x, batch, &plan, &mut o4);
            match &reference {
                None => reference = Some((o1, o2, o3, o4)),
                Some((r1, r2, r3, r4)) => {
                    assert!(bits_eq(&o1, r1), "csr_matmul diverged at {threads}t");
                    assert!(bits_eq(&o2, r2), "csr_dot_xt diverged at {threads}t");
                    assert!(bits_eq(&o3, r3), "csr_dyw diverged at {threads}t");
                    assert!(bits_eq(&o4, r4), "csr_grad_atb diverged at {threads}t");
                }
            }
        }
        rt_par::set_threads(1);
    }
}
