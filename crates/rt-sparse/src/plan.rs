//! Compiling a mask into an executable [`SparsePlan`].
//!
//! A plan is built **once** when a ticket mask is installed on a parameter
//! and consulted on every forward/backward/optimizer step. It records only
//! the mask's *structure* (live rows, live column groups, CSR/CSC index
//! arrays, flat live indices) — weight **values** are always read from the
//! live dense buffer, so plans stay valid across optimizer updates and
//! never need re-packing during training.

use crate::bitset::BitMask;

/// Logical matrix view of a parameter for plan analysis.
///
/// Linear weights `[O, I]` use `rows = O`, `cols = I`, `col_group = 1`.
/// Conv weights `[O, C, k, k]` flatten to `rows = O`, `cols = C·k·k`,
/// `col_group = k·k` — one column group per input channel, matching the
/// `im2col` row blocks, so a dead group means a whole input channel can be
/// dropped from the lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatrixDims {
    /// Output rows (output units / channels).
    pub rows: usize,
    /// Columns per row (fan-in elements).
    pub cols: usize,
    /// Elements per column group (`k·k` for conv, `1` for linear).
    pub col_group: usize,
}

impl MatrixDims {
    /// Dims for a `[rows, cols]` linear weight (column groups of 1).
    pub fn linear(rows: usize, cols: usize) -> Self {
        MatrixDims {
            rows,
            cols,
            col_group: 1,
        }
    }

    /// Dims with explicit column grouping. A `col_group` of zero or one
    /// that does not divide `cols` degenerates to per-element groups.
    pub fn grouped(rows: usize, cols: usize, col_group: usize) -> Self {
        let col_group = if col_group == 0 || (cols > 0 && cols % col_group != 0) {
            1
        } else {
            col_group
        };
        MatrixDims {
            rows,
            cols,
            col_group,
        }
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of column groups per row.
    pub fn group_count(&self) -> usize {
        if self.col_group == 0 {
            0
        } else {
            self.cols / self.col_group
        }
    }
}

/// How a plan executes its layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanKind {
    /// Run the unchanged dense kernels (mask too dense to pay).
    Dense,
    /// Pack to live rows / live column groups and run dense GEMM on the
    /// small matrices, scattering back afterwards.
    Compact,
    /// Row-parallel sparse kernels over CSR/CSC structure.
    Csr,
}

impl PlanKind {
    /// Stable lowercase name for telemetry and reports.
    pub fn name(self) -> &'static str {
        match self {
            PlanKind::Dense => "dense",
            PlanKind::Compact => "compact",
            PlanKind::Csr => "csr",
        }
    }
}

/// Compressed sparse row structure (also reused with roles swapped as a
/// CSC view: `row_ptr` indexed by column, `col_idx` holding row indices).
///
/// Only *structure* is stored — kernels read values from the dense weight
/// buffer via `row * cols + col`, so the structure survives weight updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `row_ptr[r]..row_ptr[r + 1]` indexes this row's entries in
    /// [`Csr::col_idx`]. Length `rows + 1`.
    pub row_ptr: Vec<u32>,
    /// Column index of each entry, ascending within a row.
    pub col_idx: Vec<u32>,
}

impl Csr {
    /// Entry range of row `r` as usize bounds.
    pub fn row_range(&self, r: usize) -> std::ops::Range<usize> {
        self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize
    }
}

/// Minimum density *inside* the live rows × live groups rectangle for
/// structured compaction to be chosen: below this, packing would still
/// carry mostly zeros and CSR wins.
pub const COMPACT_MIN_INNER_DENSITY: f64 = 0.5;

/// Maximum live-area fraction for compaction: above this the packed
/// problem is nearly the full problem and packing overhead buys nothing.
pub const COMPACT_MAX_AREA_RATIO: f64 = 0.9;

/// Maximum overall density for the CSR path: above this the dense
/// zero-skip kernel is at least as fast and far simpler.
pub const CSR_MAX_DENSITY: f64 = 0.45;

/// An executable sparsity plan for one parameter matrix. Built by
/// [`build_plan`]; immutable afterwards.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsePlan {
    /// Matrix view the plan was built for.
    pub dims: MatrixDims,
    /// Selected execution strategy.
    pub kind: PlanKind,
    /// The packed mask itself (32× smaller than the legacy f32 storage).
    pub bits: BitMask,
    /// Number of live entries.
    pub nnz: usize,
    /// Ascending indices of rows with at least one live entry.
    pub live_rows: Vec<u32>,
    /// Ascending indices of column groups with at least one live entry.
    pub live_col_groups: Vec<u32>,
    /// Row-major traversal structure (present for [`PlanKind::Csr`]).
    pub csr: Option<Csr>,
    /// Column-major (transpose) traversal structure (present for
    /// [`PlanKind::Csr`]; used by backward's `Wᵀ` products).
    pub csc: Option<Csr>,
    /// Flat indices (`row * cols + col`) of every live entry, ascending.
    /// Present for Compact and Csr plans; empty for Dense (where a full
    /// scan is cheaper than an index list over ~all elements).
    pub live_idx: Vec<u32>,
}

impl SparsePlan {
    /// Live fraction of the matrix.
    pub fn density(&self) -> f64 {
        if self.dims.is_empty() {
            1.0
        } else {
            self.nnz as f64 / self.dims.len() as f64
        }
    }

    /// Whether the plan degenerates to the dense path.
    pub fn is_dense(&self) -> bool {
        self.kind == PlanKind::Dense
    }

    /// Multiply-add count of the dense GEMM for `batch` input rows (or
    /// output pixels, for conv): `2 · rows · cols · batch`.
    pub fn dense_flops(&self, batch: usize) -> u64 {
        2 * (self.dims.rows as u64) * (self.dims.cols as u64) * (batch as u64)
    }

    /// Multiply-add count the selected plan actually performs per `batch`:
    /// the packed rectangle for Compact, `2 · nnz · batch` for CSR, and
    /// the dense count for Dense.
    pub fn plan_flops(&self, batch: usize) -> u64 {
        match self.kind {
            PlanKind::Dense => self.dense_flops(batch),
            PlanKind::Compact => {
                2 * (self.live_rows.len() as u64)
                    * (self.live_col_groups.len() as u64)
                    * (self.dims.col_group as u64)
                    * (batch as u64)
            }
            PlanKind::Csr => 2 * (self.nnz as u64) * (batch as u64),
        }
    }

    /// FLOPs the plan saves over the dense path per `batch`.
    pub fn flops_saved(&self, batch: usize) -> u64 {
        self.dense_flops(batch).saturating_sub(self.plan_flops(batch))
    }

    /// Theoretical speedup of the plan over dense (`1.0` for Dense).
    pub fn theoretical_speedup(&self) -> f64 {
        let plan = self.plan_flops(1);
        if plan == 0 {
            f64::INFINITY
        } else {
            self.dense_flops(1) as f64 / plan as f64
        }
    }

    /// Number of weights the selected plan actually touches per product:
    /// the whole matrix for Dense, the packed live rectangle for Compact
    /// (its GEMM reads every packed entry, live or not), and `nnz` for
    /// CSR. By construction `plan_flops(b) == 2 · live_weights() · b`, so
    /// this is the byte-accounting counterpart of the FLOP model.
    pub fn live_weights(&self) -> u64 {
        match self.kind {
            PlanKind::Dense => self.dims.len() as u64,
            PlanKind::Compact => {
                (self.live_rows.len() as u64)
                    * (self.live_col_groups.len() as u64)
                    * (self.dims.col_group as u64)
            }
            PlanKind::Csr => self.nnz as u64,
        }
    }
}

/// Analyzes a mask against its matrix view and selects the cheapest
/// correct execution strategy.
///
/// Selection rules (documented in DESIGN.md §10):
///
/// 1. A full mask (or an empty matrix) is [`PlanKind::Dense`] — nothing to
///    exploit.
/// 2. If the live rows × live column groups rectangle is at least
///    [`COMPACT_MIN_INNER_DENSITY`] full *and* covers at most
///    [`COMPACT_MAX_AREA_RATIO`] of the matrix, choose
///    [`PlanKind::Compact`]: the mask is structured enough that dense GEMM
///    on the packed rectangle beats per-entry indexing.
/// 3. Otherwise, if overall density is at most [`CSR_MAX_DENSITY`],
///    choose [`PlanKind::Csr`].
/// 4. Everything else stays [`PlanKind::Dense`].
///
/// # Panics
///
/// Panics if `bits.len() != dims.len()`.
pub fn build_plan(bits: &BitMask, dims: MatrixDims) -> SparsePlan {
    assert_eq!(
        bits.len(),
        dims.len(),
        "mask length {} does not match matrix dims {:?}",
        bits.len(),
        dims
    );
    let nnz = bits.count_ones();
    let total = dims.len();
    if total == 0 || nnz == total {
        return SparsePlan {
            dims,
            kind: PlanKind::Dense,
            bits: bits.clone(),
            nnz,
            live_rows: Vec::new(),
            live_col_groups: Vec::new(),
            csr: None,
            csc: None,
            live_idx: Vec::new(),
        };
    }

    // Realized structure: which rows / column groups carry any live entry.
    let groups = dims.group_count();
    let mut row_live = vec![false; dims.rows];
    let mut group_live = vec![false; groups];
    for idx in bits.iter_ones() {
        row_live[idx / dims.cols] = true;
        group_live[(idx % dims.cols) / dims.col_group] = true;
    }
    let live_rows: Vec<u32> = (0..dims.rows as u32)
        .filter(|&r| row_live[r as usize])
        .collect();
    let live_col_groups: Vec<u32> = (0..groups as u32)
        .filter(|&g| group_live[g as usize])
        .collect();

    let live_area = live_rows.len() * live_col_groups.len() * dims.col_group;
    let inner_density = if live_area == 0 {
        0.0
    } else {
        nnz as f64 / live_area as f64
    };
    let area_ratio = live_area as f64 / total as f64;
    let density = nnz as f64 / total as f64;

    let kind = if nnz > 0
        && inner_density >= COMPACT_MIN_INNER_DENSITY
        && area_ratio <= COMPACT_MAX_AREA_RATIO
    {
        PlanKind::Compact
    } else if density <= CSR_MAX_DENSITY {
        PlanKind::Csr
    } else {
        PlanKind::Dense
    };

    let live_idx: Vec<u32> = if kind == PlanKind::Dense {
        Vec::new()
    } else {
        bits.iter_ones().map(|i| i as u32).collect()
    };

    let (csr, csc) = if kind == PlanKind::Csr {
        // CSR: live_idx is already sorted row-major (ascending flat index).
        let mut row_ptr = vec![0u32; dims.rows + 1];
        let mut col_idx = Vec::with_capacity(nnz);
        for &flat in &live_idx {
            let r = flat as usize / dims.cols;
            row_ptr[r + 1] += 1;
            col_idx.push(flat % dims.cols as u32);
        }
        for r in 0..dims.rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        // CSC: bucket rows per column, preserving ascending row order
        // within each column (stable pass over the row-major entries).
        let mut col_ptr = vec![0u32; dims.cols + 1];
        for &c in &col_idx {
            col_ptr[c as usize + 1] += 1;
        }
        for c in 0..dims.cols {
            col_ptr[c + 1] += col_ptr[c];
        }
        let mut cursor: Vec<u32> = col_ptr[..dims.cols].to_vec();
        let mut row_idx = vec![0u32; nnz];
        for &flat in &live_idx {
            let (r, c) = (flat as usize / dims.cols, flat as usize % dims.cols);
            row_idx[cursor[c] as usize] = r as u32;
            cursor[c] += 1;
        }
        (
            Some(Csr { row_ptr, col_idx }),
            Some(Csr {
                row_ptr: col_ptr,
                col_idx: row_idx,
            }),
        )
    } else {
        (None, None)
    };

    SparsePlan {
        dims,
        kind,
        bits: bits.clone(),
        nnz,
        live_rows,
        live_col_groups,
        csr,
        csc,
        live_idx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random mask with roughly `density` live bits.
    fn random_mask(len: usize, density: f64, seed: u64) -> BitMask {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut m = BitMask::zeros(len);
        for i in 0..len {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if ((state >> 11) as f64 / (1u64 << 53) as f64) < density {
                m.set(i, true);
            }
        }
        m
    }

    #[test]
    fn full_mask_is_dense() {
        let dims = MatrixDims::linear(4, 8);
        let plan = build_plan(&BitMask::ones(32), dims);
        assert_eq!(plan.kind, PlanKind::Dense);
        assert_eq!(plan.nnz, 32);
        assert_eq!(plan.flops_saved(10), 0);
        assert_eq!(plan.theoretical_speedup(), 1.0);
        assert!(plan.live_idx.is_empty());
    }

    #[test]
    fn row_structured_mask_compacts() {
        // Rows 1 and 3 of 5 live, fully dense inside: classic channel
        // pruning at 60% sparsity.
        let dims = MatrixDims::linear(5, 6);
        let mut bits = BitMask::zeros(30);
        for r in [1usize, 3] {
            for c in 0..6 {
                bits.set(r * 6 + c, true);
            }
        }
        let plan = build_plan(&bits, dims);
        assert_eq!(plan.kind, PlanKind::Compact);
        assert_eq!(plan.live_rows, vec![1, 3]);
        assert_eq!(plan.live_col_groups.len(), 6); // every col used
        assert_eq!(plan.nnz, 12);
        assert_eq!(plan.plan_flops(1), 2 * 2 * 6);
        assert_eq!(plan.dense_flops(1), 2 * 5 * 6);
        assert!(plan.theoretical_speedup() > 2.0);
        assert_eq!(plan.live_idx.len(), 12);
    }

    #[test]
    fn live_weights_matches_plan_flops_at_every_kind() {
        // Dense: whole matrix.
        let dense = build_plan(&BitMask::ones(32), MatrixDims::linear(4, 8));
        assert_eq!(dense.live_weights(), 32);
        // Compact: the packed rectangle, not nnz.
        let dims = MatrixDims::linear(5, 6);
        let mut bits = BitMask::zeros(30);
        for r in [1usize, 3] {
            for c in 0..6 {
                bits.set(r * 6 + c, true);
            }
        }
        let compact = build_plan(&bits, dims);
        assert_eq!(compact.kind, PlanKind::Compact);
        assert_eq!(compact.live_weights(), 2 * 6);
        // CSR: exactly nnz.
        let csr = build_plan(&random_mask(16 * 32, 0.1, 7), MatrixDims::linear(16, 32));
        assert_eq!(csr.kind, PlanKind::Csr);
        assert_eq!(csr.live_weights(), csr.nnz as u64);
        // The invariant the cost model relies on, for every kind.
        for (plan, batch) in [(&dense, 3usize), (&compact, 5), (&csr, 2)] {
            assert_eq!(
                plan.plan_flops(batch),
                2 * plan.live_weights() * batch as u64
            );
        }
    }

    #[test]
    fn grouped_mask_compacts_on_channel_groups() {
        // Conv-like [4 rows, 3 groups × 4 elems]; group 1 dead everywhere,
        // rows 0 and 2 live.
        let dims = MatrixDims::grouped(4, 12, 4);
        let mut bits = BitMask::zeros(48);
        for r in [0usize, 2] {
            for g in [0usize, 2] {
                for e in 0..4 {
                    bits.set(r * 12 + g * 4 + e, true);
                }
            }
        }
        let plan = build_plan(&bits, dims);
        assert_eq!(plan.kind, PlanKind::Compact);
        assert_eq!(plan.live_rows, vec![0, 2]);
        assert_eq!(plan.live_col_groups, vec![0, 2]);
        assert_eq!(plan.plan_flops(1), 2 * 2 * 2 * 4);
    }

    #[test]
    fn unstructured_low_density_uses_csr() {
        let dims = MatrixDims::linear(16, 32);
        let bits = random_mask(16 * 32, 0.1, 7);
        let plan = build_plan(&bits, dims);
        assert_eq!(plan.kind, PlanKind::Csr);
        let csr = plan.csr.as_ref().unwrap();
        assert_eq!(csr.row_ptr.len(), 17);
        assert_eq!(csr.col_idx.len(), plan.nnz);
        assert_eq!(plan.live_idx.len(), plan.nnz);
        // CSR traversal enumerates exactly the live bits, row-major.
        let mut seen = Vec::new();
        for r in 0..16 {
            for e in csr.row_range(r) {
                seen.push(r * 32 + csr.col_idx[e] as usize);
            }
        }
        assert_eq!(seen, plan.bits.iter_ones().collect::<Vec<_>>());
    }

    #[test]
    fn csc_is_the_exact_transpose_traversal() {
        let dims = MatrixDims::linear(9, 13);
        let bits = random_mask(9 * 13, 0.2, 3);
        let plan = build_plan(&bits, dims);
        assert_eq!(plan.kind, PlanKind::Csr);
        let csc = plan.csc.as_ref().unwrap();
        assert_eq!(csc.row_ptr.len(), 14);
        let mut count = 0usize;
        for c in 0..13 {
            let mut prev_row = None;
            for e in csc.row_range(c) {
                let r = csc.col_idx[e] as usize;
                assert!(plan.bits.get(r * 13 + c));
                // Rows ascend within each column — the dense kernel's order.
                if let Some(p) = prev_row {
                    assert!(r > p);
                }
                prev_row = Some(r);
                count += 1;
            }
        }
        assert_eq!(count, plan.nnz);
    }

    #[test]
    fn unstructured_high_density_stays_dense() {
        let dims = MatrixDims::linear(16, 16);
        let bits = random_mask(256, 0.6, 5);
        let plan = build_plan(&bits, dims);
        assert_eq!(plan.kind, PlanKind::Dense);
        assert!(plan.csr.is_none() && plan.csc.is_none());
    }

    #[test]
    fn nearly_full_structured_mask_stays_dense() {
        // 19 of 20 rows live and dense inside: area ratio 0.95 > 0.9.
        let dims = MatrixDims::linear(20, 4);
        let mut bits = BitMask::ones(80);
        for c in 0..4 {
            bits.set(c, false); // kill row 0 only
        }
        let plan = build_plan(&bits, dims);
        assert_eq!(plan.kind, PlanKind::Dense);
    }

    #[test]
    fn all_pruned_mask_uses_csr_with_empty_structure() {
        let dims = MatrixDims::linear(3, 5);
        let plan = build_plan(&BitMask::zeros(15), dims);
        assert_eq!(plan.kind, PlanKind::Csr);
        assert_eq!(plan.nnz, 0);
        assert!(plan.live_rows.is_empty());
        assert_eq!(plan.csr.as_ref().unwrap().col_idx.len(), 0);
        assert_eq!(plan.plan_flops(4), 0);
        assert_eq!(plan.flops_saved(4), plan.dense_flops(4));
    }

    #[test]
    fn empty_matrix_is_dense() {
        let plan = build_plan(&BitMask::zeros(0), MatrixDims::linear(0, 5));
        assert_eq!(plan.kind, PlanKind::Dense);
        assert_eq!(plan.density(), 1.0);
    }

    #[test]
    fn grouped_dims_degenerate_when_not_dividing() {
        let d = MatrixDims::grouped(3, 10, 4); // 4 does not divide 10
        assert_eq!(d.col_group, 1);
        assert_eq!(d.group_count(), 10);
        let d2 = MatrixDims::grouped(3, 12, 4);
        assert_eq!(d2.col_group, 4);
        assert_eq!(d2.group_count(), 3);
    }

    #[test]
    fn plan_kind_names_are_stable() {
        assert_eq!(PlanKind::Dense.name(), "dense");
        assert_eq!(PlanKind::Compact.name(), "compact");
        assert_eq!(PlanKind::Csr.name(), "csr");
    }
}
