//! **rt-sparse** — the sparsity-aware execution engine.
//!
//! A lottery ticket is a binary mask over pretrained weights. Up to this
//! crate, every masked model still ran at full dense FLOPs: masks were
//! stored as one `f32` per weight, multiplied into the weights, and the
//! only payoff was an incidental zero-skip branch inside the dense GEMM.
//! `rt-sparse` makes sparsity pay for real by *compiling* each mask into an
//! executable [`SparsePlan`], chosen per layer from the mask's realized
//! structure:
//!
//! * [`PlanKind::Compact`] — **structured compaction**. When the mask
//!   zeroes whole output rows and/or whole input-channel column groups,
//!   physically pack the weight matrix down to the live rows/groups, run
//!   the existing dense GEMM on the small matrices, and scatter results
//!   back to the dense layout.
//! * [`PlanKind::Csr`] — **sparse GEMM**. For unstructured masks below a
//!   density threshold, record the nonzero *structure* once per ticket
//!   (weight values are always read from the live dense buffer, so plans
//!   survive optimizer updates) and run row-parallel sparse kernels on the
//!   [`rt_par`] pool.
//! * [`PlanKind::Dense`] — masks too dense to pay for either transform
//!   fall back to the unchanged dense path.
//!
//! # Determinism: why the sparse paths are bit-identical
//!
//! Every kernel in [`kernels`] replays the *effective* float-operation
//! order of the dense reference kernels in `rt-tensor::linalg` exactly.
//! The masked-dense reference accumulates terms `a·b` in a fixed index
//! order, skipping terms where the tested operand is `0.0`; the sparse
//! kernels traverse the same indices ascending, restricted to the mask's
//! support. The two sequences differ only in terms whose product is `±0.0`
//! — and under round-to-nearest, an accumulator that starts at `+0.0` can
//! never become `-0.0` (exact cancellation of nonzeros yields `+0.0`, and
//! `+0.0 + ±0.0 = +0.0`), so adding or skipping a `±0.0` term is the
//! identity on the accumulator bits. Parallelism adds nothing on top: all
//! fan-out goes through [`rt_par`], whose chunk boundaries are a pure
//! function of the problem size, and each chunk replays the serial order
//! for the rows it owns.
//!
//! The crate is dependency-free apart from `rt-par`, so its tests run
//! standalone (`rustc --test`) even when the workspace's external
//! dependencies are unavailable.

pub mod bitset;
pub mod kernels;
pub mod plan;
#[doc(hidden)] // deprecated: superseded by `rt_tensor::pool`
pub mod scratch;

pub use bitset::BitMask;
pub use plan::{build_plan, Csr, MatrixDims, PlanKind, SparsePlan};
