//! Packed bitset storage for ticket masks.
//!
//! The legacy representation of a mask was one `f32` per weight — 32 bits
//! to store one bit. [`BitMask`] packs the same information into `u64`
//! words (a 32× memory reduction), while [`BitMask::to_f32_vec`] /
//! [`BitMask::write_f32_into`] materialize the legacy dense view on demand
//! for code that still multiplies masks elementwise.

/// A fixed-length packed bitset. Bit `i` lives in word `i / 64` at bit
/// position `i % 64`. Unused tail bits of the last word are always zero —
/// an invariant every constructor and mutator maintains, so whole-word
/// operations ([`BitMask::count_ones`], equality) need no tail masking.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitMask {
    words: Vec<u64>,
    len: usize,
}

impl BitMask {
    fn word_count(len: usize) -> usize {
        len.div_ceil(64)
    }

    /// An all-zeros mask of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitMask {
            words: vec![0u64; Self::word_count(len)],
            len,
        }
    }

    /// An all-ones mask of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut m = BitMask {
            words: vec![!0u64; Self::word_count(len)],
            len,
        };
        m.clear_tail();
        m
    }

    /// Builds a mask from a dense float slice: bit `i` is set iff
    /// `dense[i] != 0.0` (so both `+0.0` and `-0.0` mean "pruned").
    pub fn from_dense(dense: &[f32]) -> Self {
        let mut m = BitMask::zeros(dense.len());
        for (i, &v) in dense.iter().enumerate() {
            if v != 0.0 {
                m.words[i / 64] |= 1u64 << (i % 64);
            }
        }
        m
    }

    /// Builds a mask from raw words. Trailing bits beyond `len` are
    /// cleared; the word vector is resized to exactly fit `len`.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        words.resize(Self::word_count(len), 0);
        let mut m = BitMask { words, len };
        m.clear_tail();
        m
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        if self.len == 0 {
            self.words.clear();
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        if value {
            self.words[w] |= 1u64 << b;
        } else {
            self.words[w] &= !(1u64 << b);
        }
    }

    /// Number of set (live) bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of live bits (`1.0` for an empty mask — nothing is pruned).
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            1.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Whether every bit is set.
    pub fn all_ones(&self) -> bool {
        self.count_ones() == self.len
    }

    /// The backing words (tail bits beyond `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Materializes the legacy dense view: `1.0` for live, `0.0` for
    /// pruned.
    pub fn to_f32_vec(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len];
        self.write_f32_into(&mut out);
        out
    }

    /// Writes the dense `0.0/1.0` view into `dst` (which must have exactly
    /// `len` elements).
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() != self.len()`.
    pub fn write_f32_into(&self, dst: &mut [f32]) {
        assert_eq!(dst.len(), self.len, "dense view length mismatch");
        for (i, d) in dst.iter_mut().enumerate() {
            *d = if (self.words[i / 64] >> (i % 64)) & 1 == 1 {
                1.0
            } else {
                0.0
            };
        }
    }

    /// Zeroes every element of `data` whose bit is unset (assignment, not
    /// multiplication — multiplying by `0.0` can leave `-0.0` behind,
    /// which would break bit-level equivalence with the sparse kernels).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    pub fn zero_pruned(&self, data: &mut [f32]) {
        assert_eq!(data.len(), self.len, "zero_pruned length mismatch");
        for (wi, &word) in self.words.iter().enumerate() {
            if word == !0u64 {
                continue; // fully live word: nothing to clear
            }
            let base = wi * 64;
            let end = (base + 64).min(self.len);
            for (b, d) in data[base..end].iter_mut().enumerate() {
                if (word >> b) & 1 == 0 {
                    *d = 0.0;
                }
            }
        }
    }

    /// Intersects with `other` (`self &= other`).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn intersect(&mut self, other: &BitMask) {
        assert_eq!(self.len, other.len, "intersect length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Whether every live bit of `self` is also live in `other` (i.e.
    /// `self ⊆ other` as supports — the IMP nesting property).
    pub fn is_subset_of(&self, other: &BitMask) -> bool {
        self.len == other.len
            && self
                .words
                .iter()
                .zip(&other.words)
                .all(|(a, b)| a & !b == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_dense_view() {
        let dense = vec![1.0, 0.0, -2.5, 0.0, 0.0, 3.0, -0.0];
        let m = BitMask::from_dense(&dense);
        assert_eq!(m.len(), 7);
        assert_eq!(m.count_ones(), 3);
        assert!((m.density() - 3.0 / 7.0).abs() < 1e-12);
        assert_eq!(m.to_f32_vec(), vec![1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0]);
        assert!(m.get(0) && !m.get(1) && m.get(2) && !m.get(6));
    }

    #[test]
    fn negative_zero_counts_as_pruned() {
        let m = BitMask::from_dense(&[-0.0, 0.0, 1.0]);
        assert_eq!(m.count_ones(), 1);
        assert!(!m.get(0));
    }

    #[test]
    fn ones_and_zeros_constructors() {
        let ones = BitMask::ones(130);
        assert_eq!(ones.count_ones(), 130);
        assert!(ones.all_ones());
        assert_eq!(ones.words().len(), 3);
        // Tail bits beyond len stay clear.
        assert_eq!(ones.words()[2], 0b11);
        let zeros = BitMask::zeros(130);
        assert_eq!(zeros.count_ones(), 0);
        assert!(!zeros.all_ones());
    }

    #[test]
    fn set_and_get_across_word_boundary() {
        let mut m = BitMask::zeros(100);
        m.set(63, true);
        m.set(64, true);
        m.set(99, true);
        assert_eq!(m.count_ones(), 3);
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), vec![63, 64, 99]);
        m.set(64, false);
        assert_eq!(m.count_ones(), 2);
    }

    #[test]
    fn from_words_clears_tail_and_resizes() {
        let m = BitMask::from_words(vec![!0u64, !0u64], 70);
        assert_eq!(m.count_ones(), 70);
        assert_eq!(m.words()[1], 0b11_1111);
        // Oversized word vectors are trimmed.
        let m2 = BitMask::from_words(vec![1, 2, 3, 4], 64);
        assert_eq!(m2.words().len(), 1);
        // Undersized are zero-extended.
        let m3 = BitMask::from_words(vec![1], 200);
        assert_eq!(m3.words().len(), 4);
        assert_eq!(m3.count_ones(), 1);
    }

    #[test]
    fn empty_mask_is_consistent() {
        let m = BitMask::from_dense(&[]);
        assert!(m.is_empty());
        assert_eq!(m.density(), 1.0);
        assert_eq!(m.iter_ones().count(), 0);
        assert!(m.to_f32_vec().is_empty());
    }

    #[test]
    fn zero_pruned_assigns_positive_zero() {
        let m = BitMask::from_dense(&[1.0, 0.0, 1.0, 0.0]);
        let mut data = vec![5.0, -3.0, -0.5, 7.0];
        m.zero_pruned(&mut data);
        assert_eq!(data, vec![5.0, 0.0, -0.5, 0.0]);
        // Assignment semantics: the result is +0.0, never -0.0.
        assert!(data[1].to_bits() == 0 && data[3].to_bits() == 0);
        // A fully-live word is untouched (fast path).
        let full = BitMask::ones(64);
        let mut d = vec![-1.5f32; 64];
        full.zero_pruned(&mut d);
        assert!(d.iter().all(|&v| v == -1.5));
    }

    #[test]
    fn subset_and_intersect() {
        let outer = BitMask::from_dense(&[1.0, 1.0, 1.0, 0.0]);
        let inner = BitMask::from_dense(&[1.0, 0.0, 1.0, 0.0]);
        assert!(inner.is_subset_of(&outer));
        assert!(!outer.is_subset_of(&inner));
        let mut both = outer.clone();
        both.intersect(&inner);
        assert_eq!(both, inner);
    }

    #[test]
    fn iter_ones_matches_get() {
        let dense: Vec<f32> = (0..257).map(|i| ((i * 7) % 3 == 0) as u32 as f32).collect();
        let m = BitMask::from_dense(&dense);
        let from_iter: Vec<usize> = m.iter_ones().collect();
        let from_get: Vec<usize> = (0..m.len()).filter(|&i| m.get(i)).collect();
        assert_eq!(from_iter, from_get);
    }
}
