//! Property-based equivalence tests for the sparse execution engine.
//!
//! The contract under test: with identical weights, masks, and inputs, the
//! compiled sparse plans (compact GEMM, CSR, sparse optimizer fast path)
//! produce **bit-identical** floats to the legacy masked-dense path —
//! forward, backward, and optimizer step — at every granularity and
//! density. `ci.sh` runs this binary under both `RT_THREADS=1` and
//! `RT_THREADS=4`, so the identity is also checked across thread counts.

use proptest::prelude::*;
use rt_models::{MicroResNet, ResNetConfig};
use rt_nn::checkpoint::StateDict;
use rt_nn::loss::CrossEntropyLoss;
use rt_nn::optim::Sgd;
use rt_nn::{ExecCtx, Layer};
use rt_prune::{imp, omp, Granularity, ImpConfig, OmpConfig, TicketMask};
use rt_tensor::rng::rng_from_seed;
use rt_tensor::{init, Tensor};

fn model(seed: u64) -> MicroResNet {
    MicroResNet::new(&ResNetConfig::smoke(3), &mut rng_from_seed(seed)).expect("model")
}

/// Strips every compiled plan so the model runs the legacy masked-dense
/// path even where plans would exist.
fn clear_plans(m: &mut dyn Layer) {
    for p in m.params_mut() {
        p.plan = None;
    }
}

/// Reinterprets floats as bit patterns: equality below is exact, not
/// approximate — `-0.0 != +0.0`, NaN payloads matter.
fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|f| f.to_bits()).collect()
}

/// Runs one train step (forward, CE loss, backward, SGD step) and returns
/// the logits.
fn train_step(
    m: &mut MicroResNet,
    x: &Tensor,
    labels: &[usize],
    ctx: ExecCtx,
    opt: &Sgd,
) -> Tensor {
    let logits = m.forward(x, ctx).expect("forward");
    let out = CrossEntropyLoss::new()
        .forward(&logits, labels)
        .expect("loss");
    m.backward(&out.grad, ctx).expect("backward");
    opt.step(m).expect("step");
    logits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sparse execution is bit-identical to masked-dense across the full
    /// grid of mask granularities and densities, through two complete
    /// train steps (forward + backward + momentum SGD).
    #[test]
    fn sparse_execution_is_bit_identical(
        gran_idx in 0usize..4,
        density in prop::sample::select(vec![0.05f64, 0.2, 0.5, 1.0]),
        seed in 0u64..8,
    ) {
        let gran = [
            Granularity::Element,
            Granularity::Row,
            Granularity::Kernel,
            Granularity::Channel,
        ][gran_idx];
        let sparsity = 1.0 - density;
        let mut sparse = model(seed);
        let mut dense = model(seed);
        let cfg = if gran == Granularity::Element {
            OmpConfig::unstructured(sparsity)
        } else {
            OmpConfig::structured(sparsity, gran)
        };
        let ticket = omp(&sparse, &cfg).expect("omp");
        ticket.apply(&mut sparse).expect("apply sparse");
        ticket.apply(&mut dense).expect("apply dense");
        // The dense twin runs the legacy path end to end: no plans for the
        // kernels, no sparse fast path in the optimizer.
        clear_plans(&mut dense);

        let x = init::normal(&[4, 3, 8, 8], 0.0, 1.0, &mut rng_from_seed(seed ^ 0x5eed));
        let labels = [0usize, 1, 2, 0];
        let opt_s = Sgd::new(0.05).with_momentum(0.9).with_weight_decay(1e-4);
        let opt_d = Sgd::new(0.05).with_momentum(0.9).with_weight_decay(1e-4);
        for step in 0..2 {
            let ys = train_step(&mut sparse, &x, &labels, ExecCtx::train().with_sparse(true), &opt_s);
            let yd = train_step(&mut dense, &x, &labels, ExecCtx::train().with_sparse(false), &opt_d);
            prop_assert_eq!(bits(ys.data()), bits(yd.data()), "logits diverged at step {}", step);
        }
        for (ps, pd) in sparse.params().iter().zip(dense.params()) {
            prop_assert_eq!(bits(ps.data.data()), bits(pd.data.data()), "weights diverged: {}", &ps.name);
            prop_assert_eq!(bits(ps.velocity.data()), bits(pd.velocity.data()), "velocity diverged: {}", &ps.name);
        }
        // Eval-mode forward after training agrees too.
        let ys = sparse.forward(&x, ExecCtx::eval().with_sparse(true)).expect("eval");
        let yd = dense.forward(&x, ExecCtx::eval().with_sparse(false)).expect("eval");
        prop_assert_eq!(bits(ys.data()), bits(yd.data()));
    }
}

/// A full (miniature) A-IMP pipeline — iterative prune → rewind → retrain —
/// yields the exact same ticket and final weights whether every round
/// executes through sparse plans or the legacy masked-dense path.
#[test]
fn imp_pipeline_is_bit_identical_under_sparse_execution() {
    fn run(sparse_exec: bool) -> (TicketMask, MicroResNet) {
        let mut m = model(5);
        let pre = StateDict::capture(&m);
        let cfg = ImpConfig::paper(0.6, 2);
        let opt = Sgd::new(0.05).with_momentum(0.9);
        let ticket = imp(&mut m, &pre, &cfg, |net, round| {
            if !sparse_exec {
                clear_plans(net);
            }
            let ctx = ExecCtx::train().with_sparse(sparse_exec);
            let x = init::normal(&[4, 3, 8, 8], 0.0, 1.0, &mut rng_from_seed(100 + round as u64));
            let logits = net.forward(&x, ctx)?;
            let out = CrossEntropyLoss::new().forward(&logits, &[0, 1, 2, 0])?;
            net.backward(&out.grad, ctx)?;
            opt.step(net)
        })
        .expect("imp");
        (ticket, m)
    }
    let (ticket_s, model_s) = run(true);
    let (ticket_d, model_d) = run(false);
    assert_eq!(ticket_s, ticket_d, "tickets diverged");
    assert!(ticket_s.sparsity() > 0.5);
    for (ps, pd) in model_s.params().iter().zip(model_d.params()) {
        assert_eq!(
            bits(ps.data.data()),
            bits(pd.data.data()),
            "weights diverged: {}",
            ps.name
        );
    }
}
