//! Property-based tests for the pruning invariants the paper's pipelines
//! depend on.

use proptest::prelude::*;
use rt_models::{MicroResNet, ResNetConfig};
use rt_nn::Layer;
use rt_prune::{omp, Granularity, OmpConfig, PruneScope, TicketMask};
use rt_tensor::rng::rng_from_seed;

fn model(seed: u64) -> MicroResNet {
    MicroResNet::new(&ResNetConfig::smoke(3), &mut rng_from_seed(seed)).expect("model")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// OMP hits any requested sparsity within one group of tolerance.
    #[test]
    fn omp_sparsity_is_accurate(sparsity in 0.05f64..0.97, seed in 0u64..50) {
        let m = model(seed);
        let ticket = omp(&m, &OmpConfig::unstructured(sparsity)).expect("omp");
        prop_assert!((ticket.sparsity() - sparsity).abs() < 0.03,
            "target {} got {}", sparsity, ticket.sparsity());
    }

    /// Higher sparsity targets produce masks that are subsets: every weight
    /// pruned at s1 is also pruned at s2 >= s1 (magnitude ranking is a
    /// total order, so thresholds nest).
    #[test]
    fn omp_masks_nest_with_sparsity(lo in 0.1f64..0.5, extra in 0.05f64..0.45, seed in 0u64..20) {
        let hi = (lo + extra).min(0.98);
        let m = model(seed);
        let t_lo = omp(&m, &OmpConfig::unstructured(lo)).expect("omp");
        let t_hi = omp(&m, &OmpConfig::unstructured(hi)).expect("omp");
        for (a, b) in t_lo.masks().iter().zip(t_hi.masks()) {
            if let (Some(ma), Some(mb)) = (a, b) {
                prop_assert!(mb.is_subset_of(ma),
                    "weight pruned at {} resurrected at {}", lo, hi);
            }
        }
    }

    /// Structured masks never split a group, at any granularity/sparsity.
    #[test]
    fn structured_groups_are_atomic(
        sparsity in 0.1f64..0.9,
        gran_idx in 0usize..3,
        seed in 0u64..20,
    ) {
        let gran = Granularity::structured()[gran_idx];
        let m = model(seed);
        let ticket = omp(&m, &OmpConfig::structured(sparsity, gran)).expect("omp");
        for (mask, p) in ticket.masks().iter().zip(m.params()) {
            let Some(mask) = mask else { continue };
            let mask = mask.to_tensor();
            let glen = gran.group_len(p.data.shape());
            for group in mask.data().chunks(glen) {
                let sum: f32 = group.iter().sum();
                prop_assert!(sum == 0.0 || sum == glen as f32);
            }
        }
    }

    /// Applying then capturing a ticket is the identity.
    #[test]
    fn apply_capture_round_trip(sparsity in 0.1f64..0.9, seed in 0u64..20) {
        let mut m = model(seed);
        let ticket = omp(&m, &OmpConfig::unstructured(sparsity)).expect("omp");
        ticket.apply(&mut m).expect("apply");
        let captured = TicketMask::capture(&m);
        prop_assert_eq!(captured, ticket);
    }

    /// Layer-wise OMP leaves every prunable layer within tolerance of the
    /// target.
    #[test]
    fn layerwise_omp_is_uniform(sparsity in 0.2f64..0.9, seed in 0u64..20) {
        let m = model(seed);
        let ticket = omp(
            &m,
            &OmpConfig::unstructured(sparsity).with_layerwise(true),
        ).expect("omp");
        let scope = PruneScope::backbone();
        for (mask, p) in ticket.masks().iter().zip(m.params()) {
            if !scope.is_prunable(p) { continue; }
            let Some(mask) = mask else { continue };
            let s = mask.count_zeros() as f64 / mask.len() as f64;
            // Tolerance: one group quantization step per layer.
            prop_assert!((s - sparsity).abs() < 0.6 / (mask.len() as f64).sqrt() + 0.02,
                "{}: {} vs {}", p.name, s, sparsity);
        }
    }

    /// The pruned model's forward pass stays finite at any sparsity.
    #[test]
    fn pruned_forward_is_finite(sparsity in 0.0f64..0.99, seed in 0u64..10) {
        use rt_nn::ExecCtx;
        use rt_tensor::Tensor;
        let mut m = model(seed);
        let ticket = omp(&m, &OmpConfig::unstructured(sparsity)).expect("omp");
        ticket.apply(&mut m).expect("apply");
        let y = m.forward(&Tensor::ones(&[2, 3, 8, 8]), ExecCtx::eval()).expect("forward");
        prop_assert!(y.all_finite());
    }
}
