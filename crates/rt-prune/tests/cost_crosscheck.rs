//! Cross-check of the two FLOP accountants: the live cost registry
//! (`rt-obs::cost`, fed by every Linear/Conv2d execution) against the
//! static plan inspector (`rt_prune::stats::sparse_exec_report`).
//!
//! Both derive from the same integer cost model, so the comparison is
//! **exact** — no tolerances:
//!
//! * recorded `flops · report.dense_flops == recorded dense_flops ·
//!   report.plan_flops` (the sparse/dense ratio is identical), and
//! * recorded `dense_flops` is a whole multiple of the report's per-unit
//!   `dense_flops`, with `flops == multiple · report.plan_flops`.
//!
//! Checked with sparse execution on (compiled plans run) and off (masked
//! dense kernels, where recorded flops must equal recorded dense_flops).

use rt_models::{MicroResNet, ResNetConfig};
use rt_nn::loss::CrossEntropyLoss;
use rt_nn::{ExecCtx, Layer};
use rt_obs::Level;
use rt_prune::stats::sparse_exec_report;
use rt_prune::{omp, Granularity, OmpConfig, PruneScope};
use rt_tensor::rng::rng_from_seed;
use rt_tensor::init;

fn checked_model() -> MicroResNet {
    let mut model =
        MicroResNet::new(&ResNetConfig::smoke(2), &mut rng_from_seed(5)).expect("model");
    let ticket = omp(&model, &OmpConfig::structured(0.5, Granularity::Channel)).expect("omp");
    ticket.apply(&mut model).expect("apply");
    model
}

fn check(sparse: bool) {
    let mut model = checked_model();
    // `all_weights` covers exactly the GEMM-shaped params the executor
    // records costs for (the OMP ticket itself still has backbone scope,
    // so the head's report entry is dense — also worth cross-checking).
    let report = sparse_exec_report(&model, &PruneScope::all_weights());
    assert!(!report.is_empty(), "smoke model has prunable layers");

    let _handle = rt_obs::init_memory(Level::All);
    let x = init::normal(&[4, 3, 8, 8], 0.0, 1.0, &mut rng_from_seed(11));
    let ctx = if sparse {
        ExecCtx::eval().with_sparse(true)
    } else {
        ExecCtx::eval().with_sparse(false)
    };
    let logits = model.forward(&x, ctx).expect("forward");
    let out = CrossEntropyLoss::new()
        .forward(&logits, &[0, 1, 0, 1])
        .expect("loss");
    model.backward(&out.grad, ctx).expect("backward");
    let snap = rt_obs::snapshot();
    rt_obs::finalize();

    let mut total_flops = 0u64;
    let mut total_bytes = 0u64;
    for rep in &report {
        let cost = snap
            .costs
            .iter()
            .find(|c| c.name == rep.name)
            .unwrap_or_else(|| panic!("no cost recorded for layer {}", rep.name));
        total_flops += cost.flops;
        total_bytes += cost.bytes;
        assert!(cost.bytes > 0, "{}: bytes recorded", rep.name);

        if sparse {
            // Same integer cost model on both sides: the sparse/dense
            // ratios must agree exactly (cross-multiplied to stay in u64).
            assert_eq!(
                cost.flops as u128 * rep.dense_flops as u128,
                cost.dense_flops as u128 * rep.plan_flops as u128,
                "{}: registry flops ratio != report ratio",
                rep.name
            );
            // The recorded totals are per-unit report numbers scaled by
            // (units summed over forward + backward passes).
            assert_eq!(
                cost.dense_flops % rep.dense_flops,
                0,
                "{}: dense flops are a whole multiple of the per-unit count",
                rep.name
            );
            let unit_passes = cost.dense_flops / rep.dense_flops;
            assert!(unit_passes > 0, "{}: layer actually executed", rep.name);
            assert_eq!(
                cost.flops,
                unit_passes * rep.plan_flops,
                "{}: exact per-unit plan flops",
                rep.name
            );
        } else {
            // Masked-dense execution does the full dense work.
            assert_eq!(
                cost.flops, cost.dense_flops,
                "{}: dense path records dense flops",
                rep.name
            );
            assert_eq!(cost.dense_flops % rep.dense_flops, 0, "{}", rep.name);
        }
    }

    // The model-wide counters are the same sums the trace attrs use.
    assert_eq!(snap.counters.get("model.flops"), Some(&total_flops));
    assert_eq!(snap.counters.get("model.bytes"), Some(&total_bytes));
}

#[test]
fn cost_registry_matches_sparse_exec_report_with_plans() {
    let _t = rt_obs::testing::lock();
    check(true);
}

#[test]
fn cost_registry_matches_sparse_exec_report_masked_dense() {
    let _t = rt_obs::testing::lock();
    check(false);
}
