//! Iterative magnitude pruning (IMP) — scheme ② of the paper.
//!
//! The driver alternates *train → prune → rewind* rounds. The training
//! objective is supplied as a closure, which is exactly how the paper's
//! A-IMP differs from vanilla IMP: A-IMP's closure minimizes the
//! adversarial minimax loss of Eq. 1 while IMP's minimizes the natural
//! loss. `rt-transfer` provides both closures; this module owns the
//! schedule, the rewinding, and the mask bookkeeping.

use crate::mask::{PruneScope, TicketMask};
use crate::omp::{omp, OmpConfig};
use crate::{Granularity, Result};
use rt_nn::checkpoint::StateDict;
use rt_nn::{ExecCtx, Layer, NnError};
use serde::{Deserialize, Serialize};

/// Configuration of an IMP run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImpConfig {
    /// Final fraction of prunable weights removed, in `[0, 1)`.
    pub final_sparsity: f64,
    /// Number of train→prune→rewind rounds.
    pub rounds: usize,
    /// Pruning granularity (IMP in the paper is unstructured).
    pub granularity: Granularity,
    /// Which parameters may be pruned.
    pub scope: PruneScope,
    /// Rewind the weights to the pretrained snapshot after each pruning
    /// step (the paper's protocol, following Chen et al. \[2\]). `false` keeps
    /// training from the current weights — the `imp_rewind` ablation.
    pub rewind: bool,
    /// Explicit per-round sparsity targets overriding the geometric
    /// schedule. Must be non-decreasing; its length overrides `rounds`.
    /// Used to reproduce the paper's exact Table I grid
    /// (20% of remaining per round: 20.00 / 59.04 / 79.08 / 89.26 %).
    pub explicit_schedule: Option<Vec<f64>>,
}

impl ImpConfig {
    /// The paper's protocol: unstructured, geometric schedule over
    /// `rounds` rounds, rewinding to pretrained weights.
    pub fn paper(final_sparsity: f64, rounds: usize) -> Self {
        ImpConfig {
            final_sparsity,
            rounds,
            granularity: Granularity::Element,
            scope: PruneScope::backbone(),
            rewind: true,
            explicit_schedule: None,
        }
    }

    /// An IMP run following an explicit sparsity-per-round schedule.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty, non-monotone, or out of `[0, 1)`.
    pub fn with_schedule(schedule: Vec<f64>) -> Self {
        assert!(!schedule.is_empty(), "schedule must be non-empty");
        assert!(
            schedule.windows(2).all(|w| w[0] <= w[1]),
            "schedule must be non-decreasing"
        );
        assert!(
            schedule.iter().all(|&s| (0.0..1.0).contains(&s)),
            "schedule entries must be in [0, 1)"
        );
        ImpConfig {
            final_sparsity: *schedule.last().expect("non-empty"),
            rounds: schedule.len(),
            granularity: Granularity::Element,
            scope: PruneScope::backbone(),
            rewind: true,
            explicit_schedule: Some(schedule),
        }
    }

    /// Returns a copy with rewinding enabled or disabled.
    pub fn with_rewind(mut self, rewind: bool) -> Self {
        self.rewind = rewind;
        self
    }

    /// Sparsity target after round `r` (0-based): a geometric schedule that
    /// prunes a constant *fraction of the remaining* weights each round and
    /// lands exactly on `final_sparsity` after the last round.
    pub fn sparsity_at_round(&self, round: usize) -> f64 {
        if let Some(schedule) = &self.explicit_schedule {
            return schedule[round.min(schedule.len() - 1)];
        }
        let t = (round + 1).min(self.rounds) as f64 / self.rounds as f64;
        1.0 - (1.0 - self.final_sparsity).powf(t)
    }
}

/// Runs IMP/A-IMP, returning the final ticket. On return, `model` holds the
/// pretrained weights (if `rewind`) with the final mask applied — i.e. the
/// ticket subnetwork `m ⊙ θ_pre`, ready for downstream finetuning.
///
/// `train_round(model, round)` must train the (masked) model for one
/// round's budget under the desired objective; pruned weights stay pruned
/// because the optimizer in `rt-nn` re-applies masks after every step.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for a zero round count or an
/// out-of-range sparsity; propagates training-closure errors.
pub fn imp<F>(
    model: &mut dyn Layer,
    pretrained: &StateDict,
    config: &ImpConfig,
    train_round: F,
) -> Result<TicketMask>
where
    F: FnMut(&mut dyn Layer, usize) -> Result<()>,
{
    imp_with_observer(model, pretrained, config, train_round, |_, _| {})
}

/// [`imp`] with a per-round observer: after each pruning step (and rewind,
/// if enabled) the observer receives the round index and the ticket at that
/// round's sparsity. One IMP run thus yields the whole accuracy-vs-sparsity
/// trajectory the paper's Fig. 4 plots.
///
/// # Errors
///
/// Same conditions as [`imp`].
pub fn imp_with_observer<F, O>(
    model: &mut dyn Layer,
    pretrained: &StateDict,
    config: &ImpConfig,
    mut train_round: F,
    mut observer: O,
) -> Result<TicketMask>
where
    F: FnMut(&mut dyn Layer, usize) -> Result<()>,
    O: FnMut(usize, &TicketMask),
{
    if config.rounds == 0 {
        return Err(NnError::InvalidConfig {
            detail: "IMP needs at least one round".to_string(),
        });
    }
    if !(0.0..1.0).contains(&config.final_sparsity) {
        return Err(NnError::InvalidConfig {
            detail: format!(
                "final sparsity must be in [0, 1), got {}",
                config.final_sparsity
            ),
        });
    }
    let mut ticket = TicketMask::dense(model);
    for round in 0..config.rounds {
        let _round_span = rt_obs::span!(
            "imp.round",
            "round" => round,
            "target_sparsity" => config.sparsity_at_round(round),
        );
        ticket.apply(model)?;
        train_round(model, round)?;
        // Rank the *trained* weights; pruned positions are exactly zero and
        // therefore rank lowest, so sparsity only ever grows (masks nest).
        let omp_config = OmpConfig {
            sparsity: config.sparsity_at_round(round),
            granularity: config.granularity,
            scope: config.scope,
            layerwise: false,
        };
        ticket = omp(model, &omp_config)?;
        if config.rewind {
            pretrained.restore(model)?;
        }
        observer(round, &ticket);
    }
    ticket.apply(model)?;
    Ok(ticket)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_models::{MicroResNet, ResNetConfig};
    use rt_nn::loss::CrossEntropyLoss;
    use rt_nn::optim::Sgd;
    use rt_nn::ExecCtx;
    use rt_tensor::rng::rng_from_seed;
    use rt_tensor::{init, Tensor};

    fn model() -> MicroResNet {
        MicroResNet::new(&ResNetConfig::smoke(2), &mut rng_from_seed(0)).unwrap()
    }

    #[test]
    fn geometric_schedule_endpoints() {
        let cfg = ImpConfig::paper(0.8, 4);
        assert!(cfg.sparsity_at_round(0) > 0.0);
        assert!((cfg.sparsity_at_round(3) - 0.8).abs() < 1e-9);
        // Monotone increasing.
        for r in 0..3 {
            assert!(cfg.sparsity_at_round(r) < cfg.sparsity_at_round(r + 1));
        }
        // Constant remaining-fraction per round: (1-s_{r+1})/(1-s_r) const.
        let ratio0 = (1.0 - cfg.sparsity_at_round(1)) / (1.0 - cfg.sparsity_at_round(0));
        let ratio1 = (1.0 - cfg.sparsity_at_round(2)) / (1.0 - cfg.sparsity_at_round(1));
        assert!((ratio0 - ratio1).abs() < 1e-9);
    }

    #[test]
    fn imp_reaches_target_and_rewinds() {
        let mut m = model();
        let pretrained = StateDict::capture(&m);
        let cfg = ImpConfig::paper(0.75, 3);
        let mut rounds_seen = Vec::new();
        let ticket = imp(&mut m, &pretrained, &cfg, |net, round| {
            rounds_seen.push(round);
            // A fake "training" that perturbs weights (so ranking changes).
            for p in net.params_mut() {
                let noise =
                    init::normal(p.data.shape(), 0.0, 0.01, &mut rng_from_seed(round as u64));
                p.data.add_assign(&noise)?;
                p.apply_mask();
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(rounds_seen, vec![0, 1, 2]);
        assert!((ticket.sparsity() - 0.75).abs() < 0.03);
        // Model is rewound: unmasked weights equal the pretrained snapshot.
        let snap_now = StateDict::capture(&m);
        for ((now, pre), p) in snap_now
            .params
            .iter()
            .zip(&pretrained.params)
            .zip(m.params())
        {
            match &p.mask {
                None => assert_eq!(now.tensor, pre.tensor, "{}", p.name),
                Some(mask) => {
                    for ((&w_now, &w_pre), &keep) in now
                        .tensor
                        .data()
                        .iter()
                        .zip(pre.tensor.data())
                        .zip(mask.data())
                    {
                        if keep > 0.0 {
                            assert_eq!(w_now, w_pre);
                        } else {
                            assert_eq!(w_now, 0.0);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn masks_nest_across_rounds() {
        // Once pruned, a weight must stay pruned in later rounds.
        let mut m = model();
        let pretrained = StateDict::capture(&m);
        let cfg = ImpConfig::paper(0.6, 3);
        let mut prev_mask: Option<TicketMask> = None;
        imp(&mut m, &pretrained, &cfg, |net, _round| {
            if let Some(prev) = &prev_mask {
                let current = TicketMask::capture(net);
                for (cur, old) in current.masks().iter().zip(prev.masks()) {
                    if let (Some(c), Some(o)) = (cur, old) {
                        assert!(c.is_subset_of(o), "a pruned weight was resurrected");
                    }
                }
            }
            prev_mask = Some(TicketMask::capture(net));
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn no_rewind_keeps_trained_weights() {
        let mut m = model();
        let pretrained = StateDict::capture(&m);
        let cfg = ImpConfig::paper(0.5, 2).with_rewind(false);
        imp(&mut m, &pretrained, &cfg, |net, _| {
            for p in net.params_mut() {
                p.data.map_inplace(|w| w + 0.1);
                p.apply_mask();
            }
            Ok(())
        })
        .unwrap();
        // Some weight must differ from the pretrained value by ~0.2 (two
        // rounds of +0.1) where unmasked.
        let snap = StateDict::capture(&m);
        let moved = snap.params.iter().zip(&pretrained.params).any(|(a, b)| {
            a.tensor
                .data()
                .iter()
                .zip(b.tensor.data())
                .any(|(&x, &y)| (x - y).abs() > 0.15)
        });
        assert!(moved, "weights should not be rewound");
    }

    #[test]
    fn real_training_closure_works_end_to_end() {
        // Tiny but real IMP: train on a 2-class toy task each round.
        let mut m = model();
        let pretrained = StateDict::capture(&m);
        let x = Tensor::from_fn(&[8, 3, 8, 8], |i| if i % 7 == 0 { 1.0 } else { -0.3 });
        let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
        let cfg = ImpConfig::paper(0.7, 2);
        let ticket = imp(&mut m, &pretrained, &cfg, |net, _| {
            let loss_fn = CrossEntropyLoss::new();
            let opt = Sgd::new(0.05).with_momentum(0.9);
            for _ in 0..3 {
                let ctx = ExecCtx::train();
                let logits = net.forward(&x, ctx)?;
                let out = loss_fn.forward(&logits, &labels)?;
                net.backward(&out.grad, ctx)?;
                opt.step(net)?;
            }
            Ok(())
        })
        .unwrap();
        assert!((ticket.sparsity() - 0.7).abs() < 0.03);
        // The pruned, rewound model still runs.
        let y = m.forward(&x, ExecCtx::eval()).unwrap();
        assert!(y.all_finite());
    }

    #[test]
    fn observer_sees_every_round_at_schedule_sparsity() {
        let mut m = model();
        let pretrained = StateDict::capture(&m);
        let schedule = vec![0.2, 0.5904, 0.7908, 0.8926];
        let cfg = ImpConfig::with_schedule(schedule.clone());
        let mut seen = Vec::new();
        imp_with_observer(
            &mut m,
            &pretrained,
            &cfg,
            |_, _| Ok(()),
            |round, ticket| seen.push((round, ticket.sparsity())),
        )
        .unwrap();
        assert_eq!(seen.len(), 4);
        for ((round, got), want) in seen.iter().zip(&schedule) {
            assert_eq!(*round, seen[*round].0);
            assert!((got - want).abs() < 0.02, "round {round}: {got} vs {want}");
        }
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn unsorted_explicit_schedule_panics() {
        let _ = ImpConfig::with_schedule(vec![0.5, 0.2]);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut m = model();
        let pre = StateDict::capture(&m);
        let zero_rounds = ImpConfig::paper(0.5, 0);
        assert!(imp(&mut m, &pre, &zero_rounds, |_, _| Ok(())).is_err());
        let bad_sparsity = ImpConfig::paper(1.0, 2);
        assert!(imp(&mut m, &pre, &bad_sparsity, |_, _| Ok(())).is_err());
    }
}
