//! Sparsity accounting and reporting.

use crate::mask::PruneScope;
use rt_nn::Layer;
use serde::{Deserialize, Serialize};

/// Per-parameter sparsity record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSparsity {
    /// Parameter name.
    pub name: String,
    /// Fraction of weights pruned.
    pub sparsity: f64,
    /// Weights kept.
    pub active: usize,
    /// Total weights.
    pub total: usize,
}

/// Overall sparsity of the prunable weights of `model` (masked zeros over
/// total prunable weights). Dense parameters count as fully active.
pub fn model_sparsity(model: &dyn Layer, scope: &PruneScope) -> f64 {
    let (mut active, mut total) = (0usize, 0usize);
    for p in model.params() {
        if !scope.is_prunable(p) {
            continue;
        }
        active += p.active_count();
        total += p.len();
    }
    if total == 0 {
        0.0
    } else {
        1.0 - active as f64 / total as f64
    }
}

/// Detailed per-parameter sparsity breakdown of the prunable weights.
pub fn layer_sparsity_report(model: &dyn Layer, scope: &PruneScope) -> Vec<LayerSparsity> {
    model
        .params()
        .iter()
        .filter(|p| scope.is_prunable(p))
        .map(|p| LayerSparsity {
            name: p.name.clone(),
            sparsity: p.sparsity(),
            active: p.active_count(),
            total: p.len(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::omp::{omp, OmpConfig};
    use rt_models::{MicroResNet, ResNetConfig};
    use rt_tensor::rng::rng_from_seed;

    #[test]
    fn dense_model_has_zero_sparsity() {
        let m = MicroResNet::new(&ResNetConfig::smoke(2), &mut rng_from_seed(0)).unwrap();
        assert_eq!(model_sparsity(&m, &PruneScope::backbone()), 0.0);
        let report = layer_sparsity_report(&m, &PruneScope::backbone());
        assert!(!report.is_empty());
        assert!(report
            .iter()
            .all(|l| l.sparsity == 0.0 && l.active == l.total));
    }

    #[test]
    fn sparsity_tracks_applied_ticket() {
        let mut m = MicroResNet::new(&ResNetConfig::smoke(2), &mut rng_from_seed(1)).unwrap();
        let ticket = omp(&m, &OmpConfig::unstructured(0.6)).unwrap();
        ticket.apply(&mut m).unwrap();
        let s = model_sparsity(&m, &PruneScope::backbone());
        assert!((s - 0.6).abs() < 0.02, "{s}");
        let report = layer_sparsity_report(&m, &PruneScope::backbone());
        let total: usize = report.iter().map(|l| l.total).sum();
        let active: usize = report.iter().map(|l| l.active).sum();
        assert!(((1.0 - active as f64 / total as f64) - s).abs() < 1e-12);
    }
}
