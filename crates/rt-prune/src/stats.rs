//! Sparsity accounting and reporting.
//!
//! Besides the classic sparsity counts, this module reports how each
//! parameter's mask will actually *execute*: the compiled
//! [`rt_sparse::SparsePlan`] kind, the detected structural granularity of
//! the mask, and the theoretical FLOP reduction the plan realizes.

use crate::mask::PruneScope;
use rt_nn::Layer;
use rt_sparse::{BitMask, SparsePlan};
use serde::{Deserialize, Serialize};

/// Per-parameter sparsity record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSparsity {
    /// Parameter name.
    pub name: String,
    /// Fraction of weights pruned.
    pub sparsity: f64,
    /// Weights kept.
    pub active: usize,
    /// Total weights.
    pub total: usize,
}

/// Overall sparsity of the prunable weights of `model` (masked zeros over
/// total prunable weights). Dense parameters count as fully active.
pub fn model_sparsity(model: &dyn Layer, scope: &PruneScope) -> f64 {
    let (mut active, mut total) = (0usize, 0usize);
    for p in model.params() {
        if !scope.is_prunable(p) {
            continue;
        }
        active += p.active_count();
        total += p.len();
    }
    if total == 0 {
        0.0
    } else {
        1.0 - active as f64 / total as f64
    }
}

/// Detailed per-parameter sparsity breakdown of the prunable weights.
pub fn layer_sparsity_report(model: &dyn Layer, scope: &PruneScope) -> Vec<LayerSparsity> {
    model
        .params()
        .iter()
        .filter(|p| scope.is_prunable(p))
        .map(|p| LayerSparsity {
            name: p.name.clone(),
            sparsity: p.sparsity(),
            active: p.active_count(),
            total: p.len(),
        })
        .collect()
}

/// Per-parameter sparse-execution record: how the compiled plan will run
/// this parameter's kernels and what it saves over the dense path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerExecStats {
    /// Parameter name.
    pub name: String,
    /// Fraction of weights kept (`1.0` when unmasked).
    pub density: f64,
    /// Compiled plan kind: `"dense"`, `"compact"`, or `"csr"`.
    pub plan_kind: String,
    /// Detected mask structure, coarsest that fits: `"dense"`, `"channel"`
    /// (whole output units), `"kernel"` (whole k×k kernels), `"row"` (whole
    /// kernel rows), or `"element"` (unstructured).
    pub granularity: String,
    /// FLOPs of the dense kernel per batch row.
    pub dense_flops: u64,
    /// FLOPs the compiled plan actually executes per batch row.
    pub plan_flops: u64,
    /// `dense_flops / plan_flops` — the theoretical speedup ceiling.
    pub theoretical_speedup: f64,
}

/// Reports, for every prunable parameter, the compiled sparse-execution
/// plan's density, kind, detected granularity, and theoretical FLOP
/// reduction. Parameters without a plan (unmasked, or not a GEMM-shaped
/// weight) report as dense with speedup `1.0`.
pub fn sparse_exec_report(model: &dyn Layer, scope: &PruneScope) -> Vec<LayerExecStats> {
    model
        .params()
        .iter()
        .filter(|p| scope.is_prunable(p))
        .map(|p| match p.plan.as_deref() {
            Some(plan) => LayerExecStats {
                name: p.name.clone(),
                density: plan.density(),
                plan_kind: plan.kind.name().to_string(),
                granularity: detect_granularity(plan, p.data.shape()).to_string(),
                dense_flops: plan.dense_flops(1),
                plan_flops: plan.plan_flops(1),
                theoretical_speedup: plan.theoretical_speedup(),
            },
            None => LayerExecStats {
                name: p.name.clone(),
                density: 1.0,
                plan_kind: "dense".to_string(),
                granularity: "dense".to_string(),
                dense_flops: 2 * p.len() as u64,
                plan_flops: 2 * p.len() as u64,
                theoretical_speedup: 1.0,
            },
        })
        .collect()
}

/// Classifies a mask by the coarsest structural granularity it satisfies,
/// matching the names of [`crate::Granularity`] on the matrix view used by
/// the kernels (`[rows, cols]` with `col_group`-wide kernel column groups).
fn detect_granularity(plan: &SparsePlan, shape: &[usize]) -> &'static str {
    if plan.bits.count_ones() == plan.bits.len() {
        return "dense";
    }
    // Channel: every matrix row (= output unit / whole filter) is uniform.
    if runs_uniform(&plan.bits, plan.dims.cols) {
        return "channel";
    }
    // Kernel: every (row, k×k column group) is uniform.
    if plan.dims.col_group > 1 && runs_uniform(&plan.bits, plan.dims.col_group) {
        return "kernel";
    }
    // Row: every length-k kernel row is uniform (needs the conv shape — the
    // matrix view only records the whole k×k group width).
    if let &[_, _, _, kw] = shape {
        if kw > 1 && runs_uniform(&plan.bits, kw) {
            return "row";
        }
    }
    "element"
}

/// Whether every aligned `run`-long slice of `bits` is all-keep or
/// all-prune. `run <= 1` trivially holds for any mask, so it returns false
/// to keep classification meaningful.
fn runs_uniform(bits: &BitMask, run: usize) -> bool {
    let n = bits.len();
    if run <= 1 || n == 0 || !n.is_multiple_of(run) {
        return false;
    }
    (0..n).step_by(run).all(|start| {
        let first = bits.get(start);
        (start + 1..start + run).all(|i| bits.get(i) == first)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::omp::{omp, OmpConfig};
    use crate::Granularity;
    use rt_models::{MicroResNet, ResNetConfig};
    use rt_tensor::rng::rng_from_seed;

    #[test]
    fn dense_model_has_zero_sparsity() {
        let m = MicroResNet::new(&ResNetConfig::smoke(2), &mut rng_from_seed(0)).unwrap();
        assert_eq!(model_sparsity(&m, &PruneScope::backbone()), 0.0);
        let report = layer_sparsity_report(&m, &PruneScope::backbone());
        assert!(!report.is_empty());
        assert!(report
            .iter()
            .all(|l| l.sparsity == 0.0 && l.active == l.total));
    }

    #[test]
    fn sparsity_tracks_applied_ticket() {
        let mut m = MicroResNet::new(&ResNetConfig::smoke(2), &mut rng_from_seed(1)).unwrap();
        let ticket = omp(&m, &OmpConfig::unstructured(0.6)).unwrap();
        ticket.apply(&mut m).unwrap();
        let s = model_sparsity(&m, &PruneScope::backbone());
        assert!((s - 0.6).abs() < 0.02, "{s}");
        let report = layer_sparsity_report(&m, &PruneScope::backbone());
        let total: usize = report.iter().map(|l| l.total).sum();
        let active: usize = report.iter().map(|l| l.active).sum();
        assert!(((1.0 - active as f64 / total as f64) - s).abs() < 1e-12);
    }

    #[test]
    fn exec_report_on_dense_model_is_all_dense() {
        let m = MicroResNet::new(&ResNetConfig::smoke(2), &mut rng_from_seed(0)).unwrap();
        let report = sparse_exec_report(&m, &PruneScope::backbone());
        assert!(!report.is_empty());
        for l in &report {
            assert_eq!(l.plan_kind, "dense", "{}", l.name);
            assert_eq!(l.granularity, "dense", "{}", l.name);
            assert_eq!(l.density, 1.0);
            assert_eq!(l.theoretical_speedup, 1.0);
        }
    }

    #[test]
    fn exec_report_detects_channel_structure_and_flop_savings() {
        let mut m = MicroResNet::new(&ResNetConfig::smoke(2), &mut rng_from_seed(2)).unwrap();
        let ticket = omp(&m, &OmpConfig::structured(0.5, Granularity::Channel)).unwrap();
        ticket.apply(&mut m).unwrap();
        let report = sparse_exec_report(&m, &PruneScope::backbone());
        let masked: Vec<_> = report.iter().filter(|l| l.density < 1.0).collect();
        assert!(!masked.is_empty());
        for l in masked {
            assert_eq!(l.granularity, "channel", "{}", l.name);
            assert!(l.plan_flops < l.dense_flops, "{}", l.name);
            assert!(l.theoretical_speedup > 1.0, "{}", l.name);
        }
    }

    #[test]
    fn exec_report_classifies_unstructured_masks_as_element() {
        let mut m = MicroResNet::new(&ResNetConfig::smoke(2), &mut rng_from_seed(3)).unwrap();
        let ticket = omp(&m, &OmpConfig::unstructured(0.5)).unwrap();
        ticket.apply(&mut m).unwrap();
        let report = sparse_exec_report(&m, &PruneScope::backbone());
        assert!(report.iter().any(|l| l.granularity == "element"));
        // Unstructured 50% masks compile to CSR plans somewhere.
        assert!(report.iter().any(|l| l.plan_kind == "csr"));
    }

    #[test]
    fn granularity_detection_on_synthetic_masks() {
        use rt_sparse::{build_plan, BitMask, MatrixDims};
        // Conv-shaped [2, 2, 2, 2] -> matrix [2 x 8], col_group 4.
        let dims = MatrixDims::grouped(2, 8, 4);
        let shape = [2usize, 2, 2, 2];
        let case = |dense: &[f32]| {
            let plan = build_plan(&BitMask::from_dense(dense), dims);
            detect_granularity(&plan, &shape)
        };
        let ones = vec![1.0f32; 16];
        assert_eq!(case(&ones), "dense");
        // Row 1 of the matrix fully pruned: whole output unit.
        let mut channel = ones.clone();
        channel[8..].fill(0.0);
        assert_eq!(case(&channel), "channel");
        // Second k×k group of row 0 pruned.
        let mut kernel = ones.clone();
        kernel[4..8].fill(0.0);
        assert_eq!(case(&kernel), "kernel");
        // One length-kw kernel row pruned.
        let mut row = ones.clone();
        row[2..4].fill(0.0);
        assert_eq!(case(&row), "row");
        // A single scalar pruned.
        let mut elem = ones;
        elem[5] = 0.0;
        assert_eq!(case(&elem), "element");
    }
}
