//! Ticket masks and pruning scope.

use crate::Result;
use rt_nn::{Layer, NnError, Param, ParamKind};
use rt_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Which parameters a pruning pass may touch.
///
/// The default scope prunes weight matrices/kernels of the feature
/// extractor only: biases and BatchNorm affines stay dense (standard
/// practice), and the classifier head is excluded because transfer learning
/// replaces it per downstream task anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PruneScope {
    /// Whether the classifier head's weights may be pruned.
    pub include_head: bool,
}

impl PruneScope {
    /// The paper's scope: backbone weights only.
    pub fn backbone() -> Self {
        PruneScope {
            include_head: false,
        }
    }

    /// Prune every weight parameter, including the head.
    pub fn all_weights() -> Self {
        PruneScope { include_head: true }
    }

    /// Whether `param` is prunable under this scope.
    pub fn is_prunable(&self, param: &Param) -> bool {
        param.kind == ParamKind::Weight && (self.include_head || !param.name.starts_with("head."))
    }
}

impl Default for PruneScope {
    fn default() -> Self {
        PruneScope::backbone()
    }
}

/// A ticket: one optional binary mask per model parameter, aligned with the
/// model's stable [`Layer::params`] order. `None` entries are dense.
///
/// Masks serialize to JSON, so tickets can be stored and re-applied to a
/// freshly restored pretrained model — the paper's pipeline of drawing a
/// ticket once and transferring it to many downstream tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TicketMask {
    masks: Vec<Option<Tensor>>,
}

impl TicketMask {
    /// A fully dense ticket for `model` (no pruning anywhere).
    pub fn dense(model: &dyn Layer) -> Self {
        TicketMask {
            masks: vec![None; model.params().len()],
        }
    }

    /// Builds a ticket from explicit per-parameter masks.
    ///
    /// # Panics
    ///
    /// Panics if a provided mask's shape disagrees with any later
    /// application target — shape checking happens in [`TicketMask::apply`].
    pub fn from_masks(masks: Vec<Option<Tensor>>) -> Self {
        TicketMask { masks }
    }

    /// Captures the masks currently installed on `model`.
    pub fn capture(model: &dyn Layer) -> Self {
        TicketMask {
            masks: model.params().iter().map(|p| p.mask.clone()).collect(),
        }
    }

    /// Number of mask slots (= model parameter count).
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// Whether the ticket has no slots.
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    /// Immutable access to the per-parameter masks.
    pub fn masks(&self) -> &[Option<Tensor>] {
        &self.masks
    }

    /// Mutable access to the per-parameter masks.
    pub fn masks_mut(&mut self) -> &mut [Option<Tensor>] {
        &mut self.masks
    }

    /// Installs the ticket on `model`: every `Some` mask is applied (zeroing
    /// the pruned weights), every `None` slot has its mask cleared.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::StateDictMismatch`] if slot count or any mask
    /// shape disagrees with the model.
    pub fn apply(&self, model: &mut dyn Layer) -> Result<()> {
        let params = model.params_mut();
        if params.len() != self.masks.len() {
            return Err(NnError::StateDictMismatch {
                detail: format!(
                    "ticket has {} slots, model has {} params",
                    self.masks.len(),
                    params.len()
                ),
            });
        }
        for (p, m) in params.into_iter().zip(&self.masks) {
            match m {
                Some(mask) => p.set_mask(mask.clone())?,
                None => p.clear_mask(),
            }
        }
        Ok(())
    }

    /// Overall sparsity across masked slots: pruned / total elements of
    /// parameters that have a mask. `0.0` for a dense ticket.
    pub fn sparsity(&self) -> f64 {
        let (mut zeros, mut total) = (0usize, 0usize);
        for m in self.masks.iter().flatten() {
            zeros += m.count_zeros();
            total += m.len();
        }
        if total == 0 {
            0.0
        } else {
            zeros as f64 / total as f64
        }
    }

    /// Total number of weights governed by masks.
    pub fn masked_weight_count(&self) -> usize {
        self.masks.iter().flatten().map(|m| m.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_models::{MicroResNet, ResNetConfig};
    use rt_tensor::rng::rng_from_seed;

    fn model() -> MicroResNet {
        MicroResNet::new(&ResNetConfig::smoke(3), &mut rng_from_seed(0)).unwrap()
    }

    #[test]
    fn scope_excludes_head_and_non_weights() {
        let m = model();
        let scope = PruneScope::backbone();
        for p in m.params() {
            let prunable = scope.is_prunable(p);
            if p.name.starts_with("head.") {
                assert!(!prunable, "{}", p.name);
            }
            if p.kind != rt_nn::ParamKind::Weight {
                assert!(!prunable, "{}", p.name);
            }
        }
        let all = PruneScope::all_weights();
        let head_weight = m
            .params()
            .into_iter()
            .find(|p| p.name == "head.linear.weight")
            .unwrap();
        assert!(all.is_prunable(head_weight));
    }

    #[test]
    fn dense_ticket_round_trip() {
        let mut m = model();
        let ticket = TicketMask::dense(&m);
        assert_eq!(ticket.len(), m.params().len());
        assert_eq!(ticket.sparsity(), 0.0);
        ticket.apply(&mut m).unwrap();
        assert!(m.params().iter().all(|p| p.mask.is_none()));
    }

    #[test]
    fn apply_and_capture_round_trip() {
        let mut m = model();
        let mut ticket = TicketMask::dense(&m);
        // Mask the first weight param halfway.
        let shape = m.params()[0].data.shape().to_vec();
        let mask = Tensor::from_fn(&shape, |i| (i % 2) as f32);
        ticket.masks_mut()[0] = Some(mask);
        ticket.apply(&mut m).unwrap();
        let captured = TicketMask::capture(&m);
        assert_eq!(captured, ticket);
        assert!(captured.sparsity() > 0.0);
    }

    #[test]
    fn apply_rejects_mismatched_ticket() {
        let mut m = model();
        let bad = TicketMask::from_masks(vec![None; 3]);
        assert!(matches!(
            bad.apply(&mut m),
            Err(NnError::StateDictMismatch { .. })
        ));
    }

    #[test]
    fn sparsity_accounting() {
        let masks = vec![
            Some(Tensor::from_vec(vec![4], vec![1.0, 0.0, 0.0, 0.0]).unwrap()),
            None,
            Some(Tensor::ones(&[4])),
        ];
        let t = TicketMask::from_masks(masks);
        assert_eq!(t.masked_weight_count(), 8);
        assert!((t.sparsity() - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let m = model();
        let mut ticket = TicketMask::dense(&m);
        let shape = m.params()[0].data.shape().to_vec();
        ticket.masks_mut()[0] = Some(Tensor::zeros(&shape));
        let json = serde_json::to_string(&ticket).unwrap();
        let back: TicketMask = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ticket);
    }
}
