//! Ticket masks and pruning scope.
//!
//! Masks are stored **packed**: one bit per weight in a
//! [`rt_sparse::BitMask`] plus the tensor shape, a 32× memory reduction
//! over the legacy one-`f32`-per-weight representation. The JSON wire
//! format is unchanged — (de)serialization goes through the legacy dense
//! layout, so tickets written by older builds load bit-for-bit and new
//! tickets remain readable by them.

use crate::Result;
use rt_nn::{Layer, NnError, Param, ParamKind};
use rt_sparse::BitMask;
use rt_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Which parameters a pruning pass may touch.
///
/// The default scope prunes weight matrices/kernels of the feature
/// extractor only: biases and BatchNorm affines stay dense (standard
/// practice), and the classifier head is excluded because transfer learning
/// replaces it per downstream task anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PruneScope {
    /// Whether the classifier head's weights may be pruned.
    pub include_head: bool,
}

impl PruneScope {
    /// The paper's scope: backbone weights only.
    pub fn backbone() -> Self {
        PruneScope {
            include_head: false,
        }
    }

    /// Prune every weight parameter, including the head.
    pub fn all_weights() -> Self {
        PruneScope { include_head: true }
    }

    /// Whether `param` is prunable under this scope.
    pub fn is_prunable(&self, param: &Param) -> bool {
        param.kind == ParamKind::Weight && (self.include_head || !param.name.starts_with("head."))
    }
}

impl Default for PruneScope {
    fn default() -> Self {
        PruneScope::backbone()
    }
}

/// One parameter's mask in packed form: a shape plus one bit per element
/// (`1` = keep, `0` = pruned).
///
/// This is the in-memory representation of a ticket slot. Code that needs
/// the legacy dense `f32` view (one `1.0`/`0.0` per weight) materializes it
/// on demand with [`PackedMask::to_tensor`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PackedMask {
    shape: Vec<usize>,
    bits: BitMask,
}

impl PackedMask {
    /// Packs a dense mask tensor: any nonzero entry becomes a keep bit.
    pub fn from_tensor(mask: &Tensor) -> Self {
        PackedMask {
            shape: mask.shape().to_vec(),
            bits: BitMask::from_dense(mask.data()),
        }
    }

    /// Materializes the legacy dense view: `1.0` where kept, `0.0` where
    /// pruned.
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(self.shape.clone(), self.bits.to_f32_vec())
            .expect("PackedMask shape/len invariant")
    }

    /// The mask's tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The packed keep bits.
    pub fn bits(&self) -> &BitMask {
        &self.bits
    }

    /// Number of weights governed by the mask.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the mask covers zero weights.
    pub fn is_empty(&self) -> bool {
        self.bits.len() == 0
    }

    /// Number of kept weights.
    pub fn count_ones(&self) -> usize {
        self.bits.count_ones()
    }

    /// Number of pruned weights.
    pub fn count_zeros(&self) -> usize {
        self.bits.len() - self.bits.count_ones()
    }

    /// Fraction of weights kept.
    pub fn density(&self) -> f64 {
        self.bits.density()
    }

    /// Whether every weight kept by `self` is also kept by `other` —
    /// i.e. `self` is the *sparser* (later-round) mask of a nested pair.
    pub fn is_subset_of(&self, other: &PackedMask) -> bool {
        self.bits.is_subset_of(&other.bits)
    }
}

/// A ticket: one optional binary mask per model parameter, aligned with the
/// model's stable [`Layer::params`] order. `None` entries are dense.
///
/// Masks serialize to JSON, so tickets can be stored and re-applied to a
/// freshly restored pretrained model — the paper's pipeline of drawing a
/// ticket once and transferring it to many downstream tasks. On the wire a
/// ticket uses the legacy dense layout (see [`LegacyTicketMask`] below);
/// in memory each slot is a [`PackedMask`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
#[serde(from = "LegacyTicketMask", into = "LegacyTicketMask")]
pub struct TicketMask {
    masks: Vec<Option<PackedMask>>,
}

impl TicketMask {
    /// A fully dense ticket for `model` (no pruning anywhere).
    pub fn dense(model: &dyn Layer) -> Self {
        TicketMask {
            masks: vec![None; model.params().len()],
        }
    }

    /// Builds a ticket from explicit per-parameter dense masks, packing
    /// each one (any nonzero entry is a keep).
    pub fn from_masks(masks: Vec<Option<Tensor>>) -> Self {
        TicketMask {
            masks: masks
                .iter()
                .map(|m| m.as_ref().map(PackedMask::from_tensor))
                .collect(),
        }
    }

    /// Captures the masks currently installed on `model`.
    pub fn capture(model: &dyn Layer) -> Self {
        TicketMask {
            masks: model
                .params()
                .iter()
                .map(|p| p.mask.as_ref().map(PackedMask::from_tensor))
                .collect(),
        }
    }

    /// Number of mask slots (= model parameter count).
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// Whether the ticket has no slots.
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    /// Immutable access to the per-parameter packed masks.
    pub fn masks(&self) -> &[Option<PackedMask>] {
        &self.masks
    }

    /// Replaces slot `index` with `mask` (packed on the way in) or clears
    /// it with `None`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn set_slot(&mut self, index: usize, mask: Option<Tensor>) {
        self.masks[index] = mask.as_ref().map(PackedMask::from_tensor);
    }

    /// Installs the ticket on `model`: every `Some` mask is applied (zeroing
    /// the pruned weights and compiling the parameter's sparse execution
    /// plan), every `None` slot has its mask cleared.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::StateDictMismatch`] if slot count or any mask
    /// shape disagrees with the model.
    pub fn apply(&self, model: &mut dyn Layer) -> Result<()> {
        let params = model.params_mut();
        if params.len() != self.masks.len() {
            return Err(NnError::StateDictMismatch {
                detail: format!(
                    "ticket has {} slots, model has {} params",
                    self.masks.len(),
                    params.len()
                ),
            });
        }
        for (p, m) in params.into_iter().zip(&self.masks) {
            match m {
                Some(mask) => p.set_mask(mask.to_tensor())?,
                None => p.clear_mask(),
            }
        }
        Ok(())
    }

    /// Overall sparsity across masked slots: pruned / total elements of
    /// parameters that have a mask. `0.0` for a dense ticket.
    pub fn sparsity(&self) -> f64 {
        let (mut zeros, mut total) = (0usize, 0usize);
        for m in self.masks.iter().flatten() {
            zeros += m.count_zeros();
            total += m.len();
        }
        if total == 0 {
            0.0
        } else {
            zeros as f64 / total as f64
        }
    }

    /// Total number of weights governed by masks.
    pub fn masked_weight_count(&self) -> usize {
        self.masks.iter().flatten().map(|m| m.len()).sum()
    }
}

/// The legacy wire format: one dense `f32` tensor per masked slot. Tickets
/// serialize through this struct so JSON written by older builds
/// deserializes unchanged and new tickets stay readable by them.
#[derive(Serialize, Deserialize)]
struct LegacyTicketMask {
    masks: Vec<Option<Tensor>>,
}

impl From<LegacyTicketMask> for TicketMask {
    fn from(legacy: LegacyTicketMask) -> Self {
        TicketMask::from_masks(legacy.masks)
    }
}

impl From<TicketMask> for LegacyTicketMask {
    fn from(ticket: TicketMask) -> Self {
        LegacyTicketMask {
            masks: ticket
                .masks
                .iter()
                .map(|m| m.as_ref().map(PackedMask::to_tensor))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_models::{MicroResNet, ResNetConfig};
    use rt_tensor::rng::rng_from_seed;

    fn model() -> MicroResNet {
        MicroResNet::new(&ResNetConfig::smoke(3), &mut rng_from_seed(0)).unwrap()
    }

    #[test]
    fn scope_excludes_head_and_non_weights() {
        let m = model();
        let scope = PruneScope::backbone();
        for p in m.params() {
            let prunable = scope.is_prunable(p);
            if p.name.starts_with("head.") {
                assert!(!prunable, "{}", p.name);
            }
            if p.kind != rt_nn::ParamKind::Weight {
                assert!(!prunable, "{}", p.name);
            }
        }
        let all = PruneScope::all_weights();
        let head_weight = m
            .params()
            .into_iter()
            .find(|p| p.name == "head.linear.weight")
            .unwrap();
        assert!(all.is_prunable(head_weight));
    }

    #[test]
    fn dense_ticket_round_trip() {
        let mut m = model();
        let ticket = TicketMask::dense(&m);
        assert_eq!(ticket.len(), m.params().len());
        assert_eq!(ticket.sparsity(), 0.0);
        ticket.apply(&mut m).unwrap();
        assert!(m.params().iter().all(|p| p.mask.is_none()));
    }

    #[test]
    fn apply_and_capture_round_trip() {
        let mut m = model();
        let mut ticket = TicketMask::dense(&m);
        // Mask the first weight param halfway.
        let shape = m.params()[0].data.shape().to_vec();
        let mask = Tensor::from_fn(&shape, |i| (i % 2) as f32);
        ticket.set_slot(0, Some(mask));
        ticket.apply(&mut m).unwrap();
        let captured = TicketMask::capture(&m);
        assert_eq!(captured, ticket);
        assert!(captured.sparsity() > 0.0);
    }

    #[test]
    fn packed_mask_round_trips_and_binarizes() {
        // from_tensor treats any nonzero as keep; to_tensor is exact 0/1.
        let t = Tensor::from_vec(vec![2, 3], vec![0.5, 0.0, -2.0, 0.0, 1.0, 3.0]).unwrap();
        let packed = PackedMask::from_tensor(&t);
        assert_eq!(packed.shape(), &[2, 3]);
        assert_eq!(packed.len(), 6);
        assert_eq!(packed.count_ones(), 4);
        assert_eq!(packed.count_zeros(), 2);
        assert!((packed.density() - 4.0 / 6.0).abs() < 1e-12);
        let dense = packed.to_tensor();
        assert_eq!(dense.data(), &[1.0, 0.0, 1.0, 0.0, 1.0, 1.0]);
        assert_eq!(PackedMask::from_tensor(&dense), packed);
    }

    #[test]
    fn packed_mask_subset_ordering() {
        let wide = Tensor::from_vec(vec![4], vec![1.0, 1.0, 1.0, 0.0]).unwrap();
        let narrow = Tensor::from_vec(vec![4], vec![1.0, 0.0, 1.0, 0.0]).unwrap();
        let wide = PackedMask::from_tensor(&wide);
        let narrow = PackedMask::from_tensor(&narrow);
        assert!(narrow.is_subset_of(&wide));
        assert!(!wide.is_subset_of(&narrow));
    }

    #[test]
    fn apply_rejects_mismatched_ticket() {
        let mut m = model();
        let bad = TicketMask::from_masks(vec![None; 3]);
        assert!(matches!(
            bad.apply(&mut m),
            Err(NnError::StateDictMismatch { .. })
        ));
    }

    #[test]
    fn sparsity_accounting() {
        let masks = vec![
            Some(Tensor::from_vec(vec![4], vec![1.0, 0.0, 0.0, 0.0]).unwrap()),
            None,
            Some(Tensor::ones(&[4])),
        ];
        let t = TicketMask::from_masks(masks);
        assert_eq!(t.masked_weight_count(), 8);
        assert!((t.sparsity() - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let m = model();
        let mut ticket = TicketMask::dense(&m);
        let shape = m.params()[0].data.shape().to_vec();
        ticket.set_slot(0, Some(Tensor::zeros(&shape)));
        let json = serde_json::to_string(&ticket).unwrap();
        let back: TicketMask = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ticket);
    }

    #[test]
    fn serde_uses_legacy_dense_wire_format() {
        // New packed tickets must read/write the exact JSON produced by the
        // old one-f32-per-weight representation.
        let mask = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let legacy_json = format!(
            "{{\"masks\":[null,{}]}}",
            serde_json::to_string(&mask).unwrap()
        );
        let ticket: TicketMask = serde_json::from_str(&legacy_json).unwrap();
        assert_eq!(ticket.len(), 2);
        assert!(ticket.masks()[0].is_none());
        assert_eq!(ticket.masks()[1].as_ref().unwrap().to_tensor(), mask);
        // Round-tripping reproduces the legacy layout byte-for-byte.
        assert_eq!(serde_json::to_string(&ticket).unwrap(), legacy_json);
    }
}
