//! Ticket-drawing schemes from *"Robust Tickets Can Transfer Better"*.
//!
//! A *ticket* is a binary mask `m` over a pretrained model's weights; the
//! subnetwork is `f(·; m ⊙ θ_pre)`. This crate implements the paper's three
//! schemes for deriving `m`:
//!
//! * [`omp()`] — **One-shot magnitude pruning**: rank weights (or structured
//!   weight groups) by magnitude and zero the smallest, globally or per
//!   layer. Robust vs. natural tickets differ only in the pretrained
//!   weights the ranking reads (Sec. II-B ①).
//! * [`imp()`] — **Iterative magnitude pruning**: alternate train → prune →
//!   rewind-to-pretrained rounds until the target sparsity (Sec. II-B ②).
//!   The training objective is a *callback*, so vanilla IMP and the paper's
//!   adversarial A-IMP (Eq. 1) are the same driver with different closures
//!   — `rt-transfer` supplies both.
//! * [`lmp`] — **Learnable mask pruning**: freeze the pretrained weights,
//!   learn per-weight scores, binarize the top-k per layer in the forward
//!   pass, and update scores with straight-through estimation (Sec. II-B ③,
//!   Eq. 2).
//!
//! Structured sparsity patterns (row / kernel / channel, Fig. 3) are
//! expressed through [`Granularity`] and compose with OMP.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod granularity;
pub mod imp;
pub mod lmp;
pub mod mask;
pub mod omp;
pub mod stats;

pub use baseline::{random_ticket, saliency_ticket};
pub use granularity::Granularity;
pub use imp::{imp, imp_with_observer, ImpConfig};
pub use lmp::{finalize_lmp, init_lmp, lmp_apply_masks, lmp_update_scores, ScoreInit};
pub use mask::{PackedMask, PruneScope, TicketMask};
pub use omp::{omp, OmpConfig};
pub use stats::{layer_sparsity_report, model_sparsity, sparse_exec_report, LayerExecStats, LayerSparsity};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, rt_nn::NnError>;
