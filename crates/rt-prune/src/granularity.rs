//! Structured sparsity granularities (Fig. 3 of the paper).
//!
//! A granularity partitions a weight tensor into *groups* that are kept or
//! pruned atomically. Coarser groups map better to real hardware but, as
//! the paper shows, inherit less of the robustness prior.

use serde::{Deserialize, Serialize};

/// How weights are grouped for pruning, from finest to coarsest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Granularity {
    /// Unstructured: every scalar is its own group.
    #[default]
    Element,
    /// One row of a kernel (length-`k` contiguous run): for a conv weight
    /// `[O, C, k, k]` each `(o, c, ky)` row; for a linear weight `[O, I]`
    /// each output row.
    Row,
    /// One whole `k×k` kernel per `(o, c)` pair (linear: output row).
    Kernel,
    /// One whole output filter `[C, k, k]` per output channel `o`
    /// (linear: output row).
    Channel,
}

impl Granularity {
    /// The three structured granularities benchmarked in Fig. 3.
    pub fn structured() -> [Granularity; 3] {
        [Granularity::Row, Granularity::Kernel, Granularity::Channel]
    }

    /// Group size (in scalars) for a weight tensor of the given shape.
    /// Rank-2 weights (linear layers) degenerate to per-output-row groups
    /// for every structured granularity.
    pub fn group_len(&self, shape: &[usize]) -> usize {
        match (self, shape.len()) {
            (Granularity::Element, _) => 1,
            // Linear [O, I]: all structured granularities are per-row.
            (_, 2) => shape[1],
            (Granularity::Row, 4) => shape[3],
            (Granularity::Kernel, 4) => shape[2] * shape[3],
            (Granularity::Channel, 4) => shape[1] * shape[2] * shape[3],
            // Other ranks (e.g. rank-1): treat as unstructured.
            _ => 1,
        }
    }

    /// Number of groups for a weight tensor of the given shape.
    pub fn group_count(&self, shape: &[usize]) -> usize {
        let total: usize = shape.iter().product();
        total.checked_div(self.group_len(shape)).unwrap_or(0)
    }
}

/// Scores every group of `weight_data` (flat, row-major for `shape`) by its
/// mean absolute magnitude. Returns one score per group, in group order
/// (group `g` covers flat range `[g·len, (g+1)·len)`).
///
/// Mean (not sum) magnitude makes scores comparable across granularities
/// and layer shapes, which the global OMP ranking relies on.
pub fn group_scores(weight_data: &[f32], shape: &[usize], granularity: Granularity) -> Vec<f32> {
    let len = granularity.group_len(shape);
    debug_assert!(len > 0 && weight_data.len().is_multiple_of(len));
    weight_data
        .chunks(len)
        .map(|g| g.iter().map(|w| w.abs()).sum::<f32>() / len as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_geometry_conv() {
        let shape = [4usize, 3, 5, 5]; // O C k k
        assert_eq!(Granularity::Element.group_len(&shape), 1);
        assert_eq!(Granularity::Row.group_len(&shape), 5);
        assert_eq!(Granularity::Kernel.group_len(&shape), 25);
        assert_eq!(Granularity::Channel.group_len(&shape), 75);
        assert_eq!(Granularity::Element.group_count(&shape), 300);
        assert_eq!(Granularity::Row.group_count(&shape), 60);
        assert_eq!(Granularity::Kernel.group_count(&shape), 12);
        assert_eq!(Granularity::Channel.group_count(&shape), 4);
    }

    #[test]
    fn group_geometry_linear_degenerates_to_rows() {
        let shape = [6usize, 10];
        for g in Granularity::structured() {
            assert_eq!(g.group_len(&shape), 10);
            assert_eq!(g.group_count(&shape), 6);
        }
        assert_eq!(Granularity::Element.group_count(&shape), 60);
    }

    #[test]
    fn scores_are_mean_abs() {
        let data = [1.0f32, -3.0, 0.0, 2.0];
        let shape = [2usize, 2];
        let elem = group_scores(&data, &shape, Granularity::Element);
        assert_eq!(elem, vec![1.0, 3.0, 0.0, 2.0]);
        let rows = group_scores(&data, &shape, Granularity::Row);
        assert_eq!(rows, vec![2.0, 1.0]);
    }

    #[test]
    fn conv_channel_scores() {
        // [2, 1, 2, 2]: filter 0 all ones, filter 1 all ±3.
        let data = [1.0f32, 1.0, 1.0, 1.0, 3.0, -3.0, 3.0, -3.0];
        let shape = [2usize, 1, 2, 2];
        let ch = group_scores(&data, &shape, Granularity::Channel);
        assert_eq!(ch, vec![1.0, 3.0]);
        let kr = group_scores(&data, &shape, Granularity::Kernel);
        assert_eq!(kr, vec![1.0, 3.0]); // C=1 so kernel == channel here
        let rows = group_scores(&data, &shape, Granularity::Row);
        assert_eq!(rows, vec![1.0, 1.0, 3.0, 3.0]);
    }

    #[test]
    fn structured_order_is_fine_to_coarse() {
        let shape = [8usize, 4, 3, 3];
        let sizes: Vec<usize> = Granularity::structured()
            .iter()
            .map(|g| g.group_len(&shape))
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
    }
}
