//! One-shot magnitude pruning (OMP) — scheme ① of the paper.

use crate::granularity::{group_scores, Granularity};
use crate::mask::{PruneScope, TicketMask};
use crate::Result;
use rt_nn::{ExecCtx, Layer, NnError};
use rt_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Configuration of an OMP pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OmpConfig {
    /// Target fraction of prunable weights to remove, in `[0, 1)`.
    pub sparsity: f64,
    /// Pruning granularity (Fig. 3's row/kernel/channel patterns).
    pub granularity: Granularity,
    /// Which parameters may be pruned.
    pub scope: PruneScope,
    /// `false` (default, the paper's setting): rank all groups globally
    /// across layers. `true`: prune each layer to the target sparsity
    /// independently (the `omp_scope` ablation).
    pub layerwise: bool,
}

impl OmpConfig {
    /// Unstructured global OMP at the given sparsity.
    pub fn unstructured(sparsity: f64) -> Self {
        OmpConfig {
            sparsity,
            granularity: Granularity::Element,
            scope: PruneScope::backbone(),
            layerwise: false,
        }
    }

    /// Structured OMP at the given sparsity and granularity.
    pub fn structured(sparsity: f64, granularity: Granularity) -> Self {
        OmpConfig {
            sparsity,
            granularity,
            scope: PruneScope::backbone(),
            layerwise: false,
        }
    }

    /// Returns a copy with layer-wise (per-layer) thresholds.
    pub fn with_layerwise(mut self, layerwise: bool) -> Self {
        self.layerwise = layerwise;
        self
    }
}

/// Draws a ticket from `model`'s current weights by magnitude pruning.
///
/// The model itself is *not* modified — apply the returned
/// [`TicketMask`] explicitly. Whether the result is a *robust* or a
/// *natural* ticket depends solely on whether `model` holds adversarially
/// or naturally pretrained weights (Sec. II-B of the paper).
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] if `sparsity` is outside `[0, 1)`.
pub fn omp(model: &dyn Layer, config: &OmpConfig) -> Result<TicketMask> {
    if !(0.0..1.0).contains(&config.sparsity) {
        return Err(NnError::InvalidConfig {
            detail: format!("sparsity must be in [0, 1), got {}", config.sparsity),
        });
    }
    let params = model.params();
    let mut masks: Vec<Option<Tensor>> = vec![None; params.len()];
    if config.sparsity == 0.0 {
        // Dense masks on prunable params so sparsity accounting is uniform.
        for (i, p) in params.iter().enumerate() {
            if config.scope.is_prunable(p) {
                masks[i] = Some(Tensor::ones(p.data.shape()));
            }
        }
        return Ok(TicketMask::from_masks(masks));
    }

    if config.layerwise {
        for (i, p) in params.iter().enumerate() {
            if !config.scope.is_prunable(p) {
                continue;
            }
            let scores = group_scores(p.data.data(), p.data.shape(), config.granularity);
            let glen = config.granularity.group_len(p.data.shape());
            let prune_groups = ((scores.len() as f64) * config.sparsity).round() as usize;
            masks[i] = Some(mask_from_pruned_groups(
                p.data.shape(),
                &scores,
                glen,
                &lowest_k_groups(&scores, prune_groups),
            ));
        }
    } else {
        // Global ranking: gather every group of every prunable param.
        struct GroupRef {
            param: usize,
            group: usize,
            len: usize,
            score: f32,
        }
        let mut groups: Vec<GroupRef> = Vec::new();
        let mut total_weights = 0usize;
        for (i, p) in params.iter().enumerate() {
            if !config.scope.is_prunable(p) {
                continue;
            }
            let scores = group_scores(p.data.data(), p.data.shape(), config.granularity);
            let glen = config.granularity.group_len(p.data.shape());
            total_weights += p.data.len();
            groups.extend(scores.iter().enumerate().map(|(g, &score)| GroupRef {
                param: i,
                group: g,
                len: glen,
                score,
            }));
        }
        groups.sort_by(|a, b| a.score.partial_cmp(&b.score).expect("finite scores"));
        let target = (total_weights as f64 * config.sparsity).round() as usize;
        // Initialize prunable masks to ones, then zero the lowest groups
        // until the weight budget is met.
        for (i, p) in params.iter().enumerate() {
            if config.scope.is_prunable(p) {
                masks[i] = Some(Tensor::ones(p.data.shape()));
            }
        }
        let mut pruned = 0usize;
        for g in &groups {
            if pruned >= target {
                break;
            }
            let mask = masks[g.param].as_mut().expect("initialized above");
            let start = g.group * g.len;
            for v in &mut mask.data_mut()[start..start + g.len] {
                *v = 0.0;
            }
            pruned += g.len;
        }
    }
    Ok(TicketMask::from_masks(masks))
}

/// Indices of the `k` lowest-scoring groups.
fn lowest_k_groups(scores: &[f32], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));
    order.truncate(k);
    order
}

fn mask_from_pruned_groups(
    shape: &[usize],
    scores: &[f32],
    group_len: usize,
    pruned: &[usize],
) -> Tensor {
    let _ = scores;
    let mut mask = Tensor::ones(shape);
    for &g in pruned {
        let start = g * group_len;
        for v in &mut mask.data_mut()[start..start + group_len] {
            *v = 0.0;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_models::{MicroResNet, ResNetConfig};
    use rt_nn::{ExecCtx, Param};
    use rt_tensor::rng::rng_from_seed;
    use rt_tensor::Tensor;

    fn model() -> MicroResNet {
        MicroResNet::new(&ResNetConfig::smoke(3), &mut rng_from_seed(0)).unwrap()
    }

    #[test]
    fn global_omp_hits_target_sparsity() {
        let m = model();
        for target in [0.3f64, 0.7, 0.95] {
            let ticket = omp(&m, &OmpConfig::unstructured(target)).unwrap();
            let got = ticket.sparsity();
            assert!((got - target).abs() < 0.02, "target {target} got {got}");
        }
    }

    #[test]
    fn omp_prunes_smallest_magnitudes() {
        // Hand-built parameter: magnitudes 1..=8; pruning 50% must zero 1-4.
        let mut m = model();
        {
            let mut params = m.params_mut();
            let p: &mut Param = params[0];
            let n = p.data.len();
            p.data = Tensor::from_fn(p.data.shape(), |i| ((i % n) + 1) as f32 * 0.001);
        }
        let ticket = omp(&m, &OmpConfig::unstructured(0.5)).unwrap();
        let mask0 = ticket.masks()[0].as_ref().unwrap().to_tensor();
        let w0 = &m.params()[0].data;
        // All kept weights in param 0 must have magnitude >= all pruned ones.
        let mut kept_min = f32::MAX;
        let mut pruned_max: f32 = 0.0;
        for (&w, &keep) in w0.data().iter().zip(mask0.data()) {
            if keep > 0.0 {
                kept_min = kept_min.min(w.abs());
            } else {
                pruned_max = pruned_max.max(w.abs());
            }
        }
        assert!(kept_min >= pruned_max, "{kept_min} < {pruned_max}");
    }

    #[test]
    fn zero_sparsity_is_dense() {
        let m = model();
        let ticket = omp(&m, &OmpConfig::unstructured(0.0)).unwrap();
        assert_eq!(ticket.sparsity(), 0.0);
        assert!(ticket.masked_weight_count() > 0);
    }

    #[test]
    fn invalid_sparsity_rejected() {
        let m = model();
        assert!(omp(&m, &OmpConfig::unstructured(1.0)).is_err());
        assert!(omp(&m, &OmpConfig::unstructured(-0.1)).is_err());
    }

    #[test]
    fn structured_masks_zero_whole_groups() {
        let m = model();
        for gran in Granularity::structured() {
            let ticket = omp(&m, &OmpConfig::structured(0.5, gran)).unwrap();
            for (mask, p) in ticket.masks().iter().zip(m.params()) {
                let Some(mask) = mask else { continue };
                let mask = mask.to_tensor();
                let glen = gran.group_len(p.data.shape());
                for group in mask.data().chunks(glen) {
                    let sum: f32 = group.iter().sum();
                    assert!(
                        sum == 0.0 || sum == glen as f32,
                        "partial group under {gran:?}"
                    );
                }
            }
            assert!((ticket.sparsity() - 0.5).abs() < 0.06, "{gran:?}");
        }
    }

    #[test]
    fn layerwise_prunes_every_layer_equally() {
        let m = model();
        let ticket = omp(&m, &OmpConfig::unstructured(0.6).with_layerwise(true)).unwrap();
        for (mask, p) in ticket.masks().iter().zip(m.params()) {
            let Some(mask) = mask else { continue };
            let s = mask.count_zeros() as f64 / mask.len() as f64;
            assert!(
                (s - 0.6).abs() < 0.05,
                "layer {} sparsity {s} far from 0.6",
                p.name
            );
        }
    }

    #[test]
    fn global_omp_can_prune_layers_unevenly() {
        // Make one layer's weights tiny: global OMP should prune it harder
        // than the others.
        let mut m = model();
        m.params_mut()[0].data.scale(1e-4);
        let ticket = omp(&m, &OmpConfig::unstructured(0.5)).unwrap();
        let first = ticket.masks()[0].as_ref().unwrap();
        let s0 = first.count_zeros() as f64 / first.len() as f64;
        assert!(
            s0 > 0.95,
            "tiny layer should be pruned almost fully, got {s0}"
        );
    }

    #[test]
    fn head_is_excluded_by_default() {
        let m = model();
        let ticket = omp(&m, &OmpConfig::unstructured(0.9)).unwrap();
        for (mask, p) in ticket.masks().iter().zip(m.params()) {
            if p.name.starts_with("head.") {
                assert!(mask.is_none(), "head must stay dense");
            }
        }
    }

    #[test]
    fn pruned_model_still_runs() {
        let mut m = model();
        let ticket = omp(&m, &OmpConfig::unstructured(0.8)).unwrap();
        ticket.apply(&mut m).unwrap();
        let y = m.forward(&Tensor::ones(&[1, 3, 8, 8]), ExecCtx::eval()).unwrap();
        assert!(y.all_finite());
        // Weights at pruned positions are exactly zero.
        let p0 = &m.params()[0];
        let mask0 = p0.mask.as_ref().unwrap();
        for (&w, &k) in p0.data.data().iter().zip(mask0.data()) {
            if k == 0.0 {
                assert_eq!(w, 0.0);
            }
        }
    }
}
