//! Control baselines for ticket experiments: random tickets and
//! saliency-scored (SNIP-style) one-shot pruning.
//!
//! The paper's thesis is that *which* prior selects the subnetwork matters;
//! these baselines let downstream experiments verify that (a) magnitude
//! beats chance (random tickets) and (b) how a first-order saliency prior
//! compares to pure magnitude.

use crate::granularity::Granularity;
use crate::mask::{PruneScope, TicketMask};
use crate::Result;
use rand::seq::SliceRandom;
use rand::Rng;
use rt_nn::{ExecCtx, Layer, NnError};
use rt_tensor::Tensor;

/// Draws a *random* ticket at the given sparsity: every prunable weight is
/// kept or pruned by a fair shuffle, ignoring magnitudes entirely. The
/// classic lottery-ticket control.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] if `sparsity` is outside `[0, 1)`.
pub fn random_ticket<R: Rng>(
    model: &dyn Layer,
    sparsity: f64,
    scope: &PruneScope,
    rng: &mut R,
) -> Result<TicketMask> {
    if !(0.0..1.0).contains(&sparsity) {
        return Err(NnError::InvalidConfig {
            detail: format!("sparsity must be in [0, 1), got {sparsity}"),
        });
    }
    let params = model.params();
    let mut masks: Vec<Option<Tensor>> = vec![None; params.len()];
    for (i, p) in params.iter().enumerate() {
        if !scope.is_prunable(p) {
            continue;
        }
        let n = p.data.len();
        let prune = ((n as f64) * sparsity).round() as usize;
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        let mut mask = Tensor::ones(p.data.shape());
        for &idx in order.iter().take(prune) {
            mask.data_mut()[idx] = 0.0;
        }
        masks[i] = Some(mask);
    }
    Ok(TicketMask::from_masks(masks))
}

/// Draws a saliency-scored one-shot ticket: weights are ranked by the
/// SNIP-style first-order saliency `|w · ∂L/∂w|` instead of `|w|`. The
/// caller must have run at least one backward pass so every prunable
/// parameter's `grad` holds the loss gradient (do **not** zero the grads
/// first).
///
/// Ranking is global across layers, matching the paper's OMP protocol.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] if `sparsity` is outside `[0, 1)` or
/// if every gradient is exactly zero (no backward pass ran).
pub fn saliency_ticket(model: &dyn Layer, sparsity: f64, scope: &PruneScope) -> Result<TicketMask> {
    if !(0.0..1.0).contains(&sparsity) {
        return Err(NnError::InvalidConfig {
            detail: format!("sparsity must be in [0, 1), got {sparsity}"),
        });
    }
    let params = model.params();
    let mut total_grad = 0.0f32;
    struct ScoredWeight {
        param: usize,
        index: usize,
        score: f32,
    }
    let mut weights: Vec<ScoredWeight> = Vec::new();
    let mut total = 0usize;
    for (i, p) in params.iter().enumerate() {
        if !scope.is_prunable(p) {
            continue;
        }
        total += p.data.len();
        total_grad += p.grad.l1_norm();
        weights.extend(
            p.data
                .data()
                .iter()
                .zip(p.grad.data())
                .enumerate()
                .map(|(j, (&w, &g))| ScoredWeight {
                    param: i,
                    index: j,
                    score: (w * g).abs(),
                }),
        );
    }
    if total_grad == 0.0 {
        return Err(NnError::InvalidConfig {
            detail: "saliency ticket needs accumulated gradients (run backward first)".to_string(),
        });
    }
    weights.sort_by(|a, b| a.score.partial_cmp(&b.score).expect("finite scores"));
    let target = (total as f64 * sparsity).round() as usize;

    let mut masks: Vec<Option<Tensor>> = vec![None; params.len()];
    for (i, p) in params.iter().enumerate() {
        if scope.is_prunable(p) {
            masks[i] = Some(Tensor::ones(p.data.shape()));
        }
    }
    for sw in weights.iter().take(target) {
        masks[sw.param]
            .as_mut()
            .expect("initialized above")
            .data_mut()[sw.index] = 0.0;
    }
    Ok(TicketMask::from_masks(masks))
}

/// Convenience: the granularity a baseline ticket uses (always
/// unstructured — structured baselines are not part of the protocol).
pub fn baseline_granularity() -> Granularity {
    Granularity::Element
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_models::{MicroResNet, ResNetConfig};
    use rt_nn::loss::CrossEntropyLoss;
    use rt_nn::ExecCtx;
    use rt_tensor::init;
    use rt_tensor::rng::rng_from_seed;

    fn model() -> MicroResNet {
        MicroResNet::new(&ResNetConfig::smoke(3), &mut rng_from_seed(0)).unwrap()
    }

    #[test]
    fn random_ticket_hits_sparsity_and_varies_with_seed() {
        let m = model();
        let scope = PruneScope::backbone();
        let a = random_ticket(&m, 0.7, &scope, &mut rng_from_seed(1)).unwrap();
        let b = random_ticket(&m, 0.7, &scope, &mut rng_from_seed(2)).unwrap();
        assert!((a.sparsity() - 0.7).abs() < 0.02);
        assert!((b.sparsity() - 0.7).abs() < 0.02);
        assert_ne!(a, b, "different seeds must draw different tickets");
        // Same seed reproduces.
        let a2 = random_ticket(&m, 0.7, &scope, &mut rng_from_seed(1)).unwrap();
        assert_eq!(a, a2);
    }

    #[test]
    fn random_ticket_validates_sparsity() {
        let m = model();
        let scope = PruneScope::backbone();
        assert!(random_ticket(&m, 1.0, &scope, &mut rng_from_seed(0)).is_err());
    }

    #[test]
    fn saliency_requires_gradients() {
        let m = model();
        let err = saliency_ticket(&m, 0.5, &PruneScope::backbone()).unwrap_err();
        assert!(matches!(err, NnError::InvalidConfig { .. }));
    }

    #[test]
    fn saliency_ticket_prunes_low_saliency_weights() {
        let mut m = model();
        // One backward pass to populate gradients.
        let x = init::normal(&[4, 3, 8, 8], 0.0, 1.0, &mut rng_from_seed(3));
        let logits = m.forward(&x, ExecCtx::train()).unwrap();
        let out = CrossEntropyLoss::new()
            .forward(&logits, &[0, 1, 2, 0])
            .unwrap();
        m.backward(&out.grad, ExecCtx::default()).unwrap();

        let ticket = saliency_ticket(&m, 0.6, &PruneScope::backbone()).unwrap();
        assert!((ticket.sparsity() - 0.6).abs() < 0.02);
        // Kept weights have saliency >= pruned weights, per global ranking.
        let mut kept_min = f32::MAX;
        let mut pruned_max: f32 = 0.0;
        for (mask, p) in ticket.masks().iter().zip(m.params()) {
            let Some(mask) = mask else { continue };
            let mask = mask.to_tensor();
            for ((&w, &g), &keep) in p.data.data().iter().zip(p.grad.data()).zip(mask.data()) {
                let s = (w * g).abs();
                if keep > 0.0 {
                    kept_min = kept_min.min(s);
                } else {
                    pruned_max = pruned_max.max(s);
                }
            }
        }
        assert!(kept_min >= pruned_max, "{kept_min} < {pruned_max}");
    }

    #[test]
    fn saliency_differs_from_magnitude() {
        use crate::omp::{omp, OmpConfig};
        let mut m = model();
        let x = init::normal(&[4, 3, 8, 8], 0.0, 1.0, &mut rng_from_seed(4));
        let logits = m.forward(&x, ExecCtx::train()).unwrap();
        let out = CrossEntropyLoss::new()
            .forward(&logits, &[0, 1, 2, 0])
            .unwrap();
        m.backward(&out.grad, ExecCtx::default()).unwrap();
        let saliency = saliency_ticket(&m, 0.5, &PruneScope::backbone()).unwrap();
        let magnitude = omp(&m, &OmpConfig::unstructured(0.5)).unwrap();
        assert_ne!(saliency, magnitude, "criteria should disagree somewhere");
    }
}
