//! Learnable mask pruning (LMP) — scheme ③ of the paper (Eq. 2).
//!
//! LMP learns a *task-specific* mask on top of frozen pretrained weights:
//! in the forward pass the effective weight is `m̂ ⊙ θ_pre` where `m̂`
//! binarizes the top-k scores per layer; in the backward pass the scores
//! receive straight-through gradients `∂L/∂m̂ ≈ ∂L/∂W_eff ⊙ θ_pre`
//! (following Ramanujan et al., "What's hidden in a randomly weighted
//! network?").
//!
//! The protocol per optimization step is:
//!
//! 1. [`lmp_apply_masks`] — rebuild `W_eff` from the current scores,
//! 2. forward + backward (normal `rt-nn` calls),
//! 3. [`lmp_update_scores`] — SGD on the scores via the STE gradient,
//! 4. let the regular optimizer update whatever is still `trainable`
//!    (classifier head, BatchNorm affines).

use crate::mask::{PruneScope, TicketMask};
use crate::Result;
use rand::Rng;
use rt_nn::{ExecCtx, Layer, NnError};
use rt_tensor::{init, Tensor};

/// How LMP scores are initialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScoreInit {
    /// Scores start at `|θ_pre|`, so the initial mask coincides with
    /// layer-wise OMP (the paper's natural starting point).
    Magnitude,
    /// Scores start from small random values (the `--score-init` ablation).
    Random,
}

/// Puts `model` into LMP mode: every prunable weight gets a frozen copy of
/// its current (pretrained) value and a learnable score tensor, and is
/// marked non-trainable so the regular optimizer leaves it alone.
///
/// # Errors
///
/// Currently infallible; returns `Result` for interface stability.
pub fn init_lmp<R: Rng>(
    model: &mut dyn Layer,
    scope: &PruneScope,
    score_init: ScoreInit,
    rng: &mut R,
) -> Result<()> {
    for p in model.params_mut() {
        if !scope.is_prunable(p) {
            continue;
        }
        p.frozen = Some(p.data.clone());
        p.scores = Some(match score_init {
            ScoreInit::Magnitude => p.data.abs(),
            ScoreInit::Random => init::uniform(p.data.shape(), 0.0, 1.0, rng),
        });
        p.trainable = false;
    }
    Ok(())
}

/// Rebuilds every LMP parameter's effective weight from its scores:
/// `W_eff = binarize_topk(scores) ⊙ θ_pre`, keeping the top
/// `(1 − sparsity)` fraction of scores *per layer*.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] if `sparsity` is outside `[0, 1)`.
pub fn lmp_apply_masks(model: &mut dyn Layer, sparsity: f64) -> Result<()> {
    if !(0.0..1.0).contains(&sparsity) {
        return Err(NnError::InvalidConfig {
            detail: format!("sparsity must be in [0, 1), got {sparsity}"),
        });
    }
    for p in model.params_mut() {
        let (Some(frozen), Some(scores)) = (&p.frozen, &p.scores) else {
            continue;
        };
        let keep = ((1.0 - sparsity) * scores.len() as f64).round() as usize;
        let mask = topk_mask(scores, keep);
        let mut eff = frozen.clone();
        eff.mul_assign(&mask)?;
        p.data = eff;
        // set_mask (rather than a raw `p.mask` assignment) re-canonicalizes
        // pruned entries to +0.0 and compiles the sparse execution plan.
        p.set_mask(mask)?;
    }
    Ok(())
}

/// Applies one straight-through SGD step to every LMP score tensor:
/// `scores -= lr · (∂L/∂W_eff ⊙ θ_pre)`, then clears the weight gradients.
///
/// # Errors
///
/// Propagates shape errors (internal inconsistency only).
pub fn lmp_update_scores(model: &mut dyn Layer, lr: f32) -> Result<()> {
    for p in model.params_mut() {
        let (Some(frozen), Some(scores)) = (&p.frozen, &mut p.scores) else {
            continue;
        };
        for ((s, &g), &w) in scores
            .data_mut()
            .iter_mut()
            .zip(p.grad.data())
            .zip(frozen.data())
        {
            *s -= lr * g * w;
        }
        p.zero_grad();
    }
    Ok(())
}

/// Leaves LMP mode: fixes the final binary mask, restores
/// `W = θ_pre ⊙ mask`, clears the score/frozen machinery, re-marks the
/// weights trainable, and returns the learned ticket.
///
/// # Errors
///
/// Propagates shape errors (internal inconsistency only).
pub fn finalize_lmp(model: &mut dyn Layer, sparsity: f64) -> Result<TicketMask> {
    lmp_apply_masks(model, sparsity)?;
    for p in model.params_mut() {
        if p.frozen.is_none() {
            continue;
        }
        p.frozen = None;
        p.scores = None;
        p.trainable = true;
    }
    Ok(TicketMask::capture(model))
}

/// Binary mask keeping the `keep` highest-valued entries of `scores`
/// (ties broken by index order).
fn topk_mask(scores: &Tensor, keep: usize) -> Tensor {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores.data()[b]
            .partial_cmp(&scores.data()[a])
            .expect("finite scores")
    });
    let mut mask = Tensor::zeros(scores.shape());
    for &i in order.iter().take(keep) {
        mask.data_mut()[i] = 1.0;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_models::{MicroResNet, ResNetConfig};
    use rt_nn::loss::CrossEntropyLoss;
    use rt_nn::optim::Sgd;
    use rt_nn::ExecCtx;
    use rt_tensor::rng::rng_from_seed;

    fn model() -> MicroResNet {
        MicroResNet::new(&ResNetConfig::smoke(2), &mut rng_from_seed(0)).unwrap()
    }

    #[test]
    fn topk_mask_selects_highest() {
        let scores = Tensor::from_vec(vec![5], vec![0.1, 0.9, 0.5, 0.3, 0.7]).unwrap();
        let mask = topk_mask(&scores, 2);
        assert_eq!(mask.data(), &[0.0, 1.0, 0.0, 0.0, 1.0]);
        assert_eq!(topk_mask(&scores, 0).sum(), 0.0);
        assert_eq!(topk_mask(&scores, 5).sum(), 5.0);
    }

    #[test]
    fn init_freezes_prunable_weights() {
        let mut m = model();
        let scope = PruneScope::backbone();
        init_lmp(&mut m, &scope, ScoreInit::Magnitude, &mut rng_from_seed(1)).unwrap();
        for p in m.params() {
            if scope.is_prunable(p) {
                assert!(!p.trainable);
                assert!(p.frozen.is_some());
                assert!(p.scores.is_some());
                // Magnitude init: scores equal |w|.
                let s = p.scores.as_ref().unwrap();
                for (&sv, &wv) in s.data().iter().zip(p.data.data()) {
                    assert_eq!(sv, wv.abs());
                }
            } else {
                assert!(p.trainable);
                assert!(p.frozen.is_none());
            }
        }
    }

    #[test]
    fn apply_masks_hits_per_layer_sparsity() {
        let mut m = model();
        init_lmp(
            &mut m,
            &PruneScope::backbone(),
            ScoreInit::Random,
            &mut rng_from_seed(2),
        )
        .unwrap();
        lmp_apply_masks(&mut m, 0.6).unwrap();
        for p in m.params() {
            if let Some(frozen) = &p.frozen {
                let s = p.sparsity();
                assert!((s - 0.6).abs() < 0.05, "{}: {s}", p.name);
                // Effective weights are frozen ⊙ mask.
                let mask = p.mask.as_ref().unwrap();
                for ((&w, &f), &k) in p.data.data().iter().zip(frozen.data()).zip(mask.data()) {
                    assert_eq!(w, f * k);
                }
            }
        }
    }

    #[test]
    fn ste_moves_scores_against_gradient() {
        let mut m = model();
        init_lmp(
            &mut m,
            &PruneScope::backbone(),
            ScoreInit::Magnitude,
            &mut rng_from_seed(3),
        )
        .unwrap();
        lmp_apply_masks(&mut m, 0.3).unwrap();
        let before: Vec<Tensor> = m.params().iter().filter_map(|p| p.scores.clone()).collect();
        // One training step.
        let x = Tensor::from_fn(&[4, 3, 8, 8], |i| ((i % 5) as f32 - 2.0) * 0.3);
        let labels = [0usize, 1, 0, 1];
        let logits = m.forward(&x, ExecCtx::train()).unwrap();
        let out = CrossEntropyLoss::new().forward(&logits, &labels).unwrap();
        m.backward(&out.grad, ExecCtx::default()).unwrap();
        lmp_update_scores(&mut m, 0.5).unwrap();
        let after: Vec<Tensor> = m.params().iter().filter_map(|p| p.scores.clone()).collect();
        let moved = before
            .iter()
            .zip(&after)
            .any(|(b, a)| b.sub(a).unwrap().l1_norm() > 0.0);
        assert!(moved, "scores must change under STE updates");
        // Gradients were cleared for LMP params.
        for p in m.params() {
            if p.scores.is_some() {
                assert_eq!(p.grad.l1_norm(), 0.0);
            }
        }
    }

    #[test]
    fn finalize_returns_ticket_and_restores_trainability() {
        let mut m = model();
        init_lmp(
            &mut m,
            &PruneScope::backbone(),
            ScoreInit::Magnitude,
            &mut rng_from_seed(4),
        )
        .unwrap();
        lmp_apply_masks(&mut m, 0.5).unwrap();
        let ticket = finalize_lmp(&mut m, 0.5).unwrap();
        assert!((ticket.sparsity() - 0.5).abs() < 0.05);
        for p in m.params() {
            assert!(p.trainable);
            assert!(p.frozen.is_none());
            assert!(p.scores.is_none());
        }
    }

    #[test]
    fn lmp_training_loop_improves_loss_without_touching_frozen_weights() {
        let mut m = model();
        let scope = PruneScope::backbone();
        init_lmp(&mut m, &scope, ScoreInit::Magnitude, &mut rng_from_seed(5)).unwrap();
        let frozen_before: Vec<Tensor> =
            m.params().iter().filter_map(|p| p.frozen.clone()).collect();

        let x = Tensor::from_fn(
            &[8, 3, 8, 8],
            |i| if (i / 64) % 2 == 0 { 0.8 } else { -0.8 },
        );
        let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
        let loss_fn = CrossEntropyLoss::new();
        let head_opt = Sgd::new(0.05).with_momentum(0.9);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..15 {
            lmp_apply_masks(&mut m, 0.4).unwrap();
            let logits = m.forward(&x, ExecCtx::train()).unwrap();
            let out = loss_fn.forward(&logits, &labels).unwrap();
            m.backward(&out.grad, ExecCtx::default()).unwrap();
            lmp_update_scores(&mut m, 0.1).unwrap();
            head_opt.step(&mut m).unwrap();
            first.get_or_insert(out.loss);
            last = out.loss;
        }
        assert!(last < first.unwrap(), "{first:?} -> {last}");
        // Frozen copies never change.
        let frozen_after: Vec<Tensor> =
            m.params().iter().filter_map(|p| p.frozen.clone()).collect();
        assert_eq!(frozen_before, frozen_after);
    }

    #[test]
    fn invalid_sparsity_rejected() {
        let mut m = model();
        assert!(lmp_apply_masks(&mut m, 1.0).is_err());
        assert!(lmp_apply_masks(&mut m, -0.2).is_err());
    }
}
