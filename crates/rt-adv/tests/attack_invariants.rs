//! Property-based tests for attack invariants: the ℓ∞ projection must hold
//! for every configuration, and attacks never help the model.

use proptest::prelude::*;
use rt_adv::attack::{perturb, AttackConfig};
use rt_adv::eval::{adversarial_accuracy, clean_accuracy};
use rt_adv::smoothing::gaussian_augment;
use rt_nn::layers::{Flatten, Linear};
use rt_nn::Sequential;
use rt_tensor::rng::rng_from_seed;
use rt_tensor::{init, Tensor};

fn toy_model(seed: u64) -> Sequential {
    let mut rng = rng_from_seed(seed);
    Sequential::new(vec![
        Box::new(Flatten::new()),
        Box::new(Linear::new(8, 3, &mut rng).unwrap()),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every perturbed pixel stays within the ε ball, for any ε, step
    /// size, and step count.
    #[test]
    fn linf_projection_always_holds(
        eps in 0.01f32..1.0,
        step_frac in 0.1f32..3.0,
        steps in 1usize..6,
        seed in 0u64..100,
    ) {
        let mut model = toy_model(seed);
        let x = init::normal(&[2, 2, 2, 2], 0.0, 1.0, &mut rng_from_seed(seed + 1));
        let cfg = AttackConfig {
            epsilon: eps,
            step_size: eps * step_frac,
            steps,
            random_start: true,
        };
        let adv = perturb(&mut model, &x, &[0, 1], &cfg, &mut rng_from_seed(seed + 2)).unwrap();
        for (a, o) in adv.data().iter().zip(x.data()) {
            prop_assert!((a - o).abs() <= eps + 1e-5, "|delta|={} eps={}", (a - o).abs(), eps);
        }
    }

    /// Adversarial accuracy never exceeds clean accuracy on the same data
    /// (the attacked points are chosen to hurt).
    #[test]
    fn attack_never_helps(seed in 0u64..50, eps in 0.05f32..0.6) {
        let mut model = toy_model(seed);
        let x = init::normal(&[6, 2, 2, 2], 0.0, 1.0, &mut rng_from_seed(seed + 3));
        let labels = [0usize, 1, 2, 0, 1, 2];
        let clean = clean_accuracy(&mut model, &x, &labels).unwrap();
        let adv = adversarial_accuracy(
            &mut model,
            &x,
            &labels,
            &AttackConfig::pgd(eps, 4),
            &mut rng_from_seed(seed + 4),
        )
        .unwrap();
        // A linear model attacked along the exact gradient cannot gain.
        prop_assert!(adv <= clean + 1e-9, "adv {adv} > clean {clean}");
    }

    /// Larger ε never yields *higher* adversarial accuracy on a linear
    /// model (monotone degradation).
    #[test]
    fn degradation_is_monotone_in_eps(seed in 0u64..30) {
        let mut model = toy_model(seed);
        let x = init::normal(&[8, 2, 2, 2], 0.0, 1.0, &mut rng_from_seed(seed + 5));
        let labels = [0usize, 1, 2, 0, 1, 2, 0, 1];
        let mut last = f64::INFINITY;
        for eps in [0.05f32, 0.2, 0.6] {
            // FGSM on a linear model is the optimal ℓ∞ attack, so
            // monotonicity must hold exactly.
            let acc = adversarial_accuracy(
                &mut model,
                &x,
                &labels,
                &AttackConfig::fgsm(eps),
                &mut rng_from_seed(seed + 6),
            )
            .unwrap();
            prop_assert!(acc <= last + 1e-9, "eps {eps}: {acc} > {last}");
            last = acc;
        }
    }

    /// Gaussian augmentation is unbiased: the mean perturbation vanishes
    /// as the batch grows.
    #[test]
    fn gaussian_noise_is_centered(seed in 0u64..50, sigma in 0.1f32..1.0) {
        let x = Tensor::zeros(&[1, 1, 40, 40]);
        let noisy = gaussian_augment(&x, sigma, &mut rng_from_seed(seed));
        let mean = noisy.mean();
        prop_assert!(mean.abs() < 4.0 * sigma / 40.0, "mean {mean}");
    }
}

/// PGD through the full network must be byte-identical under any rt-par
/// pool size: every kernel on the attack path (GEMM, conv lowering,
/// reductions) chunks by problem size and folds partials in index order.
#[test]
fn pgd_is_pool_size_invariant() {
    let run = || {
        let mut model = toy_model(3);
        let x = init::uniform(&[6, 2, 2, 2], 0.0, 1.0, &mut rng_from_seed(4));
        let labels: Vec<usize> = (0..6).map(|i| i % 3).collect();
        let cfg = AttackConfig::pgd(0.1, 4);
        let adv = perturb(&mut model, &x, &labels, &cfg, &mut rng_from_seed(5)).unwrap();
        adv.into_vec()
            .into_iter()
            .map(f32::to_bits)
            .collect::<Vec<u32>>()
    };
    rt_par::set_threads(1);
    let reference = run();
    for t in [2usize, 4, 7] {
        rt_par::set_threads(t);
        let got = run();
        rt_par::set_threads(1);
        assert_eq!(got, reference, "pool size {t} diverged");
    }
}
