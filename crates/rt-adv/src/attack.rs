//! ℓ∞-bounded gradient attacks.

use rand::Rng;
use rt_nn::loss::CrossEntropyLoss;
use rt_nn::{ExecCtx, Layer, NnError, Result};
use rt_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// Configuration of an ℓ∞ attack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackConfig {
    /// ℓ∞ radius of the perturbation ball.
    pub epsilon: f32,
    /// Per-iteration step size.
    pub step_size: f32,
    /// Number of gradient steps (1 = FGSM).
    pub steps: usize,
    /// Start from a uniform random point inside the ball (PGD convention).
    pub random_start: bool,
}

impl AttackConfig {
    /// Single-step FGSM at radius `epsilon`.
    pub fn fgsm(epsilon: f32) -> Self {
        AttackConfig {
            epsilon,
            step_size: epsilon,
            steps: 1,
            random_start: false,
        }
    }

    /// `steps`-step PGD at radius `epsilon` with the standard
    /// `2.5·ε/steps` step size and a random start.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    pub fn pgd(epsilon: f32, steps: usize) -> Self {
        assert!(steps > 0, "PGD needs at least one step");
        AttackConfig {
            epsilon,
            step_size: 2.5 * epsilon / steps as f32,
            steps,
            random_start: true,
        }
    }

    /// Returns a copy with a different step size.
    pub fn with_step_size(mut self, step_size: f32) -> Self {
        self.step_size = step_size;
        self
    }
}

/// Generates adversarial examples maximizing the cross-entropy of `model`
/// on `(images, labels)` within the configured ℓ∞ ball.
///
/// The model is run in [`ExecCtx::eval`] (frozen statistics). Parameter
/// gradients accumulated while differentiating toward the input are zeroed
/// before returning, so an enclosing training loop sees clean state.
///
/// # Errors
///
/// Propagates forward/backward errors (shape mismatches, label range).
pub fn perturb<R: Rng>(
    model: &mut dyn Layer,
    images: &Tensor,
    labels: &[usize],
    config: &AttackConfig,
    rng: &mut R,
) -> Result<Tensor> {
    let mut adv = images.clone();
    random_start(&mut adv, config, rng);
    pgd_core(model, adv, images, labels, config)
}

/// Applies the uniform random start inside the ε-ball. Draws are made
/// serially over the whole batch so the result is independent of any later
/// sharding of the PGD loop.
fn random_start<R: Rng>(adv: &mut Tensor, config: &AttackConfig, rng: &mut R) {
    if config.random_start && config.epsilon > 0.0 {
        for v in adv.data_mut() {
            *v += rng.gen_range(-config.epsilon..=config.epsilon);
        }
    }
}

/// The PGD ascent loop proper: `adv` already carries the random start.
fn pgd_core(
    model: &mut dyn Layer,
    mut adv: Tensor,
    images: &Tensor,
    labels: &[usize],
    config: &AttackConfig,
) -> Result<Tensor> {
    let loss_fn = CrossEntropyLoss::new();
    // Hoisted: the handle is fetched once per attack, and the per-step
    // stopwatch only starts when the histogram is live.
    let step_hist = rt_obs::histogram("adv.pgd_step_ms");
    let time_steps = step_hist.is_active();
    let ctx = ExecCtx::eval();
    for _ in 0..config.steps {
        let step_t0 = rt_obs::Stopwatch::start_if(time_steps);
        let logits = model.forward(&adv, ctx)?;
        let out = loss_fn.forward(&logits, labels)?;
        model.zero_grad();
        let grad = model.backward(&out.grad, ctx)?;
        model.zero_grad();
        // Ascend the loss along the gradient sign, project onto the ball.
        for ((a, &x), &g) in adv
            .data_mut()
            .iter_mut()
            .zip(images.data())
            .zip(grad.data())
        {
            *a += config.step_size * g.signum();
            *a = a.clamp(x - config.epsilon, x + config.epsilon);
        }
        if let Some(t0) = step_t0 {
            step_hist.observe(t0.elapsed_ms());
        }
    }
    rt_obs::counter("adv.pgd_steps").add(config.steps as u64);
    Ok(adv)
}

/// Batch-sharded PGD: fans contiguous sample shards out over independent
/// model replicas on the [`rt_par`] pool.
///
/// Bitwise equivalence with [`perturb`] holds because every per-sample
/// quantity in an Eval-mode pass is independent of the other samples in
/// the batch: convolution, linear, BatchNorm (running statistics), and the
/// row-softmax all process sample `i`'s data in the same serial order
/// whatever the batch size, and the cross-entropy gradient differs between
/// shard and full batch only by the positive `1/N` batch normalizer —
/// which `signum` erases. Random-start noise is drawn serially over the
/// full batch *before* sharding, and shard boundaries are a pure function
/// of `(batch, replicas.len())`, so the output never depends on thread
/// scheduling.
///
/// Replicas must hold identical weights (e.g. restored from one
/// checkpoint); shard `r` of `ceil(n / replicas.len())` samples runs on
/// `replicas[r]`. All replicas' parameter gradients are zeroed on return.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for an empty replica slice or a
/// label/batch length mismatch, and propagates forward/backward errors.
pub fn perturb_replicas<R: Rng>(
    replicas: &mut [Box<dyn Layer>],
    images: &Tensor,
    labels: &[usize],
    config: &AttackConfig,
    rng: &mut R,
) -> Result<Tensor> {
    if replicas.is_empty() {
        return Err(NnError::InvalidConfig {
            detail: "perturb_replicas needs at least one model replica".into(),
        });
    }
    let n = *images.shape().first().unwrap_or(&0);
    if labels.len() != n {
        return Err(NnError::InvalidConfig {
            detail: format!("batch {n} vs {} labels", labels.len()),
        });
    }
    let mut adv = images.clone();
    random_start(&mut adv, config, rng);
    if replicas.len() == 1 || n <= 1 {
        return pgd_core(&mut *replicas[0], adv, images, labels, config);
    }

    let sample_len = images.len() / n.max(1);
    let shard = n.div_ceil(replicas.len());
    let shards = n.div_ceil(shard);
    let mut sample_shape = images.shape().to_vec();
    // Per-shard results land in slots, folded back in shard order below.
    let slots: Vec<Mutex<Option<Result<Tensor>>>> =
        (0..shards).map(|_| Mutex::new(None)).collect();
    {
        let adv_ref = &adv;
        let images_ref = &*images;
        let slots_ref = &slots;
        let shape_ref = &sample_shape;
        rt_par::par_chunks_mut(&mut replicas[..shards], 1, |r, replica| {
            let lo = r * shard;
            let hi = (lo + shard).min(n);
            let rows = hi - lo;
            let mut shape = shape_ref.clone();
            shape[0] = rows;
            let result = (|| {
                let adv_shard = Tensor::from_vec(
                    shape.clone(),
                    adv_ref.data()[lo * sample_len..hi * sample_len].to_vec(),
                )?;
                let img_shard = Tensor::from_vec(
                    shape,
                    images_ref.data()[lo * sample_len..hi * sample_len].to_vec(),
                )?;
                pgd_core(
                    &mut *replica[0],
                    adv_shard,
                    &img_shard,
                    &labels[lo..hi],
                    config,
                )
            })();
            *slots_ref[r].lock().expect("shard slot") = Some(result);
        });
    }
    sample_shape[0] = n;
    let mut out = Vec::with_capacity(images.len());
    for slot in slots {
        let result = slot.into_inner().expect("shard slot").expect("shard ran");
        out.extend_from_slice(result?.data());
    }
    Ok(Tensor::from_vec(sample_shape, out)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_models::{MicroResNet, ResNetConfig};
    use rt_nn::layers::{Flatten, Linear};
    use rt_nn::Sequential;
    use rt_tensor::init;
    use rt_tensor::rng::rng_from_seed;

    #[test]
    fn perturbation_respects_epsilon_ball() {
        let mut rng = rng_from_seed(0);
        let mut model = Sequential::new(vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(12, 3, &mut rng).unwrap()),
        ]);
        let x = init::normal(&[2, 3, 2, 2], 0.0, 1.0, &mut rng);
        let cfg = AttackConfig::pgd(0.1, 4);
        let adv = perturb(&mut model, &x, &[0, 1], &cfg, &mut rng).unwrap();
        for (a, o) in adv.data().iter().zip(x.data()) {
            assert!((a - o).abs() <= 0.1 + 1e-5, "|δ| = {}", (a - o).abs());
        }
    }

    #[test]
    fn attack_increases_loss() {
        use rt_nn::loss::CrossEntropyLoss;
        let mut rng = rng_from_seed(1);
        let mut model = MicroResNet::new(&ResNetConfig::smoke(3), &mut rng).unwrap();
        let x = init::normal(&[4, 3, 8, 8], 0.0, 1.0, &mut rng);
        let labels = [0usize, 1, 2, 0];
        // Warm BN stats so Eval mode is sane.
        model.forward(&x, ExecCtx::train()).unwrap();
        model.zero_grad();

        let loss_fn = CrossEntropyLoss::new();
        let clean = loss_fn
            .forward(&model.forward(&x, ExecCtx::eval()).unwrap(), &labels)
            .unwrap()
            .loss;
        let cfg = AttackConfig::pgd(0.5, 5);
        let adv = perturb(&mut model, &x, &labels, &cfg, &mut rng).unwrap();
        let attacked = loss_fn
            .forward(&model.forward(&adv, ExecCtx::eval()).unwrap(), &labels)
            .unwrap()
            .loss;
        assert!(
            attacked > clean,
            "PGD must increase loss: clean {clean} vs adv {attacked}"
        );
    }

    #[test]
    fn fgsm_is_single_deterministic_step() {
        let mut rng = rng_from_seed(2);
        let mut model = Sequential::new(vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(4, 2, &mut rng).unwrap()),
        ]);
        let x = init::normal(&[1, 1, 2, 2], 0.0, 1.0, &mut rng);
        let cfg = AttackConfig::fgsm(0.2);
        let a1 = perturb(&mut model, &x, &[0], &cfg, &mut rng_from_seed(5)).unwrap();
        let a2 = perturb(&mut model, &x, &[0], &cfg, &mut rng_from_seed(99)).unwrap();
        // No random start: the RNG must not matter.
        assert_eq!(a1, a2);
        // Every pixel moved by exactly ±ε (sign of a generically nonzero grad).
        for (a, o) in a1.data().iter().zip(x.data()) {
            assert!(((a - o).abs() - 0.2).abs() < 1e-5);
        }
    }

    #[test]
    fn zero_epsilon_is_identity_without_random_start() {
        let mut rng = rng_from_seed(3);
        let mut model = Sequential::new(vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(4, 2, &mut rng).unwrap()),
        ]);
        let x = init::normal(&[1, 1, 2, 2], 0.0, 1.0, &mut rng);
        let cfg = AttackConfig {
            epsilon: 0.0,
            step_size: 0.1,
            steps: 3,
            random_start: false,
        };
        let adv = perturb(&mut model, &x, &[1], &cfg, &mut rng).unwrap();
        assert_eq!(adv, x);
    }

    #[test]
    fn param_grads_are_clean_after_attack() {
        let mut rng = rng_from_seed(4);
        let mut model = Sequential::new(vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(4, 2, &mut rng).unwrap()),
        ]);
        let x = init::normal(&[2, 1, 2, 2], 0.0, 1.0, &mut rng);
        let cfg = AttackConfig::pgd(0.1, 3);
        perturb(&mut model, &x, &[0, 1], &cfg, &mut rng).unwrap();
        for p in model.params() {
            assert_eq!(p.grad.l1_norm(), 0.0, "param {} has stale grads", p.name);
        }
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_step_pgd_panics() {
        let _ = AttackConfig::pgd(0.1, 0);
    }

    fn toy_model(seed: u64) -> Box<dyn Layer> {
        let mut rng = rng_from_seed(seed);
        Box::new(Sequential::new(vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(12, 3, &mut rng).unwrap()),
        ]))
    }

    #[test]
    fn sharded_pgd_matches_full_batch_bitwise() {
        let mut rng = rng_from_seed(7);
        let x = init::normal(&[5, 3, 2, 2], 0.0, 1.0, &mut rng);
        let labels = [0usize, 1, 2, 0, 1];
        let cfg = AttackConfig::pgd(0.2, 4);

        let mut single = toy_model(42);
        let full = perturb(&mut *single, &x, &labels, &cfg, &mut rng_from_seed(9)).unwrap();
        for replicas in [1usize, 2, 3, 5] {
            let mut models: Vec<Box<dyn Layer>> =
                (0..replicas).map(|_| toy_model(42)).collect();
            let sharded =
                perturb_replicas(&mut models, &x, &labels, &cfg, &mut rng_from_seed(9))
                    .unwrap();
            assert_eq!(
                full.data(),
                sharded.data(),
                "{replicas} replicas must reproduce the full-batch attack"
            );
        }
    }

    #[test]
    fn sharded_pgd_validates_inputs() {
        let x = Tensor::ones(&[2, 3, 2, 2]);
        let cfg = AttackConfig::fgsm(0.1);
        let mut none: Vec<Box<dyn Layer>> = Vec::new();
        assert!(perturb_replicas(&mut none, &x, &[0, 1], &cfg, &mut rng_from_seed(0)).is_err());
        let mut one = vec![toy_model(0)];
        assert!(perturb_replicas(&mut one, &x, &[0], &cfg, &mut rng_from_seed(0)).is_err());
    }
}
