//! ℓ∞-bounded gradient attacks.

use rand::Rng;
use rt_nn::loss::CrossEntropyLoss;
use rt_nn::{Layer, Mode, Result};
use rt_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Configuration of an ℓ∞ attack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackConfig {
    /// ℓ∞ radius of the perturbation ball.
    pub epsilon: f32,
    /// Per-iteration step size.
    pub step_size: f32,
    /// Number of gradient steps (1 = FGSM).
    pub steps: usize,
    /// Start from a uniform random point inside the ball (PGD convention).
    pub random_start: bool,
}

impl AttackConfig {
    /// Single-step FGSM at radius `epsilon`.
    pub fn fgsm(epsilon: f32) -> Self {
        AttackConfig {
            epsilon,
            step_size: epsilon,
            steps: 1,
            random_start: false,
        }
    }

    /// `steps`-step PGD at radius `epsilon` with the standard
    /// `2.5·ε/steps` step size and a random start.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    pub fn pgd(epsilon: f32, steps: usize) -> Self {
        assert!(steps > 0, "PGD needs at least one step");
        AttackConfig {
            epsilon,
            step_size: 2.5 * epsilon / steps as f32,
            steps,
            random_start: true,
        }
    }

    /// Returns a copy with a different step size.
    pub fn with_step_size(mut self, step_size: f32) -> Self {
        self.step_size = step_size;
        self
    }
}

/// Generates adversarial examples maximizing the cross-entropy of `model`
/// on `(images, labels)` within the configured ℓ∞ ball.
///
/// The model is run in [`Mode::Eval`] (frozen statistics). Parameter
/// gradients accumulated while differentiating toward the input are zeroed
/// before returning, so an enclosing training loop sees clean state.
///
/// # Errors
///
/// Propagates forward/backward errors (shape mismatches, label range).
pub fn perturb<R: Rng>(
    model: &mut dyn Layer,
    images: &Tensor,
    labels: &[usize],
    config: &AttackConfig,
    rng: &mut R,
) -> Result<Tensor> {
    let loss_fn = CrossEntropyLoss::new();
    let mut adv = images.clone();
    if config.random_start && config.epsilon > 0.0 {
        for v in adv.data_mut() {
            *v += rng.gen_range(-config.epsilon..=config.epsilon);
        }
    }
    // Hoisted: the handle is fetched once per attack, and the per-step
    // `Instant::now()` pair only runs when the histogram is live.
    let step_hist = rt_obs::histogram("adv.pgd_step_ms");
    let time_steps = step_hist.is_active();
    for _ in 0..config.steps {
        let step_t0 = time_steps.then(std::time::Instant::now);
        let logits = model.forward(&adv, Mode::Eval)?;
        let out = loss_fn.forward(&logits, labels)?;
        model.zero_grad();
        let grad = model.backward(&out.grad)?;
        model.zero_grad();
        // Ascend the loss along the gradient sign, project onto the ball.
        for ((a, &x), &g) in adv
            .data_mut()
            .iter_mut()
            .zip(images.data())
            .zip(grad.data())
        {
            *a += config.step_size * g.signum();
            *a = a.clamp(x - config.epsilon, x + config.epsilon);
        }
        if let Some(t0) = step_t0 {
            step_hist.observe(t0.elapsed().as_secs_f64() * 1e3);
        }
    }
    rt_obs::counter("adv.pgd_steps").add(config.steps as u64);
    Ok(adv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_models::{MicroResNet, ResNetConfig};
    use rt_nn::layers::{Flatten, Linear};
    use rt_nn::Sequential;
    use rt_tensor::init;
    use rt_tensor::rng::rng_from_seed;

    #[test]
    fn perturbation_respects_epsilon_ball() {
        let mut rng = rng_from_seed(0);
        let mut model = Sequential::new(vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(12, 3, &mut rng).unwrap()),
        ]);
        let x = init::normal(&[2, 3, 2, 2], 0.0, 1.0, &mut rng);
        let cfg = AttackConfig::pgd(0.1, 4);
        let adv = perturb(&mut model, &x, &[0, 1], &cfg, &mut rng).unwrap();
        for (a, o) in adv.data().iter().zip(x.data()) {
            assert!((a - o).abs() <= 0.1 + 1e-5, "|δ| = {}", (a - o).abs());
        }
    }

    #[test]
    fn attack_increases_loss() {
        use rt_nn::loss::CrossEntropyLoss;
        let mut rng = rng_from_seed(1);
        let mut model = MicroResNet::new(&ResNetConfig::smoke(3), &mut rng).unwrap();
        let x = init::normal(&[4, 3, 8, 8], 0.0, 1.0, &mut rng);
        let labels = [0usize, 1, 2, 0];
        // Warm BN stats so Eval mode is sane.
        model.forward(&x, Mode::Train).unwrap();
        model.zero_grad();

        let loss_fn = CrossEntropyLoss::new();
        let clean = loss_fn
            .forward(&model.forward(&x, Mode::Eval).unwrap(), &labels)
            .unwrap()
            .loss;
        let cfg = AttackConfig::pgd(0.5, 5);
        let adv = perturb(&mut model, &x, &labels, &cfg, &mut rng).unwrap();
        let attacked = loss_fn
            .forward(&model.forward(&adv, Mode::Eval).unwrap(), &labels)
            .unwrap()
            .loss;
        assert!(
            attacked > clean,
            "PGD must increase loss: clean {clean} vs adv {attacked}"
        );
    }

    #[test]
    fn fgsm_is_single_deterministic_step() {
        let mut rng = rng_from_seed(2);
        let mut model = Sequential::new(vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(4, 2, &mut rng).unwrap()),
        ]);
        let x = init::normal(&[1, 1, 2, 2], 0.0, 1.0, &mut rng);
        let cfg = AttackConfig::fgsm(0.2);
        let a1 = perturb(&mut model, &x, &[0], &cfg, &mut rng_from_seed(5)).unwrap();
        let a2 = perturb(&mut model, &x, &[0], &cfg, &mut rng_from_seed(99)).unwrap();
        // No random start: the RNG must not matter.
        assert_eq!(a1, a2);
        // Every pixel moved by exactly ±ε (sign of a generically nonzero grad).
        for (a, o) in a1.data().iter().zip(x.data()) {
            assert!(((a - o).abs() - 0.2).abs() < 1e-5);
        }
    }

    #[test]
    fn zero_epsilon_is_identity_without_random_start() {
        let mut rng = rng_from_seed(3);
        let mut model = Sequential::new(vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(4, 2, &mut rng).unwrap()),
        ]);
        let x = init::normal(&[1, 1, 2, 2], 0.0, 1.0, &mut rng);
        let cfg = AttackConfig {
            epsilon: 0.0,
            step_size: 0.1,
            steps: 3,
            random_start: false,
        };
        let adv = perturb(&mut model, &x, &[1], &cfg, &mut rng).unwrap();
        assert_eq!(adv, x);
    }

    #[test]
    fn param_grads_are_clean_after_attack() {
        let mut rng = rng_from_seed(4);
        let mut model = Sequential::new(vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(4, 2, &mut rng).unwrap()),
        ]);
        let x = init::normal(&[2, 1, 2, 2], 0.0, 1.0, &mut rng);
        let cfg = AttackConfig::pgd(0.1, 3);
        perturb(&mut model, &x, &[0, 1], &cfg, &mut rng).unwrap();
        for p in model.params() {
            assert_eq!(p.grad.l1_norm(), 0.0, "param {} has stale grads", p.name);
        }
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_step_pgd_panics() {
        let _ = AttackConfig::pgd(0.1, 0);
    }
}
