//! The Square attack (Andriushchenko et al., ECCV 2020 — the paper's
//! black-box reference \[1\]): a query-efficient random-search ℓ∞ attack
//! that needs **no gradients**, only forward passes.
//!
//! Each iteration proposes flipping the perturbation to ±ε inside one
//! random square window of one random channel and keeps the proposal iff
//! it increases the margin loss. Included so the robustness claims of the
//! reproduction can be sanity-checked against a gradient-free adversary
//! (gradient masking would fool PGD but not Square).

use rand::Rng;
use rt_nn::{ExecCtx, Layer, Result};
use rt_tensor::{Tensor, TensorError};

/// Configuration of a Square-attack run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SquareConfig {
    /// ℓ∞ radius.
    pub epsilon: f32,
    /// Number of random-search iterations (each costs one forward pass on
    /// the still-unbroken samples).
    pub iterations: usize,
    /// Initial square side as a fraction of the image side (shrinks over
    /// the run, as in the original schedule).
    pub initial_fraction: f32,
}

impl SquareConfig {
    /// A sensible default: 100 iterations, squares starting at 1/2 of the
    /// image side.
    pub fn new(epsilon: f32) -> Self {
        SquareConfig {
            epsilon,
            iterations: 100,
            initial_fraction: 0.5,
        }
    }

    /// Returns a copy with a different iteration budget.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }
}

/// Margin loss of the true class: `logit_y − max_{c≠y} logit_c`. Negative
/// = misclassified. The attack minimizes this.
fn margins(logits: &Tensor, labels: &[usize]) -> Vec<f32> {
    let k = logits.shape()[1];
    labels
        .iter()
        .enumerate()
        .map(|(i, &y)| {
            let row = &logits.data()[i * k..(i + 1) * k];
            let correct = row[y];
            let best_other = row
                .iter()
                .enumerate()
                .filter(|(c, _)| *c != y)
                .map(|(_, &v)| v)
                .fold(f32::NEG_INFINITY, f32::max);
            correct - best_other
        })
        .collect()
}

/// Runs the Square attack, returning the adversarial images.
///
/// # Errors
///
/// Returns a rank error for non-NCHW images and propagates model errors.
pub fn square_attack<R: Rng>(
    model: &mut dyn Layer,
    images: &Tensor,
    labels: &[usize],
    config: &SquareConfig,
    rng: &mut R,
) -> Result<Tensor> {
    if images.ndim() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: images.ndim(),
            op: "square_attack",
        }
        .into());
    }
    let s = images.shape().to_vec();
    let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
    let eps = config.epsilon;
    if eps <= 0.0 || n == 0 {
        return Ok(images.clone());
    }

    // Vertical-stripe initialization (the original attack's init).
    let mut adv = images.clone();
    {
        let data = adv.data_mut();
        for b in 0..n {
            for ch in 0..c {
                for x in 0..w {
                    let sign = if rng.gen::<bool>() { eps } else { -eps };
                    for y in 0..h {
                        data[((b * c + ch) * h + y) * w + x] += sign;
                    }
                }
            }
        }
    }
    let mut best_margin = margins(&model.forward(&adv, ExecCtx::eval())?, labels);

    for iter in 0..config.iterations {
        // Square side shrinks over the run (halving schedule).
        let progress = iter as f32 / config.iterations.max(1) as f32;
        let frac = config.initial_fraction * (1.0 - progress).max(0.1);
        let side = ((h.min(w) as f32 * frac).round() as usize).clamp(1, h.min(w));

        // Propose one square per sample.
        let mut proposal = adv.clone();
        let mut windows = Vec::with_capacity(n);
        for b in 0..n {
            let ch = rng.gen_range(0..c);
            let y0 = rng.gen_range(0..=h - side);
            let x0 = rng.gen_range(0..=w - side);
            let sign = if rng.gen::<bool>() { eps } else { -eps };
            windows.push((b, ch, y0, x0, sign));
            let data = proposal.data_mut();
            for y in y0..y0 + side {
                for x in x0..x0 + side {
                    let idx = ((b * c + ch) * h + y) * w + x;
                    // Set the perturbation inside the window to ±ε exactly.
                    data[idx] = images.data()[idx] + sign;
                }
            }
        }
        let new_margin = margins(&model.forward(&proposal, ExecCtx::eval())?, labels);
        // Accept per-sample improvements.
        for (b, &m_new) in new_margin.iter().enumerate() {
            if m_new < best_margin[b] {
                best_margin[b] = m_new;
                let (bb, ch, y0, x0, sign) = windows[b];
                debug_assert_eq!(bb, b);
                let data = adv.data_mut();
                for y in y0..y0 + side {
                    for x in x0..x0 + side {
                        let idx = ((b * c + ch) * h + y) * w + x;
                        data[idx] = images.data()[idx] + sign;
                    }
                }
            }
        }
    }
    // Final projection (defensive; all writes above are within the ball).
    let mut out = adv;
    for (a, &o) in out.data_mut().iter_mut().zip(images.data()) {
        *a = a.clamp(o - eps, o + eps);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_nn::layers::{Flatten, Linear};
    use rt_nn::Sequential;
    use rt_tensor::init;
    use rt_tensor::rng::rng_from_seed;

    fn toy_model(seed: u64) -> Sequential {
        let mut rng = rng_from_seed(seed);
        Sequential::new(vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(12, 3, &mut rng).unwrap()),
        ])
    }

    #[test]
    fn stays_in_the_ball() {
        let mut model = toy_model(0);
        let mut rng = rng_from_seed(1);
        let x = init::normal(&[3, 3, 2, 2], 0.0, 1.0, &mut rng);
        let cfg = SquareConfig::new(0.3).with_iterations(20);
        let adv = square_attack(&mut model, &x, &[0, 1, 2], &cfg, &mut rng).unwrap();
        for (a, o) in adv.data().iter().zip(x.data()) {
            assert!((a - o).abs() <= 0.3 + 1e-5);
        }
    }

    #[test]
    fn margin_never_increases_over_iterations() {
        // The accept rule only keeps improvements, so the final margin is
        // no worse than the stripe-init margin.
        let mut model = toy_model(2);
        let mut rng = rng_from_seed(3);
        let x = init::normal(&[4, 3, 2, 2], 0.0, 1.0, &mut rng);
        let labels = [0usize, 1, 2, 0];
        let clean = margins(&model.forward(&x, ExecCtx::eval()).unwrap(), &labels);
        let cfg = SquareConfig::new(0.5).with_iterations(60);
        let adv = square_attack(&mut model, &x, &labels, &cfg, &mut rng).unwrap();
        let attacked = margins(&model.forward(&adv, ExecCtx::eval()).unwrap(), &labels);
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(
            mean(&attacked) < mean(&clean),
            "attack should reduce the mean margin: {attacked:?} vs {clean:?}"
        );
    }

    #[test]
    fn gradient_free_attack_breaks_weak_margins() {
        use crate::eval::clean_accuracy;
        // A mean-classifier with tiny margins, as in the eval tests.
        let mut rng = rng_from_seed(4);
        let mut lin = Linear::new(4, 2, &mut rng).unwrap();
        lin.params_mut()[0].data = Tensor::from_vec(
            vec![2, 4],
            vec![0.25, 0.25, 0.25, 0.25, -0.25, -0.25, -0.25, -0.25],
        )
        .unwrap();
        lin.params_mut()[1].data.fill(0.0);
        let mut model = Sequential::new(vec![Box::new(Flatten::new()), Box::new(lin)]);
        let x = Tensor::from_vec(
            vec![2, 1, 2, 2],
            vec![0.1, 0.1, 0.1, 0.1, -0.1, -0.1, -0.1, -0.1],
        )
        .unwrap();
        let labels = [0usize, 1];
        assert_eq!(clean_accuracy(&mut model, &x, &labels).unwrap(), 1.0);
        let cfg = SquareConfig::new(0.5).with_iterations(80);
        let adv = square_attack(&mut model, &x, &labels, &cfg, &mut rng).unwrap();
        let acc = clean_accuracy(&mut model, &adv, &labels).unwrap();
        assert!(acc < 1.0, "square attack should break at least one sample");
    }

    #[test]
    fn zero_epsilon_is_identity() {
        let mut model = toy_model(5);
        let mut rng = rng_from_seed(6);
        let x = init::normal(&[1, 3, 2, 2], 0.0, 1.0, &mut rng);
        let cfg = SquareConfig::new(0.0);
        let adv = square_attack(&mut model, &x, &[0], &cfg, &mut rng).unwrap();
        assert_eq!(adv, x);
    }

    #[test]
    fn rejects_non_nchw() {
        let mut model = toy_model(7);
        let mut rng = rng_from_seed(8);
        let x = Tensor::ones(&[2, 12]);
        assert!(square_attack(&mut model, &x, &[0, 1], &SquareConfig::new(0.1), &mut rng).is_err());
    }
}
