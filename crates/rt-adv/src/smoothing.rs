//! Randomized-smoothing utilities [Cohen et al., ICML 2019].
//!
//! The paper uses randomized smoothing as an *alternative* robustness prior
//! (Fig. 6): the model is trained on Gaussian-noised inputs, and smoothed
//! inference averages softmax outputs over noise draws. We provide the
//! noise augmentation (consumed by the pretraining pipeline) and the
//! smoothed classifier.

use rand::Rng;
use rt_nn::{ExecCtx, Layer, Result};
use rt_tensor::{init, special, Tensor};

/// Returns a copy of `images` with i.i.d. Gaussian noise of standard
/// deviation `sigma` added — the randomized-smoothing training
/// augmentation.
pub fn gaussian_augment<R: Rng>(images: &Tensor, sigma: f32, rng: &mut R) -> Tensor {
    if sigma <= 0.0 {
        return images.clone();
    }
    let noise = init::normal(images.shape(), 0.0, sigma, rng);
    let mut out = images.clone();
    out.add_assign(&noise).expect("same shape");
    out
}

/// Smoothed prediction: averages the softmax output of `model` over
/// `samples` Gaussian perturbations of the input.
///
/// Returns the averaged class-probability matrix `[N, K]`.
///
/// # Errors
///
/// Propagates model and softmax errors.
///
/// # Panics
///
/// Panics if `samples == 0`.
pub fn smoothed_probs<R: Rng>(
    model: &mut dyn Layer,
    images: &Tensor,
    sigma: f32,
    samples: usize,
    rng: &mut R,
) -> Result<Tensor> {
    assert!(samples > 0, "smoothing needs at least one sample");
    let mut acc: Option<Tensor> = None;
    for _ in 0..samples {
        let noisy = gaussian_augment(images, sigma, rng);
        let logits = model.forward(&noisy, ExecCtx::eval())?;
        let probs = special::softmax_rows(&logits)?;
        match &mut acc {
            None => acc = Some(probs),
            Some(a) => a.add_assign(&probs)?,
        }
    }
    let mut mean = acc.expect("samples > 0");
    mean.scale(1.0 / samples as f32);
    Ok(mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_nn::layers::{Flatten, Linear};
    use rt_nn::Sequential;
    use rt_tensor::rng::rng_from_seed;

    #[test]
    fn zero_sigma_is_identity() {
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let mut rng = rng_from_seed(0);
        assert_eq!(gaussian_augment(&x, 0.0, &mut rng), x);
    }

    #[test]
    fn augment_perturbs_with_expected_scale() {
        let x = Tensor::zeros(&[1, 1, 50, 50]);
        let mut rng = rng_from_seed(1);
        let noisy = gaussian_augment(&x, 0.5, &mut rng);
        let rms = (noisy.data().iter().map(|&v| v * v).sum::<f32>() / noisy.len() as f32).sqrt();
        assert!((rms - 0.5).abs() < 0.05, "rms {rms}");
    }

    #[test]
    fn smoothed_probs_are_distributions() {
        let mut rng = rng_from_seed(2);
        let mut model = Sequential::new(vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(4, 3, &mut rng).unwrap()),
        ]);
        let x = Tensor::ones(&[2, 1, 2, 2]);
        let p = smoothed_probs(&mut model, &x, 0.3, 8, &mut rng).unwrap();
        assert_eq!(p.shape(), &[2, 3]);
        for i in 0..2 {
            let s: f32 = p.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn smoothing_reduces_confidence_spread() {
        // Averaging over noise cannot make the output *more* extreme than
        // the single-sample maximum.
        let mut rng = rng_from_seed(3);
        let mut model = Sequential::new(vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(4, 2, &mut rng).unwrap()),
        ]);
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let sharp = smoothed_probs(&mut model, &x, 0.0, 1, &mut rng).unwrap();
        let smooth = smoothed_probs(&mut model, &x, 2.0, 32, &mut rng).unwrap();
        let conf = |p: &Tensor| p.data().iter().copied().fold(f32::MIN, f32::max);
        assert!(conf(&smooth) <= conf(&sharp) + 1e-4);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        let mut rng = rng_from_seed(4);
        let mut model = Sequential::new(vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(4, 2, &mut rng).unwrap()),
        ]);
        let _ = smoothed_probs(&mut model, &Tensor::ones(&[1, 1, 2, 2]), 0.1, 0, &mut rng);
    }
}
