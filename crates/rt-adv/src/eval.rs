//! Robustness evaluation: accuracy under attack.

use crate::attack::{perturb, AttackConfig};
use rand::Rng;
use rt_nn::{ExecCtx, Layer, Result};
use rt_tensor::{reduce, Tensor};

/// Clean top-1 accuracy of `model` on one `(images, labels)` batch.
///
/// # Errors
///
/// Propagates model errors.
pub fn clean_accuracy(model: &mut dyn Layer, images: &Tensor, labels: &[usize]) -> Result<f64> {
    let logits = model.forward(images, ExecCtx::eval())?;
    let pred = reduce::argmax_rows(&logits)?;
    let correct = pred.iter().zip(labels).filter(|(p, l)| p == l).count();
    Ok(correct as f64 / labels.len().max(1) as f64)
}

/// Top-1 accuracy of `model` on adversarially perturbed inputs
/// ("Adv-Acc" in the paper's Table I).
///
/// # Errors
///
/// Propagates attack and model errors.
pub fn adversarial_accuracy<R: Rng>(
    model: &mut dyn Layer,
    images: &Tensor,
    labels: &[usize],
    config: &AttackConfig,
    rng: &mut R,
) -> Result<f64> {
    let adv = perturb(model, images, labels, config, rng)?;
    clean_accuracy(model, &adv, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_nn::layers::{Flatten, Linear};
    use rt_nn::Sequential;
    use rt_tensor::rng::rng_from_seed;

    /// A linear model whose weights make class prediction depend on the
    /// input mean — trivially attackable.
    fn mean_classifier() -> Sequential {
        let mut rng = rng_from_seed(0);
        let mut lin = Linear::new(4, 2, &mut rng).unwrap();
        // Logit 0 = +mean, logit 1 = −mean (weights ±0.25).
        lin.params_mut()[0].data = Tensor::from_vec(
            vec![2, 4],
            vec![0.25; 4].into_iter().chain(vec![-0.25; 4]).collect(),
        )
        .unwrap();
        lin.params_mut()[1].data.fill(0.0);
        Sequential::new(vec![Box::new(Flatten::new()), Box::new(lin)])
    }

    #[test]
    fn clean_accuracy_on_separable_data() {
        let mut model = mean_classifier();
        // Class 0: positive pixels; class 1: negative pixels.
        let x = Tensor::from_vec(
            vec![2, 1, 2, 2],
            vec![1.0, 1.0, 1.0, 1.0, -1.0, -1.0, -1.0, -1.0],
        )
        .unwrap();
        let acc = clean_accuracy(&mut model, &x, &[0, 1]).unwrap();
        assert_eq!(acc, 1.0);
        let flipped = clean_accuracy(&mut model, &x, &[1, 0]).unwrap();
        assert_eq!(flipped, 0.0);
    }

    #[test]
    fn strong_attack_destroys_weak_margin() {
        let mut model = mean_classifier();
        // Samples barely on the correct side (margin 0.1 in pixel space).
        let x = Tensor::from_vec(
            vec![2, 1, 2, 2],
            vec![0.1, 0.1, 0.1, 0.1, -0.1, -0.1, -0.1, -0.1],
        )
        .unwrap();
        let labels = [0usize, 1];
        let mut rng = rng_from_seed(1);
        let clean = clean_accuracy(&mut model, &x, &labels).unwrap();
        assert_eq!(clean, 1.0);
        // ε = 0.5 > margin: the attack can flip every pixel's sign.
        let adv = adversarial_accuracy(
            &mut model,
            &x,
            &labels,
            &AttackConfig::pgd(0.5, 5),
            &mut rng,
        )
        .unwrap();
        assert_eq!(adv, 0.0, "attack must break the weak margin");
        // ε smaller than the margin cannot flip anything.
        let safe = adversarial_accuracy(
            &mut model,
            &x,
            &labels,
            &AttackConfig::pgd(0.05, 5),
            &mut rng,
        )
        .unwrap();
        assert_eq!(safe, 1.0, "sub-margin attack must fail");
    }

    #[test]
    fn empty_batch_accuracy_is_zero_not_nan() {
        let mut model = mean_classifier();
        let x = Tensor::zeros(&[0, 1, 2, 2]);
        let acc = clean_accuracy(&mut model, &x, &[]).unwrap();
        assert_eq!(acc, 0.0);
    }
}
