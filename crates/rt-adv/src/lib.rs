//! Adversarial machinery: ℓ∞ attacks (FGSM, PGD), randomized-smoothing
//! utilities, and robust-accuracy evaluation.
//!
//! The paper robustifies pretrained models with PGD adversarial training
//! [Madry et al.] and validates generality with randomized smoothing
//! [Cohen et al.]. This crate provides the attack/noise primitives; the
//! training loops that consume them live in `rt-transfer` (which owns the
//! dataset plumbing).
//!
//! Attacks differentiate through the *exact* network backward pass down to
//! the pixels (see `rt-nn`'s layer contract), and are run in
//! [`Mode::Eval`](rt_nn::Mode) so BatchNorm running statistics are neither
//! used ambiguously nor polluted by attack iterations.
//!
//! # Example
//!
//! ```rust
//! use rt_adv::attack::AttackConfig;
//!
//! let pgd = AttackConfig::pgd(0.25, 5);
//! assert_eq!(pgd.steps, 5);
//! let fgsm = AttackConfig::fgsm(0.25);
//! assert_eq!(fgsm.steps, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod eval;
pub mod smoothing;
pub mod square;

pub use attack::AttackConfig;
pub use square::SquareConfig;
