//! Shared plumbing for the experiment drivers in `src/bin/` — one driver
//! per figure/table of the paper (see DESIGN.md's experiment index).
//!
//! Every driver accepts `--scale {smoke|standard|paper}` (plus `--resume`)
//! and emits:
//!
//! * a human-readable markdown table on stdout, and
//! * a JSON [`ExperimentRecord`]
//!   under `results/`.
//!
//! Sweeps route through the fault-tolerant [`Runner`]
//! ([`rt_transfer::runner`]): each sweep cell runs isolated behind
//! `catch_unwind` with bounded seed-bumped retries, and completed cells
//! are journaled to `results/<id>-<scale>.journal.jsonl` so an
//! interrupted driver restarted with `--resume` skips straight to the
//! first unfinished cell.
//!
//! [`ExperimentRecord`]: rt_transfer::experiment::ExperimentRecord

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod history;
pub mod trend;

use rt_data::{Task, TaskFamily};
use rt_models::ResNetConfig;
use rt_nn::RtError;
use rt_transfer::experiment::{ExperimentRecord, Preset};
use rt_transfer::pretrain::{pretrain_cached, PretrainScheme, Pretrained};
use rt_transfer::runner::{resume_from_args, Runner, RunnerConfig};

/// Driver-level result alias: every fallible helper returns the unified
/// [`rt_nn::RtError`], so a driver `main` is one `?`-chain ending in
/// [`abort_on_error`].
pub type Result<T> = std::result::Result<T, RtError>;

/// Telemetry session for a driver binary: initializes `rt-obs` from the
/// environment (`RT_OBS` / `RT_OBS_LEVEL`), opens a root span named after
/// the experiment id, and — on drop — closes the root span *before*
/// flushing, so the final JSONL's top-level span covers (nearly) the
/// whole run and `obs_report`'s coverage line is meaningful.
///
/// Every driver `main` starts with one line:
///
/// ```ignore
/// let _obs = rt_bench::ObsSession::start("fig1");
/// ```
///
/// With `RT_OBS` unset this is a single atomic load and two no-op drops.
pub struct ObsSession {
    root: Option<rt_obs::SpanGuard>,
}

impl ObsSession {
    /// Initializes telemetry from the environment and opens the root span.
    pub fn start(id: &str) -> ObsSession {
        rt_obs::init_from_env();
        ObsSession {
            root: Some(rt_obs::span!(id)),
        }
    }
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        // Close the root span first so its timing is folded into the
        // aggregates `finalize` snapshots and flushes.
        drop(self.root.take());
        rt_obs::finalize();
    }
}

/// Materializes the synthetic universe for a preset.
pub fn family_for(preset: &Preset) -> TaskFamily {
    TaskFamily::new(preset.family, preset.seed)
}

/// Materializes the source task for a preset.
///
/// # Errors
///
/// Propagates generator errors as the unified [`RtError`].
pub fn source_task(preset: &Preset, family: &TaskFamily) -> Result<Task> {
    Ok(family.source_task(preset.source_train, preset.source_test)?)
}

/// Pretrains (or loads from cache) a dense model for `(arch, scheme)`.
///
/// # Errors
///
/// Propagates training and cache-IO errors as the unified [`RtError`];
/// drivers surface them through [`abort_on_error`].
pub fn pretrained_model(
    preset: &Preset,
    arch_label: &str,
    arch: &ResNetConfig,
    source: &Task,
    scheme: PretrainScheme,
) -> Result<Pretrained> {
    let key = preset.cache_key(arch_label, &scheme);
    rt_obs::console!("[pretrain] {key}");
    Ok(pretrain_cached(
        &preset.cache_dir(),
        &key,
        arch,
        source,
        scheme,
        preset.pretrain_epochs,
        preset.pretrain_lr,
        preset.seed ^ 0x5eed,
    )?)
}

/// Transfer protocol used when scoring a ticket downstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Whole-model finetuning (Fig. 1 style).
    Finetune,
    /// Linear evaluation on frozen features (Fig. 2 style).
    Linear,
}

impl Protocol {
    /// Short label for series names.
    pub fn label(&self) -> &'static str {
        match self {
            Protocol::Finetune => "ft",
            Protocol::Linear => "lin",
        }
    }
}

/// Scores one already-masked model on `task` under `protocol`.
///
/// # Errors
///
/// Propagates finetune/linear-eval errors as the unified [`RtError`].
pub fn score_ticketed_model(
    model: &mut rt_models::MicroResNet,
    task: &Task,
    preset: &Preset,
    protocol: Protocol,
    seed: u64,
) -> Result<f64> {
    match protocol {
        Protocol::Finetune => {
            Ok(
                rt_transfer::finetune::finetune(model, task, &preset.finetune_cfg(seed))?
                    .accuracy,
            )
        }
        Protocol::Linear => {
            let mut cfg = preset.linear;
            cfg.seed = seed;
            Ok(rt_transfer::linear::linear_eval(model, task, &cfg)?)
        }
    }
}

/// Scores a ticket by applying it to `eval_seeds` fresh restorations of
/// the pretrained model and averaging the transfer accuracy — the variance
/// of a single finetune run at this scale would otherwise swamp the
/// robust-vs-natural gaps.
///
/// # Errors
///
/// Propagates model-restoration, mask, and scoring errors as the unified
/// [`RtError`].
pub fn score_ticket_avg(
    preset: &Preset,
    pre: &Pretrained,
    ticket: &rt_prune::TicketMask,
    task: &Task,
    protocol: Protocol,
    base_seed: u64,
) -> Result<f64> {
    let n = preset.eval_seeds.max(1);
    let mut total = 0.0;
    for k in 0..n {
        let mut model = pre.fresh_model(base_seed + 31 * k as u64)?;
        ticket.apply(&mut model)?;
        total += score_ticketed_model(
            &mut model,
            task,
            preset,
            protocol,
            base_seed + 977 * k as u64,
        )?;
    }
    Ok(total / n as f64)
}

/// Builds the fault-tolerant [`Runner`] a driver routes its sweep
/// through: journal at `results/<id>-<scale>.journal.jsonl`, resume
/// honoring the `--resume` flag, and any `RT_FAULTS` fault plan from the
/// environment installed.
///
/// # Errors
///
/// Propagates a journal-open failure as the unified [`RtError`].
pub fn runner_for(preset: &Preset, id: &str) -> Result<Runner> {
    rt_transfer::fault::install_from_env();
    let cfg = RunnerConfig::for_experiment(
        &preset.results_dir(),
        id,
        &preset.scale.to_string(),
        resume_from_args(),
    );
    Ok(Runner::new(cfg)?)
}

/// Sweeps OMP sparsities for one pretrained model / downstream task /
/// protocol, producing a labeled accuracy-vs-sparsity series (each point
/// averaged over the preset's `eval_seeds`). Each sparsity point is one
/// runner cell: isolated, retried, journaled, and skipped on `--resume`.
///
/// # Errors
///
/// Returns the unified [`RtError`] when a cell fails after every retry or
/// the journal cannot be written.
///
/// # Panics
///
/// Panics on pipeline errors inside a cell (caught by the runner's
/// isolation boundary and converted into retries — panic *is* a cell's
/// failure channel, so the closure body deliberately unwraps).
pub fn omp_sweep(
    runner: &mut Runner,
    preset: &Preset,
    pre: &Pretrained,
    task: &Task,
    granularity: rt_prune::Granularity,
    protocol: Protocol,
    label: String,
    sparsities: &[f64],
) -> Result<rt_transfer::experiment::Series> {
    let mut series = rt_transfer::experiment::Series::new(label.clone());
    for (i, &sparsity) in sparsities.iter().enumerate() {
        let key = format!("{label}/s{sparsity:.4}");
        let acc: f64 = runner.run_cell(&key, |ctx| {
            let model = pre
                .fresh_model(1000 + i as u64 + ctx.seed_bump)
                .expect("model");
            let ticket = rt_prune::omp(
                &model,
                &rt_prune::OmpConfig::structured(sparsity, granularity),
            )
            .expect("omp");
            score_ticket_avg(
                preset,
                pre,
                &ticket,
                task,
                protocol,
                7 + i as u64 + ctx.seed_bump,
            )
            .expect("score ticket")
        })?;
        rt_obs::console!("[{label}] s={sparsity:.3} acc={acc:.4}");
        series.push(sparsity, acc);
    }
    Ok(series)
}

/// Builds the complete Fig. 1 record (OMP tickets, whole-model
/// finetuning, robust vs natural) through `runner`. Shared by the
/// `fig1_omp_finetune` driver and the kill-and-resume integration test,
/// so the resume guarantee is proven on the exact production code path.
///
/// # Errors
///
/// Returns the unified [`RtError`] when pretraining, task generation, or
/// a sweep cell (after every retry) fails.
pub fn fig1_record(preset: &Preset, runner: &mut Runner) -> Result<ExperimentRecord> {
    let family = family_for(preset);
    let source = source_task(preset, &family)?;
    let tasks = [
        family.downstream_task(&preset.c10_spec())?,
        family.downstream_task(&preset.c100_spec())?,
    ];

    let mut record = ExperimentRecord::new(
        "fig1",
        "OMP tickets, whole-model finetuning: robust vs natural",
        preset.scale,
    );
    for (arch_label, arch) in [("r18", preset.arch_r18()), ("r50", preset.arch_r50())] {
        let natural =
            pretrained_model(preset, arch_label, &arch, &source, PretrainScheme::Natural)?;
        let robust = pretrained_model(
            preset,
            arch_label,
            &arch,
            &source,
            preset.adversarial_scheme(),
        )?;
        for task in &tasks {
            for (kind, pre) in [("natural", &natural), ("robust", &robust)] {
                record.series.push(omp_sweep(
                    runner,
                    preset,
                    pre,
                    task,
                    rt_prune::Granularity::Element,
                    Protocol::Finetune,
                    format!("{kind}/{arch_label}/{}", task.name),
                    &preset.sparsity_grid,
                )?);
            }
        }
    }

    // Shape check: robust should win the majority of (arch, task, sparsity)
    // cells under whole-model finetuning.
    let mut wins = 0;
    let mut total = 0;
    for pair in record.series.chunks(2) {
        let (w, t) = win_count(&pair[1], &pair[0]); // robust vs natural
        wins += w;
        total += t;
    }
    record.notes.push(format!(
        "shape check: robust tickets win {wins}/{total} finetuning cells \
         (paper: consistent robust wins on CIFAR-10/100)"
    ));
    Ok(record)
}

/// Counts, over the x-grid shared by two series, how often the first
/// series' y beats the second's. Used for the shape-check notes.
pub fn win_count(
    a: &rt_transfer::experiment::Series,
    b: &rt_transfer::experiment::Series,
) -> (usize, usize) {
    let mut wins = 0;
    let mut total = 0;
    for pa in &a.points {
        if let Some(pb) = b.points.iter().find(|p| (p.x - pa.x).abs() < 1e-9) {
            total += 1;
            if pa.y > pb.y {
                wins += 1;
            }
        }
    }
    (wins, total)
}

/// Prints the record and saves it under `results/`. The save is retried
/// once (transient FS hiccups happen at the end of hours-long sweeps);
/// persistent failure exits with a nonzero status — hours of compute
/// silently evaporating into an `eprintln!` is exactly the failure mode
/// the fault-tolerance layer exists to kill.
pub fn finish(record: &ExperimentRecord, preset: &Preset) {
    rt_obs::console_out!("{}", record.to_markdown());
    let dir = preset.results_dir();
    let result = record.save(&dir).or_else(|first| {
        rt_obs::console!("[warn] could not save record ({first}); retrying once");
        std::thread::sleep(std::time::Duration::from_millis(250));
        record.save(&dir)
    });
    match result {
        Ok(path) => rt_obs::console!("[saved] {}", path.display()),
        Err(e) => {
            rt_obs::console!("[error] could not save record after retry: {e}");
            rt_transfer::runner::ExitCode::PersistentFailure.exit();
        }
    }
}

/// Reports a driver-level failure and exits nonzero. Drivers call this
/// instead of panicking so any [`RtError`] — an exhausted-retries sweep
/// cell, a pretraining failure, a cache-IO error — produces one clean
/// diagnostic (and, for sweeps, the journal keeps every completed cell
/// for the next `--resume`). The exit status follows the
/// [`rt_transfer::runner::ExitCode`] convention — a deadline abort (3)
/// is distinguishable from a persistent crash (1).
pub fn abort_on_error(id: &str, err: RtError) -> ! {
    rt_obs::console!("[{id}] aborted: {err}");
    rt_obs::console!("[{id}] completed sweep cells are journaled; rerun with --resume to continue");
    rt_transfer::runner::ExitCode::for_rt_error(&err).exit();
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_transfer::Scale;

    #[test]
    fn smoke_universe_materializes() {
        let preset = Preset::new(Scale::Smoke);
        let family = family_for(&preset);
        let source = source_task(&preset, &family).unwrap();
        assert_eq!(source.train.len(), preset.source_train);
        assert_eq!(source.train.num_classes(), preset.family.base_classes);
    }
}
