//! Shared plumbing for the experiment drivers in `src/bin/` — one driver
//! per figure/table of the paper (see DESIGN.md's experiment index).
//!
//! Every driver accepts `--scale {smoke|standard|paper}` and emits:
//!
//! * a human-readable markdown table on stdout, and
//! * a JSON [`ExperimentRecord`]
//!   under `results/`.
//!
//! [`ExperimentRecord`]: rt_transfer::experiment::ExperimentRecord

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rt_data::{Task, TaskFamily};
use rt_models::ResNetConfig;
use rt_transfer::experiment::{ExperimentRecord, Preset};
use rt_transfer::pretrain::{pretrain_cached, PretrainScheme, Pretrained};

/// Materializes the synthetic universe for a preset.
pub fn family_for(preset: &Preset) -> TaskFamily {
    TaskFamily::new(preset.family, preset.seed)
}

/// Materializes the source task for a preset.
///
/// # Panics
///
/// Panics on internal generator errors (deterministic construction).
pub fn source_task(preset: &Preset, family: &TaskFamily) -> Task {
    family
        .source_task(preset.source_train, preset.source_test)
        .expect("source task generation is infallible for valid presets")
}

/// Pretrains (or loads from cache) a dense model for `(arch, scheme)`.
///
/// # Panics
///
/// Panics on training errors — drivers are binaries, failing loudly is the
/// right behavior.
pub fn pretrained_model(
    preset: &Preset,
    arch_label: &str,
    arch: &ResNetConfig,
    source: &Task,
    scheme: PretrainScheme,
) -> Pretrained {
    let key = preset.cache_key(arch_label, &scheme);
    eprintln!("[pretrain] {key}");
    pretrain_cached(
        &preset.cache_dir(),
        &key,
        arch,
        source,
        scheme,
        preset.pretrain_epochs,
        preset.pretrain_lr,
        preset.seed ^ 0x5eed,
    )
    .expect("pretraining failed")
}

/// Transfer protocol used when scoring a ticket downstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Whole-model finetuning (Fig. 1 style).
    Finetune,
    /// Linear evaluation on frozen features (Fig. 2 style).
    Linear,
}

impl Protocol {
    /// Short label for series names.
    pub fn label(&self) -> &'static str {
        match self {
            Protocol::Finetune => "ft",
            Protocol::Linear => "lin",
        }
    }
}

/// Scores one already-masked model on `task` under `protocol`.
///
/// # Panics
///
/// Panics on pipeline errors (drivers fail loudly).
pub fn score_ticketed_model(
    model: &mut rt_models::MicroResNet,
    task: &Task,
    preset: &Preset,
    protocol: Protocol,
    seed: u64,
) -> f64 {
    match protocol {
        Protocol::Finetune => {
            rt_transfer::finetune::finetune(model, task, &preset.finetune_cfg(seed))
                .expect("finetune failed")
                .accuracy
        }
        Protocol::Linear => {
            let mut cfg = preset.linear;
            cfg.seed = seed;
            rt_transfer::linear::linear_eval(model, task, &cfg).expect("linear eval failed")
        }
    }
}

/// Scores a ticket by applying it to `eval_seeds` fresh restorations of
/// the pretrained model and averaging the transfer accuracy — the variance
/// of a single finetune run at this scale would otherwise swamp the
/// robust-vs-natural gaps.
///
/// # Panics
///
/// Panics on pipeline errors.
pub fn score_ticket_avg(
    preset: &Preset,
    pre: &Pretrained,
    ticket: &rt_prune::TicketMask,
    task: &Task,
    protocol: Protocol,
    base_seed: u64,
) -> f64 {
    let n = preset.eval_seeds.max(1);
    let mut total = 0.0;
    for k in 0..n {
        let mut model = pre.fresh_model(base_seed + 31 * k as u64).expect("model");
        ticket.apply(&mut model).expect("apply ticket");
        total += score_ticketed_model(
            &mut model,
            task,
            preset,
            protocol,
            base_seed + 977 * k as u64,
        );
    }
    total / n as f64
}

/// Sweeps OMP sparsities for one pretrained model / downstream task /
/// protocol, producing a labeled accuracy-vs-sparsity series (each point
/// averaged over the preset's `eval_seeds`).
///
/// # Panics
///
/// Panics on pipeline errors.
pub fn omp_sweep(
    preset: &Preset,
    pre: &Pretrained,
    task: &Task,
    granularity: rt_prune::Granularity,
    protocol: Protocol,
    label: String,
    sparsities: &[f64],
) -> rt_transfer::experiment::Series {
    let mut series = rt_transfer::experiment::Series::new(label.clone());
    for (i, &sparsity) in sparsities.iter().enumerate() {
        let model = pre.fresh_model(1000 + i as u64).expect("model");
        let ticket = rt_prune::omp(
            &model,
            &rt_prune::OmpConfig::structured(sparsity, granularity),
        )
        .expect("omp");
        let acc = score_ticket_avg(preset, pre, &ticket, task, protocol, 7 + i as u64);
        eprintln!("[{label}] s={sparsity:.3} acc={acc:.4}");
        series.push(sparsity, acc);
    }
    series
}

/// Counts, over the x-grid shared by two series, how often the first
/// series' y beats the second's. Used for the shape-check notes.
pub fn win_count(
    a: &rt_transfer::experiment::Series,
    b: &rt_transfer::experiment::Series,
) -> (usize, usize) {
    let mut wins = 0;
    let mut total = 0;
    for pa in &a.points {
        if let Some(pb) = b.points.iter().find(|p| (p.x - pa.x).abs() < 1e-9) {
            total += 1;
            if pa.y > pb.y {
                wins += 1;
            }
        }
    }
    (wins, total)
}

/// Prints the record and saves it under `results/`.
pub fn finish(record: &ExperimentRecord, preset: &Preset) {
    println!("{}", record.to_markdown());
    match record.save(&preset.results_dir()) {
        Ok(path) => eprintln!("[saved] {}", path.display()),
        Err(e) => eprintln!("[warn] could not save record: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_transfer::Scale;

    #[test]
    fn smoke_universe_materializes() {
        let preset = Preset::new(Scale::Smoke);
        let family = family_for(&preset);
        let source = source_task(&preset, &family);
        assert_eq!(source.train.len(), preset.source_train);
        assert_eq!(source.train.num_classes(), preset.family.base_classes);
    }
}
