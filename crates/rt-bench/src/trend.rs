//! Regression detection over bench history: latest value vs the trailing
//! median of prior runs, with a noise band so ordinary jitter never trips
//! the gate.
//!
//! Std-only by design — the math is testable without the workspace's
//! serde stack.
//!
//! # The noise-band math
//!
//! For a metric with prior values `p_1..p_n` (most recent last) and a
//! latest value `x`:
//!
//! * baseline `B` = median of the last `window` priors;
//! * spread = MAD (median absolute deviation from `B`), a robust stand-in
//!   for σ that one outlier run cannot inflate;
//! * band = `max(noise_floor · |B|, mad_mult · MAD)` — the floor keeps
//!   short histories (MAD ≈ 0 with 1–2 priors) from flagging ordinary
//!   run-to-run jitter;
//! * regression ⇔ `x` is worse than `B` by more than the band, in the
//!   metric's direction ([`direction_for`]).
//!
//! Fewer than one prior value → [`Status::Skipped`]: a gate cannot judge
//! a metric it has never seen.

use std::fmt;

/// Trend-gate tuning.
#[derive(Debug, Clone, Copy)]
pub struct TrendCfg {
    /// How many trailing prior values form the baseline window.
    pub window: usize,
    /// Relative band floor: a change within ±`noise_floor · |baseline|`
    /// is never a regression.
    pub noise_floor: f64,
    /// MAD multiplier for the adaptive part of the band.
    pub mad_mult: f64,
}

impl Default for TrendCfg {
    fn default() -> TrendCfg {
        TrendCfg {
            window: 8,
            noise_floor: 0.10,
            mad_mult: 3.0,
        }
    }
}

/// Which way "better" points for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Latencies, overheads, error counts: smaller is better.
    LowerIsBetter,
    /// Throughputs, accuracies, coverage: bigger is better.
    HigherIsBetter,
}

/// Infers a metric's direction from its key: suffixes `_ms`, `_pct`, and
/// `_lines` mark lower-is-better (latencies, overhead percentages, torn
/// line counts); everything else (throughputs, GFLOP/s, speedups) is
/// higher-is-better.
pub fn direction_for(key: &str) -> Direction {
    if key.ends_with("_ms") || key.ends_with("_pct") || key.ends_with("_lines") {
        Direction::LowerIsBetter
    } else {
        Direction::HigherIsBetter
    }
}

/// True for thread-scaling metrics (`*_speedup_4t`): ratios of a
/// 4-thread run over a 1-thread run. On a single-core host these sit at
/// ~1.0 by construction — time-slicing cannot scale — so judging them
/// (in either direction, against a multi-core baseline or from one)
/// would gate on hardware, not code.
pub fn is_thread_scaling(key: &str) -> bool {
    key.ends_with("_speedup_4t")
}

/// A [`Status::Skipped`] verdict carrying the observed value — for
/// metrics declared unjudgeable up front (thread scaling on a
/// single-core host) rather than merely lacking history.
pub fn skip(key: &str, latest: f64) -> Verdict {
    Verdict {
        key: key.to_string(),
        latest,
        baseline: 0.0,
        band: 0.0,
        delta_pct: 0.0,
        status: Status::Skipped,
    }
}

/// Gate outcome for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Not enough history to judge.
    Skipped,
    /// Within the noise band.
    Ok,
    /// Better than baseline by more than the band.
    Improved,
    /// Worse than baseline by more than the band — the gate fails.
    Regressed,
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Status::Skipped => "skipped",
            Status::Ok => "ok",
            Status::Improved => "improved",
            Status::Regressed => "REGRESSED",
        })
    }
}

/// One metric's verdict: the inputs that produced it ride along so the
/// report is self-explanatory.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Metric key.
    pub key: String,
    /// Latest observed value.
    pub latest: f64,
    /// Trailing-median baseline (0.0 when skipped).
    pub baseline: f64,
    /// Allowed deviation before the gate reacts.
    pub band: f64,
    /// Relative change vs baseline, percent (0.0 when skipped or the
    /// baseline is 0).
    pub delta_pct: f64,
    /// The outcome.
    pub status: Status,
}

/// Median of a slice (mean of the two central order statistics for even
/// lengths). Empty input → 0.0.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// Median absolute deviation around `center`.
pub fn mad(xs: &[f64], center: f64) -> f64 {
    let devs: Vec<f64> = xs.iter().map(|x| (x - center).abs()).collect();
    median(&devs)
}

/// Judges `latest` against the trailing window of `prior` values
/// (ordered oldest → newest) for metric `key`.
pub fn evaluate(key: &str, latest: f64, prior: &[f64], cfg: &TrendCfg) -> Verdict {
    if prior.is_empty() || cfg.window == 0 {
        return Verdict {
            key: key.to_string(),
            latest,
            baseline: 0.0,
            band: 0.0,
            delta_pct: 0.0,
            status: Status::Skipped,
        };
    }
    let window = &prior[prior.len().saturating_sub(cfg.window)..];
    let baseline = median(window);
    let band = (cfg.noise_floor * baseline.abs()).max(cfg.mad_mult * mad(window, baseline));
    let delta = latest - baseline;
    let delta_pct = if baseline.abs() > 0.0 {
        100.0 * delta / baseline.abs()
    } else {
        0.0
    };
    let worse = match direction_for(key) {
        Direction::LowerIsBetter => delta > band,
        Direction::HigherIsBetter => delta < -band,
    };
    let better = match direction_for(key) {
        Direction::LowerIsBetter => delta < -band,
        Direction::HigherIsBetter => delta > band,
    };
    Verdict {
        key: key.to_string(),
        latest,
        baseline,
        band,
        delta_pct,
        status: if worse {
            Status::Regressed
        } else if better {
            Status::Improved
        } else {
            Status::Ok
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad_basics() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 9.0]), 5.0);
        assert_eq!(median(&[9.0, 1.0, 5.0]), 5.0);
        assert_eq!(mad(&[1.0, 5.0, 9.0], 5.0), 4.0);
        assert_eq!(mad(&[5.0, 5.0, 5.0], 5.0), 0.0);
    }

    #[test]
    fn direction_suffixes() {
        assert_eq!(direction_for("gemm_ms"), Direction::LowerIsBetter);
        assert_eq!(direction_for("cancel_overhead_pct"), Direction::LowerIsBetter);
        assert_eq!(direction_for("torn_lines"), Direction::LowerIsBetter);
        assert_eq!(direction_for("gemm_1t_gflops"), Direction::HigherIsBetter);
        assert_eq!(direction_for("speedup"), Direction::HigherIsBetter);
    }

    #[test]
    fn thread_scaling_keys_are_recognized_and_skippable() {
        assert!(is_thread_scaling("gemm_96x96x96_speedup_4t"));
        assert!(is_thread_scaling("pgd_b4_s3_speedup_4t"));
        assert!(!is_thread_scaling("gemm_96x96x96_1t_eff_gflops"));
        assert!(!is_thread_scaling("pipeline_speedup"));
        let v = skip("gemm_speedup_4t", 0.99);
        assert_eq!(v.status, Status::Skipped);
        assert_eq!(v.latest, 0.99);
        assert_eq!(v.baseline, 0.0);
    }

    #[test]
    fn no_history_skips() {
        let v = evaluate("x_gflops", 3.0, &[], &TrendCfg::default());
        assert_eq!(v.status, Status::Skipped);
    }

    #[test]
    fn single_prior_uses_the_noise_floor() {
        // One prior → MAD = 0, so the band is the 10% floor: a 9% dip
        // passes, a 20% dip fails.
        let cfg = TrendCfg::default();
        let ok = evaluate("t_gflops", 9.1, &[10.0], &cfg);
        assert_eq!(ok.status, Status::Ok, "{ok:?}");
        let bad = evaluate("t_gflops", 8.0, &[10.0], &cfg);
        assert_eq!(bad.status, Status::Regressed, "{bad:?}");
        assert!((bad.baseline - 10.0).abs() < 1e-12);
        assert!((bad.band - 1.0).abs() < 1e-12);
        assert!((bad.delta_pct + 20.0).abs() < 1e-9);
    }

    #[test]
    fn direction_flips_the_gate() {
        let cfg = TrendCfg::default();
        // Latency up 20% → regression; throughput up 20% → improvement.
        assert_eq!(
            evaluate("step_ms", 12.0, &[10.0], &cfg).status,
            Status::Regressed
        );
        assert_eq!(
            evaluate("step_gflops", 12.0, &[10.0], &cfg).status,
            Status::Improved
        );
    }

    #[test]
    fn mad_widens_the_band_for_noisy_series() {
        // Noisy history (MAD 1.0 around median 10): band = 3·1 = 3, so a
        // value that the 10% floor alone would flag still passes.
        let cfg = TrendCfg::default();
        let noisy = [9.0, 11.0, 10.0, 12.0, 8.0];
        let v = evaluate("x_gflops", 7.5, &noisy, &cfg);
        assert_eq!(v.status, Status::Ok, "{v:?}");
        // But a collapse beyond the MAD band still trips.
        let bad = evaluate("x_gflops", 5.0, &noisy, &cfg);
        assert_eq!(bad.status, Status::Regressed, "{bad:?}");
    }

    #[test]
    fn window_limits_the_baseline() {
        let cfg = TrendCfg {
            window: 3,
            ..TrendCfg::default()
        };
        // Old slow values fall outside the window; baseline is the
        // recent fast regime, so a return to the old speed regresses.
        let prior = [1.0, 1.0, 1.0, 10.0, 10.0, 10.0];
        let v = evaluate("x_gflops", 1.0, &prior, &cfg);
        assert_eq!(v.baseline, 10.0);
        assert_eq!(v.status, Status::Regressed);
    }
}
