//! **obs_report** — offline aggregator for `rt-obs` telemetry streams.
//!
//! Reads one or more JSONL files produced by running a driver with
//! `RT_OBS=path.jsonl`, merges them, and renders the per-run wall-time
//! breakdown table (hierarchical spans with self-vs-child time, a
//! coverage line, top histograms, counters, gauges). A machine-readable
//! merged snapshot is written to `BENCH_obs.json` (atomically) so later
//! perf PRs can diff runs numerically instead of eyeballing tables.
//!
//! ```text
//! obs_report run.jsonl [more.jsonl ...] [--out BENCH_obs.json] [--top-k N]
//! ```
//!
//! With no file arguments, every `*.obs.jsonl` under `results/` is used.
//! Torn final lines and unknown event kinds are tolerated (counted and
//! reported, never fatal) so a crashed run's stream still yields a report.
//!
//! Unless `--no-history` is passed, a summary line (span coverage, wall
//! ms, torn lines) is appended to the bench history for `bench_trend`.

use rt_bench::history::{append_history, default_history_path, repo_path, HistoryEntry};
use rt_obs::report::{aggregate_streams, parse_jsonl};
use rt_transfer::runner::ExitCode;
use std::path::PathBuf;

struct Args {
    files: Vec<PathBuf>,
    out: PathBuf,
    top_k: usize,
    history: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut files = Vec::new();
    let mut out = repo_path("BENCH_obs.json");
    let mut top_k = 5usize;
    let mut history = Some(default_history_path());
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--out" => {
                out = PathBuf::from(argv.next().ok_or("--out needs a path")?);
            }
            "--top-k" => {
                top_k = argv
                    .next()
                    .ok_or("--top-k needs a number")?
                    .parse()
                    .map_err(|e| format!("--top-k: {e}"))?;
            }
            "--history" => {
                history = Some(PathBuf::from(argv.next().ok_or("--history needs a path")?));
            }
            "--no-history" => history = None,
            "--help" | "-h" => {
                return Err(
                    "usage: obs_report [files.jsonl ...] [--out BENCH_obs.json] [--top-k N] \
                     [--history PATH | --no-history]"
                        .to_string(),
                )
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`"));
            }
            file => files.push(PathBuf::from(file)),
        }
    }
    if files.is_empty() {
        // Default: every telemetry stream under results/.
        if let Ok(dir) = std::fs::read_dir("results") {
            for entry in dir.flatten() {
                let path = entry.path();
                if path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(".obs.jsonl"))
                {
                    files.push(path);
                }
            }
            files.sort();
        }
    }
    if files.is_empty() {
        return Err(
            "no input: pass telemetry JSONL files or place *.obs.jsonl under results/".to_string(),
        );
    }
    Ok(Args {
        files,
        out,
        top_k,
        history,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::Usage.exit();
        }
    };

    let mut streams = Vec::new();
    let mut torn_total = 0usize;
    for path in &args.files {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("[obs_report] cannot read {}: {e}", path.display());
                ExitCode::Usage.exit();
            }
        };
        let (events, malformed) = parse_jsonl(&text);
        if malformed > 0 {
            eprintln!(
                "[obs_report] {}: {malformed} malformed line(s) skipped (torn write?)",
                path.display()
            );
        }
        torn_total += malformed;
        eprintln!(
            "[obs_report] {}: {} event(s)",
            path.display(),
            events.len()
        );
        streams.push(events);
    }

    let mut snapshot = aggregate_streams(&streams);
    // Parse-time damage belongs in the snapshot (and its rendered
    // warning), not just in per-file stderr chatter.
    snapshot.torn_lines += torn_total;
    println!("{}", snapshot.render_table_top_k(args.top_k));
    println!("torn_lines: {}", snapshot.torn_lines);

    if let Some(hist_path) = &args.history {
        let mut entry = HistoryEntry::new("obs_report", false)
            .metric("wall_ms", snapshot.wall_ms)
            .metric("torn_lines", snapshot.torn_lines as f64);
        if let Some(cov) = snapshot.coverage() {
            entry = entry.metric("span_coverage", cov);
        }
        if let Err(e) = append_history(hist_path, &entry) {
            eprintln!(
                "[obs_report] cannot append history {}: {e}",
                hist_path.display()
            );
        }
    }

    match serde_json::to_vec_pretty(&snapshot) {
        Ok(bytes) => {
            if let Err(e) = rt_obs::sink::atomic_write(&args.out, &bytes) {
                eprintln!("[obs_report] cannot write {}: {e}", args.out.display());
                ExitCode::PersistentFailure.exit();
            }
            eprintln!("[obs_report] wrote {}", args.out.display());
        }
        Err(e) => {
            eprintln!("[obs_report] snapshot serialization failed: {e}");
            ExitCode::PersistentFailure.exit();
        }
    }
}
