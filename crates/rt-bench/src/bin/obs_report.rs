//! **obs_report** — offline aggregator for `rt-obs` telemetry streams.
//!
//! Reads one or more JSONL files produced by running a driver with
//! `RT_OBS=path.jsonl`, merges them, and renders the per-run wall-time
//! breakdown table (hierarchical spans with self-vs-child time, a
//! coverage line, top histograms, counters, gauges). A machine-readable
//! merged snapshot is written to `BENCH_obs.json` (atomically) so later
//! perf PRs can diff runs numerically instead of eyeballing tables.
//!
//! ```text
//! obs_report run.jsonl [more.jsonl ...] [--out BENCH_obs.json] [--top-k N]
//! ```
//!
//! With no file arguments, every `*.obs.jsonl` under `results/` is used.
//! Torn final lines and unknown event kinds are tolerated (counted and
//! reported, never fatal) so a crashed run's stream still yields a report.

use rt_obs::report::{aggregate_streams, parse_jsonl};
use std::path::PathBuf;
use rt_transfer::runner::ExitCode;

struct Args {
    files: Vec<PathBuf>,
    out: PathBuf,
    top_k: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut files = Vec::new();
    let mut out = PathBuf::from("BENCH_obs.json");
    let mut top_k = 5usize;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--out" => {
                out = PathBuf::from(argv.next().ok_or("--out needs a path")?);
            }
            "--top-k" => {
                top_k = argv
                    .next()
                    .ok_or("--top-k needs a number")?
                    .parse()
                    .map_err(|e| format!("--top-k: {e}"))?;
            }
            "--help" | "-h" => {
                return Err("usage: obs_report [files.jsonl ...] [--out BENCH_obs.json] [--top-k N]"
                    .to_string())
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`"));
            }
            file => files.push(PathBuf::from(file)),
        }
    }
    if files.is_empty() {
        // Default: every telemetry stream under results/.
        if let Ok(dir) = std::fs::read_dir("results") {
            for entry in dir.flatten() {
                let path = entry.path();
                if path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(".obs.jsonl"))
                {
                    files.push(path);
                }
            }
            files.sort();
        }
    }
    if files.is_empty() {
        return Err(
            "no input: pass telemetry JSONL files or place *.obs.jsonl under results/".to_string(),
        );
    }
    Ok(Args { files, out, top_k })
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::Usage.exit();
        }
    };

    let mut streams = Vec::new();
    for path in &args.files {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("[obs_report] cannot read {}: {e}", path.display());
                ExitCode::Usage.exit();
            }
        };
        let (events, malformed) = parse_jsonl(&text);
        if malformed > 0 {
            eprintln!(
                "[obs_report] {}: {malformed} malformed line(s) skipped (torn write?)",
                path.display()
            );
        }
        eprintln!(
            "[obs_report] {}: {} event(s)",
            path.display(),
            events.len()
        );
        streams.push(events);
    }

    let snapshot = aggregate_streams(&streams);
    println!("{}", snapshot.render_table_top_k(args.top_k));

    match serde_json::to_vec_pretty(&snapshot) {
        Ok(bytes) => {
            if let Err(e) = rt_obs::sink::atomic_write(&args.out, &bytes) {
                eprintln!("[obs_report] cannot write {}: {e}", args.out.display());
                ExitCode::PersistentFailure.exit();
            }
            eprintln!("[obs_report] wrote {}", args.out.display());
        }
        Err(e) => {
            eprintln!("[obs_report] snapshot serialization failed: {e}");
            ExitCode::PersistentFailure.exit();
        }
    }
}
