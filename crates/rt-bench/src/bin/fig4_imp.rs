//! **Fig. 4** — Robust tickets drawn by A-IMP vs. natural tickets drawn by
//! vanilla IMP, each performed either on the upstream source task ("US")
//! or on the downstream task ("DS"), evaluated by whole-model finetuning
//! across the IMP sparsity trajectory.
//!
//! Expected shape: the robust variants win across most sparsities; US
//! robust is strongest at mild sparsity while DS catches up at high
//! sparsity where task-specific sparsity patterns matter; on the harder
//! (CIFAR-100-analog) task natural tickets may overtake at extreme
//! sparsity.

use rt_bench::{abort_on_error, family_for, finish, pretrained_model, source_task, Protocol};
use rt_data::Task;
use rt_prune::ImpConfig;
use rt_transfer::experiment::{ExperimentRecord, Preset, Scale, Series};
use rt_transfer::pretrain::{PretrainScheme, Pretrained};
use rt_transfer::runner::Runner;
use rt_transfer::ticket::imp_ticket_trajectory;
use rt_transfer::training::Objective;

/// Runs one IMP trajectory and scores each round's ticket by finetuning.
///
/// `seed_bump` comes from the runner cell context: zero on the first
/// attempt, nonzero on retries after an isolated failure, so a retried
/// trajectory explores different randomness instead of replaying the crash.
fn imp_curve(
    preset: &Preset,
    pre: &Pretrained,
    prune_data_task: &Task,
    eval_task: &Task,
    objective: Objective,
    label: &str,
    seed_bump: u64,
) -> Series {
    let imp_cfg = ImpConfig::paper(preset.imp_final_sparsity, preset.imp_rounds);
    let round_cfg = preset.imp_round_cfg(objective, 77 + seed_bump);
    let mut model = pre.fresh_model(5 + seed_bump).expect("model");
    // Size the head for the pruning task (IMP trains on it).
    model
        .replace_head(
            prune_data_task.train.num_classes(),
            &mut rt_tensor::rng::SeedStream::new(6 + seed_bump).rng(),
        )
        .expect("head");
    let trajectory = imp_ticket_trajectory(
        &mut model,
        pre,
        &prune_data_task.train,
        &imp_cfg,
        &round_cfg,
    )
    .expect("imp trajectory");

    let mut series = Series::new(label.to_string());
    for (i, (sparsity, ticket)) in trajectory.iter().enumerate() {
        // Single-seed scoring: fig4 already runs 16 IMP trajectories; the
        // four-curve-per-panel structure averages out per-point noise.
        let mut single = preset.clone();
        single.eval_seeds = 1;
        // Unwrap inside the cell: panic is the runner's failure channel.
        let acc = rt_bench::score_ticket_avg(
            &single,
            pre,
            ticket,
            eval_task,
            Protocol::Finetune,
            100 + i as u64 + seed_bump,
        )
        .expect("score ticket");
        eprintln!("[{label}] s={sparsity:.3} acc={acc:.4}");
        series.push(*sparsity, acc);
    }
    series
}

/// One journaled runner cell per IMP trajectory: a crashed trajectory is
/// retried with bumped seeds, and a completed one is replayed from the
/// journal on `--resume` instead of re-running its rounds.
#[allow(clippy::too_many_arguments)]
fn imp_cell(
    runner: &mut Runner,
    preset: &Preset,
    pre: &Pretrained,
    prune_data_task: &Task,
    eval_task: &Task,
    objective: Objective,
    label: String,
) -> rt_bench::Result<Series> {
    Ok(runner.run_cell(&label, |ctx| {
        imp_curve(
            preset,
            pre,
            prune_data_task,
            eval_task,
            objective,
            &label,
            ctx.seed_bump,
        )
    })?)
}

fn main() {
    let _obs = rt_bench::ObsSession::start("fig4_imp");
    let preset = Preset::new(Scale::from_args());
    if let Err(e) = run(&preset) {
        abort_on_error("fig4", e);
    }
}

fn run(preset: &Preset) -> rt_bench::Result<()> {
    let mut runner = rt_bench::runner_for(preset, "fig4")?;
    let family = family_for(preset);
    let source = source_task(preset, &family)?;
    let tasks = [
        family.downstream_task(&preset.c10_spec())?,
        family.downstream_task(&preset.c100_spec())?,
    ];

    let mut record = ExperimentRecord::new(
        "fig4",
        "A-IMP (robust) vs IMP (natural) tickets, upstream vs downstream",
        preset.scale,
    );
    for (arch_label, arch) in [("r18", preset.arch_r18()), ("r50", preset.arch_r50())] {
        let natural =
            pretrained_model(preset, arch_label, &arch, &source, PretrainScheme::Natural)?;
        let robust = pretrained_model(
            preset,
            arch_label,
            &arch,
            &source,
            preset.adversarial_scheme(),
        )?;
        let adv_objective = Objective::Adversarial(preset.pretrain_attack);
        for task in &tasks {
            // US curves prune on the source data, DS curves on the task data.
            record.series.push(imp_cell(
                &mut runner,
                preset,
                &robust,
                &source,
                task,
                adv_objective,
                format!("robust-US/{arch_label}/{}", task.name),
            )?);
            record.series.push(imp_cell(
                &mut runner,
                preset,
                &robust,
                task,
                task,
                adv_objective,
                format!("robust-DS/{arch_label}/{}", task.name),
            )?);
            record.series.push(imp_cell(
                &mut runner,
                preset,
                &natural,
                &source,
                task,
                Objective::Natural,
                format!("natural-US/{arch_label}/{}", task.name),
            )?);
            record.series.push(imp_cell(
                &mut runner,
                preset,
                &natural,
                task,
                task,
                Objective::Natural,
                format!("natural-DS/{arch_label}/{}", task.name),
            )?);
        }
    }

    // Shape check: per panel, count sparsities where the best robust curve
    // beats the best natural curve.
    let mut robust_wins = 0;
    let mut cells = 0;
    for panel in record.series.chunks(4) {
        let [r_us, r_ds, n_us, n_ds] = panel else {
            continue;
        };
        for i in 0..r_us.points.len() {
            let rbest = r_us.points[i].y.max(r_ds.points[i].y);
            let nbest = n_us.points[i].y.max(n_ds.points[i].y);
            cells += 1;
            if rbest > nbest {
                robust_wins += 1;
            }
        }
    }
    record.notes.push(format!(
        "shape check: best-robust beats best-natural at {robust_wins}/{cells} \
         sparsity cells (paper: robust wins most, natural can take extreme \
         sparsity on the harder task)"
    ));
    finish(&record, preset);
    Ok(())
}
