//! **Fig. 2** — Linear-evaluation accuracy of robust vs. natural OMP
//! tickets: the drawn ticket is frozen and only a new classifier trains on
//! its features.
//!
//! Expected shape: robust tickets win aggressively (the paper reports a
//! gap above 11.75% on ResNet50/CIFAR-100 up to sparsity 0.92) — frozen
//! robust features tolerate the domain shift far better.

use rt_bench::{
    abort_on_error, family_for, finish, omp_sweep, pretrained_model, source_task, win_count,
    Protocol,
};
use rt_prune::Granularity;
use rt_transfer::experiment::{ExperimentRecord, Preset, Scale};
use rt_transfer::pretrain::PretrainScheme;

fn main() {
    let _obs = rt_bench::ObsSession::start("fig2_omp_linear");
    let preset = Preset::new(Scale::from_args());
    if let Err(e) = run(&preset) {
        abort_on_error("fig2", e);
    }
}

fn run(preset: &Preset) -> rt_bench::Result<()> {
    let mut runner = rt_bench::runner_for(preset, "fig2")?;
    let family = family_for(preset);
    let source = source_task(preset, &family)?;
    let tasks = [
        family.downstream_task(&preset.c10_spec())?,
        family.downstream_task(&preset.c100_spec())?,
    ];

    let mut record = ExperimentRecord::new(
        "fig2",
        "OMP tickets, linear evaluation: robust vs natural",
        preset.scale,
    );
    for (arch_label, arch) in [("r18", preset.arch_r18()), ("r50", preset.arch_r50())] {
        let natural =
            pretrained_model(preset, arch_label, &arch, &source, PretrainScheme::Natural)?;
        let robust = pretrained_model(
            preset,
            arch_label,
            &arch,
            &source,
            preset.adversarial_scheme(),
        )?;
        for task in &tasks {
            for (kind, pre) in [("natural", &natural), ("robust", &robust)] {
                let series = omp_sweep(
                    &mut runner,
                    preset,
                    pre,
                    task,
                    Granularity::Element,
                    Protocol::Linear,
                    format!("{kind}/{arch_label}/{}", task.name),
                    &preset.sparsity_grid,
                )?;
                record.series.push(series);
            }
        }
    }

    let mut wins = 0;
    let mut total = 0;
    let mut gap_sum = 0.0;
    for pair in record.series.chunks(2) {
        let (w, t) = win_count(&pair[1], &pair[0]);
        wins += w;
        total += t;
        for (pr, pn) in pair[1].points.iter().zip(&pair[0].points) {
            gap_sum += pr.y - pn.y;
        }
    }
    record.notes.push(format!(
        "shape check: robust wins {wins}/{total} linear-eval cells, mean gap {:+.4} \
         (paper: aggressive robust wins under linear evaluation)",
        gap_sum / total.max(1) as f64
    ));
    finish(&record, preset);
    Ok(())
}
