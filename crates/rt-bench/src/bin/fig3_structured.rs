//! **Fig. 3** — Structured robust tickets (row / kernel / channel
//! granularity) vs. structured natural tickets, drawn via OMP from the R50
//! analog and evaluated under both finetuning and linear evaluation.
//!
//! Expected shape: robust wins at every granularity, but the gain shrinks
//! as the pattern coarsens (channel < kernel < row), because coarse groups
//! inherit fewer robustness priors.

use rt_bench::{
    abort_on_error, family_for, finish, omp_sweep, pretrained_model, source_task, win_count,
    Protocol,
};
use rt_prune::{omp, sparse_exec_report, Granularity, OmpConfig, PruneScope};
use rt_transfer::experiment::{ExperimentRecord, Preset, Scale};
use rt_transfer::pretrain::PretrainScheme;

fn main() {
    let _obs = rt_bench::ObsSession::start("fig3_structured");
    let preset = Preset::new(Scale::from_args());
    if let Err(e) = run(&preset) {
        abort_on_error("fig3", e);
    }
}

fn run(preset: &Preset) -> rt_bench::Result<()> {
    let mut runner = rt_bench::runner_for(preset, "fig3")?;
    let family = family_for(preset);
    let source = source_task(preset, &family)?;
    let task = family.downstream_task(&preset.c10_spec())?;

    let arch = preset.arch_r50();
    let natural = pretrained_model(preset, "r50", &arch, &source, PretrainScheme::Natural)?;
    let robust = pretrained_model(preset, "r50", &arch, &source, preset.adversarial_scheme())?;

    // Structured pruning is harsher; cap the sweep below the extreme tail.
    let sparsities: Vec<f64> = preset
        .sparsity_grid
        .iter()
        .copied()
        .filter(|&s| s <= 0.9)
        .collect();

    let mut record = ExperimentRecord::new(
        "fig3",
        "structured OMP tickets (row/kernel/channel) from the R50 analog",
        preset.scale,
    );
    let mut per_gran_gap = Vec::new();
    for granularity in Granularity::structured() {
        let gran_label = format!("{granularity:?}").to_lowercase();
        let mut gap_sum = 0.0;
        let mut gap_n = 0usize;
        for protocol in [Protocol::Finetune, Protocol::Linear] {
            let mut pair = Vec::new();
            for (kind, pre) in [("natural", &natural), ("robust", &robust)] {
                let series = omp_sweep(
                    &mut runner,
                    preset,
                    pre,
                    &task,
                    granularity,
                    protocol,
                    format!("{kind}/{gran_label}/{}", protocol.label()),
                    &sparsities,
                )?;
                pair.push(series);
            }
            let (_, _) = win_count(&pair[1], &pair[0]);
            for (pr, pn) in pair[1].points.iter().zip(&pair[0].points) {
                gap_sum += pr.y - pn.y;
                gap_n += 1;
            }
            record.series.extend(pair);
        }
        per_gran_gap.push((gran_label, gap_sum / gap_n.max(1) as f64));
    }

    for (gran, gap) in &per_gran_gap {
        record.notes.push(format!(
            "mean robust-minus-natural gap at {gran}: {gap:+.4}"
        ));
    }

    // FLOP accounting (`rt_prune::sparse_exec_report`): how each
    // granularity's ticket actually executes under the sparse engine at the
    // sweep's deepest sparsity — plan kinds chosen per layer and the
    // theoretical per-sample weight-FLOP reduction they realize.
    let deepest = sparsities.iter().copied().fold(0.0f64, f64::max);
    for granularity in Granularity::structured() {
        let gran_label = format!("{granularity:?}").to_lowercase();
        let mut m = robust.fresh_model(0)?;
        let ticket = omp(&m, &OmpConfig::structured(deepest, granularity))?;
        ticket.apply(&mut m)?;
        let report = sparse_exec_report(&m, &PruneScope::backbone());
        let dense: u64 = report.iter().map(|l| l.dense_flops).sum();
        let plan: u64 = report.iter().map(|l| l.plan_flops).sum();
        let (compact, csr) = report.iter().fold((0usize, 0usize), |(c, r), l| {
            match l.plan_kind.as_str() {
                "compact" => (c + 1, r),
                "csr" => (c, r + 1),
                _ => (c, r),
            }
        });
        record.notes.push(format!(
            "sparse exec at {gran_label} @{deepest:.2}: {dense} -> {plan} \
             weight-FLOPs/sample ({:.2}x theoretical), {compact} compact + \
             {csr} csr plans over {} prunable layers",
            dense as f64 / plan.max(1) as f64,
            report.len(),
        ));
    }
    record.notes.push(
        "paper shape: robust wins at every granularity; the gain shrinks as \
         the sparsity pattern coarsens (row > kernel > channel)"
            .to_string(),
    );
    finish(&record, preset);
    Ok(())
}
