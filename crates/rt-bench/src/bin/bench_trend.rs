//! **bench_trend** — the perf-regression gate over the bench history.
//!
//! Reads `results/BENCH_history.jsonl` (see [`rt_bench::history`]),
//! compares each bench's latest run against the trailing median of its
//! prior runs with a noise band (see [`rt_bench::trend`] for the math),
//! prints a verdict table, and **exits nonzero when any metric
//! regressed** — wire it after the bench steps in CI and a perf
//! regression fails the build like a test failure.
//!
//! ```text
//! bench_trend [--history PATH] [--bench NAME] [--window N]
//!             [--noise-floor F] [--inject-regression FACTOR]
//! ```
//!
//! Runs are grouped by `(bench, quick)` so reduced `--quick` workloads
//! never baseline full-size ones. A bench with no prior runs is reported
//! `skipped`, never failed — the gate self-seeds from the first two runs.
//! Thread-scaling metrics (`*_speedup_4t`) are likewise skipped, never
//! judged, when the latest run's `host_parallelism` is 1: a single-core
//! host time-slices the thread sweep and pins those ratios at ~1.0, a
//! hardware condition no code change can regress or fix.
//!
//! `--inject-regression 0.8` synthetically worsens the latest run's
//! metrics by 20% (throughputs scaled down, latencies up) *after*
//! loading — the self-test CI uses it to prove the gate actually fires.

use rt_bench::history::{default_history_path, load_history, HistoryEntry};
use rt_bench::trend::{
    direction_for, evaluate, is_thread_scaling, skip, Direction, Status, TrendCfg, Verdict,
};
use rt_transfer::runner::ExitCode;
use std::collections::BTreeMap;
use std::path::PathBuf;

struct Args {
    history: PathBuf,
    bench: Option<String>,
    cfg: TrendCfg,
    inject: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut history = default_history_path();
    let mut bench = None;
    let mut cfg = TrendCfg::default();
    let mut inject = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--history" => history = PathBuf::from(argv.next().ok_or("--history needs a path")?),
            "--bench" => bench = Some(argv.next().ok_or("--bench needs a name")?),
            "--window" => {
                cfg.window = argv
                    .next()
                    .ok_or("--window needs a number")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?;
            }
            "--noise-floor" => {
                cfg.noise_floor = argv
                    .next()
                    .ok_or("--noise-floor needs a fraction")?
                    .parse()
                    .map_err(|e| format!("--noise-floor: {e}"))?;
            }
            "--inject-regression" => {
                inject = Some(
                    argv.next()
                        .ok_or("--inject-regression needs a factor")?
                        .parse()
                        .map_err(|e| format!("--inject-regression: {e}"))?,
                );
            }
            "--help" | "-h" => {
                return Err(
                    "usage: bench_trend [--history PATH] [--bench NAME] [--window N] \
                     [--noise-floor F] [--inject-regression FACTOR]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args {
        history,
        bench,
        cfg,
        inject,
    })
}

/// Worsens every metric of `entry` by `factor` (< 1.0): higher-is-better
/// values are scaled down, lower-is-better up.
fn inject_regression(entry: &mut HistoryEntry, factor: f64) {
    for (key, value) in entry.metrics.iter_mut() {
        *value = match direction_for(key) {
            Direction::HigherIsBetter => *value * factor,
            Direction::LowerIsBetter => *value / factor,
        };
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::Usage.exit();
        }
    };
    let (entries, torn) = match load_history(&args.history) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("[trend] cannot read {}: {e}", args.history.display());
            ExitCode::Usage.exit();
        }
    };
    if torn > 0 {
        eprintln!("[trend] {torn} torn line(s) in {} skipped", args.history.display());
    }
    if entries.is_empty() {
        println!(
            "[trend] no history at {} — run a bench_* binary first",
            args.history.display()
        );
        return;
    }

    // Group runs by (bench, quick); within a group the file order is the
    // time order.
    let mut groups: BTreeMap<(String, bool), Vec<HistoryEntry>> = BTreeMap::new();
    for e in entries {
        if let Some(filter) = &args.bench {
            if &e.bench != filter {
                continue;
            }
        }
        groups.entry((e.bench.clone(), e.quick)).or_default().push(e);
    }

    let mut verdicts: Vec<(String, Verdict)> = Vec::new();
    for ((bench, quick), runs) in &groups {
        let (latest, prior) = runs.split_last().expect("group is non-empty");
        let mut latest = latest.clone();
        if let Some(factor) = args.inject {
            inject_regression(&mut latest, factor);
        }
        let label = if *quick {
            format!("{bench} (quick)")
        } else {
            bench.clone()
        };
        for (key, &value) in &latest.metrics {
            // Thread-scaling ratios are meaningless on a single-core
            // host (flat ~1.0 by construction): skip them rather than
            // fail a hardware condition as a code regression.
            if latest.host_parallelism == 1 && is_thread_scaling(key) {
                verdicts.push((label.clone(), skip(key, value)));
                continue;
            }
            let series: Vec<f64> = prior
                .iter()
                .filter_map(|e| e.metrics.get(key).copied())
                .collect();
            verdicts.push((label.clone(), evaluate(key, value, &series, &args.cfg)));
        }
    }

    println!(
        "| {:<22} | {:<44} | {:>12} | {:>12} | {:>10} | {:>8} | {:<9} |",
        "bench", "metric", "latest", "baseline", "band", "delta%", "status"
    );
    println!("|{0:-<24}|{0:-<46}|{0:-<14}|{0:-<14}|{0:-<12}|{0:-<10}|{0:-<11}|", "");
    let mut regressed = 0usize;
    let mut judged = 0usize;
    for (bench, v) in &verdicts {
        if v.status != Status::Skipped {
            judged += 1;
        }
        if v.status == Status::Regressed {
            regressed += 1;
        }
        println!(
            "| {:<22} | {:<44} | {:>12.4} | {:>12.4} | {:>10.4} | {:>+8.2} | {:<9} |",
            bench, v.key, v.latest, v.baseline, v.band, v.delta_pct, v.status
        );
    }
    println!(
        "\n[trend] {} metric(s), {judged} judged, {regressed} regression(s)",
        verdicts.len()
    );
    if regressed > 0 {
        eprintln!("PERF REGRESSION: {regressed} metric(s) worse than the trailing median + noise band");
        ExitCode::PersistentFailure.exit();
    }
}
