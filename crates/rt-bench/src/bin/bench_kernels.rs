//! **bench_kernels** — thread-scaling benchmark of the `rt-par` hot paths.
//!
//! Times the three kernels the deterministic data-parallel layer rewired
//! — GEMM, convolution lowering, and batch-sharded PGD — at 1, 2, 4, and
//! 8 pool threads, and writes a machine-readable `BENCH_kernels.json`
//! (atomically) so perf PRs can diff throughput numerically.
//!
//! ```text
//! bench_kernels [--out BENCH_kernels.json] [--reps N] [--quick]
//! ```
//!
//! Every workload also folds its output into a checksum per thread count;
//! the run **fails** if any thread count produces different bytes than
//! the serial pool — the benchmark doubles as an end-to-end determinism
//! gate on real kernel shapes.
//!
//! It is also the supervision-overhead gate: GEMM and conv are re-timed
//! under a live (never-tripped) cancellation scope with an armed watchdog
//! deadline, and the run fails if supervision costs more than
//! [`MAX_CANCEL_OVERHEAD_PCT`] over the unsupervised baseline — the
//! cooperative checks are one relaxed atomic load per chunk and must stay
//! invisible at kernel granularity.
//!
//! Finally it is the packed-kernel acceptance gate: the cache-blocked
//! packed GEMM (`rt_tensor::kern`) is raced against the legacy ikj kernel
//! on a fixed [`PACKED_GATE_DIM`]³ shape. The run fails if the packed
//! kernel is slower than [`PACKED_MIN_SPEEDUP`]× legacy at 1 thread, or
//! if its output bits diverge from legacy at 1 or 4 threads.

use rt_adv::attack::{perturb_replicas, AttackConfig};
use rt_bench::history::{append_history, default_history_path, repo_path, HistoryEntry};
use rt_nn::layers::{Conv2d, Conv2dConfig, Flatten, Linear, Relu};
use rt_nn::{Layer, Sequential};
use rt_tensor::conv::{conv2d_forward, ConvGeometry};
use rt_tensor::linalg::{gemm, gemm_via, Gemm, Kernel};
use rt_tensor::rng::rng_from_seed;
use rt_tensor::{init, Tensor};
use rt_transfer::runner::ExitCode;
use serde::Serialize;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Pool sizes swept by the benchmark (1 = serial reference).
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Schema version of `BENCH_kernels.json`.
const BENCH_VERSION: u32 = 3;

/// Ceiling on the supervised-over-baseline slowdown of the GEMM and conv
/// workloads, in percent.
const MAX_CANCEL_OVERHEAD_PCT: f64 = 2.0;

/// Side of the square GEMM used by the packed-kernel gate. Fixed (not
/// scaled by `--quick`) so the gated number means the same thing in CI
/// and in full runs.
const PACKED_GATE_DIM: usize = 192;

/// Floor on the packed kernel's 1-thread speedup over the legacy ikj
/// kernel at [`PACKED_GATE_DIM`]³ — below this the packing overhead is
/// not paying for itself and the run fails.
const PACKED_MIN_SPEEDUP: f64 = 1.5;

struct Args {
    out: PathBuf,
    reps: usize,
    quick: bool,
    history: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = repo_path("BENCH_kernels.json");
    let mut reps = 3usize;
    let mut quick = false;
    let mut history = Some(default_history_path());
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--out" => out = PathBuf::from(argv.next().ok_or("--out needs a path")?),
            "--reps" => {
                reps = argv
                    .next()
                    .ok_or("--reps needs a number")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
            }
            "--quick" => quick = true,
            "--history" => {
                history = Some(PathBuf::from(argv.next().ok_or("--history needs a path")?));
            }
            "--no-history" => history = None,
            "--help" | "-h" => {
                return Err(
                    "usage: bench_kernels [--out BENCH_kernels.json] [--reps N] [--quick] \
                     [--history PATH | --no-history]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if reps == 0 {
        return Err("--reps must be at least 1".to_string());
    }
    Ok(Args {
        out,
        reps,
        quick,
        history,
    })
}

/// One `(workload, thread count)` measurement.
#[derive(Debug, Serialize)]
struct Sample {
    threads: usize,
    best_ms: f64,
    throughput: f64,
    /// Effective GFLOP/s from the cost model's FLOP count for one call —
    /// the same number for every workload regardless of its native
    /// `throughput` unit, so kernels are comparable on one roofline axis.
    eff_gflops: f64,
}

/// One workload's thread sweep.
#[derive(Debug, Serialize)]
struct Workload {
    name: String,
    /// Unit of the `throughput` field (`gflops` or `samples_per_s`).
    unit: &'static str,
    samples: Vec<Sample>,
    /// Throughput at 4 threads over throughput at 1 thread.
    speedup_4t: f64,
    /// Whether every thread count produced a bit-identical output.
    deterministic: bool,
}

/// Supervised-vs-baseline timing of one kernel (4 threads, best-of-reps).
#[derive(Debug, Serialize)]
struct CancelOverhead {
    name: String,
    baseline_ms: f64,
    supervised_ms: f64,
    /// Slowdown in percent; negative values (noise) are reported as-is.
    overhead_pct: f64,
}

/// Packed-vs-legacy GEMM race on the gate shape (since `v: 2`).
#[derive(Debug, Serialize)]
struct PackedGemm {
    shape: String,
    /// Best-of-reps wall clock of the legacy ikj kernel at 1 thread.
    legacy_ms: f64,
    /// Best-of-reps wall clock of the packed kernel at 1 thread.
    packed_ms: f64,
    /// `legacy_ms / packed_ms` (gated against [`PACKED_MIN_SPEEDUP`]).
    speedup: f64,
    /// Packed output bytes equal legacy bytes at 1 and 4 pool threads.
    bit_identical: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    v: u32,
    generated_unix_ms: u64,
    reps: usize,
    quick: bool,
    host_parallelism: usize,
    /// True when the host had one core (since `v: 3`): the thread sweep
    /// was time-sliced, every `speedup_4t` is ~1.0 by construction, and
    /// scaling numbers from this run must not baseline multi-core runs
    /// (`bench_trend` skips `*_speedup_4t` for such entries).
    single_core_host: bool,
    workloads: Vec<Workload>,
    /// Packed-kernel acceptance measurement (gated).
    packed_gemm: PackedGemm,
    /// Per-kernel supervision overhead measurements.
    cancel_overhead: Vec<CancelOverhead>,
    /// Worst `overhead_pct` across `cancel_overhead` (the gated number).
    cancel_overhead_pct: f64,
}

/// Times `f` `reps` times (after one warmup call) and returns the best
/// wall-clock in milliseconds together with the checksum of the last
/// output. `f` must be deterministic, so any rep's output is THE output.
fn best_of<F: FnMut() -> f64>(reps: usize, mut f: F) -> (f64, f64) {
    let mut checksum = f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        checksum = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (best, checksum)
}

/// Exact bitwise fold of a float slice — equal checksums here mean equal
/// bytes, not approximately equal values.
fn bitfold(data: &[f32]) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in data {
        h = (h ^ u64::from(v.to_bits())).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h as f64
}

fn run_workload(
    name: &str,
    unit: &'static str,
    reps: usize,
    work_per_call: f64,
    gflops_per_call: f64,
    mut f: impl FnMut() -> Vec<f32>,
) -> Workload {
    let mut samples = Vec::new();
    let mut checksums = Vec::new();
    for &t in &THREAD_COUNTS {
        rt_par::set_threads(t);
        let (best_ms, checksum) = best_of(reps, || bitfold(&black_box(f())));
        samples.push(Sample {
            threads: t,
            best_ms,
            throughput: work_per_call / (best_ms / 1e3),
            eff_gflops: gflops_per_call / (best_ms / 1e3),
        });
        checksums.push(checksum);
    }
    rt_par::set_threads(1);
    let deterministic = checksums.iter().all(|&c| c == checksums[0]);
    let at = |t: usize| {
        samples
            .iter()
            .find(|s| s.threads == t)
            .map(|s| s.throughput)
            .unwrap_or(f64::NAN)
    };
    let speedup_4t = at(4) / at(1);
    rt_obs::console!(
        "[bench] {name}: 1t {:.2} ms, 4t {:.2} ms ({speedup_4t:.2}x, {:.2} eff GFLOP/s), deterministic={deterministic}",
        samples[0].best_ms,
        samples[2].best_ms,
        samples[2].eff_gflops
    );
    Workload {
        name: name.to_string(),
        unit,
        samples,
        speedup_4t,
        deterministic,
    }
}

/// Times `f` at 4 pool threads, bare and then under a live supervision
/// scope — a fresh (never tripped) token installed as ambient plus an
/// armed watchdog deadline far in the future — and reports the slowdown.
/// Nothing ever fires, so any delta is the pure cost of the cooperative
/// checks and the armed watchdog entry.
fn measure_cancel_overhead(
    name: &str,
    reps: usize,
    mut f: impl FnMut() -> Vec<f32>,
) -> CancelOverhead {
    rt_par::set_threads(4);
    let (baseline_ms, base_sum) = best_of(reps, || bitfold(&black_box(f())));
    let scope = rt_par::CancelScope::new();
    let (supervised_ms, sup_sum) = {
        let _ambient = rt_par::with_cancel(scope.token());
        let _deadline = rt_par::watchdog::arm(scope.token(), Duration::from_secs(3600));
        best_of(reps, || bitfold(&black_box(f())))
    };
    rt_par::set_threads(1);
    assert!(
        (base_sum - sup_sum).abs() == 0.0,
        "supervision must not change kernel bytes ({name})"
    );
    let overhead_pct = (supervised_ms - baseline_ms) / baseline_ms * 100.0;
    rt_obs::console!(
        "[bench] cancel-overhead {name}: bare {baseline_ms:.2} ms, supervised {supervised_ms:.2} ms ({overhead_pct:+.2}%)"
    );
    CancelOverhead {
        name: name.to_string(),
        baseline_ms,
        supervised_ms,
        overhead_pct,
    }
}

/// A small conv-net whose weights depend only on `seed` — replicas built
/// from the same seed are identical, as `perturb_replicas` requires.
fn pgd_model(seed: u64) -> Sequential {
    let mut rng = rng_from_seed(seed);
    Sequential::new(vec![
        Box::new(Conv2d::new(3, 8, Conv2dConfig::same3x3(), &mut rng).expect("conv")),
        Box::new(Relu::new()),
        Box::new(Flatten::new()),
        Box::new(Linear::new(8 * 12 * 12, 10, &mut rng).expect("linear")),
    ])
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::Usage.exit();
        }
    };
    rt_obs::init_from_env();
    let scale = if args.quick { 1 } else { 2 };

    // --- GEMM: square matmul, the linear/conv backbone. ---------------
    let dim = 96 * scale;
    let mut rng = rng_from_seed(7);
    let a = init::normal(&[dim, dim], 0.0, 1.0, &mut rng);
    let b = init::normal(&[dim, dim], 0.0, 1.0, &mut rng);
    let gemm_flops = 2.0 * (dim * dim * dim) as f64 / 1e9;
    let gemm_wl = run_workload(
        &format!("gemm_{dim}x{dim}x{dim}"),
        "gflops",
        args.reps,
        gemm_flops,
        gemm_flops,
        || {
            let mut out = Tensor::zeros(&[dim, dim]);
            gemm(&a, &b, Gemm::new(), &mut out).expect("gemm");
            out.into_vec()
        },
    );

    // --- Convolution: batched same-3x3 forward. -----------------------
    let (n, c, co, hw) = (4 * scale, 8, 16, 16);
    let x = init::normal(&[n, c, hw, hw], 0.0, 1.0, &mut rng);
    let w = init::normal(&[co, c * 9], 0.0, 0.1, &mut rng);
    let geo = ConvGeometry::new(3, 1, 1);
    let conv_flops = 2.0 * (n * co * c * 9 * hw * hw) as f64 / 1e9;
    let conv_wl = run_workload(
        &format!("conv3x3_b{n}_{c}to{co}_{hw}x{hw}"),
        "gflops",
        args.reps,
        conv_flops,
        conv_flops,
        || conv2d_forward(&x, &w, None, geo).expect("conv").into_vec(),
    );

    // --- PGD: batch-sharded attack across model replicas. -------------
    let pgd_batch = 4 * scale;
    let pgd_steps = 3;
    let images = init::uniform(&[pgd_batch, 3, 12, 12], 0.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..pgd_batch).map(|i| i % 10).collect();
    let config = AttackConfig::pgd(8.0 / 255.0, pgd_steps);
    // Cost-model FLOPs for one attack call: each PGD step runs a forward
    // plus a backward (2× forward work) over the replica model — a same
    // 3×3 conv (3→8 on 12×12) and a 1152→10 linear — per image.
    let pgd_model_flops = (2 * 8 * 3 * 9 * 12 * 12 + 2 * (8 * 12 * 12) * 10) as f64;
    let pgd_gflops = 3.0 * pgd_model_flops * (pgd_batch * pgd_steps) as f64 / 1e9;
    let pgd_wl = {
        let mut samples = Vec::new();
        let mut checksums = Vec::new();
        for &t in &THREAD_COUNTS {
            rt_par::set_threads(t);
            // One replica per pool thread: shard boundaries are a pure
            // function of (batch, replica count), so the adversarial
            // batch is bit-identical for every `t` (checked below).
            let mut replicas: Vec<Box<dyn Layer>> =
                (0..t).map(|_| Box::new(pgd_model(11)) as Box<dyn Layer>).collect();
            let (best_ms, checksum) = best_of(args.reps, || {
                let mut arng = rng_from_seed(13);
                let adv = perturb_replicas(&mut replicas, &images, &labels, &config, &mut arng)
                    .expect("pgd");
                bitfold(&black_box(adv.into_vec()))
            });
            samples.push(Sample {
                threads: t,
                best_ms,
                throughput: pgd_batch as f64 / (best_ms / 1e3),
                eff_gflops: pgd_gflops / (best_ms / 1e3),
            });
            checksums.push(checksum);
        }
        rt_par::set_threads(1);
        let deterministic = checksums.iter().all(|&c| c == checksums[0]);
        let speedup_4t = samples[2].throughput / samples[0].throughput;
        rt_obs::console!(
            "[bench] pgd_b{pgd_batch}_s{pgd_steps}: 1t {:.2} ms, 4t {:.2} ms ({speedup_4t:.2}x), deterministic={deterministic}",
            samples[0].best_ms,
            samples[2].best_ms
        );
        Workload {
            name: format!("pgd_b{pgd_batch}_s{pgd_steps}"),
            unit: "samples_per_s",
            samples,
            speedup_4t,
            deterministic,
        }
    };

    // --- Packed vs legacy GEMM: the rt-kern acceptance gate. ----------
    let packed_gemm = {
        let pdim = PACKED_GATE_DIM;
        let pa = init::normal(&[pdim, pdim], 0.0, 1.0, &mut rng);
        let pb = init::normal(&[pdim, pdim], 0.0, 1.0, &mut rng);
        let mut run_kernel = |k: Kernel| {
            let mut out = Tensor::zeros(&[pdim, pdim]);
            gemm_via(k, &pa, &pb, Gemm::new(), &mut out).expect("gemm_via");
            out.into_vec()
        };
        // Bit-identity first: packed must reproduce legacy bytes exactly
        // at both the serial pool and a parallel one.
        let mut bit_identical = true;
        for t in [1usize, 4] {
            rt_par::set_threads(t);
            bit_identical &= run_kernel(Kernel::Legacy) == run_kernel(Kernel::Packed);
        }
        // Speedup at 1 thread: the per-core win, uninflated by scaling.
        rt_par::set_threads(1);
        let (legacy_ms, _) = best_of(args.reps, || bitfold(&black_box(run_kernel(Kernel::Legacy))));
        let (packed_ms, _) = best_of(args.reps, || bitfold(&black_box(run_kernel(Kernel::Packed))));
        let speedup = legacy_ms / packed_ms;
        rt_obs::console!(
            "[bench] packed_gemm_{pdim}: legacy {legacy_ms:.2} ms, packed {packed_ms:.2} ms \
             ({speedup:.2}x at 1t), bit_identical={bit_identical}"
        );
        PackedGemm {
            shape: format!("{pdim}x{pdim}x{pdim}"),
            legacy_ms,
            packed_ms,
            speedup,
            bit_identical,
        }
    };

    // --- Supervision overhead: the same GEMM/conv bodies re-timed under
    // a live, never-tripped cancellation scope. ------------------------
    let cancel_overhead = vec![
        measure_cancel_overhead(&format!("gemm_{dim}x{dim}x{dim}"), args.reps, || {
            let mut out = Tensor::zeros(&[dim, dim]);
            gemm(&a, &b, Gemm::new(), &mut out).expect("gemm");
            out.into_vec()
        }),
        measure_cancel_overhead(
            &format!("conv3x3_b{n}_{c}to{co}_{hw}x{hw}"),
            args.reps,
            || conv2d_forward(&x, &w, None, geo).expect("conv").into_vec(),
        ),
    ];
    let cancel_overhead_pct = cancel_overhead
        .iter()
        .map(|o| o.overhead_pct)
        .fold(f64::NEG_INFINITY, f64::max);

    let host_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if host_parallelism == 1 {
        rt_obs::console!(
            "[bench] single-core host: thread-scaling numbers are time-sliced (flat ~1.0x) \
             and exempt from trend gating"
        );
    }
    let report = Report {
        v: BENCH_VERSION,
        generated_unix_ms: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0),
        reps: args.reps,
        quick: args.quick,
        host_parallelism,
        single_core_host: host_parallelism == 1,
        workloads: vec![gemm_wl, conv_wl, pgd_wl],
        packed_gemm,
        cancel_overhead,
        cancel_overhead_pct,
    };

    let all_deterministic = report.workloads.iter().all(|w| w.deterministic);
    let bytes = match serde_json::to_vec_pretty(&report) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot encode report: {e}");
            ExitCode::PersistentFailure.exit();
        }
    };
    if let Err(e) = rt_nn::checkpoint::atomic_write(&args.out, &bytes) {
        eprintln!("cannot write {}: {e}", args.out.display());
        ExitCode::PersistentFailure.exit();
    }
    rt_obs::console!("[bench] wrote {}", args.out.display());
    if let Some(hist_path) = &args.history {
        let mut entry = HistoryEntry::new("bench_kernels", args.quick)
            .metric("cancel_overhead_pct", report.cancel_overhead_pct)
            .metric("packed_gemm_speedup", report.packed_gemm.speedup);
        for w in &report.workloads {
            entry = entry.metric(&format!("{}_speedup_4t", w.name), w.speedup_4t);
            for s in &w.samples {
                if s.threads == 1 || s.threads == 4 {
                    entry = entry.metric(
                        &format!("{}_{}t_eff_gflops", w.name, s.threads),
                        s.eff_gflops,
                    );
                }
            }
        }
        if let Err(e) = append_history(hist_path, &entry) {
            eprintln!("cannot append history {}: {e}", hist_path.display());
        } else {
            rt_obs::console!("[bench] history += {}", hist_path.display());
        }
    }
    if !all_deterministic {
        eprintln!("DETERMINISM VIOLATION: some thread count diverged from the serial pool");
        ExitCode::PersistentFailure.exit();
    }
    if !report.packed_gemm.bit_identical {
        eprintln!(
            "PACKED GEMM DIVERGENCE: packed kernel bytes differ from the legacy kernel \
             on {} (packed kernels must be bit-identical to the reference)",
            report.packed_gemm.shape
        );
        ExitCode::PersistentFailure.exit();
    }
    if report.packed_gemm.speedup < PACKED_MIN_SPEEDUP {
        eprintln!(
            "PACKED GEMM SPEEDUP VIOLATION: {:.2}x < {PACKED_MIN_SPEEDUP}x on {} \
             (the cache-blocked kernel must beat legacy ikj at 1 thread)",
            report.packed_gemm.speedup, report.packed_gemm.shape
        );
        ExitCode::PersistentFailure.exit();
    }
    if report.cancel_overhead_pct > MAX_CANCEL_OVERHEAD_PCT {
        eprintln!(
            "SUPERVISION OVERHEAD VIOLATION: {:.2}% > {MAX_CANCEL_OVERHEAD_PCT}% \
             (cooperative cancellation checks must stay invisible at kernel granularity)",
            report.cancel_overhead_pct
        );
        ExitCode::PersistentFailure.exit();
    }
}
