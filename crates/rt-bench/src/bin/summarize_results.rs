//! Aggregates every JSON [`ExperimentRecord`] under `results/` into one
//! report: markdown tables, Unicode charts, the shape-check notes, and —
//! when `<id>-<scale>.stats.json` runner summaries are present — a
//! runner-stats table (cells completed / resumed / retried / failed and
//! wall time per sweep).
//! Run after `./run_standard.sh` to get the whole evaluation at a glance:
//!
//! ```text
//! cargo run --release -p rt-bench --bin summarize_results [-- --dir results]
//! ```

use rt_transfer::chart::{render_chart, ChartOptions};
use rt_transfer::experiment::ExperimentRecord;
use rt_transfer::runner::{ExitCode, RunnerSummary};
use std::path::PathBuf;

fn results_dir() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    for pair in args.windows(2) {
        if pair[0] == "--dir" {
            return PathBuf::from(&pair[1]);
        }
    }
    PathBuf::from("results")
}

fn main() {
    let dir = results_dir();
    let mut records: Vec<(PathBuf, ExperimentRecord)> = Vec::new();
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("cannot read {}: {e}", dir.display());
            // A missing/unreadable results dir is an invocation problem
            // (wrong --dir), not a crashed experiment.
            ExitCode::Usage.exit();
        }
    };
    let mut summaries: Vec<(String, RunnerSummary)> = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if let Some(sweep) = name.strip_suffix(".stats.json") {
            match std::fs::read_to_string(&path)
                .ok()
                .and_then(|json| serde_json::from_str::<RunnerSummary>(&json).ok())
            {
                Some(summary) => summaries.push((sweep.to_string(), summary)),
                None => eprintln!("[skip] {} is not a runner summary", path.display()),
            }
            continue;
        }
        match std::fs::read_to_string(&path)
            .ok()
            .and_then(|json| serde_json::from_str::<ExperimentRecord>(&json).ok())
        {
            Some(record) => records.push((path, record)),
            None => eprintln!("[skip] {} is not an experiment record", path.display()),
        }
    }
    if records.is_empty() {
        eprintln!("no experiment records found under {}", dir.display());
        ExitCode::PersistentFailure.exit();
    }
    records.sort_by(|a, b| a.1.id.cmp(&b.1.id));

    println!("# Experiment summary ({} records)\n", records.len());
    for (path, record) in &records {
        println!("{}", record.to_markdown());
        // Charts are only legible for a handful of series; plot the first
        // eight at most.
        let take = record.series.len().min(8);
        if take >= 1 && record.series[0].points.len() >= 2 {
            println!("```text");
            print!(
                "{}",
                render_chart(&record.series[..take], &ChartOptions::default())
            );
            println!("```");
        }
        println!("_source: {}_\n", path.display());
    }

    if !summaries.is_empty() {
        summaries.sort_by(|a, b| a.0.cmp(&b.0));
        println!("## Runner stats\n");
        println!(
            "| sweep | completed | resumed | retried | deadline trips | failed | exec time | wall time |"
        );
        println!("|---|---:|---:|---:|---:|---:|---:|---:|");
        for (sweep, s) in &summaries {
            println!(
                "| {} | {} | {} | {} | {} | {} | {} | {} |",
                sweep,
                s.stats.executed,
                s.stats.skipped,
                s.stats.retries,
                s.stats.deadline_trips,
                s.stats.failed,
                fmt_ms(s.stats.executed_ms),
                fmt_ms(s.wall_ms),
            );
        }
        println!();
    }
}

/// Human-scale duration: `412 ms`, `3.2 s`, `4.5 min`.
fn fmt_ms(ms: f64) -> String {
    if ms < 1_000.0 {
        format!("{ms:.0} ms")
    } else if ms < 60_000.0 {
        format!("{:.1} s", ms / 1_000.0)
    } else {
        format!("{:.1} min", ms / 60_000.0)
    }
}
