//! **Ablation: ticket criteria** — how much does the *selection criterion*
//! matter, given the same robust pretrained weights? Compares:
//!
//! * magnitude OMP (the paper's criterion),
//! * SNIP-style saliency `|w·∂L/∂w|` (first-order prior),
//! * random tickets (the lottery-ticket chance baseline),
//!
//! under whole-model finetuning on the CIFAR-10 analog. Also reports the
//! robust dense model's accuracy under the gradient-free Square attack as
//! a gradient-masking sanity check (PGD and Square should roughly agree).

use rt_bench::{
    abort_on_error, family_for, finish, pretrained_model, score_ticket_avg, source_task, Protocol,
};
use rt_nn::loss::CrossEntropyLoss;
use rt_nn::{ExecCtx, Layer};
use rt_prune::{omp, random_ticket, saliency_ticket, OmpConfig, PruneScope};
use rt_tensor::rng::SeedStream;
use rt_transfer::evaluate::EVAL_BATCH;
use rt_transfer::experiment::{ExperimentRecord, Preset, Scale, Series};

fn main() {
    let _obs = rt_bench::ObsSession::start("ablate_criteria");
    let preset = Preset::new(Scale::from_args());
    if let Err(e) = run(&preset) {
        abort_on_error("ablate-criteria", e);
    }
}

fn run(preset: &Preset) -> rt_bench::Result<()> {
    let family = family_for(preset);
    let source = source_task(preset, &family)?;
    let task = family.downstream_task(&preset.c10_spec())?;

    let arch = preset.arch_r18();
    let robust = pretrained_model(preset, "r18", &arch, &source, preset.adversarial_scheme())?;

    let mut record = ExperimentRecord::new(
        "ablate-criteria",
        "ticket selection criteria: magnitude vs saliency vs random (robust R18)",
        preset.scale,
    );
    for criterion in ["magnitude", "saliency", "random"] {
        let mut series = Series::new(criterion);
        for (i, &sparsity) in preset.sparsity_grid.iter().enumerate() {
            let mut model = robust.fresh_model(900 + i as u64)?;
            let ticket = match criterion {
                "magnitude" => omp(&model, &OmpConfig::unstructured(sparsity))?,
                "saliency" => {
                    // Accumulate source-task gradients for the saliency
                    // scores (one pass over a gradient batch).
                    let (images, labels) = source
                        .train
                        .gather(&(0..EVAL_BATCH.min(source.train.len())).collect::<Vec<_>>())?;
                    let logits = model.forward(&images, ExecCtx::train())?;
                    let out = CrossEntropyLoss::new().forward(&logits, &labels)?;
                    model.backward(&out.grad, ExecCtx::default())?;
                    let t = saliency_ticket(&model, sparsity, &PruneScope::backbone())?;
                    model.zero_grad();
                    t
                }
                _ => random_ticket(
                    &model,
                    sparsity,
                    &PruneScope::backbone(),
                    &mut SeedStream::new(77).child_idx(i as u64).rng(),
                )?,
            };
            let acc = score_ticket_avg(
                preset,
                &robust,
                &ticket,
                &task,
                Protocol::Finetune,
                40 + i as u64,
            )?;
            eprintln!("[{criterion}] s={sparsity:.3} acc={acc:.4}");
            series.push(sparsity, acc);
        }
        record.series.push(series);
    }

    // Gradient-masking sanity check on the dense robust model.
    let mut model = robust.fresh_model(1)?;
    let (images, labels) = source
        .test
        .gather(&(0..EVAL_BATCH.min(source.test.len())).collect::<Vec<_>>())?;
    let mut rng = SeedStream::new(5).rng();
    let pgd_acc = {
        let adv =
            rt_adv::attack::perturb(&mut model, &images, &labels, &preset.eval_attack, &mut rng)?;
        rt_adv::eval::clean_accuracy(&mut model, &adv, &labels)?
    };
    let square_cfg = rt_adv::SquareConfig::new(preset.eval_attack.epsilon).with_iterations(60);
    let square_acc = {
        let adv =
            rt_adv::square::square_attack(&mut model, &images, &labels, &square_cfg, &mut rng)?;
        rt_adv::eval::clean_accuracy(&mut model, &adv, &labels)?
    };
    record.notes.push(format!(
        "gradient-masking check on the dense robust model: PGD acc {pgd_acc:.3} vs \
         Square (gradient-free) acc {square_acc:.3} — Square should not be \
         dramatically stronger than PGD"
    ));
    record.notes.push(
        "expected: magnitude ≥ saliency ≫ random; the criterion matters but \
         any informed prior dominates chance"
            .to_string(),
    );
    finish(&record, preset);
    Ok(())
}
