//! Generator-calibration probe: sweeps `FamilyConfig` amplitude knobs (via
//! environment variables) and reports robust-vs-natural transfer at two
//! sparsities and two domain gaps. Used to tune the synthetic universe so
//! the paper's phenomenon is expressed; see DESIGN.md.
//!
//! Knobs: `ROBUST_AMP`, `FRAGILE_AMP`, `NOISE_STD`, `PRETRAIN_EPS`,
//! `MAX_SHIFT`, `GAP_A`, `GAP_B`, `PRETRAIN_EPOCHS`, `DOWN_TRAIN`.

use rt_adv::attack::AttackConfig;
use rt_data::{DownstreamSpec, TaskFamily};
use rt_prune::{omp, OmpConfig};
use rt_transfer::evaluate::{evaluate, evaluate_adversarial};
use rt_transfer::experiment::{Preset, Scale};
use rt_transfer::finetune::finetune;
use rt_transfer::linear::linear_eval;
use rt_transfer::pretrain::{pretrain, PretrainScheme};

fn env_f32(key: &str, default: f32) -> f32 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let _obs = rt_bench::ObsSession::start("probe_family");
    let mut preset = Preset::new(Scale::Standard);
    preset.family.robust_amp = env_f32("ROBUST_AMP", preset.family.robust_amp);
    preset.family.fragile_amp = env_f32("FRAGILE_AMP", preset.family.fragile_amp);
    preset.family.noise_std = env_f32("NOISE_STD", preset.family.noise_std);
    preset.family.max_shift = env_usize("MAX_SHIFT", preset.family.max_shift as usize) as i64;
    let eps = env_f32("PRETRAIN_EPS", preset.pretrain_attack.epsilon);
    preset.pretrain_attack = AttackConfig::pgd(eps, preset.pretrain_attack.steps);
    preset.pretrain_epochs = env_usize("PRETRAIN_EPOCHS", preset.pretrain_epochs);
    let down_train = env_usize("DOWN_TRAIN", preset.downstream_train);
    preset.finetune_epochs = env_usize("FT_EPOCHS", preset.finetune_epochs);
    preset.finetune_lr = env_f32("FT_LR", preset.finetune_lr);
    let gap_a = env_f32("GAP_A", 0.35);
    let gap_b = env_f32("GAP_B", 0.7);

    println!(
        "family: robust={} fragile={} noise={} shift={} eps={} epochs={} down_train={down_train}",
        preset.family.robust_amp,
        preset.family.fragile_amp,
        preset.family.noise_std,
        preset.family.max_shift,
        eps,
        preset.pretrain_epochs,
    );

    let family = TaskFamily::new(preset.family, preset.seed);
    let source = family
        .source_task(preset.source_train, preset.source_test)
        .expect("source");
    let arch = preset.arch_r18();

    let natural = pretrain(
        &arch,
        &source,
        PretrainScheme::Natural,
        preset.pretrain_epochs,
        preset.pretrain_lr,
        1,
    )
    .expect("natural pretrain");
    let robust = pretrain(
        &arch,
        &source,
        PretrainScheme::Adversarial(preset.pretrain_attack),
        preset.pretrain_epochs,
        preset.pretrain_lr,
        1,
    )
    .expect("adv pretrain");

    for (name, pre) in [("natural", &natural), ("robust ", &robust)] {
        let mut m = pre.fresh_model(1).expect("model");
        let clean = evaluate(&mut m, &source.test).expect("eval").accuracy;
        let adv = evaluate_adversarial(&mut m, &source.test, &preset.eval_attack, 7).expect("adv");
        println!("source {name}: clean={clean:.3} adv={adv:.3}");
    }

    for (gname, gap) in [("gapA", gap_a), ("gapB", gap_b)] {
        let spec = DownstreamSpec {
            name: format!("probe-{gname}"),
            gap,
            num_classes: 6,
            train_size: down_train,
            test_size: preset.downstream_test,
        };
        let task = family.downstream_task(&spec).expect("task");
        for sparsity in [0.5f64, 0.9] {
            let mut row = format!("{gname} g={gap:.2} s={sparsity:.1} |");
            for (name, pre) in [("nat", &natural), ("rob", &robust)] {
                let mut m = pre.fresh_model(2).expect("model");
                let ticket = omp(&m, &OmpConfig::unstructured(sparsity)).expect("omp");
                ticket.apply(&mut m).expect("apply");
                let lin = linear_eval(&mut m, &task, &preset.linear).expect("linear");
                let ft = finetune(&mut m, &task, &preset.finetune_cfg(11)).expect("ft");
                row.push_str(&format!(" {name}: lin={lin:.3} ft={:.3} |", ft.accuracy));
            }
            println!("{row}");
        }
    }
}
