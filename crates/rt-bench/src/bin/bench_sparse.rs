//! **bench_sparse** — sparse-vs-dense kernel benchmark of the ticket
//! execution engine (`rt-sparse`).
//!
//! Runs masked `Linear` and `Conv2d` layers twice per configuration —
//! once through the compiled sparse plan (`ExecCtx::with_sparse(true)`)
//! and once through the legacy masked-dense kernels — across mask
//! granularities (channel → compact plans, element → CSR plans),
//! sparsities, and pool thread counts, and writes `BENCH_sparse.json`.
//!
//! ```text
//! bench_sparse [--out BENCH_sparse.json] [--reps N] [--quick]
//! ```
//!
//! The run **fails** if the sparse path's output bytes ever differ from
//! the masked-dense path, or if any thread count diverges from the serial
//! pool — the benchmark doubles as a bit-identity gate on real layer
//! shapes.

use rt_bench::history::{append_history, default_history_path, repo_path, HistoryEntry};
use rt_nn::layers::{Conv2d, Conv2dConfig, Linear};
use rt_nn::{ExecCtx, Layer};
use rt_tensor::rng::rng_from_seed;
use rt_tensor::{init, Tensor};
use std::hint::black_box;
use std::path::PathBuf;
use rt_transfer::runner::ExitCode;
use std::time::Instant;

/// Pool sizes swept by the benchmark (1 = serial reference).
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Schema version of `BENCH_sparse.json`.
const BENCH_VERSION: u32 = 1;

struct Args {
    out: PathBuf,
    reps: usize,
    quick: bool,
    history: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = repo_path("BENCH_sparse.json");
    let mut reps = 3usize;
    let mut quick = false;
    let mut history = Some(default_history_path());
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--out" => out = PathBuf::from(argv.next().ok_or("--out needs a path")?),
            "--reps" => {
                reps = argv
                    .next()
                    .ok_or("--reps needs a number")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
            }
            "--quick" => quick = true,
            "--history" => {
                history = Some(PathBuf::from(argv.next().ok_or("--history needs a path")?));
            }
            "--no-history" => history = None,
            "--help" | "-h" => {
                return Err(
                    "usage: bench_sparse [--out BENCH_sparse.json] [--reps N] [--quick] \
                     [--history PATH | --no-history]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if reps == 0 {
        return Err("--reps must be at least 1".to_string());
    }
    Ok(Args {
        out,
        reps,
        quick,
        history,
    })
}

/// One `(configuration, thread count)` measurement.
struct Sample {
    threads: usize,
    dense_ms: f64,
    sparse_ms: f64,
    /// dense_ms / sparse_ms — what the compiled plan actually buys.
    speedup: f64,
    /// Effective GFLOP/s of the sparse path: the *dense-equivalent* FLOP
    /// count (from the plan's cost model) over the sparse wall time, so
    /// a plan that skips work scores above the hardware's dense roofline.
    eff_gflops: f64,
}

/// One masked-layer configuration's sweep.
struct SparseWorkload {
    name: String,
    granularity: &'static str,
    sparsity: f64,
    /// Compiled plan kind of the masked weight (`compact` / `csr`).
    plan_kind: String,
    samples: Vec<Sample>,
    /// Whether the sparse path's bytes matched masked-dense everywhere.
    bit_identical: bool,
    /// Whether every thread count produced identical bytes.
    deterministic: bool,
}

/// Times `f` `reps` times (after one warmup call) and returns the best
/// wall-clock in milliseconds together with the checksum of the last
/// output. `f` must be deterministic, so any rep's output is THE output.
fn best_of<F: FnMut() -> f64>(reps: usize, mut f: F) -> (f64, f64) {
    let mut checksum = f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        checksum = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (best, checksum)
}

/// Exact bitwise fold of a float slice — equal checksums here mean equal
/// bytes, not approximately equal values.
fn bitfold(data: &[f32]) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in data {
        h = (h ^ u64::from(v.to_bits())).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h as f64
}

/// Deterministic pseudo-random keep decision for element masks.
fn keep_element(i: usize, density_ppm: u64) -> bool {
    let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33;
    h % 1_000_000 < density_ppm
}

/// Builds a mask tensor for `shape` at `sparsity` under `granularity`
/// (`"channel"`: whole output units pruned; `"element"`: unstructured).
fn build_mask(shape: &[usize], sparsity: f64, granularity: &str) -> Tensor {
    let rows = shape[0];
    let cols: usize = shape[1..].iter().product();
    match granularity {
        "channel" => {
            let dead = ((rows as f64) * sparsity).round() as usize;
            // Spread pruned rows evenly so the live set isn't contiguous:
            // row r is pruned iff (r·dead) mod rows < dead, which prunes
            // exactly `dead` of the `rows` rows.
            Tensor::from_fn(shape, |i| {
                let r = i / cols;
                if dead > 0 && (r * dead) % rows < dead {
                    0.0
                } else {
                    1.0
                }
            })
        }
        _ => {
            let density_ppm = ((1.0 - sparsity) * 1e6) as u64;
            Tensor::from_fn(shape, |i| if keep_element(i, density_ppm) { 1.0 } else { 0.0 })
        }
    }
}

/// Benchmarks one masked layer: forward under sparse plans vs masked-dense
/// kernels at every thread count, checking byte equality throughout.
fn run_masked_layer(
    name: &str,
    granularity: &'static str,
    sparsity: f64,
    reps: usize,
    layer: &mut dyn Layer,
    mask: Tensor,
    x: &Tensor,
    units: usize,
) -> SparseWorkload {
    layer.params_mut()[0]
        .set_mask(mask)
        .expect("mask shape mismatch");
    let plan_kind = layer.params()[0]
        .plan
        .as_ref()
        .map(|p| p.kind.name().to_string())
        .unwrap_or_else(|| "none".to_string());
    // Dense-equivalent FLOPs of one forward call, from the plan's cost
    // model (falling back to 2·|W|·units when no plan compiled).
    let dense_gflops = layer.params()[0]
        .plan
        .as_ref()
        .map(|p| p.dense_flops(units))
        .unwrap_or(2 * layer.params()[0].data.data().len() as u64 * units as u64)
        as f64
        / 1e9;
    let mut samples = Vec::new();
    let mut bit_identical = true;
    let mut sparse_checksums = Vec::new();
    for &t in &THREAD_COUNTS {
        rt_par::set_threads(t);
        let (dense_ms, dense_sum) = best_of(reps, || {
            let y = layer
                .forward(x, ExecCtx::eval().with_sparse(false))
                .expect("dense forward");
            bitfold(&black_box(y.into_vec()))
        });
        let (sparse_ms, sparse_sum) = best_of(reps, || {
            let y = layer
                .forward(x, ExecCtx::eval().with_sparse(true))
                .expect("sparse forward");
            bitfold(&black_box(y.into_vec()))
        });
        bit_identical &= dense_sum == sparse_sum;
        sparse_checksums.push(sparse_sum);
        samples.push(Sample {
            threads: t,
            dense_ms,
            sparse_ms,
            speedup: dense_ms / sparse_ms,
            eff_gflops: dense_gflops / (sparse_ms / 1e3),
        });
    }
    rt_par::set_threads(1);
    let deterministic = sparse_checksums.iter().all(|&c| c == sparse_checksums[0]);
    rt_obs::console!(
        "[bench] {name} ({granularity} @{sparsity}, {plan_kind}): 1t {:.2}x, 4t {:.2}x ({:.2} eff GFLOP/s), bit_identical={bit_identical}",
        samples[0].speedup,
        samples[2].speedup,
        samples[2].eff_gflops
    );
    SparseWorkload {
        name: name.to_string(),
        granularity,
        sparsity,
        plan_kind,
        samples,
        bit_identical,
        deterministic,
    }
}

/// Hand-rolled JSON encoding — the schema is flat and this keeps the
/// binary's dependency surface minimal.
fn encode_json(reps: usize, quick: bool, workloads: &[SparseWorkload]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"v\": {BENCH_VERSION},\n"));
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    s.push_str(&format!("  \"generated_unix_ms\": {now},\n"));
    s.push_str(&format!("  \"reps\": {reps},\n"));
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str("  \"workloads\": [\n");
    for (wi, w) in workloads.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", w.name));
        s.push_str(&format!("      \"granularity\": \"{}\",\n", w.granularity));
        s.push_str(&format!("      \"sparsity\": {},\n", w.sparsity));
        s.push_str(&format!("      \"plan_kind\": \"{}\",\n", w.plan_kind));
        s.push_str(&format!("      \"bit_identical\": {},\n", w.bit_identical));
        s.push_str(&format!("      \"deterministic\": {},\n", w.deterministic));
        s.push_str("      \"samples\": [\n");
        for (si, sm) in w.samples.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"threads\": {}, \"dense_ms\": {:.6}, \"sparse_ms\": {:.6}, \"speedup\": {:.4}, \"eff_gflops\": {:.4}}}{}\n",
                sm.threads,
                sm.dense_ms,
                sm.sparse_ms,
                sm.speedup,
                sm.eff_gflops,
                if si + 1 < w.samples.len() { "," } else { "" }
            ));
        }
        s.push_str("      ]\n");
        s.push_str(&format!(
            "    }}{}\n",
            if wi + 1 < workloads.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::Usage.exit();
        }
    };
    rt_obs::init_from_env();
    let scale = if args.quick { 1 } else { 2 };

    let mut workloads = Vec::new();
    let mut rng = rng_from_seed(7);

    // --- Masked Linear: the GEMM that dominates classifier heads. ------
    let (in_f, out_f, batch) = (256 * scale, 128 * scale, 32 * scale);
    let x = init::normal(&[batch, in_f], 0.0, 1.0, &mut rng);
    for &(granularity, sparsity) in &[
        ("channel", 0.5),
        ("channel", 0.8),
        ("channel", 0.95),
        ("element", 0.8),
        ("element", 0.95),
    ] {
        let mut layer = Linear::new(in_f, out_f, &mut rng).expect("linear");
        let mask = build_mask(&[out_f, in_f], sparsity, granularity);
        workloads.push(run_masked_layer(
            &format!("linear_{batch}x{in_f}to{out_f}"),
            granularity,
            sparsity,
            args.reps,
            &mut layer,
            mask,
            &x,
            batch,
        ));
    }

    // --- Masked Conv2d: channel-structured ticket on a 3x3 conv. -------
    let (n, ci, co, hw) = (2 * scale, 16, 32, 8 * scale);
    let xc = init::normal(&[n, ci, hw, hw], 0.0, 1.0, &mut rng);
    for &sparsity in &[0.5, 0.8] {
        let mut conv = Conv2d::new(ci, co, Conv2dConfig::same3x3(), &mut rng).expect("conv");
        let mask = build_mask(&[co, ci, 3, 3], sparsity, "channel");
        workloads.push(run_masked_layer(
            &format!("conv3x3_b{n}_{ci}to{co}_{hw}x{hw}"),
            "channel",
            sparsity,
            args.reps,
            &mut conv,
            mask,
            &xc,
            // Same-3x3 conv: one GEMM unit per output pixel per sample.
            n * hw * hw,
        ));
    }

    let all_identical = workloads.iter().all(|w| w.bit_identical);
    let all_deterministic = workloads.iter().all(|w| w.deterministic);
    let json = encode_json(args.reps, args.quick, &workloads);
    if let Err(e) = rt_nn::checkpoint::atomic_write(&args.out, json.as_bytes()) {
        eprintln!("cannot write {}: {e}", args.out.display());
        ExitCode::PersistentFailure.exit();
    }
    rt_obs::console!("[bench] wrote {}", args.out.display());
    if let Some(hist_path) = &args.history {
        let mut entry = HistoryEntry::new("bench_sparse", args.quick);
        for w in &workloads {
            let key = format!("{}_{}_s{:.2}", w.name, w.granularity, w.sparsity);
            for s in &w.samples {
                if s.threads == 1 || s.threads == 4 {
                    entry = entry
                        .metric(&format!("{key}_{}t_speedup", s.threads), s.speedup)
                        .metric(&format!("{key}_{}t_eff_gflops", s.threads), s.eff_gflops);
                }
            }
        }
        if let Err(e) = append_history(hist_path, &entry) {
            eprintln!("cannot append history {}: {e}", hist_path.display());
        } else {
            rt_obs::console!("[bench] history += {}", hist_path.display());
        }
    }
    if !all_identical {
        eprintln!("BIT DIVERGENCE: sparse plan output differs from masked-dense");
        ExitCode::PersistentFailure.exit();
    }
    if !all_deterministic {
        eprintln!("DETERMINISM VIOLATION: some thread count diverged from the serial pool");
        ExitCode::PersistentFailure.exit();
    }
}
