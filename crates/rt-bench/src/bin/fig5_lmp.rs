//! **Fig. 5** — Learnable mask pruning (LMP): task-specific masks learned
//! on frozen robust vs. natural pretrained weights, across sparsities.
//! Also covers the `--score-init` ablation (magnitude vs. random init)
//! called out in DESIGN.md.
//!
//! Expected shape: robust LMP tickets consistently outperform natural ones
//! — robust pretrained models contain better task-specific subnetworks
//! even without any weight finetuning.

use rt_bench::{abort_on_error, family_for, finish, pretrained_model, source_task, win_count};
use rt_data::Task;
use rt_transfer::experiment::{ExperimentRecord, Preset, Scale, Series};
use rt_transfer::pretrain::{PretrainScheme, Pretrained};
use rt_transfer::ticket::{lmp_run, LmpScoreInit};

fn lmp_curve(
    preset: &Preset,
    pre: &Pretrained,
    task: &Task,
    init: LmpScoreInit,
    label: String,
    sparsities: &[f64],
) -> rt_bench::Result<Series> {
    let mut series = Series::new(label.clone());
    for (i, &sparsity) in sparsities.iter().enumerate() {
        let mut model = pre.fresh_model(300 + i as u64)?;
        let mut cfg = preset.lmp_cfg(sparsity, 17 + i as u64);
        cfg.init = init;
        let outcome = lmp_run(&mut model, task, &cfg)?;
        eprintln!("[{label}] s={sparsity:.3} acc={:.4}", outcome.test_accuracy);
        series.push(sparsity, outcome.test_accuracy);
    }
    Ok(series)
}

fn main() {
    let _obs = rt_bench::ObsSession::start("fig5_lmp");
    let preset = Preset::new(Scale::from_args());
    if let Err(e) = run(&preset) {
        abort_on_error("fig5", e);
    }
}

fn run(preset: &Preset) -> rt_bench::Result<()> {
    let family = family_for(preset);
    let source = source_task(preset, &family)?;
    let tasks = [
        family.downstream_task(&preset.c10_spec())?,
        family.downstream_task(&preset.c100_spec())?,
    ];
    // LMP cannot exceed moderate sparsity meaningfully without weight
    // training; sweep the paper's practical range.
    let sparsities: Vec<f64> = preset
        .sparsity_grid
        .iter()
        .copied()
        .filter(|&s| s <= 0.95)
        .collect();

    let mut record = ExperimentRecord::new(
        "fig5",
        "LMP tickets on frozen weights: robust vs natural",
        preset.scale,
    );
    for (arch_label, arch) in [("r18", preset.arch_r18()), ("r50", preset.arch_r50())] {
        let natural =
            pretrained_model(preset, arch_label, &arch, &source, PretrainScheme::Natural)?;
        let robust = pretrained_model(
            preset,
            arch_label,
            &arch,
            &source,
            preset.adversarial_scheme(),
        )?;
        for task in &tasks {
            for (kind, pre) in [("natural", &natural), ("robust", &robust)] {
                record.series.push(lmp_curve(
                    preset,
                    pre,
                    task,
                    LmpScoreInit::Magnitude,
                    format!("{kind}/{arch_label}/{}", task.name),
                    &sparsities,
                )?);
            }
        }
    }

    // Score-init ablation on one panel (r18 / c10-analog).
    let arch = preset.arch_r18();
    let robust = pretrained_model(preset, "r18", &arch, &source, preset.adversarial_scheme())?;
    record.series.push(lmp_curve(
        preset,
        &robust,
        &tasks[0],
        LmpScoreInit::Random,
        format!("robust-randinit/r18/{}", tasks[0].name),
        &sparsities,
    )?);

    let mut wins = 0;
    let mut total = 0;
    for pair in record.series.chunks(2).take(4) {
        let (w, t) = win_count(&pair[1], &pair[0]);
        wins += w;
        total += t;
    }
    record.notes.push(format!(
        "shape check: robust LMP wins {wins}/{total} cells \
         (paper: consistent robust wins under LMP)"
    ));
    record.notes.push(
        "ablation: `robust-randinit` shows magnitude score init vs random \
         init on the r18/c10 panel"
            .to_string(),
    );
    finish(&record, preset);
    Ok(())
}
