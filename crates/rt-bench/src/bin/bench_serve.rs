//! **bench_serve** — closed-loop load generator for the batched
//! ticket-inference service (`rt-serve`).
//!
//! Serves two variants of the same two-layer MLP snapshot — the dense
//! baseline and a channel-structured ticket at density 1/8 executed
//! through its compiled sparse plans — and drives each with 1/2/4/8
//! closed-loop clients (every client keeps exactly one request in
//! flight). Per client count it reports p50/p99 request latency and
//! throughput, plus the sparse-vs-dense throughput speedup, and writes
//! `BENCH_serve.json`.
//!
//! ```text
//! bench_serve [--out BENCH_serve.json] [--iters N] [--quick]
//!             [--history PATH | --no-history]
//! ```
//!
//! The run **fails** if any served response's bytes differ from a serial
//! single-sample forward through an identically restored model — the
//! loadgen doubles as the end-to-end bit-identity gate on the batching
//! path (requests coalesce into micro-batches whose per-row results must
//! be byte-equal to batch-size-1 execution).

use rt_bench::history::{append_history, default_history_path, repo_path, HistoryEntry};
use rt_nn::checkpoint::StateDict;
use rt_nn::layers::{Linear, Relu};
use rt_nn::{Layer, Sequential};
use rt_prune::TicketMask;
use rt_serve::{ModelSpec, ServeConfig, Service};
use rt_tensor::rng::rng_from_seed;
use rt_tensor::Tensor;
use rt_transfer::runner::ExitCode;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

/// Closed-loop client counts swept per variant.
const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Distinct request payloads cycled through by the clients (also the
/// serial-reference set for the bit-identity check).
const DISTINCT_SAMPLES: usize = 16;

/// Rows kept by the ticket: 1 in `ROW_KEEP` output units per Linear —
/// density 0.125, inside the acceptance band (≤ 0.2).
const ROW_KEEP: usize = 8;

/// Schema version of `BENCH_serve.json`.
const BENCH_VERSION: u32 = 1;

struct Args {
    out: PathBuf,
    iters: usize,
    quick: bool,
    history: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = repo_path("BENCH_serve.json");
    let mut iters = 40usize;
    let mut quick = false;
    let mut history = Some(default_history_path());
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--out" => out = PathBuf::from(argv.next().ok_or("--out needs a path")?),
            "--iters" => {
                iters = argv
                    .next()
                    .ok_or("--iters needs a number")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?;
            }
            "--quick" => quick = true,
            "--history" => {
                history = Some(PathBuf::from(argv.next().ok_or("--history needs a path")?));
            }
            "--no-history" => history = None,
            "--help" | "-h" => {
                return Err(
                    "usage: bench_serve [--out BENCH_serve.json] [--iters N] [--quick] \
                     [--history PATH | --no-history]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if iters == 0 {
        return Err("--iters must be at least 1".to_string());
    }
    Ok(Args {
        out,
        iters,
        quick,
        history,
    })
}

/// The served architecture: a square two-layer MLP, large enough that the
/// forward dominates queueing overhead.
fn mlp(dim: usize, seed: u64) -> Sequential {
    let mut rng = rng_from_seed(seed);
    Sequential::new(vec![
        Box::new(Linear::new(dim, dim, &mut rng).expect("linear 1")),
        Box::new(Relu::new()),
        Box::new(Linear::new(dim, dim, &mut rng).expect("linear 2")),
    ])
}

/// Channel-structured ticket keeping one in [`ROW_KEEP`] output units of
/// each Linear (slots 0 and 2): the mask compiles to compact row plans,
/// the configuration where sparse execution actually skips work.
fn row_ticket(dim: usize, model: &Sequential) -> TicketMask {
    let mut ticket = TicketMask::dense(model);
    for slot in [0usize, 2] {
        ticket.set_slot(
            slot,
            Some(Tensor::from_fn(&[dim, dim], |i| {
                if (i / dim) % ROW_KEEP == 0 {
                    1.0
                } else {
                    0.0
                }
            })),
        );
    }
    ticket
}

/// Deterministic request payload `s` (one of [`DISTINCT_SAMPLES`]).
fn sample(dim: usize, s: usize) -> Tensor {
    Tensor::from_fn(&[dim], |j| ((s * 31 + j * 7) % 13) as f32 / 6.5 - 1.0)
}

/// Exact bitwise fold of a float slice — equal folds mean equal bytes.
fn bitfold(data: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in data {
        h = (h ^ u64::from(v.to_bits())).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One `(variant, client count)` closed-loop measurement.
struct Sample {
    clients: usize,
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
}

/// One served variant's sweep over client counts.
struct ServeWorkload {
    name: &'static str,
    sparse: bool,
    samples: Vec<Sample>,
    /// Every response byte-equal to its serial single-sample reference.
    bit_identical: bool,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Drives one service variant with every client count. Each client is a
/// `rt_par` task holding one request in flight; responses are folded and
/// checked against `reference` (bitfolds of the serial forwards).
fn run_variant(
    name: &'static str,
    sparse: bool,
    service: &Service,
    key: u64,
    dim: usize,
    iters: usize,
    reference: &[u64],
) -> ServeWorkload {
    let mut samples = Vec::new();
    let mut bit_identical = true;
    for &clients in &CLIENT_COUNTS {
        let latencies: Vec<Mutex<Vec<f64>>> =
            (0..clients).map(|_| Mutex::new(Vec::new())).collect();
        let divergences = Mutex::new(0usize);
        let t0 = Instant::now();
        rt_par::run_tasks(clients, &|c| {
            let mut local = Vec::with_capacity(iters);
            let mut diverged = 0usize;
            for i in 0..iters {
                let s = (c * iters + i) % DISTINCT_SAMPLES;
                let req = Instant::now();
                let y = service
                    .infer(key, sample(dim, s))
                    .expect("loadgen request failed");
                local.push(req.elapsed().as_secs_f64() * 1e3);
                if bitfold(y.data()) != reference[s] {
                    diverged += 1;
                }
            }
            *latencies[c].lock().unwrap() = local;
            *divergences.lock().unwrap() += diverged;
        });
        let wall_s = t0.elapsed().as_secs_f64();
        let mut all: Vec<f64> = latencies
            .iter()
            .flat_map(|m| m.lock().unwrap().clone())
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let total = (clients * iters) as f64;
        let diverged = *divergences.lock().unwrap();
        bit_identical &= diverged == 0;
        let s = Sample {
            clients,
            throughput_rps: total / wall_s,
            p50_ms: percentile(&all, 0.50),
            p99_ms: percentile(&all, 0.99),
            mean_ms: all.iter().sum::<f64>() / total,
        };
        rt_obs::console!(
            "[bench] {name} x{clients}: {:.0} req/s, p50 {:.3} ms, p99 {:.3} ms, divergences={diverged}",
            s.throughput_rps,
            s.p50_ms,
            s.p99_ms
        );
        samples.push(s);
    }
    ServeWorkload {
        name,
        sparse,
        samples,
        bit_identical,
    }
}

/// Hand-rolled JSON encoding — flat schema, minimal dependency surface
/// (mirrors `bench_sparse`).
fn encode_json(
    iters: usize,
    quick: bool,
    dim: usize,
    density: f64,
    workloads: &[ServeWorkload],
    speedups: &[(usize, f64)],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"v\": {BENCH_VERSION},\n"));
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    s.push_str(&format!("  \"generated_unix_ms\": {now},\n"));
    s.push_str(&format!("  \"iters_per_client\": {iters},\n"));
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"dim\": {dim},\n"));
    s.push_str(&format!("  \"ticket_density\": {density},\n"));
    s.push_str("  \"workloads\": [\n");
    for (wi, w) in workloads.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", w.name));
        s.push_str(&format!("      \"sparse\": {},\n", w.sparse));
        s.push_str(&format!("      \"bit_identical\": {},\n", w.bit_identical));
        s.push_str("      \"samples\": [\n");
        for (si, sm) in w.samples.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"clients\": {}, \"throughput_rps\": {:.2}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"mean_ms\": {:.4}}}{}\n",
                sm.clients,
                sm.throughput_rps,
                sm.p50_ms,
                sm.p99_ms,
                sm.mean_ms,
                if si + 1 < w.samples.len() { "," } else { "" }
            ));
        }
        s.push_str("      ]\n");
        s.push_str(&format!(
            "    }}{}\n",
            if wi + 1 < workloads.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"sparse_speedup\": [\n");
    for (i, (clients, speedup)) in speedups.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"clients\": {clients}, \"speedup\": {speedup:.4}}}{}\n",
            if i + 1 < speedups.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    let best = speedups.iter().map(|&(_, s)| s).fold(0.0f64, f64::max);
    s.push_str(&format!("  \"sparse_speedup_best\": {best:.4}\n"));
    s.push_str("}\n");
    s
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::Usage.exit();
        }
    };
    rt_obs::init_from_env();
    let dim = if args.quick { 256 } else { 768 };
    let iters = if args.quick {
        args.iters.min(12)
    } else {
        args.iters
    };
    // Enough pool threads that every swept client count runs concurrently.
    rt_par::set_threads(*CLIENT_COUNTS.last().unwrap());

    let reference_model = mlp(dim, 42);
    let snapshot = StateDict::capture(&reference_model);
    let density = 1.0 / ROW_KEEP as f64;

    // Serial single-sample references, per variant: restore exactly as the
    // service will, forward each distinct payload at batch size 1.
    let serial_refs = |with_ticket: bool| -> Vec<u64> {
        let mut m = mlp(dim, 0);
        snapshot.restore(&mut m).expect("restore reference");
        if with_ticket {
            row_ticket(dim, &reference_model)
                .apply(&mut m)
                .expect("apply reference ticket");
        }
        let ctx = rt_nn::ExecCtx::eval().with_sparse(with_ticket);
        (0..DISTINCT_SAMPLES)
            .map(|s| {
                let flat = sample(dim, s);
                let mut data = Vec::with_capacity(dim);
                data.extend_from_slice(flat.data());
                let x = Tensor::from_vec(vec![1, dim], data).expect("reference batch");
                let y = m.forward(&x, ctx).expect("reference forward");
                bitfold(y.data())
            })
            .collect()
    };
    let dense_refs = serial_refs(false);
    let sparse_refs = serial_refs(true);

    // `max_wait_ms(0)` makes this a pure closed-loop adaptive batcher:
    // batches form from whatever queued while the previous batch ran, and
    // a lone client never stalls on the flush timer.
    let serve_cfg = |sparse: bool| -> ServeConfig {
        ServeConfig::builder()
            .max_batch(*CLIENT_COUNTS.last().unwrap())
            .max_wait_ms(0)
            .queue_cap(64)
            .sparse(Some(sparse))
            .build()
            .expect("serve config")
    };

    let mut workloads = Vec::new();
    for (name, sparse) in [("dense", false), ("sparse_ticket", true)] {
        let service = Service::new(serve_cfg(sparse));
        let mut spec = ModelSpec::new(snapshot.clone(), {
            let d = dim;
            move || Ok(Box::new(mlp(d, 0)))
        });
        if sparse {
            spec = spec.with_ticket(row_ticket(dim, &reference_model));
        }
        let key = service.admit(spec).expect("admit");
        let reference = if sparse { &sparse_refs } else { &dense_refs };
        workloads.push(run_variant(
            name, sparse, &service, key, dim, iters, reference,
        ));
        service.shutdown();
        let stats = service.stats();
        assert_eq!(
            stats.completed,
            (CLIENT_COUNTS.iter().sum::<usize>() * iters) as u64,
            "drain must complete every admitted request"
        );
    }

    let speedups: Vec<(usize, f64)> = workloads[0]
        .samples
        .iter()
        .zip(&workloads[1].samples)
        .map(|(d, s)| (d.clients, s.throughput_rps / d.throughput_rps))
        .collect();
    for (clients, speedup) in &speedups {
        rt_obs::console!("[bench] sparse/dense throughput x{clients}: {speedup:.2}x");
    }
    let best = speedups.iter().map(|&(_, s)| s).fold(0.0f64, f64::max);
    if best < 2.0 {
        rt_obs::console!(
            "[bench] WARNING: best sparse speedup {best:.2}x below the 2x acceptance bar"
        );
    }

    let all_identical = workloads.iter().all(|w| w.bit_identical);
    let json = encode_json(iters, args.quick, dim, density, &workloads, &speedups);
    if let Err(e) = rt_nn::checkpoint::atomic_write(&args.out, json.as_bytes()) {
        eprintln!("cannot write {}: {e}", args.out.display());
        ExitCode::PersistentFailure.exit();
    }
    rt_obs::console!("[bench] wrote {}", args.out.display());
    if let Some(hist_path) = &args.history {
        let mut entry = HistoryEntry::new("bench_serve", args.quick);
        for w in &workloads {
            for s in &w.samples {
                entry = entry.metric(
                    &format!("serve_{}_{}c_rps", w.name, s.clients),
                    s.throughput_rps,
                );
                if s.clients == 4 {
                    entry = entry.metric(&format!("serve_{}_4c_p99_ms", w.name), s.p99_ms);
                }
            }
        }
        for (clients, speedup) in &speedups {
            entry = entry.metric(&format!("serve_speedup_{clients}c"), *speedup);
        }
        if let Err(e) = append_history(hist_path, &entry) {
            eprintln!("cannot append history {}: {e}", hist_path.display());
        } else {
            rt_obs::console!("[bench] history += {}", hist_path.display());
        }
    }
    if !all_identical {
        eprintln!("BIT DIVERGENCE: a batched response differs from serial execution");
        ExitCode::PersistentFailure.exit();
    }
}
