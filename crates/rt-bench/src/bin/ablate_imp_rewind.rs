//! **Ablation: `imp_rewind`** — weight rewinding vs. continued training in
//! A-IMP (DESIGN.md §4). The paper's protocol rewinds to the pretrained
//! weights after each pruning round; the ablation keeps training from the
//! current weights instead.

use rt_bench::{abort_on_error, family_for, finish, pretrained_model, source_task, Protocol};
use rt_prune::ImpConfig;
use rt_transfer::experiment::{ExperimentRecord, Preset, Scale, Series};
use rt_transfer::ticket::imp_ticket_trajectory;
use rt_transfer::training::Objective;

fn main() {
    let _obs = rt_bench::ObsSession::start("ablate_imp_rewind");
    let preset = Preset::new(Scale::from_args());
    if let Err(e) = run(&preset) {
        abort_on_error("ablate-imp-rewind", e);
    }
}

fn run(preset: &Preset) -> rt_bench::Result<()> {
    let family = family_for(preset);
    let source = source_task(preset, &family)?;
    let task = family.downstream_task(&preset.c10_spec())?;

    let arch = preset.arch_r18();
    let robust = pretrained_model(preset, "r18", &arch, &source, preset.adversarial_scheme())?;

    let mut record = ExperimentRecord::new(
        "ablate-imp-rewind",
        "A-IMP with vs without weight rewinding (robust R18, DS pruning)",
        preset.scale,
    );
    for (label, rewind) in [("rewind", true), ("no-rewind", false)] {
        let imp_cfg =
            ImpConfig::paper(preset.imp_final_sparsity, preset.imp_rounds).with_rewind(rewind);
        let round_cfg = preset.imp_round_cfg(Objective::Adversarial(preset.pretrain_attack), 88);
        let mut model = robust.fresh_model(3)?;
        model.replace_head(
            task.train.num_classes(),
            &mut rt_tensor::rng::SeedStream::new(4).rng(),
        )?;
        let trajectory =
            imp_ticket_trajectory(&mut model, &robust, &task.train, &imp_cfg, &round_cfg)?;
        let mut series = Series::new(label);
        for (i, (sparsity, ticket)) in trajectory.iter().enumerate() {
            let acc = rt_bench::score_ticket_avg(
                preset,
                &robust,
                ticket,
                &task,
                Protocol::Finetune,
                650 + i as u64,
            )?;
            eprintln!("[{label}] s={sparsity:.3} acc={acc:.4}");
            series.push(*sparsity, acc);
        }
        record.series.push(series);
    }
    record.notes.push(
        "expected: rewinding (the paper's protocol, following Chen et al.) \
         is competitive or better — masks chosen on trained weights but \
         transferred from pretrained initialization"
            .to_string(),
    );
    finish(&record, preset);
    Ok(())
}
