//! **trace_report** — self-contained top-k self-time summarizer for
//! Chrome `trace_event` JSON files (the `RT_OBS_TRACE=path.json` output).
//!
//! ```text
//! trace_report trace.json [--top-k N]
//! ```
//!
//! Reads the exported trace, reconstructs per-thread nesting from the
//! `ts`/`dur` intervals, and prints the top-k span names by **self
//! time** — the wall time inside a span minus its direct children, i.e.
//! where the run actually burned its cycles. The same numbers Perfetto
//! shows, without leaving the terminal.

use rt_transfer::runner::ExitCode;
use serde_json::Value;
use std::collections::BTreeMap;

/// Aggregated stats for one span name.
#[derive(Debug, Default, Clone, PartialEq)]
struct NameStat {
    count: u64,
    total_us: i64,
    self_us: i64,
}

/// One complete ("X") event lifted out of the JSON.
#[derive(Debug, Clone)]
struct XEvent {
    name: String,
    ts: i64,
    dur: i64,
}

/// Pulls the event array out of either the object form
/// (`{"traceEvents": [...]}`) or a bare JSON array.
fn trace_events(doc: &Value) -> Option<&Vec<Value>> {
    match doc {
        Value::Array(a) => Some(a),
        Value::Object(o) => o.get("traceEvents").and_then(Value::as_array),
        _ => None,
    }
}

/// Computes per-name self-time stats from a trace document.
///
/// Within each thread track, events are swept in start order with a
/// nesting stack; every span's duration is subtracted from its direct
/// parent's self time. The exporter guarantees intervals on one track
/// are pairwise nested-or-disjoint, which is all the sweep needs.
fn summarize(doc: &Value) -> BTreeMap<String, NameStat> {
    let mut by_tid: BTreeMap<u64, Vec<XEvent>> = BTreeMap::new();
    for e in trace_events(doc).into_iter().flatten() {
        if e.get("ph").and_then(Value::as_str) != Some("X") {
            continue;
        }
        let (Some(ts), Some(dur)) = (
            e.get("ts").and_then(Value::as_i64),
            e.get("dur").and_then(Value::as_i64),
        ) else {
            continue;
        };
        by_tid
            .entry(e.get("tid").and_then(Value::as_u64).unwrap_or(0))
            .or_default()
            .push(XEvent {
                name: e
                    .get("name")
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_string(),
                ts,
                dur,
            });
    }

    let mut stats: BTreeMap<String, NameStat> = BTreeMap::new();
    for events in by_tid.values_mut() {
        // Start order; at equal starts the longer (outer) span first, so
        // the stack sees parents before their children.
        events.sort_by(|a, b| a.ts.cmp(&b.ts).then(b.dur.cmp(&a.dur)));
        // Stack of (end_ts, name) for the currently open spans.
        let mut open: Vec<(i64, String)> = Vec::new();
        for e in events.iter() {
            while open.last().is_some_and(|&(end, _)| end <= e.ts) {
                open.pop();
            }
            if let Some((_, parent)) = open.last() {
                // A child's duration is not its parent's self time.
                stats.entry(parent.clone()).or_default().self_us -= e.dur;
            }
            let s = stats.entry(e.name.clone()).or_default();
            s.count += 1;
            s.total_us += e.dur;
            s.self_us += e.dur;
            open.push((e.ts + e.dur, e.name.clone()));
        }
    }
    stats
}

fn main() {
    let mut path = None;
    let mut top_k = 10usize;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--top-k" => {
                top_k = match argv.next().as_deref().map(str::parse) {
                    Some(Ok(n)) => n,
                    _ => {
                        eprintln!("--top-k needs a number");
                        ExitCode::Usage.exit();
                    }
                }
            }
            "--help" | "-h" => {
                println!("usage: trace_report trace.json [--top-k N]");
                return;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag `{other}`");
                ExitCode::Usage.exit();
            }
            file => path = Some(file.to_string()),
        }
    }
    let Some(path) = path else {
        eprintln!("usage: trace_report trace.json [--top-k N]");
        ExitCode::Usage.exit();
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[trace_report] cannot read {path}: {e}");
            ExitCode::Usage.exit();
        }
    };
    let doc: Value = match serde_json::from_str(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("[trace_report] {path} is not valid trace JSON: {e}");
            ExitCode::Usage.exit();
        }
    };
    let stats = summarize(&doc);
    if stats.is_empty() {
        println!("[trace_report] no complete (\"X\") events in {path}");
        return;
    }
    let total_self: i64 = stats.values().map(|s| s.self_us).sum();
    let mut rows: Vec<(&String, &NameStat)> = stats.iter().collect();
    rows.sort_by(|a, b| b.1.self_us.cmp(&a.1.self_us));
    println!(
        "| {:<32} | {:>7} | {:>12} | {:>12} | {:>6} |",
        "span", "count", "self ms", "total ms", "self%"
    );
    println!("|{0:-<34}|{0:-<9}|{0:-<14}|{0:-<14}|{0:-<8}|", "");
    for (name, s) in rows.iter().take(top_k) {
        println!(
            "| {:<32} | {:>7} | {:>12.3} | {:>12.3} | {:>5.1}% |",
            name,
            s.count,
            s.self_us as f64 / 1e3,
            s.total_us as f64 / 1e3,
            if total_self > 0 {
                100.0 * s.self_us as f64 / total_self as f64
            } else {
                0.0
            }
        );
    }
    println!(
        "\n[trace_report] {} span name(s), {:.3} ms total self time",
        rows.len(),
        total_self as f64 / 1e3
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn self_time_subtracts_direct_children_only() {
        // outer [0,100) ⊃ mid [10,60) ⊃ inner [20,30); leaf [70,80) is a
        // second child of outer. Self: outer 100−50−10=40, mid 50−10=40,
        // inner 10, leaf 10.
        let doc = json!({ "traceEvents": [
            {"ph": "X", "name": "outer", "tid": 1, "ts": 0,  "dur": 100},
            {"ph": "X", "name": "mid",   "tid": 1, "ts": 10, "dur": 50},
            {"ph": "X", "name": "inner", "tid": 1, "ts": 20, "dur": 10},
            {"ph": "X", "name": "leaf",  "tid": 1, "ts": 70, "dur": 10},
            {"ph": "M", "name": "thread_name", "tid": 1},
        ]});
        let stats = summarize(&doc);
        assert_eq!(stats["outer"].self_us, 40);
        assert_eq!(stats["outer"].total_us, 100);
        assert_eq!(stats["mid"].self_us, 40);
        assert_eq!(stats["inner"].self_us, 10);
        assert_eq!(stats["leaf"].self_us, 10);
    }

    #[test]
    fn threads_are_independent_and_names_aggregate() {
        // The same name on two tracks: counts and times sum; a span on
        // track 2 is never treated as a child of track 1's open span.
        let doc = json!([
            {"ph": "X", "name": "work", "tid": 1, "ts": 0, "dur": 50},
            {"ph": "X", "name": "work", "tid": 2, "ts": 10, "dur": 20},
        ]);
        let stats = summarize(&doc);
        assert_eq!(stats["work"].count, 2);
        assert_eq!(stats["work"].total_us, 70);
        assert_eq!(stats["work"].self_us, 70);
    }

    #[test]
    fn tolerates_missing_fields_and_non_x_events() {
        let doc = json!({ "traceEvents": [
            {"ph": "i", "name": "instant", "ts": 5},
            {"ph": "X", "name": "no-dur", "ts": 5},
            {"ph": "X", "name": "ok", "tid": 3, "ts": 0, "dur": 7},
        ]});
        let stats = summarize(&doc);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats["ok"].self_us, 7);
    }
}
