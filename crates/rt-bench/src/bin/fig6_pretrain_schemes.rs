//! **Fig. 6** — Are adversarially-trained models the only source of good
//! robustness priors? Compares OMP tickets drawn from naturally,
//! adversarially (PGD), and randomized-smoothing (RS) pretrained R50
//! analogs.
//!
//! Expected shape: RS tickets sit between natural and adversarial —
//! inferior to PGD-robust tickets but still ahead of natural ones.

use rt_bench::{
    abort_on_error, family_for, finish, omp_sweep, pretrained_model, source_task, Protocol,
};
use rt_prune::Granularity;
use rt_transfer::experiment::{ExperimentRecord, Preset, Scale};
use rt_transfer::pretrain::PretrainScheme;

fn main() {
    let _obs = rt_bench::ObsSession::start("fig6_pretrain_schemes");
    let preset = Preset::new(Scale::from_args());
    if let Err(e) = run(&preset) {
        abort_on_error("fig6", e);
    }
}

fn run(preset: &Preset) -> rt_bench::Result<()> {
    let mut runner = rt_bench::runner_for(preset, "fig6")?;
    let family = family_for(preset);
    let source = source_task(preset, &family)?;
    let task = family.downstream_task(&preset.c10_spec())?;

    let arch = preset.arch_r50();
    let schemes = [
        ("natural", PretrainScheme::Natural),
        ("adversarial", preset.adversarial_scheme()),
        ("smoothing", preset.smoothing_scheme()),
    ];

    let mut record = ExperimentRecord::new(
        "fig6",
        "tickets from different pretraining schemes (natural / PGD / RS)",
        preset.scale,
    );
    for protocol in [Protocol::Finetune, Protocol::Linear] {
        for (kind, scheme) in &schemes {
            let pre = pretrained_model(preset, "r50", &arch, &source, *scheme)?;
            let series = omp_sweep(
                &mut runner,
                preset,
                &pre,
                &task,
                Granularity::Element,
                protocol,
                format!("{kind}/{}", protocol.label()),
                &preset.sparsity_grid,
            )?;
            record.series.push(series);
        }
    }

    // Shape check: mean accuracy ordering natural ≤ smoothing ≤ adversarial
    // per protocol.
    for chunk in record.series.chunks(3) {
        let mean = |s: &rt_transfer::experiment::Series| {
            s.points.iter().map(|p| p.y).sum::<f64>() / s.points.len().max(1) as f64
        };
        let (nat, adv, rs) = (mean(&chunk[0]), mean(&chunk[1]), mean(&chunk[2]));
        record.notes.push(format!(
            "{}: mean acc natural={nat:.4} smoothing={rs:.4} adversarial={adv:.4} \
             (paper: natural < smoothing < adversarial)",
            chunk[0].label.split('/').next_back().unwrap_or("?")
        ));
    }
    finish(&record, preset);
    Ok(())
}
