//! **Ablation: `omp_scope`** — global vs. per-layer OMP thresholds
//! (DESIGN.md §4). The paper ranks magnitudes globally; layer-wise
//! thresholds force uniform per-layer sparsity. Run on the robust R18
//! analog, whole-model finetuning on the CIFAR-10 analog.

use rt_bench::{abort_on_error, family_for, finish, pretrained_model, source_task, Protocol};
use rt_prune::{omp, OmpConfig};
use rt_transfer::experiment::{ExperimentRecord, Preset, Scale, Series};

fn main() {
    let _obs = rt_bench::ObsSession::start("ablate_omp_scope");
    let preset = Preset::new(Scale::from_args());
    if let Err(e) = run(&preset) {
        abort_on_error("ablate-omp-scope", e);
    }
}

fn run(preset: &Preset) -> rt_bench::Result<()> {
    let family = family_for(preset);
    let source = source_task(preset, &family)?;
    let task = family.downstream_task(&preset.c10_spec())?;

    let arch = preset.arch_r18();
    let robust = pretrained_model(preset, "r18", &arch, &source, preset.adversarial_scheme())?;

    let mut record = ExperimentRecord::new(
        "ablate-omp-scope",
        "global vs layer-wise OMP thresholds (robust R18 tickets)",
        preset.scale,
    );
    for (label, layerwise) in [("global", false), ("layerwise", true)] {
        let mut series = Series::new(label);
        for (i, &sparsity) in preset.sparsity_grid.iter().enumerate() {
            let model = robust.fresh_model(600 + i as u64)?;
            let cfg = OmpConfig::unstructured(sparsity).with_layerwise(layerwise);
            let ticket = omp(&model, &cfg)?;
            let acc = rt_bench::score_ticket_avg(
                preset,
                &robust,
                &ticket,
                &task,
                Protocol::Finetune,
                21 + i as u64,
            )?;
            eprintln!("[{label}] s={sparsity:.3} acc={acc:.4}");
            series.push(sparsity, acc);
        }
        record.series.push(series);
    }
    record.notes.push(
        "expected: global ranking matches or beats layer-wise at high \
         sparsity, where uniform thresholds over-prune thin layers"
            .to_string(),
    );
    finish(&record, preset);
    Ok(())
}
