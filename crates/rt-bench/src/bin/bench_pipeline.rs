//! **bench_pipeline** — acceptance gate of the pipelined finetune engine.
//!
//! Times a frozen-prefix finetune workload (a frozen two-conv backbone
//! ahead of a trainable linear head, the paper's ticket-transfer shape —
//! the cacheable prefix covers 5 of 6 children, the backbone plus the
//! param-free `Flatten`) with the PR-10 pipeline features on and off,
//! and writes a machine-readable `BENCH_pipeline.json` (atomically):
//!
//! ```text
//! bench_pipeline [--out BENCH_pipeline.json] [--reps N] [--quick]
//!                [--history PATH | --no-history]
//! ```
//!
//! Two numbers are gated:
//!
//! * **bit identity** — per-epoch losses and final parameter bytes must
//!   be identical across every combination of `RT_PREFETCH` on/off,
//!   `RT_ACT_CACHE_MB` 0/on, and `RT_THREADS` ∈ {1, 4} (eight configs).
//!   Any divergence fails the run: the pipeline is a perf feature under
//!   a hard determinism contract, never a numerics knob.
//! * **steady-state speedup** — epochs 2+ with prefetch + activation
//!   cache on must run at least [`PIPELINE_MIN_SPEEDUP`]× the epoch
//!   throughput of both features off. Epoch 1 (cache population) is
//!   excluded: the win the cache buys is *later* epochs skipping the
//!   frozen-prefix forward entirely.
//!
//! Steady-state epoch time is measured as `(T(E) - T(1)) / (E - 1)` on
//! fresh models — the epochs-1..E marginal cost — so the warm-up epoch
//! never dilutes the gated number.

use rt_bench::history::{append_history, default_history_path, repo_path, HistoryEntry};
use rt_data::{set_prefetch_default, Dataset, FamilyConfig, TaskFamily};
use rt_nn::layers::{Conv2d, Conv2dConfig, Flatten, Linear, Relu};
use rt_nn::{set_act_cache_default_mb, Layer, Sequential};
use rt_tensor::rng::rng_from_seed;
use rt_transfer::runner::ExitCode;
use rt_transfer::training::{train, Objective, SchedulePolicy, TrainConfig, TrainReport};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

/// Schema version of `BENCH_pipeline.json`.
const BENCH_VERSION: u32 = 1;

/// Floor on the steady-state epoch speedup of (prefetch + activation
/// cache) over both features off. The activation cache alone must clear
/// this even on a single-core host — it removes the frozen-prefix
/// forward from epochs 2+, it does not rely on overlap.
const PIPELINE_MIN_SPEEDUP: f64 = 1.3;

/// Cache capacity handed to the "features on" configs, MiB.
const CACHE_MB: usize = 256;

struct Args {
    out: PathBuf,
    reps: usize,
    quick: bool,
    history: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = repo_path("BENCH_pipeline.json");
    let mut reps = 3usize;
    let mut quick = false;
    let mut history = Some(default_history_path());
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--out" => out = PathBuf::from(argv.next().ok_or("--out needs a path")?),
            "--reps" => {
                reps = argv
                    .next()
                    .ok_or("--reps needs a number")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
            }
            "--quick" => quick = true,
            "--history" => {
                history = Some(PathBuf::from(argv.next().ok_or("--history needs a path")?));
            }
            "--no-history" => history = None,
            "--help" | "-h" => {
                return Err(
                    "usage: bench_pipeline [--out BENCH_pipeline.json] [--reps N] [--quick] \
                     [--history PATH | --no-history]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if reps == 0 {
        return Err("--reps must be at least 1".to_string());
    }
    Ok(Args {
        out,
        reps,
        quick,
        history,
    })
}

/// One (prefetch, cache, threads) combination of the bit-identity matrix.
#[derive(Debug, Serialize)]
struct ConfigCheck {
    prefetch: bool,
    cache_mb: usize,
    threads: usize,
    final_loss: f64,
    /// Equal losses AND equal parameter bytes vs the all-off serial
    /// reference.
    matches_reference: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    v: u32,
    generated_unix_ms: u64,
    reps: usize,
    quick: bool,
    host_parallelism: usize,
    /// True when the host had one core: the prefetch overlap cannot help
    /// here, so the speedup below is the activation cache's alone.
    single_core_host: bool,
    /// Workload id: model shape, dataset size, batch size, epochs.
    workload: String,
    /// Frozen-prefix length found by `split_at_trainable` / total layers.
    prefix_split: usize,
    layers: usize,
    /// Epoch-1 wall clock with features on (cache population + first
    /// prefetch), best-of-reps, ms.
    warm_epoch_ms: f64,
    /// Steady-state (epochs 2+) epoch wall clock with features on, ms.
    steady_epoch_ms: f64,
    /// Steady-state epoch wall clock with both features off, ms.
    baseline_epoch_ms: f64,
    /// `baseline_epoch_ms / steady_epoch_ms` (gated).
    speedup: f64,
    /// Every config below reproduced the reference bytes (gated).
    bit_identical: bool,
    configs: Vec<ConfigCheck>,
}

/// The benchmark model: a frozen two-conv backbone ahead of a trainable
/// linear head — the finetune shape the activation cache exists for. The
/// cacheable prefix is 5 of 6 children (backbone + `Flatten`).
fn ticket_model(seed: u64, image: usize, classes: usize) -> Sequential {
    let mut rng = rng_from_seed(seed);
    let mut seq = Sequential::new(vec![
        Box::new(Conv2d::new(3, 16, Conv2dConfig::same3x3(), &mut rng).expect("conv1"))
            as Box<dyn Layer>,
        Box::new(Relu::new()),
        Box::new(Conv2d::new(16, 16, Conv2dConfig::same3x3(), &mut rng).expect("conv2")),
        Box::new(Relu::new()),
        Box::new(Flatten::new()),
        Box::new(Linear::new(16 * image * image, classes, &mut rng).expect("head")),
    ]);
    for child in seq.children_mut()[..4].iter_mut() {
        for p in child.params_mut() {
            p.trainable = false;
        }
    }
    seq
}

fn train_cfg(epochs: usize, batch: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: batch,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 1e-4,
        schedule: SchedulePolicy::Constant,
        objective: Objective::Natural,
        seed: 42,
    }
}

/// Exact bitwise fold of every parameter tensor — equal folds mean equal
/// trained bytes.
fn params_bitfold(model: &Sequential) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in model.params() {
        for &v in p.data.data() {
            h = (h ^ u64::from(v.to_bits())).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Installs a feature combination process-wide.
fn set_features(prefetch: bool, cache_mb: usize) {
    set_prefetch_default(prefetch);
    set_act_cache_default_mb(cache_mb);
}

/// Trains a fresh model for `epochs` and returns the report, the trained
/// parameter fold, and the wall clock in ms.
fn timed_train(data: &Dataset, image: usize, epochs: usize, batch: usize) -> (TrainReport, u64, f64) {
    let mut model = ticket_model(5, image, data.num_classes());
    let t0 = Instant::now();
    let report = train(&mut model, data, &train_cfg(epochs, batch)).expect("train");
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    (report, params_bitfold(&model), ms)
}

/// Best-of-reps steady-state epoch time for the active feature set:
/// the epochs-1..E marginal cost on fresh models, so epoch 1 (cache
/// population) never dilutes the number. Also returns the best epoch-1
/// time.
fn measure_steady(
    data: &Dataset,
    image: usize,
    epochs: usize,
    batch: usize,
    reps: usize,
) -> (f64, f64) {
    assert!(epochs >= 2, "steady state needs at least two epochs");
    let mut warm = f64::INFINITY;
    let mut steady = f64::INFINITY;
    // One throwaway run to warm allocator pools and caches.
    let _ = timed_train(data, image, epochs, batch);
    for _ in 0..reps {
        let (_, _, t1) = timed_train(data, image, 1, batch);
        let (_, _, te) = timed_train(data, image, epochs, batch);
        warm = warm.min(t1);
        steady = steady.min((te - t1).max(0.0) / (epochs - 1) as f64);
    }
    (warm, steady)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::Usage.exit();
        }
    };
    rt_obs::init_from_env();

    // Workload: the paper-scale synthetic family (16×16×3, 12 classes).
    // `--quick` shrinks samples and epochs, not the shape — the gated
    // ratio means the same thing in CI and full runs.
    let (samples, epochs) = if args.quick { (96, 3) } else { (256, 5) };
    let batch = 16usize;
    let family = TaskFamily::new(FamilyConfig::paper(), 11);
    let task = family.source_task(samples, 8).expect("source task");
    let data = task.train;
    let image = FamilyConfig::paper().image_size;

    let probe = ticket_model(5, image, data.num_classes());
    let layers = probe.children().len();
    let prefix_split = probe.split_at_trainable();
    drop(probe);
    assert!(
        prefix_split * 2 >= layers,
        "bench model must freeze at least half its layers ({prefix_split}/{layers})"
    );

    // --- Bit-identity matrix: 8 configs vs the all-off serial run. ----
    let mut configs = Vec::new();
    let (reference, ref_params) = {
        rt_par::set_threads(1);
        set_features(false, 0);
        let (report, fold, _) = timed_train(&data, image, epochs, batch);
        (report, fold)
    };
    let mut bit_identical = true;
    for threads in [1usize, 4] {
        rt_par::set_threads(threads);
        for (prefetch, cache_mb) in [(false, 0), (true, 0), (false, CACHE_MB), (true, CACHE_MB)] {
            set_features(prefetch, cache_mb);
            let (report, fold, _) = timed_train(&data, image, epochs, batch);
            let matches = report == reference && fold == ref_params;
            bit_identical &= matches;
            configs.push(ConfigCheck {
                prefetch,
                cache_mb,
                threads,
                final_loss: report.final_loss(),
                matches_reference: matches,
            });
        }
    }

    // --- Throughput: steady-state epochs, features off vs on. ---------
    rt_par::set_threads(4);
    set_features(false, 0);
    let (_, baseline_epoch_ms) = measure_steady(&data, image, epochs, batch, args.reps);
    set_features(true, CACHE_MB);
    let (warm_epoch_ms, steady_epoch_ms) = measure_steady(&data, image, epochs, batch, args.reps);
    rt_par::set_threads(1);
    set_features(true, 256);
    let speedup = baseline_epoch_ms / steady_epoch_ms;

    let host_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let report = Report {
        v: BENCH_VERSION,
        generated_unix_ms: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0),
        reps: args.reps,
        quick: args.quick,
        host_parallelism,
        single_core_host: host_parallelism == 1,
        workload: format!(
            "conv3x3_16c_prefix{prefix_split}of{layers}_n{samples}_b{batch}_e{epochs}_{image}x{image}"
        ),
        prefix_split,
        layers,
        warm_epoch_ms,
        steady_epoch_ms,
        baseline_epoch_ms,
        speedup,
        bit_identical,
        configs,
    };
    rt_obs::console!(
        "[bench] pipeline: baseline {baseline_epoch_ms:.1} ms/epoch, warm {warm_epoch_ms:.1} ms, \
         steady {steady_epoch_ms:.1} ms/epoch ({speedup:.2}x), bit_identical={bit_identical}"
    );

    let bytes = match serde_json::to_vec_pretty(&report) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot encode report: {e}");
            ExitCode::PersistentFailure.exit();
        }
    };
    if let Err(e) = rt_nn::checkpoint::atomic_write(&args.out, &bytes) {
        eprintln!("cannot write {}: {e}", args.out.display());
        ExitCode::PersistentFailure.exit();
    }
    rt_obs::console!("[bench] wrote {}", args.out.display());
    if let Some(hist_path) = &args.history {
        let entry = HistoryEntry::new("bench_pipeline", args.quick)
            .metric("pipeline_speedup", report.speedup)
            .metric("steady_epoch_ms", report.steady_epoch_ms)
            .metric("baseline_epoch_ms", report.baseline_epoch_ms)
            .metric("warm_epoch_ms", report.warm_epoch_ms);
        if let Err(e) = append_history(hist_path, &entry) {
            eprintln!("cannot append history {}: {e}", hist_path.display());
        } else {
            rt_obs::console!("[bench] history += {}", hist_path.display());
        }
    }

    if !report.bit_identical {
        eprintln!(
            "PIPELINE DETERMINISM VIOLATION: some prefetch/cache/thread combination diverged \
             from the all-off serial reference (see configs in {})",
            args.out.display()
        );
        ExitCode::PersistentFailure.exit();
    }
    if report.speedup < PIPELINE_MIN_SPEEDUP {
        eprintln!(
            "PIPELINE SPEEDUP VIOLATION: {:.2}x < {PIPELINE_MIN_SPEEDUP}x steady-state epoch \
             throughput (the activation cache must pay for itself on a frozen-prefix finetune)",
            report.speedup
        );
        ExitCode::PersistentFailure.exit();
    }
}
