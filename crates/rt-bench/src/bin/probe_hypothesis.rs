//! Quick diagnostic: does the core "robust tickets transfer better"
//! phenomenon emerge in this synthetic universe? Runs a single-sparsity
//! robust-vs-natural OMP comparison under both transfer protocols and
//! prints the raw numbers. Not one of the paper's figures — a calibration
//! tool for the data generator (see DESIGN.md).

use rt_bench::{family_for, pretrained_model, source_task};
use rt_prune::{omp, OmpConfig};
use rt_transfer::evaluate::{evaluate, evaluate_adversarial};
use rt_transfer::experiment::{Preset, Scale};
use rt_transfer::finetune::finetune;
use rt_transfer::linear::linear_eval;
use rt_transfer::pretrain::PretrainScheme;

fn main() {
    let scale = Scale::from_args();
    let preset = Preset::new(scale);
    let family = family_for(&preset);
    let source = source_task(&preset, &family);
    let c10 = family.downstream_task(&preset.c10_spec()).expect("task");

    let t0 = std::time::Instant::now();
    let arch = preset.arch_r18();
    let natural = pretrained_model(&preset, "r18", &arch, &source, PretrainScheme::Natural);
    eprintln!("[time] natural pretrain {:?}", t0.elapsed());
    let t1 = std::time::Instant::now();
    let robust = pretrained_model(&preset, "r18", &arch, &source, preset.adversarial_scheme());
    eprintln!("[time] adversarial pretrain {:?}", t1.elapsed());

    // Source-task sanity: clean and adversarial accuracy of both models.
    for (name, pre) in [("natural", &natural), ("robust", &robust)] {
        let mut m = pre.fresh_model(1).expect("model");
        let clean = evaluate(&mut m, &source.test).expect("eval");
        let adv =
            evaluate_adversarial(&mut m, &source.test, &preset.eval_attack, 7).expect("adv eval");
        println!("source {name}: clean={:.3} adv={:.3}", clean.accuracy, adv);
    }

    for sparsity in [0.5f64, 0.9] {
        for (name, pre) in [("natural", &natural), ("robust", &robust)] {
            let t = std::time::Instant::now();
            let mut m = pre.fresh_model(2).expect("model");
            let ticket = omp(&m, &OmpConfig::unstructured(sparsity)).expect("omp");
            ticket.apply(&mut m).expect("apply");
            let lin = linear_eval(&mut m, &c10, &preset.linear).expect("linear");
            let ft = finetune(&mut m, &c10, &preset.finetune_cfg(11)).expect("finetune");
            println!(
                "s={sparsity:.2} {name}: linear={lin:.3} finetune={:.3}  ({:?})",
                ft.accuracy,
                t.elapsed()
            );
        }
    }
}
