//! Quick diagnostic: does the core "robust tickets transfer better"
//! phenomenon emerge in this synthetic universe? Runs a single-sparsity
//! robust-vs-natural OMP comparison under both transfer protocols and
//! prints the raw numbers. Not one of the paper's figures — a calibration
//! tool for the data generator (see DESIGN.md).
//!
//! Timing is captured through `rt-obs` spans instead of ad-hoc
//! `Instant`/`eprintln!` pairs: each phase opens a span, and the run ends
//! by printing the aggregated wall-time breakdown table (also streamed to
//! `RT_OBS=path.jsonl` when set).

use rt_bench::{abort_on_error, family_for, pretrained_model, source_task, ObsSession};
use rt_prune::{omp, OmpConfig};
use rt_transfer::evaluate::{evaluate, evaluate_adversarial};
use rt_transfer::experiment::{Preset, Scale};
use rt_transfer::finetune::finetune;
use rt_transfer::linear::linear_eval;
use rt_transfer::pretrain::PretrainScheme;

fn main() {
    // Spans need at least level `spans`; this probe is explicitly about
    // where time goes, so default to recording spans even with RT_OBS
    // unset (RT_OBS_LEVEL still wins if the user set it).
    if std::env::var_os("RT_OBS").is_none() && std::env::var_os("RT_OBS_LEVEL").is_none() {
        std::env::set_var("RT_OBS_LEVEL", "spans");
    }
    let _obs = ObsSession::start("probe_hypothesis");
    let preset = Preset::new(Scale::from_args());
    if let Err(e) = run(&preset) {
        abort_on_error("probe-hypothesis", e);
    }
}

fn run(preset: &Preset) -> rt_bench::Result<()> {
    let family = family_for(preset);
    let source = source_task(preset, &family)?;
    let c10 = family.downstream_task(&preset.c10_spec())?;

    let arch = preset.arch_r18();
    let natural = {
        let _s = rt_obs::span!("natural_pretrain");
        pretrained_model(preset, "r18", &arch, &source, PretrainScheme::Natural)?
    };
    let robust = {
        let _s = rt_obs::span!("adversarial_pretrain");
        pretrained_model(preset, "r18", &arch, &source, preset.adversarial_scheme())?
    };

    // Source-task sanity: clean and adversarial accuracy of both models.
    for (name, pre) in [("natural", &natural), ("robust", &robust)] {
        let _s = rt_obs::span!("source_eval", "model" => name);
        let mut m = pre.fresh_model(1)?;
        let clean = evaluate(&mut m, &source.test)?;
        let adv = evaluate_adversarial(&mut m, &source.test, &preset.eval_attack, 7)?;
        println!("source {name}: clean={:.3} adv={:.3}", clean.accuracy, adv);
    }

    for sparsity in [0.5f64, 0.9] {
        for (name, pre) in [("natural", &natural), ("robust", &robust)] {
            let _s = rt_obs::span!(
                "transfer_cell",
                "model" => name,
                "sparsity" => sparsity,
            );
            let mut m = pre.fresh_model(2)?;
            let ticket = omp(&m, &OmpConfig::unstructured(sparsity))?;
            ticket.apply(&mut m)?;
            let lin = linear_eval(&mut m, &c10, &preset.linear)?;
            let ft = finetune(&mut m, &c10, &preset.finetune_cfg(11))?;
            println!(
                "s={sparsity:.2} {name}: linear={lin:.3} finetune={:.3}",
                ft.accuracy,
            );
        }
    }

    // Where the time went (the whole point of this probe).
    eprintln!("\n{}", rt_obs::snapshot().render_table());
    Ok(())
}
