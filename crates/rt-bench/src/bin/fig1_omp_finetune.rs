//! **Fig. 1** — Whole-model finetuning accuracy of robust vs. natural
//! tickets drawn by OMP from the R18/R50 analogs, transferred to the
//! CIFAR-10/100 analogs, across the sparsity grid (the grid's upper end,
//! 0.9–0.99, is the paper's zoom region).
//!
//! Expected shape: robust tickets consistently outperform natural tickets
//! under whole-model finetuning, with the gain persisting (but shrinking)
//! at extreme sparsity.

use rt_bench::{family_for, finish, omp_sweep, pretrained_model, source_task, win_count, Protocol};
use rt_prune::Granularity;
use rt_transfer::experiment::{ExperimentRecord, Preset, Scale};
use rt_transfer::pretrain::PretrainScheme;

fn main() {
    let scale = Scale::from_args();
    let preset = Preset::new(scale);
    let family = family_for(&preset);
    let source = source_task(&preset, &family);
    let tasks = [
        family.downstream_task(&preset.c10_spec()).expect("c10"),
        family.downstream_task(&preset.c100_spec()).expect("c100"),
    ];

    let mut record = ExperimentRecord::new(
        "fig1",
        "OMP tickets, whole-model finetuning: robust vs natural",
        scale,
    );
    for (arch_label, arch) in [("r18", preset.arch_r18()), ("r50", preset.arch_r50())] {
        let natural =
            pretrained_model(&preset, arch_label, &arch, &source, PretrainScheme::Natural);
        let robust = pretrained_model(
            &preset,
            arch_label,
            &arch,
            &source,
            preset.adversarial_scheme(),
        );
        for task in &tasks {
            for (kind, pre) in [("natural", &natural), ("robust", &robust)] {
                record.series.push(omp_sweep(
                    &preset,
                    pre,
                    task,
                    Granularity::Element,
                    Protocol::Finetune,
                    format!("{kind}/{arch_label}/{}", task.name),
                    &preset.sparsity_grid,
                ));
            }
        }
    }

    // Shape check: robust should win the majority of (arch, task, sparsity)
    // cells under whole-model finetuning.
    let mut wins = 0;
    let mut total = 0;
    for pair in record.series.chunks(2) {
        let (w, t) = win_count(&pair[1], &pair[0]); // robust vs natural
        wins += w;
        total += t;
    }
    record.notes.push(format!(
        "shape check: robust tickets win {wins}/{total} finetuning cells \
         (paper: consistent robust wins on CIFAR-10/100)"
    ));
    finish(&record, &preset);
}
