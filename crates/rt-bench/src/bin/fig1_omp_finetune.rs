//! **Fig. 1** — Whole-model finetuning accuracy of robust vs. natural
//! tickets drawn by OMP from the R18/R50 analogs, transferred to the
//! CIFAR-10/100 analogs, across the sparsity grid (the grid's upper end,
//! 0.9–0.99, is the paper's zoom region).
//!
//! Expected shape: robust tickets consistently outperform natural tickets
//! under whole-model finetuning, with the gain persisting (but shrinking)
//! at extreme sparsity.
//!
//! The sweep body lives in [`rt_bench::fig1_record`] so the kill-and-resume
//! integration test exercises the exact production code path. Run with
//! `--resume` to continue an interrupted sweep from its journal.

use rt_bench::{abort_on_error, fig1_record, finish, runner_for};
use rt_transfer::experiment::{Preset, Scale};

fn main() {
    let _obs = rt_bench::ObsSession::start("fig1_omp_finetune");
    let preset = Preset::new(Scale::from_args());
    if let Err(e) = run(&preset) {
        abort_on_error("fig1", e);
    }
}

fn run(preset: &Preset) -> rt_bench::Result<()> {
    let mut runner = runner_for(preset, "fig1")?;
    let record = fig1_record(preset, &mut runner)?;
    rt_obs::console!(
        "[fig1] cells: {} executed, {} resumed, {} retried",
        runner.stats.executed,
        runner.stats.skipped,
        runner.stats.retries
    );
    finish(&record, preset);
    Ok(())
}
