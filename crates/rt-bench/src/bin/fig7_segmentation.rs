//! **Fig. 7** — Transfer to dense prediction: robust vs. natural OMP
//! tickets from the R50 analog, finetuned as FCN backbones on the
//! synthetic segmentation task (the PASCAL VOC substitute), measured in
//! mIoU.
//!
//! Expected shape: robust tickets achieve consistently higher mIoU,
//! especially at mild sparsity.

use rt_bench::{abort_on_error, family_for, finish, pretrained_model, source_task};
use rt_data::SegTask;
use rt_metrics::mean_iou;
use rt_models::SegmentationNet;
use rt_nn::loss::CrossEntropyLoss;
use rt_nn::optim::Sgd;
use rt_nn::{ExecCtx, Layer};
use rt_prune::{omp, OmpConfig};
use rt_tensor::conv::upsample2x;
use rt_tensor::rng::SeedStream;

use rt_transfer::experiment::{ExperimentRecord, Preset, Scale, Series};
use rt_transfer::pretrain::{PretrainScheme, Pretrained};

/// Upsamples scenes 2× (nearest-neighbour, labels duplicated) so the
/// backbone's 8× downsample leaves a 4×4 feature map — without this, a
/// 16×16 scene collapses to 2×2 cells, below the object size, and every
/// model degenerates to predicting background (see DESIGN.md §5 notes).
fn upsample_scenes(task: &SegTask) -> rt_bench::Result<SegTask> {
    let images = upsample2x(task.images())?;
    let s = task.images().shape().to_vec();
    let (n, h, w) = (s[0], s[2], s[3]);
    let mut labels = Vec::with_capacity(n * 4 * h * w);
    for b in 0..n {
        for y in 0..2 * h {
            for x in 0..2 * w {
                labels.push(task.labels()[(b * h + y / 2) * w + x / 2]);
            }
        }
    }
    Ok(SegTask::from_parts(images, labels, task.num_classes()))
}

/// Trains a segmentation net on the scenes and returns test mIoU.
fn train_and_score(
    preset: &Preset,
    pre: &Pretrained,
    train: &SegTask,
    test: &SegTask,
    sparsity: f64,
    seed: u64,
) -> rt_bench::Result<f64> {
    let seeds = SeedStream::new(seed);
    let mut backbone = pre.fresh_model(seed)?;
    let ticket = omp(&backbone, &OmpConfig::unstructured(sparsity))?;
    ticket.apply(&mut backbone)?;
    // Scenes arrive pre-upsampled 2×; the backbone downsamples 8×, so
    // three 2× upsamplings restore the (upsampled) input resolution.
    let upsample_steps = 3;
    let mut net = SegmentationNet::new(
        backbone,
        train.num_classes(),
        upsample_steps,
        &mut seeds.child("head").rng(),
    )?;

    let loss_fn = CrossEntropyLoss::new();
    // Dense prediction needs a hotter head than classification finetuning.
    let opt = Sgd::new(3.0 * preset.finetune_lr)
        .with_momentum(0.9)
        .with_weight_decay(1e-4);
    for _epoch in 0..preset.seg_epochs {
        for (images, labels) in train.batches(4) {
            let logits = net.forward(&images, ExecCtx::train())?;
            let out = loss_fn.forward_pixels(&logits, &labels)?;
            net.backward(&out.grad, ExecCtx::default())?;
            opt.step(&mut net)?;
        }
    }

    // mIoU over the test scenes.
    let mut preds = Vec::new();
    for (images, _) in test.batches(4) {
        let logits = net.forward(&images, ExecCtx::eval())?;
        let s = logits.shape().to_vec();
        let (n, k, h, w) = (s[0], s[1], s[2], s[3]);
        // Per-pixel argmax over the class axis (manual: NCHW layout).
        let data = logits.data();
        for b in 0..n {
            for p in 0..h * w {
                let mut best = 0usize;
                let mut best_v = f32::NEG_INFINITY;
                for c in 0..k {
                    let v = data[(b * k + c) * h * w + p];
                    if v > best_v {
                        best_v = v;
                        best = c;
                    }
                }
                preds.push(best);
            }
        }
    }
    Ok(mean_iou(&preds, test.labels(), test.num_classes()))
}

fn main() {
    let _obs = rt_bench::ObsSession::start("fig7_segmentation");
    let preset = Preset::new(Scale::from_args());
    if let Err(e) = run(&preset) {
        abort_on_error("fig7", e);
    }
}

fn run(preset: &Preset) -> rt_bench::Result<()> {
    let family = family_for(preset);
    let source = source_task(preset, &family)?;
    // The paper's segmentation target (PASCAL VOC) sits far from the
    // pretraining domain; generate the scenes at a matching domain gap.
    let pool = SegTask::generate_with_gap(
        &family,
        preset.seg_classes,
        preset.seg_train + preset.seg_test,
        0.5,
    )?;
    let (train_raw, test_raw) = pool.split_at(preset.seg_train);
    let (train, test) = (upsample_scenes(&train_raw)?, upsample_scenes(&test_raw)?);

    let arch = preset.arch_r50();
    let natural = pretrained_model(preset, "r50", &arch, &source, PretrainScheme::Natural)?;
    let robust = pretrained_model(preset, "r50", &arch, &source, preset.adversarial_scheme())?;

    let mut record = ExperimentRecord::new(
        "fig7",
        "segmentation transfer (mIoU vs sparsity): robust vs natural",
        preset.scale,
    );
    for (kind, pre) in [("natural", &natural), ("robust", &robust)] {
        let mut series = Series::new(kind);
        for (i, &sparsity) in preset.sparsity_grid.iter().enumerate() {
            let miou = train_and_score(preset, pre, &train, &test, sparsity, 400 + i as u64)?;
            eprintln!("[{kind}] s={sparsity:.3} miou={miou:.4}");
            series.push(sparsity, miou);
        }
        record.series.push(series);
    }

    let (wins, total) = rt_bench::win_count(&record.series[1], &record.series[0]);
    record.notes.push(format!(
        "shape check: robust mIoU wins {wins}/{total} sparsity cells \
         (paper: consistently higher mIoU, largest gains at mild sparsity)"
    ));
    finish(&record, preset);
    Ok(())
}
