//! **Fig. 8 + Table I** — Beyond downstream accuracy: calibration (ECE,
//! NLL), adversarial accuracy, and OoD ROC-AUC of robust (A-IMP) vs.
//! natural (IMP) tickets at the paper's exact sparsity grid
//! (20.00 / 59.04 / 79.08 / 89.26 % — 20% of remaining per round).
//!
//! Expected shape: robust tickets win accuracy and adversarial accuracy by
//! a wide margin; calibration is mixed (the paper's natural tickets have
//! slightly better ECE at low sparsity).

use rt_bench::{abort_on_error, family_for, finish, pretrained_model, source_task};
use rt_prune::ImpConfig;
use rt_transfer::evaluate::{evaluate_adversarial, ood_auc};
use rt_transfer::experiment::{ExperimentRecord, Preset, Scale, Series};
use rt_transfer::finetune::finetune;
use rt_transfer::pretrain::PretrainScheme;
use rt_transfer::ticket::imp_ticket_trajectory;
use rt_transfer::training::Objective;

/// The paper's Table I sparsity grid.
const TABLE1_GRID: [f64; 4] = [0.2, 0.5904, 0.7908, 0.8926];

fn main() {
    let _obs = rt_bench::ObsSession::start("fig8_properties");
    let preset = Preset::new(Scale::from_args());
    if let Err(e) = run(&preset) {
        abort_on_error("fig8", e);
    }
}

fn run(preset: &Preset) -> rt_bench::Result<()> {
    let family = family_for(preset);
    let source = source_task(preset, &family)?;
    let task = family.downstream_task(&preset.c10_spec())?;
    let ood = family.ood_dataset(preset.ood_samples)?;

    let mut record = ExperimentRecord::new(
        "fig8",
        "ticket properties: Acc / ECE / NLL / Adv-Acc / OoD ROC-AUC (Table I)",
        preset.scale,
    );
    let mut table_rows: Vec<String> = Vec::new();

    for (arch_label, arch) in [("r18", preset.arch_r18()), ("r50", preset.arch_r50())] {
        for (kind, scheme, objective) in [
            (
                "robust",
                preset.adversarial_scheme(),
                Objective::Adversarial(preset.pretrain_attack),
            ),
            ("natural", PretrainScheme::Natural, Objective::Natural),
        ] {
            let pre = pretrained_model(preset, arch_label, &arch, &source, scheme)?;
            // One DS IMP run yields tickets at every Table I sparsity.
            let mut model = pre.fresh_model(1)?;
            model.replace_head(
                task.train.num_classes(),
                &mut rt_tensor::rng::SeedStream::new(2).rng(),
            )?;
            let imp_cfg = ImpConfig::with_schedule(TABLE1_GRID.to_vec());
            let round_cfg = preset.imp_round_cfg(objective, 33);
            let trajectory =
                imp_ticket_trajectory(&mut model, &pre, &task.train, &imp_cfg, &round_cfg)?;

            let mut acc_s = Series::new(format!("{kind}/{arch_label}/acc"));
            let mut ece_s = Series::new(format!("{kind}/{arch_label}/ece"));
            let mut nll_s = Series::new(format!("{kind}/{arch_label}/nll"));
            let mut adv_s = Series::new(format!("{kind}/{arch_label}/adv-acc"));
            let mut auc_s = Series::new(format!("{kind}/{arch_label}/roc-auc"));
            for (i, (sparsity, ticket)) in trajectory.iter().enumerate() {
                // Average every metric over the preset's eval seeds.
                let n = preset.eval_seeds.max(1);
                let (mut acc, mut ece, mut nll, mut adv, mut auc) = (0.0, 0.0, 0.0, 0.0, 0.0);
                for k in 0..n as u64 {
                    let mut m = pre.fresh_model(500 + i as u64 + 31 * k)?;
                    ticket.apply(&mut m)?;
                    let r = finetune(&mut m, &task, &preset.finetune_cfg(44 + 977 * k))?;
                    acc += r.accuracy;
                    ece += r.ece;
                    nll += r.nll;
                    adv +=
                        evaluate_adversarial(&mut m, &task.test, &preset.eval_attack, 55 + k)?;
                    auc += ood_auc(&mut m, &task.test, &ood)?;
                }
                let inv = 1.0 / n as f64;
                let report = rt_transfer::EvalReport {
                    accuracy: acc * inv,
                    ece: ece * inv,
                    nll: nll * inv,
                };
                let adv = adv * inv;
                let auc = auc * inv;
                eprintln!(
                    "[{kind}/{arch_label}] s={sparsity:.4} acc={:.4} ece={:.4} nll={:.4} \
                     adv={adv:.4} auc={auc:.4}",
                    report.accuracy, report.ece, report.nll
                );
                acc_s.push(*sparsity, report.accuracy);
                ece_s.push(*sparsity, report.ece);
                nll_s.push(*sparsity, report.nll);
                adv_s.push(*sparsity, adv);
                auc_s.push(*sparsity, auc);
                table_rows.push(format!(
                    "| {arch_label} | {kind} | {:.2}% | {:.2} | {:.4} | {:.4} | {:.2} | {:.2} |",
                    sparsity * 100.0,
                    report.accuracy * 100.0,
                    report.ece,
                    report.nll,
                    adv * 100.0,
                    auc
                ));
            }
            record.series.extend([acc_s, ece_s, nll_s, adv_s, auc_s]);
        }
    }

    println!("### Table I — raw ticket properties (A-IMP robust vs IMP natural)\n");
    println!("| Model | Ticket | Sparsity | Acc ↑ | ECE ↓ | NLL ↓ | Adv-Acc ↑ | ROC-AUC ↑ |");
    println!("|---|---|---|---|---|---|---|---|");
    for row in &table_rows {
        println!("{row}");
    }
    println!();

    record.notes.push(
        "paper shape: robust wins Acc and (by a wide margin) Adv-Acc at every \
         sparsity; ECE/NLL mixed; robust improves the larger model's OoD AUC"
            .to_string(),
    );
    finish(&record, preset);
    Ok(())
}
