//! **Fig. 9 + Table II** — When do robust tickets win? Linear evaluation
//! of robust vs. natural OMP tickets across the 12-task VTAB-like suite,
//! with the FID between each task and the source measured on the dense
//! (naturally pretrained) model's features — the paper's protocol with our
//! backbone substituting for Inception-v3.
//!
//! Expected shape: robust tickets win on high-FID (large domain gap)
//! tasks and only match/lose on the lowest-FID tasks, so the win margin
//! correlates positively with FID.

use rt_bench::{abort_on_error, family_for, finish, pretrained_model, source_task};
use rt_data::fid::fid;
use rt_prune::{omp, OmpConfig};
use rt_transfer::evaluate::extract_features;
use rt_transfer::experiment::{ExperimentRecord, Preset, Scale, Series};
use rt_transfer::linear::linear_eval;
use rt_transfer::pretrain::PretrainScheme;

fn main() {
    let _obs = rt_bench::ObsSession::start("fig9_vtab");
    let preset = Preset::new(Scale::from_args());
    if let Err(e) = run(&preset) {
        abort_on_error("fig9", e);
    }
}

fn run(preset: &Preset) -> rt_bench::Result<()> {
    let family = family_for(preset);
    let source = source_task(preset, &family)?;

    let arch = preset.arch_r18();
    let natural = pretrained_model(preset, "r18", &arch, &source, PretrainScheme::Natural)?;
    let robust = pretrained_model(preset, "r18", &arch, &source, preset.adversarial_scheme())?;

    // FID reference: features of the dense natural model on source images
    // (the paper samples 8000 ImageNet images; we use the preset's budget).
    let mut fid_model = natural.fresh_model(900)?;
    let source_feats = extract_features(
        &mut fid_model,
        &source
            .train
            .images()
            .slice_rows(0, preset.fid_samples.min(source.train.len()))?,
    )?;

    // High-sparsity ticket (the paper counts winners "under high sparsity").
    let high_sparsity = 0.9;
    let suite = family.vtab_suite(preset.downstream_train, preset.downstream_test);

    let mut record = ExperimentRecord::new(
        "fig9",
        "VTAB-like suite: linear eval of robust vs natural tickets + FID (Table II)",
        preset.scale,
    );
    let mut fid_series = Series::new("fid-vs-source");
    let mut robust_series = Series::new(format!("robust-lin@s{high_sparsity}"));
    let mut natural_series = Series::new(format!("natural-lin@s{high_sparsity}"));
    let mut table_rows = Vec::new();
    let mut corr_data: Vec<(f64, f64)> = Vec::new(); // (fid, robust margin)

    for (idx, spec) in suite.iter().enumerate() {
        let task = family.downstream_task(spec)?;
        let task_feats = extract_features(
            &mut fid_model,
            &task
                .test
                .images()
                .slice_rows(0, preset.fid_samples.min(task.test.len()))?,
        )?;
        let task_fid = fid(&source_feats, &task_feats)?;

        let mut accs = [0.0f64; 2];
        for (slot, pre) in [(0usize, &natural), (1, &robust)] {
            let mut model = pre.fresh_model(700 + idx as u64)?;
            let ticket = omp(&model, &OmpConfig::unstructured(high_sparsity))?;
            ticket.apply(&mut model)?;
            let mut cfg = preset.linear;
            cfg.seed = 13 + idx as u64;
            accs[slot] = linear_eval(&mut model, &task, &cfg)?;
        }
        let margin = accs[1] - accs[0];
        let winner = if margin > 0.005 {
            "Robust"
        } else if margin < -0.005 {
            "Natural"
        } else {
            "Tie"
        };
        eprintln!(
            "[{}] gap={:.2} fid={task_fid:.2} natural={:.4} robust={:.4} -> {winner}",
            spec.name, spec.gap, accs[0], accs[1]
        );
        let x = idx as f64;
        fid_series.push(x, task_fid);
        natural_series.push(x, accs[0]);
        robust_series.push(x, accs[1]);
        table_rows.push(format!(
            "| {} | {:.2} | {:.2} | {:.2} | {:.2} | {winner} |",
            spec.name,
            task_fid,
            spec.gap,
            accs[0] * 100.0,
            accs[1] * 100.0
        ));
        corr_data.push((task_fid, margin));
    }
    record
        .series
        .extend([fid_series, natural_series, robust_series]);

    println!("### Table II — winning tickets per VTAB-like task vs FID\n");
    println!("| Task | FID | gap knob | Natural lin-acc | Robust lin-acc | Winner |");
    println!("|---|---|---|---|---|---|");
    for row in &table_rows {
        println!("{row}");
    }
    println!();

    // Rank correlation (Spearman) between FID and robust margin.
    let spearman = spearman(&corr_data);
    let robust_wins = corr_data.iter().filter(|(_, m)| *m > 0.005).count();
    let ties = corr_data.iter().filter(|(_, m)| m.abs() <= 0.005).count();
    record.notes.push(format!(
        "winners: robust {robust_wins} / tie {ties} / natural {} out of 12 \
         (paper: 7 / 3 / 2)",
        12 - robust_wins - ties
    ));
    record.notes.push(format!(
        "Spearman rank correlation between task FID and robust margin: \
         {spearman:+.3} (paper shape: positive — robust wins where the \
         domain gap is large)"
    ));
    finish(&record, preset);
    Ok(())
}

/// Spearman rank correlation of `(x, y)` pairs.
fn spearman(data: &[(f64, f64)]) -> f64 {
    let n = data.len();
    if n < 2 {
        return 0.0;
    }
    let rank = |values: Vec<f64>| -> Vec<f64> {
        let mut order: Vec<usize> = (0..values.len()).collect();
        order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite"));
        let mut ranks = vec![0.0; values.len()];
        for (r, &i) in order.iter().enumerate() {
            ranks[i] = r as f64;
        }
        ranks
    };
    let rx = rank(data.iter().map(|d| d.0).collect());
    let ry = rank(data.iter().map(|d| d.1).collect());
    let mean = (n as f64 - 1.0) / 2.0;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = rx[i] - mean;
        let dy = ry[i] - mean;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}
