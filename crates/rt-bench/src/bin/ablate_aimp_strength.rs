//! **Ablation: `aimp_strength`** — how strong should the adversarial
//! objective inside A-IMP be (DESIGN.md §4)? Sweeps the PGD ε used during
//! the iterative pruning rounds while keeping the robust pretrained model
//! fixed, and reports downstream finetuning accuracy of the final ticket.

use rt_adv::attack::AttackConfig;
use rt_bench::{abort_on_error, family_for, finish, pretrained_model, source_task, Protocol};
use rt_prune::ImpConfig;
use rt_transfer::experiment::{ExperimentRecord, Preset, Scale, Series};
use rt_transfer::ticket::imp_ticket_trajectory;
use rt_transfer::training::Objective;

fn main() {
    let _obs = rt_bench::ObsSession::start("ablate_aimp_strength");
    let preset = Preset::new(Scale::from_args());
    if let Err(e) = run(&preset) {
        abort_on_error("ablate-aimp-strength", e);
    }
}

fn run(preset: &Preset) -> rt_bench::Result<()> {
    let family = family_for(preset);
    let source = source_task(preset, &family)?;
    let task = family.downstream_task(&preset.c10_spec())?;

    let arch = preset.arch_r18();
    let robust = pretrained_model(preset, "r18", &arch, &source, preset.adversarial_scheme())?;

    let base_eps = preset.pretrain_attack.epsilon;
    let epsilons = [0.0f32, base_eps * 0.5, base_eps, base_eps * 2.0];

    let mut record = ExperimentRecord::new(
        "ablate-aimp-strength",
        "A-IMP adversarial strength sweep (PGD epsilon during pruning rounds)",
        preset.scale,
    );
    for (k, &eps) in epsilons.iter().enumerate() {
        let label = format!("eps={eps:.2}");
        let objective = if eps == 0.0 {
            Objective::Natural
        } else {
            Objective::Adversarial(AttackConfig::pgd(eps, preset.pretrain_attack.steps))
        };
        let imp_cfg = ImpConfig::paper(preset.imp_final_sparsity, preset.imp_rounds);
        let round_cfg = preset.imp_round_cfg(objective, 99 + k as u64);
        let mut model = robust.fresh_model(5 + k as u64)?;
        model.replace_head(
            task.train.num_classes(),
            &mut rt_tensor::rng::SeedStream::new(6).rng(),
        )?;
        let trajectory =
            imp_ticket_trajectory(&mut model, &robust, &task.train, &imp_cfg, &round_cfg)?;
        let mut series = Series::new(label.clone());
        for (i, (sparsity, ticket)) in trajectory.iter().enumerate() {
            let acc = rt_bench::score_ticket_avg(
                preset,
                &robust,
                ticket,
                &task,
                Protocol::Finetune,
                800 + i as u64,
            )?;
            eprintln!("[{label}] s={sparsity:.3} acc={acc:.4}");
            series.push(*sparsity, acc);
        }
        record.series.push(series);
    }
    record.notes.push(
        "expected: moderate epsilon (the pretraining value) transfers best; \
         eps=0 degenerates to IMP on robust weights, very large eps degrades \
         the pruning signal"
            .to_string(),
    );
    finish(&record, preset);
    Ok(())
}
