//! Append-only bench-history store.
//!
//! Every `BENCH_*.json` writer also appends one line of run metadata +
//! key metrics to `results/BENCH_history.jsonl`, giving `bench_trend` a
//! longitudinal record to gate regressions against. The file is JSONL so
//! appends are atomic at line granularity and a torn final line (crash
//! mid-append) costs exactly one record.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// History format version.
pub const HISTORY_VERSION: u32 = 1;

/// One bench run: identification + the scalar metrics worth trending.
///
/// `metrics` is a `BTreeMap` so serialized lines are key-sorted and
/// diff-friendly; keys follow the direction convention documented in
/// [`crate::trend::direction_for`].
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct HistoryEntry {
    /// Format version ([`HISTORY_VERSION`]).
    pub v: u32,
    /// Bench id (`bench_kernels`, `bench_sparse`, …).
    pub bench: String,
    /// Wall-clock timestamp, ms since the unix epoch.
    pub unix_ms: u64,
    /// `std::thread::available_parallelism` on the recording host —
    /// trend comparisons across different machines are meaningless, and
    /// this makes the mismatch visible.
    pub host_parallelism: usize,
    /// Whether the run used a reduced `--quick` workload.
    pub quick: bool,
    /// Key metrics, name → value.
    pub metrics: BTreeMap<String, f64>,
}

impl HistoryEntry {
    /// A new entry stamped with the current time and host parallelism.
    pub fn new(bench: &str, quick: bool) -> HistoryEntry {
        HistoryEntry {
            v: HISTORY_VERSION,
            bench: bench.to_string(),
            unix_ms: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            host_parallelism: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            quick,
            metrics: BTreeMap::new(),
        }
    }

    /// Builder-style metric insert.
    pub fn metric(mut self, key: &str, value: f64) -> HistoryEntry {
        self.metrics.insert(key.to_string(), value);
        self
    }
}

/// The workspace root: the nearest ancestor of the current directory
/// whose `Cargo.toml` declares a `[workspace]` table.
///
/// Bench bins write `BENCH_*.json` and the shared history file relative
/// to this anchor, so artifacts land in the same place whether a bin is
/// launched from the repo root, a crate directory (`cargo run -p …` from
/// `crates/rt-bench`), or a CI scratch dir. Falls back to the current
/// directory when no workspace marker exists above it (e.g. an installed
/// binary run outside the repo).
pub fn repo_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    repo_root_from(&cwd)
}

fn repo_root_from(start: &Path) -> PathBuf {
    for dir in start.ancestors() {
        if let Ok(text) = std::fs::read_to_string(dir.join("Cargo.toml")) {
            if text.contains("[workspace]") {
                return dir.to_path_buf();
            }
        }
    }
    start.to_path_buf()
}

/// A path anchored at [`repo_root`] — the canonical location for bench
/// artifacts (`BENCH_*.json`, `results/…`).
pub fn repo_path(rel: &str) -> PathBuf {
    repo_root().join(rel)
}

/// Default history location, shared by every writer and `bench_trend`.
pub fn default_history_path() -> PathBuf {
    repo_path("results/BENCH_history.jsonl")
}

/// Appends one entry as a single JSONL line, creating parent directories
/// as needed.
///
/// # Errors
///
/// Returns the underlying I/O error when the directory or file cannot be
/// created/appended.
pub fn append_history(path: &Path, entry: &HistoryEntry) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let line = serde_json::to_string(entry)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(file, "{line}")
}

/// Loads a history file, tolerating torn/malformed lines (each is counted,
/// not fatal — the trend gate must survive a crash mid-append).
///
/// Returns `(entries, torn_lines)`; a missing file is an empty history.
///
/// # Errors
///
/// Returns the underlying I/O error for anything other than a missing
/// file.
pub fn load_history(path: &Path) -> std::io::Result<(Vec<HistoryEntry>, usize)> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(e),
    };
    let mut entries = Vec::new();
    let mut torn = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<HistoryEntry>(line) {
            Ok(e) => entries.push(e),
            Err(_) => torn += 1,
        }
    }
    Ok((entries, torn))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repo_root_walks_up_to_workspace_manifest() {
        let base = std::env::temp_dir().join(format!("rt-root-{}", std::process::id()));
        let nested = base.join("ws/crates/deep");
        std::fs::create_dir_all(&nested).unwrap();
        std::fs::write(base.join("ws/Cargo.toml"), "[workspace]\nmembers = []\n").unwrap();
        // A crate-level manifest between the start dir and the workspace
        // root must not terminate the walk.
        std::fs::write(
            base.join("ws/crates/Cargo.toml"),
            "[package]\nname = \"x\"\n",
        )
        .unwrap();
        assert_eq!(repo_root_from(&nested), base.join("ws"));
        // No workspace marker above: fall back to the start dir itself.
        let orphan = base.join("orphan");
        std::fs::create_dir_all(&orphan).unwrap();
        let resolved = repo_root_from(&orphan);
        assert!(resolved == orphan || resolved.join("Cargo.toml").exists());
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn round_trips_and_tolerates_torn_tail() {
        let dir = std::env::temp_dir().join(format!("rt-hist-{}", std::process::id()));
        let path = dir.join("BENCH_history.jsonl");
        let _ = std::fs::remove_file(&path);

        let (empty, torn) = load_history(&path).unwrap();
        assert!(empty.is_empty());
        assert_eq!(torn, 0);

        let a = HistoryEntry::new("bench_kernels", true).metric("gemm_1t_gflops", 3.5);
        let b = HistoryEntry::new("bench_kernels", true).metric("gemm_1t_gflops", 3.7);
        append_history(&path, &a).unwrap();
        append_history(&path, &b).unwrap();
        // Torn tail: a crash mid-append leaves a partial line.
        {
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"v\":1,\"bench\":\"ben").unwrap();
        }
        let (loaded, torn) = load_history(&path).unwrap();
        assert_eq!(loaded, vec![a, b]);
        assert_eq!(torn, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
