//! Criterion micro-benchmarks of the compute kernels and pipeline stages
//! that dominate experiment wall-clock: convolution lowering, matmul,
//! forward/backward passes, PGD attack steps, and ticket drawing.

use criterion::{criterion_group, criterion_main, Criterion};
use rt_adv::attack::{perturb, AttackConfig};
use rt_data::{FamilyConfig, TaskFamily};
use rt_models::{MicroResNet, ResNetConfig};
use rt_nn::loss::CrossEntropyLoss;
use rt_nn::optim::Sgd;
use rt_nn::{ExecCtx, Layer};
use rt_prune::{omp, Granularity, OmpConfig};
use rt_tensor::conv::{im2col_single, ConvGeometry};
use rt_tensor::linalg::Gemm;
use rt_tensor::rng::rng_from_seed;
use rt_tensor::{init, linalg, Tensor};
use std::hint::black_box;

fn bench_tensor_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor");
    group.sample_size(20);

    let mut rng = rng_from_seed(0);
    let a = init::normal(&[64, 72], 0.0, 1.0, &mut rng);
    let b = init::normal(&[72, 256], 0.0, 1.0, &mut rng);
    group.bench_function("matmul_64x72x256", |bench| {
        let mut out = Tensor::zeros(&[64, 256]);
        bench.iter(|| {
            linalg::gemm(black_box(&a), black_box(&b), Gemm::new(), &mut out).expect("gemm")
        })
    });

    let sample = init::normal(&[3 * 16 * 16], 0.0, 1.0, &mut rng).into_vec();
    let geo = ConvGeometry::new(3, 1, 1);
    group.bench_function("im2col_3x16x16_k3", |bench| {
        bench.iter(|| im2col_single(black_box(&sample), 3, 16, 16, geo).expect("im2col"))
    });

    let logits = init::normal(&[64, 12], 0.0, 2.0, &mut rng);
    group.bench_function("softmax_rows_64x12", |bench| {
        bench.iter(|| rt_tensor::special::softmax_rows(black_box(&logits)).expect("softmax"))
    });
    group.finish();
}

fn bench_model_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("model");
    group.sample_size(10);

    let mut rng = rng_from_seed(1);
    let mut r18 = MicroResNet::new(&ResNetConfig::r18_analog(12), &mut rng).expect("model");
    let x = init::normal(&[16, 3, 16, 16], 0.0, 1.0, &mut rng);
    group.bench_function("r18_forward_b16", |bench| {
        bench.iter(|| r18.forward(black_box(&x), ExecCtx::eval()).expect("forward"))
    });

    let loss_fn = CrossEntropyLoss::new();
    let labels: Vec<usize> = (0..16).map(|i| i % 12).collect();
    group.bench_function("r18_train_step_b16", |bench| {
        let opt = Sgd::paper_recipe(0.01);
        bench.iter(|| {
            let logits = r18.forward(black_box(&x), ExecCtx::train()).expect("forward");
            let out = loss_fn.forward(&logits, &labels).expect("loss");
            r18.backward(&out.grad, ExecCtx::default()).expect("backward");
            opt.step(&mut r18).expect("step");
        })
    });

    let mut r50 = MicroResNet::new(&ResNetConfig::r50_analog(12), &mut rng).expect("model");
    group.bench_function("r50_forward_b16", |bench| {
        bench.iter(|| r50.forward(black_box(&x), ExecCtx::eval()).expect("forward"))
    });
    group.finish();
}

fn bench_adversarial(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversarial");
    group.sample_size(10);

    let mut rng = rng_from_seed(2);
    let mut model = MicroResNet::new(&ResNetConfig::r18_analog(12), &mut rng).expect("model");
    let x = init::normal(&[16, 3, 16, 16], 0.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..16).map(|i| i % 12).collect();
    model.forward(&x, ExecCtx::train()).expect("warm bn");
    model.zero_grad();

    group.bench_function("pgd3_b16", |bench| {
        let cfg = AttackConfig::pgd(0.4, 3);
        bench.iter(|| perturb(&mut model, black_box(&x), &labels, &cfg, &mut rng).expect("perturb"))
    });
    group.bench_function("fgsm_b16", |bench| {
        let cfg = AttackConfig::fgsm(0.4);
        bench.iter(|| perturb(&mut model, black_box(&x), &labels, &cfg, &mut rng).expect("perturb"))
    });
    group.finish();
}

fn bench_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruning");
    group.sample_size(20);

    let mut rng = rng_from_seed(3);
    let model = MicroResNet::new(&ResNetConfig::r18_analog(12), &mut rng).expect("model");
    group.bench_function("omp_unstructured_r18", |bench| {
        bench.iter(|| omp(black_box(&model), &OmpConfig::unstructured(0.9)).expect("omp"))
    });
    group.bench_function("omp_channel_r18", |bench| {
        bench.iter(|| {
            omp(
                black_box(&model),
                &OmpConfig::structured(0.5, Granularity::Channel),
            )
            .expect("omp")
        })
    });
    group.finish();
}

fn bench_data_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("data");
    group.sample_size(10);
    group.bench_function("source_task_128", |bench| {
        bench.iter(|| {
            let family = TaskFamily::new(FamilyConfig::paper(), black_box(11));
            family.source_task(128, 0).expect("task")
        })
    });
    group.bench_function("fid_128x64", |bench| {
        let mut rng = rng_from_seed(4);
        let a = init::normal(&[128, 64], 0.0, 1.0, &mut rng);
        let b = init::normal(&[128, 64], 0.5, 1.2, &mut rng);
        bench.iter(|| rt_data::fid::fid(black_box(&a), black_box(&b)).expect("fid"))
    });
    group.finish();
}

fn bench_eval_support(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    group.sample_size(30);
    let mut rng = rng_from_seed(5);
    let logits = init::normal(&[256, 12], 0.0, 2.0, &mut rng);
    let labels: Vec<usize> = (0..256).map(|i| i % 12).collect();
    group.bench_function("ece_256x12", |bench| {
        bench.iter(|| {
            rt_metrics::expected_calibration_error(black_box(&logits), &labels, 15).expect("ece")
        })
    });
    let pos: Vec<f64> = (0..512).map(|i| (i % 97) as f64 / 97.0).collect();
    let neg: Vec<f64> = (0..512).map(|i| (i % 89) as f64 / 120.0).collect();
    group.bench_function("roc_auc_512x512", |bench| {
        bench.iter(|| rt_metrics::roc_auc(black_box(&pos), black_box(&neg)))
    });
    let _ = Tensor::zeros(&[1]);
    group.finish();
}

criterion_group!(
    benches,
    bench_tensor_kernels,
    bench_model_passes,
    bench_adversarial,
    bench_pruning,
    bench_data_generation,
    bench_eval_support
);
criterion_main!(benches);
