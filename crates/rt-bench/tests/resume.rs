//! Kill-and-resume integration test on the *production* Fig. 1 sweep.
//!
//! The acceptance demo for the fault-tolerant runner: a fig1 smoke sweep
//! is interrupted mid-flight by an injected panic (simulating a crashed or
//! killed driver), then restarted with `resume`. The resumed run must skip
//! every journaled cell and produce a record byte-identical to an
//! uninterrupted reference run — proven on the exact code path the
//! `fig1_omp_finetune` binary executes ([`rt_bench::fig1_record`]).

use rt_bench::fig1_record;
use rt_transfer::experiment::{Preset, Scale};
use rt_transfer::fault::{self, FaultPlan};
use rt_transfer::runner::{Runner, RunnerConfig, RunnerError};
use std::path::PathBuf;

/// `fig1_record` now returns the unified error; runner failures arrive
/// boxed in `RtError::Layer` and are recovered by downcasting.
fn as_runner_error(err: &rt_nn::RtError) -> &RunnerError {
    match err {
        rt_nn::RtError::Layer { source, .. } => source
            .downcast_ref::<RunnerError>()
            .expect("runner failures box a RunnerError source"),
        other => panic!("expected a boxed RunnerError, got {other:?}"),
    }
}

fn temp_journal(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("rt-bench-resume-test");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}-{}.journal.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn fig1_interrupted_sweep_resumes_byte_identically() {
    let mut preset = Preset::new(Scale::Smoke);
    // Private seed so this test's pretrain-cache entries cannot collide
    // with other tests or ad-hoc driver runs sharing the cache directory.
    preset.seed = 991;

    // Run A — the uninterrupted reference.
    let path_a = temp_journal("fig1-reference");
    let mut reference_runner = Runner::new(RunnerConfig {
        journal_path: Some(path_a.clone()),
        resume: false,
        ..RunnerConfig::default()
    })
    .expect("reference journal");
    let reference = fig1_record(&preset, &mut reference_runner).expect("reference sweep");
    let total_cells = reference_runner.stats.executed;
    assert!(
        total_cells > 6,
        "smoke fig1 should have a non-trivial number of cells, got {total_cells}"
    );

    // Run B — killed mid-sweep: a persistent injected panic at cell
    // ordinal KILL_AT with zero retries aborts the driver outright,
    // exactly like a crash. Cells 0..KILL_AT are already journaled.
    const KILL_AT: usize = 5;
    let path_b = temp_journal("fig1-interrupted");
    let cfg_b = RunnerConfig {
        journal_path: Some(path_b.clone()),
        resume: false,
        max_retries: 0,
        ..RunnerConfig::default()
    };
    {
        let _g = fault::scoped(FaultPlan::default().with_panic_cell(KILL_AT, usize::MAX));
        let mut doomed = Runner::new(cfg_b.clone()).expect("interrupted journal");
        match fig1_record(&preset, &mut doomed) {
            Err(err) => match as_runner_error(&err) {
                RunnerError::CellFailed { attempts, .. } => {
                    assert_eq!(*attempts, 1, "max_retries=0 means a single attempt");
                }
                other => panic!("expected CellFailed from the injected kill, got {other:?}"),
            },
            Ok(_) => panic!("the injected kill should have aborted the sweep"),
        }
        assert_eq!(
            doomed.stats.executed, KILL_AT,
            "every cell before the kill must already be journaled"
        );
    }

    // Run C — resumed: journaled cells replay, the rest execute fresh.
    let mut resumed_runner = Runner::new(RunnerConfig {
        resume: true,
        ..cfg_b
    })
    .expect("resumed journal");
    let resumed = fig1_record(&preset, &mut resumed_runner).expect("resumed sweep");
    assert_eq!(resumed_runner.stats.skipped, KILL_AT);
    assert_eq!(resumed_runner.stats.executed, total_cells - KILL_AT);

    assert_eq!(resumed, reference, "resumed record differs from reference");
    let reference_json = serde_json::to_string(&reference).expect("encode reference");
    let resumed_json = serde_json::to_string(&resumed).expect("encode resumed");
    assert_eq!(
        reference_json, resumed_json,
        "resumed record is not byte-identical to the uninterrupted run"
    );

    let _ = std::fs::remove_file(&path_a);
    let _ = std::fs::remove_file(&path_b);
}
