//! End-to-end telemetry test: a short real training run streamed to a
//! JSONL file must parse back (`obs_report`'s code path) into a breakdown
//! whose top-level span covers (almost) the whole run — the acceptance
//! criterion for the observability layer.

use rt_data::{FamilyConfig, TaskFamily};
use rt_models::{MicroResNet, ResNetConfig};
use rt_obs::report::{aggregate, parse_jsonl};
use rt_obs::Level;
use rt_tensor::rng::rng_from_seed;
use rt_transfer::training::{train, Objective, SchedulePolicy, TrainConfig};

fn smoke_setup() -> (MicroResNet, rt_data::Dataset) {
    let family = TaskFamily::new(FamilyConfig::smoke(), 17);
    let task = family.source_task(32, 16).unwrap();
    let config = ResNetConfig::smoke(task.train.num_classes());
    let model = MicroResNet::new(&config, &mut rng_from_seed(0)).unwrap();
    (model, task.train)
}

fn train_cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 8,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 1e-4,
        schedule: SchedulePolicy::Constant,
        objective: Objective::Natural,
        seed: 5,
    }
}

#[test]
fn short_training_run_round_trips_through_jsonl_and_obs_report() {
    let _t = rt_obs::testing::lock();
    let path = std::env::temp_dir().join("rt-bench-obs-stream.jsonl");
    let _ = std::fs::remove_file(&path);
    rt_obs::init_manual(Level::All, Some(&path)).unwrap();

    // Simulate a driver: root span (ObsSession-style) around real work,
    // closed before finalize.
    {
        let _root = rt_obs::span!("itest");
        let (mut model, data) = smoke_setup();
        let report = train(&mut model, &data, &train_cfg(3)).unwrap();
        assert_eq!(report.epoch_losses.len(), 3);
    }
    rt_obs::finalize();

    // The stream must be well-formed line-by-line JSON...
    let text = std::fs::read_to_string(&path).unwrap();
    let (events, malformed) = parse_jsonl(&text);
    assert_eq!(malformed, 0, "no malformed lines in a clean run");
    assert!(!events.is_empty());

    // ...and aggregate into the breakdown obs_report renders.
    let snap = aggregate(&events);
    let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
    assert!(paths.contains(&"itest"), "{paths:?}");
    assert!(paths.contains(&"itest/train.run"), "{paths:?}");
    assert!(paths.contains(&"itest/train.run/train.epoch"), "{paths:?}");
    let epoch = snap
        .spans
        .iter()
        .find(|s| s.path == "itest/train.run/train.epoch")
        .unwrap();
    assert_eq!(epoch.count, 3, "one span per epoch");

    // Per-batch histogram flowed into the final metric snapshot.
    let hist = snap
        .histograms
        .iter()
        .find(|h| h.name == "train.batch_ms")
        .expect("train.batch_ms histogram in stream");
    assert_eq!(hist.count, 3 * 4, "3 epochs x ceil(32/8) batches");
    assert!(hist.mean() > 0.0);

    // Coverage: the top-level span accounts for >=95% of the run.
    let coverage = snap.coverage().expect("top-level span present");
    assert!(coverage >= 0.95, "coverage {coverage} < 0.95");

    // The rendered table mentions the big-ticket rows.
    let table = snap.render_table();
    assert!(table.contains("train.epoch"), "{table}");
    assert!(table.contains("train.batch_ms"), "{table}");

    let _ = std::fs::remove_file(&path);
}

#[test]
fn epoch_spans_carry_loss_and_throughput_attrs() {
    let _t = rt_obs::testing::lock();
    let handle = rt_obs::init_memory(Level::All);
    let (mut model, data) = smoke_setup();
    train(&mut model, &data, &train_cfg(1)).unwrap();
    let lines = handle.lines();
    let epoch_line = lines
        .iter()
        .find(|l| l.contains("\"name\":\"train.epoch\""))
        .expect("epoch span event");
    assert!(epoch_line.contains("\"epoch\":0"), "{epoch_line}");
    assert!(epoch_line.contains("\"lr\":"), "{epoch_line}");
    assert!(epoch_line.contains("\"loss\":"), "{epoch_line}");
    assert!(epoch_line.contains("\"imgs_per_sec\":"), "{epoch_line}");
}

#[test]
fn telemetry_off_training_touches_no_registry_and_no_file() {
    let _t = rt_obs::testing::lock();
    // Level stays Off (testing::lock resets it); run real training.
    let (mut model, data) = smoke_setup();
    let off = train(&mut model, &data, &train_cfg(2)).unwrap();
    assert_eq!(rt_obs::registry_len(), 0, "off level must not register");
    assert!(rt_obs::snapshot().spans.is_empty());

    // And the recorded losses are identical to an instrumented run: the
    // telemetry layer observes, never perturbs.
    rt_obs::init_memory(Level::All);
    let (mut model2, data2) = smoke_setup();
    let on = train(&mut model2, &data2, &train_cfg(2)).unwrap();
    assert_eq!(off, on, "telemetry must not change training results");
}
