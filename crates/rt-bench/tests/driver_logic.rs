//! Integration tests of the experiment-driver plumbing at smoke scale —
//! the library paths every `src/bin/` driver shares.

use rt_bench::{
    family_for, omp_sweep, pretrained_model, score_ticket_avg, source_task, win_count, Protocol,
};
use rt_prune::{omp, Granularity, OmpConfig};
use rt_transfer::experiment::{ExperimentRecord, Preset, Scale, Series};
use rt_transfer::pretrain::PretrainScheme;
use rt_transfer::runner::{Runner, RunnerConfig};

/// Ephemeral (journal-less) runner for sweeps whose fault tolerance is
/// not under test here.
fn ephemeral_runner() -> Runner {
    Runner::new(RunnerConfig::default()).expect("ephemeral runner")
}

fn preset_with_tmp_cache() -> Preset {
    // Use the default target-dir cache; keys are scale-prefixed so smoke
    // runs never collide with standard results.
    Preset::new(Scale::Smoke)
}

#[test]
fn omp_sweep_produces_monotone_x_and_valid_accuracies() {
    let preset = preset_with_tmp_cache();
    let family = family_for(&preset);
    let source = source_task(&preset, &family).expect("source");
    let task = family.downstream_task(&preset.c10_spec()).expect("task");
    let pre = pretrained_model(
        &preset,
        "r18",
        &preset.arch_r18(),
        &source,
        PretrainScheme::Natural,
    )
    .expect("pretrain");
    let mut runner = ephemeral_runner();
    for protocol in [Protocol::Finetune, Protocol::Linear] {
        let series = omp_sweep(
            &mut runner,
            &preset,
            &pre,
            &task,
            Granularity::Element,
            protocol,
            format!("test/{}", protocol.label()),
            &preset.sparsity_grid,
        )
        .expect("sweep");
        assert_eq!(series.points.len(), preset.sparsity_grid.len());
        for pair in series.points.windows(2) {
            assert!(pair[0].x < pair[1].x);
        }
        assert!(series.points.iter().all(|p| (0.0..=1.0).contains(&p.y)));
    }
}

#[test]
fn score_ticket_avg_is_deterministic_and_bounded() {
    let preset = preset_with_tmp_cache();
    let family = family_for(&preset);
    let source = source_task(&preset, &family).expect("source");
    let task = family.downstream_task(&preset.c10_spec()).expect("task");
    let pre = pretrained_model(
        &preset,
        "r18",
        &preset.arch_r18(),
        &source,
        PretrainScheme::Natural,
    )
    .expect("pretrain");
    let model = pre.fresh_model(0).expect("model");
    let ticket = omp(&model, &OmpConfig::unstructured(0.5)).expect("omp");
    let a = score_ticket_avg(&preset, &pre, &ticket, &task, Protocol::Linear, 3).expect("score");
    let b = score_ticket_avg(&preset, &pre, &ticket, &task, Protocol::Linear, 3).expect("score");
    assert_eq!(a, b, "same seed, same score");
    assert!((0.0..=1.0).contains(&a));
}

#[test]
fn win_count_handles_partial_grids() {
    let mut a = Series::new("a");
    a.push(0.5, 0.9);
    a.push(0.9, 0.6);
    a.push(0.95, 0.5);
    let mut b = Series::new("b");
    b.push(0.5, 0.8);
    b.push(0.9, 0.7);
    // 0.95 missing from b — only shared x values count.
    let (wins, total) = win_count(&a, &b);
    assert_eq!(total, 2);
    assert_eq!(wins, 1);
}

#[test]
fn records_round_trip_through_the_results_directory() {
    let preset = preset_with_tmp_cache();
    let mut record = ExperimentRecord::new("itest", "integration", Scale::Smoke);
    let mut s = Series::new("series");
    s.push(0.5, 0.75);
    record.series.push(s);
    let dir = std::env::temp_dir().join("rt-driver-logic-results");
    let _ = std::fs::remove_dir_all(&dir);
    let path = record.save(&dir).expect("save");
    let json = std::fs::read_to_string(&path).expect("read");
    let back: ExperimentRecord = serde_json::from_str(&json).expect("parse");
    assert_eq!(back, record);
    assert!(back.to_markdown().contains("0.7500"));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = preset;
}

#[test]
fn pretrain_cache_is_shared_between_driver_invocations() {
    let preset = preset_with_tmp_cache();
    let family = family_for(&preset);
    let source = source_task(&preset, &family).expect("source");
    // Two calls with the same key: the second must load the first's weights.
    let a = pretrained_model(
        &preset,
        "r18",
        &preset.arch_r18(),
        &source,
        PretrainScheme::Natural,
    )
    .expect("pretrain a");
    let b = pretrained_model(
        &preset,
        "r18",
        &preset.arch_r18(),
        &source,
        PretrainScheme::Natural,
    )
    .expect("pretrain b");
    assert_eq!(a.snapshot, b.snapshot);
}
