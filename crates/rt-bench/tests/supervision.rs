//! Supervision acceptance tests on the *production* Fig. 1 sweep.
//!
//! The deadline/watchdog analogue of `tests/resume.rs`: an injected
//! `hang:<cell>` fault stalls one cell of a fig1 smoke sweep forever.
//! The watchdog must detect it within the configured deadline, cancel
//! the cell cooperatively (no thread is killed), and leave every
//! completed cell journaled — so a resumed run without the fault
//! produces a record and a journal byte-identical to an uninterrupted
//! reference. Exercised under both a serial (`RT_THREADS=1`) and a
//! 4-thread (`RT_THREADS=4`) kernel pool, since the hang is broken via
//! the ambient cancellation token the pool itself propagates.

use rt_bench::fig1_record;
use rt_transfer::experiment::{Preset, Scale};
use rt_transfer::fault::{self, FaultPlan};
use rt_transfer::runner::{Runner, RunnerConfig, RunnerError};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// `fig1_record` now returns the unified error; runner failures arrive
/// boxed in `RtError::Layer` and are recovered by downcasting.
fn as_runner_error(err: &rt_nn::RtError) -> &RunnerError {
    match err {
        rt_nn::RtError::Layer { source, .. } => source
            .downcast_ref::<RunnerError>()
            .expect("runner failures box a RunnerError source"),
        other => panic!("expected a boxed RunnerError, got {other:?}"),
    }
}

fn temp_journal(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("rt-bench-supervision-test");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}-{}.journal.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// Reference → hung-and-aborted → resumed, at a given pool width. The
/// deadline is generous (hang detection is what's under test, not cell
/// runtime), and only the doomed run arms it — byte-identity of the
/// final journal must not depend on whether a never-tripped deadline
/// was configured.
fn fig1_hang_flow(threads: usize, seed: u64, tag: &str) {
    rt_par::set_threads(threads);
    let mut preset = Preset::new(Scale::Smoke);
    // Private seed so pretrain-cache entries cannot collide with other
    // tests sharing the cache directory.
    preset.seed = seed;

    // Run A — the uninterrupted reference.
    let path_a = temp_journal(&format!("fig1-{tag}-reference"));
    let mut reference_runner = Runner::new(RunnerConfig {
        journal_path: Some(path_a.clone()),
        resume: false,
        ..RunnerConfig::default()
    })
    .expect("reference journal");
    let reference = fig1_record(&preset, &mut reference_runner).expect("reference sweep");
    let total_cells = reference_runner.stats.executed;
    assert!(total_cells > 6, "smoke fig1 too small: {total_cells} cells");
    drop(reference_runner);

    // Run B — cell HANG_AT hangs forever; the watchdog trips its token
    // and, with zero retries, the sweep aborts with the structured
    // deadline error. Cells 0..HANG_AT are already journaled.
    const HANG_AT: usize = 5;
    let deadline = Duration::from_secs(5);
    let path_b = temp_journal(&format!("fig1-{tag}-hung"));
    let cfg_b = RunnerConfig {
        journal_path: Some(path_b.clone()),
        resume: false,
        max_retries: 0,
        ..RunnerConfig::default()
    };
    {
        let _g = fault::scoped(FaultPlan::default().with_hang(HANG_AT, usize::MAX));
        let mut doomed = Runner::new(RunnerConfig {
            deadline: Some(deadline),
            ..cfg_b.clone()
        })
        .expect("hung journal");
        let t0 = Instant::now();
        match fig1_record(&preset, &mut doomed) {
            Err(err) => match as_runner_error(&err) {
                RunnerError::DeadlineExceeded {
                    attempts,
                    deadline_ms,
                    ..
                } => {
                    assert_eq!(*attempts, 1, "max_retries=0 means a single attempt");
                    assert_eq!(*deadline_ms, deadline.as_millis() as u64);
                }
                other => panic!("expected DeadlineExceeded from the injected hang, got {other:?}"),
            },
            Ok(_) => panic!("the injected hang should have aborted the sweep"),
        }
        assert_eq!(doomed.stats.deadline_trips, 1);
        assert_eq!(
            doomed.stats.executed, HANG_AT,
            "every cell before the hang must already be journaled"
        );
        // Detection bound: the healthy prefix ran within the deadline
        // (else the watchdog would have tripped it), so the whole doomed
        // run fits in the prefix budget plus 2x the deadline for the
        // hang itself.
        assert!(
            t0.elapsed() < deadline * (HANG_AT as u32 + 2),
            "hang not detected promptly: {:?}",
            t0.elapsed()
        );
    }

    // Run C — resumed without the fault: journaled cells replay, the
    // hung cell re-executes fresh (attempt 1, unbumped seed).
    let mut resumed_runner = Runner::new(RunnerConfig {
        resume: true,
        ..cfg_b
    })
    .expect("resumed journal");
    let resumed = fig1_record(&preset, &mut resumed_runner).expect("resumed sweep");
    assert_eq!(resumed_runner.stats.skipped, HANG_AT);
    assert_eq!(resumed_runner.stats.executed, total_cells - HANG_AT);
    assert_eq!(resumed, reference, "resumed record differs from reference");
    drop(resumed_runner);

    assert_eq!(
        std::fs::read(&path_a).expect("reference journal bytes"),
        std::fs::read(&path_b).expect("resumed journal bytes"),
        "final journal is not byte-identical to the no-fault run"
    );
    let _ = std::fs::remove_file(&path_a);
    let _ = std::fs::remove_file(&path_b);
    let _ = std::fs::remove_file(&super_summary(&path_a));
    let _ = std::fs::remove_file(&super_summary(&path_b));
}

/// `<journal>.stats.json` sibling (kept out of the byte comparison).
fn super_summary(journal: &PathBuf) -> PathBuf {
    let mut s = journal.as_os_str().to_owned();
    s.push(".stats.json");
    PathBuf::from(s)
}

#[test]
fn fig1_hung_sweep_resumes_byte_identically_serial_pool() {
    fig1_hang_flow(1, 992, "serial");
}

#[test]
fn fig1_hung_sweep_resumes_byte_identically_parallel_pool() {
    fig1_hang_flow(4, 993, "parallel");
}

#[test]
fn transient_hang_is_cancelled_and_the_sweep_completes() {
    // A one-shot hang: attempt 0 stalls, the watchdog cancels it, and the
    // default retry budget absorbs the trip — the sweep completes in the
    // same process, no resume needed.
    rt_par::set_threads(2);
    let mut preset = Preset::new(Scale::Smoke);
    preset.seed = 994;
    let _g = fault::scoped(FaultPlan::default().with_hang(2, 1));
    let mut runner = Runner::new(RunnerConfig {
        deadline: Some(Duration::from_secs(5)),
        ..RunnerConfig::default()
    })
    .expect("ephemeral runner");
    fig1_record(&preset, &mut runner).expect("sweep completes despite the hang");
    assert_eq!(runner.stats.deadline_trips, 1, "exactly one attempt tripped");
    assert_eq!(runner.stats.retries, 1);
    assert_eq!(runner.stats.failed, 0);
}

#[test]
fn hang_detection_latency_is_within_twice_the_deadline() {
    // The sharpest timing claim, on a trivial cell so nothing but the
    // watchdog contributes: a hung cell with a 500 ms deadline and no
    // retries must abort in under 2x the deadline.
    let deadline = Duration::from_millis(500);
    let _g = fault::scoped(FaultPlan::default().with_hang(0, usize::MAX));
    let mut runner = Runner::new(RunnerConfig {
        deadline: Some(deadline),
        max_retries: 0,
        ..RunnerConfig::default()
    })
    .expect("ephemeral runner");
    let t0 = Instant::now();
    let result: Result<u32, _> = runner.run_cell("hung", |_| 7);
    let elapsed = t0.elapsed();
    assert!(
        matches!(result, Err(RunnerError::DeadlineExceeded { .. })),
        "expected DeadlineExceeded, got {result:?}"
    );
    assert!(elapsed >= deadline, "tripped early: {elapsed:?}");
    assert!(elapsed < deadline * 2, "tripped late: {elapsed:?}");
}
