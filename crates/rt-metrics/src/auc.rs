//! ROC-AUC for out-of-distribution detection.
//!
//! The paper's Table I reports ROC-AUC of an OoD detector built on the
//! model's confidence: in-distribution inputs should score *higher* than
//! OoD inputs. [`roc_auc`] computes the exact Mann–Whitney U statistic
//! (probability that a random in-distribution score exceeds a random OoD
//! score, ties counted half).

/// Exact ROC-AUC of `positive` (in-distribution) scores against `negative`
/// (out-of-distribution) scores. `1.0` = perfect separation, `0.5` =
/// chance, `0.0` = perfectly inverted.
///
/// Runs in `O((m+n) log (m+n))`.
///
/// # Panics
///
/// Panics if either slice is empty or contains NaN.
pub fn roc_auc(positive: &[f64], negative: &[f64]) -> f64 {
    assert!(
        !positive.is_empty() && !negative.is_empty(),
        "roc_auc needs non-empty score sets"
    );
    assert!(
        positive.iter().chain(negative).all(|s| !s.is_nan()),
        "roc_auc scores must not be NaN"
    );
    // Merge, sort, and walk through tie groups accumulating the U statistic.
    let mut all: Vec<(f64, bool)> = positive
        .iter()
        .map(|&s| (s, true))
        .chain(negative.iter().map(|&s| (s, false)))
        .collect();
    all.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));

    let mut u = 0.0f64; // counts (pos > neg) + 0.5 * ties
    let mut neg_seen = 0usize;
    let mut i = 0usize;
    while i < all.len() {
        // Tie group [i, j).
        let mut j = i;
        let mut pos_in_group = 0usize;
        let mut neg_in_group = 0usize;
        while j < all.len() && all[j].0 == all[i].0 {
            if all[j].1 {
                pos_in_group += 1;
            } else {
                neg_in_group += 1;
            }
            j += 1;
        }
        // Positives in this group beat all strictly-smaller negatives and
        // tie with the group's negatives.
        u += pos_in_group as f64 * (neg_seen as f64 + 0.5 * neg_in_group as f64);
        neg_seen += neg_in_group;
        i = j;
    }
    u / (positive.len() as f64 * negative.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation() {
        let pos = [2.0, 3.0, 4.0];
        let neg = [0.0, 1.0];
        assert_eq!(roc_auc(&pos, &neg), 1.0);
        assert_eq!(roc_auc(&neg, &pos), 0.0);
    }

    #[test]
    fn identical_distributions_give_half() {
        let pos = [1.0, 2.0, 3.0];
        let neg = [1.0, 2.0, 3.0];
        assert!((roc_auc(&pos, &neg) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_ties_give_half() {
        let pos = [5.0; 4];
        let neg = [5.0; 3];
        assert!((roc_auc(&pos, &neg) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap() {
        // pos = {1, 3}, neg = {0, 2}: pairs (1>0)=1, (1>2)=0, (3>0)=1,
        // (3>2)=1 → 3/4.
        let auc = roc_auc(&[1.0, 3.0], &[0.0, 2.0]);
        assert!((auc - 0.75).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_on_random_data() {
        // Deterministic pseudo-random scores.
        let pos: Vec<f64> = (0..40)
            .map(|i| ((i * 37 + 11) % 97) as f64 / 10.0)
            .collect();
        let neg: Vec<f64> = (0..30).map(|i| ((i * 53 + 7) % 89) as f64 / 11.0).collect();
        let fast = roc_auc(&pos, &neg);
        let mut u = 0.0;
        for &p in &pos {
            for &n in &neg {
                u += if p > n {
                    1.0
                } else if p == n {
                    0.5
                } else {
                    0.0
                };
            }
        }
        let brute = u / (pos.len() * neg.len()) as f64;
        assert!((fast - brute).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_scores_panic() {
        let _ = roc_auc(&[], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_scores_panic() {
        let _ = roc_auc(&[f64::NAN], &[1.0]);
    }
}
