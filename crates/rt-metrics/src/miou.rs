//! Mean intersection-over-union for semantic segmentation (Fig. 7's axis).

/// Sentinel label for pixels excluded from the metric (mirrors
/// `rt_nn::loss::IGNORE_LABEL`).
pub const IGNORE_LABEL: usize = usize::MAX;

/// Mean IoU over `num_classes` classes.
///
/// `predictions` and `targets` are flat per-pixel class indices of equal
/// length. Pixels whose target is [`IGNORE_LABEL`] are skipped. Classes
/// that never appear in either predictions or targets are excluded from the
/// mean (the PASCAL VOC convention).
///
/// # Panics
///
/// Panics if the slices differ in length, if `num_classes == 0`, or if any
/// non-ignored index is `>= num_classes`.
pub fn mean_iou(predictions: &[usize], targets: &[usize], num_classes: usize) -> f64 {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "prediction/target length mismatch"
    );
    assert!(num_classes > 0, "need at least one class");
    let mut intersection = vec![0usize; num_classes];
    let mut pred_count = vec![0usize; num_classes];
    let mut target_count = vec![0usize; num_classes];
    for (&p, &t) in predictions.iter().zip(targets) {
        if t == IGNORE_LABEL {
            continue;
        }
        assert!(p < num_classes, "prediction {p} out of range");
        assert!(t < num_classes, "target {t} out of range");
        pred_count[p] += 1;
        target_count[t] += 1;
        if p == t {
            intersection[p] += 1;
        }
    }
    let mut total = 0.0f64;
    let mut classes = 0usize;
    for c in 0..num_classes {
        let union = pred_count[c] + target_count[c] - intersection[c];
        if union == 0 {
            continue; // class absent everywhere: excluded from the mean
        }
        total += intersection[c] as f64 / union as f64;
        classes += 1;
    }
    if classes == 0 {
        0.0
    } else {
        total / classes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_is_one() {
        let t = [0usize, 1, 2, 1, 0];
        assert_eq!(mean_iou(&t, &t, 3), 1.0);
    }

    #[test]
    fn disjoint_prediction_is_zero() {
        let p = [0usize, 0, 0];
        let t = [1usize, 1, 1];
        assert_eq!(mean_iou(&p, &t, 2), 0.0);
    }

    #[test]
    fn known_partial_overlap() {
        // Class 0: inter 1 (idx0), union 3 (pred {0,1}, target {0,3}... )
        let p = [0usize, 0, 1, 1];
        let t = [0usize, 1, 1, 0];
        // class0: inter 1, pred 2, target 2 → union 3 → 1/3
        // class1: inter 1, pred 2, target 2 → union 3 → 1/3
        let miou = mean_iou(&p, &t, 2);
        assert!((miou - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ignored_pixels_are_skipped() {
        let p = [0usize, 1, 0];
        let t = [0usize, IGNORE_LABEL, 1];
        // only pixels 0 and 2 count: class0 inter 1 / union 2; class1 0 / 1.
        let miou = mean_iou(&p, &t, 2);
        assert!((miou - 0.25).abs() < 1e-12);
    }

    #[test]
    fn absent_classes_excluded_from_mean() {
        // Class 2 never appears: mean over classes 0 and 1 only.
        let p = [0usize, 1];
        let t = [0usize, 1];
        assert_eq!(mean_iou(&p, &t, 3), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let _ = mean_iou(&[0], &[0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = mean_iou(&[5], &[0], 2);
    }
}
