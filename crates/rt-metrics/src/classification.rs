//! Top-1/top-k accuracy and confusion matrices.

use rt_tensor::{reduce, Result, Tensor, TensorError};

/// Top-1 accuracy of `[N, K]` logits against `N` labels.
///
/// Returns `0.0` for an empty batch.
///
/// # Errors
///
/// Returns a rank error for non-matrix logits and
/// [`TensorError::LengthMismatch`] if the label count disagrees.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f64> {
    if logits.ndim() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: logits.ndim(),
            op: "accuracy",
        });
    }
    if logits.shape()[0] != labels.len() {
        return Err(TensorError::LengthMismatch {
            shape: logits.shape().to_vec(),
            expected: logits.shape()[0],
            actual: labels.len(),
        });
    }
    if labels.is_empty() {
        return Ok(0.0);
    }
    let pred = reduce::argmax_rows(logits)?;
    let correct = pred.iter().zip(labels).filter(|(p, l)| p == l).count();
    Ok(correct as f64 / labels.len() as f64)
}

/// Top-`k` accuracy: the fraction of rows whose true label is among the `k`
/// highest logits.
///
/// # Errors
///
/// Same conditions as [`accuracy`], plus an error when `k == 0`.
pub fn top_k_accuracy(logits: &Tensor, labels: &[usize], k: usize) -> Result<f64> {
    if k == 0 {
        return Err(TensorError::EmptyTensor {
            op: "top_k_accuracy",
        });
    }
    if logits.ndim() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: logits.ndim(),
            op: "top_k_accuracy",
        });
    }
    let (n, classes) = (logits.shape()[0], logits.shape()[1]);
    if n != labels.len() {
        return Err(TensorError::LengthMismatch {
            shape: logits.shape().to_vec(),
            expected: n,
            actual: labels.len(),
        });
    }
    if labels.is_empty() {
        return Ok(0.0);
    }
    let k = k.min(classes);
    let data = logits.data();
    let mut hits = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let row = &data[i * classes..(i + 1) * classes];
        let target = row[label];
        // The label is in the top-k iff fewer than k entries are strictly
        // greater (ties resolve in the label's favor, matching argmax-first
        // conventions closely enough for metric purposes).
        let greater = row.iter().filter(|&&v| v > target).count();
        if greater < k {
            hits += 1;
        }
    }
    Ok(hits as f64 / labels.len() as f64)
}

/// `K × K` confusion matrix (rows = true class, columns = predicted).
///
/// # Errors
///
/// Same conditions as [`accuracy`], plus an index error if any label is out
/// of range for the logit width.
pub fn confusion_matrix(logits: &Tensor, labels: &[usize]) -> Result<Vec<Vec<usize>>> {
    if logits.ndim() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: logits.ndim(),
            op: "confusion_matrix",
        });
    }
    let classes = logits.shape()[1];
    if logits.shape()[0] != labels.len() {
        return Err(TensorError::LengthMismatch {
            shape: logits.shape().to_vec(),
            expected: logits.shape()[0],
            actual: labels.len(),
        });
    }
    let pred = reduce::argmax_rows(logits)?;
    let mut m = vec![vec![0usize; classes]; classes];
    for (&p, &l) in pred.iter().zip(labels) {
        if l >= classes {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![l],
                shape: vec![classes],
            });
        }
        m[l][p] += 1;
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits() -> Tensor {
        // Predictions: 1, 0, 2, 2
        Tensor::from_vec(
            vec![4, 3],
            vec![
                0.1, 0.8, 0.1, // -> 1
                0.9, 0.0, 0.1, // -> 0
                0.1, 0.2, 0.7, // -> 2
                0.0, 0.3, 0.6, // -> 2
            ],
        )
        .unwrap()
    }

    #[test]
    fn top1_accuracy() {
        let acc = accuracy(&logits(), &[1, 0, 2, 0]).unwrap();
        assert!((acc - 0.75).abs() < 1e-9);
        assert_eq!(accuracy(&logits(), &[1, 0, 2, 2]).unwrap(), 1.0);
    }

    #[test]
    fn topk_accuracy_monotone_in_k() {
        let labels = [2usize, 1, 0, 1];
        let a1 = top_k_accuracy(&logits(), &labels, 1).unwrap();
        let a2 = top_k_accuracy(&logits(), &labels, 2).unwrap();
        let a3 = top_k_accuracy(&logits(), &labels, 3).unwrap();
        assert!(a1 <= a2 && a2 <= a3);
        assert_eq!(a3, 1.0);
    }

    #[test]
    fn confusion_counts() {
        let m = confusion_matrix(&logits(), &[1, 0, 2, 0]).unwrap();
        assert_eq!(m[1][1], 1);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[2][2], 1);
        assert_eq!(m[0][2], 1); // true 0 predicted 2
        let total: usize = m.iter().flatten().sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn validation() {
        assert!(accuracy(&logits(), &[0]).is_err());
        assert!(accuracy(&Tensor::zeros(&[3]), &[0, 0, 0]).is_err());
        assert!(top_k_accuracy(&logits(), &[0, 0, 0, 0], 0).is_err());
        assert!(confusion_matrix(&logits(), &[5, 0, 0, 0]).is_err());
        assert_eq!(accuracy(&Tensor::zeros(&[0, 3]), &[]).unwrap(), 0.0);
    }
}
