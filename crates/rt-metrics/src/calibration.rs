//! Calibration metrics: expected calibration error and negative
//! log-likelihood (the ECE ↓ / NLL ↓ rows of the paper's Table I).

use rt_tensor::{reduce, special, Result, Tensor, TensorError};

fn check(logits: &Tensor, labels: &[usize], op: &'static str) -> Result<(usize, usize)> {
    if logits.ndim() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: logits.ndim(),
            op,
        });
    }
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    if n != labels.len() {
        return Err(TensorError::LengthMismatch {
            shape: logits.shape().to_vec(),
            expected: n,
            actual: labels.len(),
        });
    }
    if labels.iter().any(|&l| l >= k) {
        return Err(TensorError::IndexOutOfBounds {
            index: labels.iter().copied().filter(|&l| l >= k).collect(),
            shape: vec![k],
        });
    }
    Ok((n, k))
}

/// Expected calibration error with equal-width confidence bins.
///
/// `ECE = Σ_b (n_b / N) · |acc(b) − conf(b)|` over `bins` bins of the
/// predicted-class confidence.
///
/// # Errors
///
/// Returns shape/label errors as for [`crate::accuracy`], and an error when
/// `bins == 0`.
pub fn expected_calibration_error(logits: &Tensor, labels: &[usize], bins: usize) -> Result<f64> {
    if bins == 0 {
        return Err(TensorError::EmptyTensor {
            op: "expected_calibration_error",
        });
    }
    let (n, _) = check(logits, labels, "expected_calibration_error")?;
    if n == 0 {
        return Ok(0.0);
    }
    let probs = special::softmax_rows(logits)?;
    let pred = reduce::argmax_rows(&probs)?;
    let conf = reduce::max_rows(&probs)?;
    let mut bin_count = vec![0usize; bins];
    let mut bin_conf = vec![0.0f64; bins];
    let mut bin_acc = vec![0.0f64; bins];
    for i in 0..n {
        let c = conf.data()[i] as f64;
        // Confidence lives in (1/K, 1]; map to a bin index, clamping 1.0
        // into the last bin.
        let b = ((c * bins as f64) as usize).min(bins - 1);
        bin_count[b] += 1;
        bin_conf[b] += c;
        if pred[i] == labels[i] {
            bin_acc[b] += 1.0;
        }
    }
    let mut ece = 0.0f64;
    for b in 0..bins {
        if bin_count[b] == 0 {
            continue;
        }
        let w = bin_count[b] as f64 / n as f64;
        let avg_conf = bin_conf[b] / bin_count[b] as f64;
        let avg_acc = bin_acc[b] / bin_count[b] as f64;
        ece += w * (avg_conf - avg_acc).abs();
    }
    Ok(ece)
}

/// Mean negative log-likelihood of the true labels under the softmax of
/// `logits`.
///
/// # Errors
///
/// Returns shape/label errors as for [`crate::accuracy`].
pub fn negative_log_likelihood(logits: &Tensor, labels: &[usize]) -> Result<f64> {
    let (n, k) = check(logits, labels, "negative_log_likelihood")?;
    if n == 0 {
        return Ok(0.0);
    }
    let log_probs = special::log_softmax_rows(logits)?;
    let total: f64 = labels
        .iter()
        .enumerate()
        .map(|(i, &l)| -(log_probs.data()[i * k + l] as f64))
        .sum();
    Ok(total / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_confident_predictions_have_low_ece_and_nll() {
        // Very confident and always correct.
        let logits =
            Tensor::from_vec(vec![3, 2], vec![10.0, -10.0, -10.0, 10.0, 10.0, -10.0]).unwrap();
        let labels = [0usize, 1, 0];
        let ece = expected_calibration_error(&logits, &labels, 10).unwrap();
        let nll = negative_log_likelihood(&logits, &labels).unwrap();
        assert!(ece < 1e-4, "ece {ece}");
        assert!(nll < 1e-4, "nll {nll}");
    }

    #[test]
    fn confident_but_wrong_is_badly_calibrated() {
        let logits = Tensor::from_vec(vec![2, 2], vec![10.0, -10.0, 10.0, -10.0]).unwrap();
        let labels = [1usize, 1]; // always wrong
        let ece = expected_calibration_error(&logits, &labels, 10).unwrap();
        assert!(ece > 0.99, "ece {ece}");
        let nll = negative_log_likelihood(&logits, &labels).unwrap();
        assert!(nll > 5.0, "nll {nll}");
    }

    #[test]
    fn half_right_at_half_confidence_is_calibrated() {
        // Two classes, uniform logits: confidence 0.5, accuracy 0.5 → ECE 0.
        let logits = Tensor::zeros(&[4, 2]);
        let labels = [0usize, 1, 0, 1];
        let ece = expected_calibration_error(&logits, &labels, 10).unwrap();
        // argmax ties resolve to class 0: accuracy 0.5 at confidence 0.5.
        assert!(ece < 1e-6, "ece {ece}");
    }

    #[test]
    fn nll_matches_manual_value() {
        let logits = Tensor::from_vec(vec![1, 2], vec![0.0, 0.0]).unwrap();
        let nll = negative_log_likelihood(&logits, &[0]).unwrap();
        assert!((nll - (2.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn validation() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(expected_calibration_error(&logits, &[0], 10).is_err());
        assert!(expected_calibration_error(&logits, &[0, 1], 0).is_err());
        assert!(negative_log_likelihood(&logits, &[0, 9]).is_err());
        assert_eq!(
            negative_log_likelihood(&Tensor::zeros(&[0, 3]), &[]).unwrap(),
            0.0
        );
    }
}
