//! Evaluation metrics for the robust-tickets reproduction: classification
//! accuracy, calibration (ECE, NLL), out-of-distribution ROC-AUC, and
//! segmentation mIoU — the full column set of the paper's Table I plus the
//! mIoU axis of Fig. 7.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auc;
pub mod calibration;
pub mod classification;
pub mod miou;

pub use auc::roc_auc;
pub use calibration::{expected_calibration_error, negative_log_likelihood};
pub use classification::{accuracy, confusion_matrix, top_k_accuracy};
pub use miou::mean_iou;
