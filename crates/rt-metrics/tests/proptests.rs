//! Property-based tests for metric invariants.

use proptest::prelude::*;
use rt_metrics::{
    accuracy, expected_calibration_error, mean_iou, negative_log_likelihood, roc_auc,
    top_k_accuracy,
};
use rt_tensor::Tensor;

fn logits_and_labels() -> impl Strategy<Value = (Tensor, Vec<usize>)> {
    (2usize..=6, 2usize..=5).prop_flat_map(|(n, k)| {
        (
            prop::collection::vec(-5.0f32..5.0, n * k),
            prop::collection::vec(0usize..k, n),
        )
            .prop_map(move |(data, labels)| {
                (Tensor::from_vec(vec![n, k], data).expect("shape"), labels)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Accuracy is in [0, 1] and invariant to adding a constant to every
    /// logit of a row.
    #[test]
    fn accuracy_bounds_and_shift_invariance((logits, labels) in logits_and_labels(), c in -3.0f32..3.0) {
        let a = accuracy(&logits, &labels).unwrap();
        prop_assert!((0.0..=1.0).contains(&a));
        let shifted = logits.add_scalar(c);
        prop_assert_eq!(a, accuracy(&shifted, &labels).unwrap());
    }

    /// Top-k accuracy is monotone in k and reaches 1.0 at k = K.
    #[test]
    fn topk_monotone((logits, labels) in logits_and_labels()) {
        let k_max = logits.shape()[1];
        let mut last = 0.0;
        for k in 1..=k_max {
            let a = top_k_accuracy(&logits, &labels, k).unwrap();
            prop_assert!(a + 1e-12 >= last);
            last = a;
        }
        prop_assert_eq!(last, 1.0);
    }

    /// ECE is in [0, 1]; NLL is non-negative.
    #[test]
    fn calibration_bounds((logits, labels) in logits_and_labels()) {
        let ece = expected_calibration_error(&logits, &labels, 15).unwrap();
        prop_assert!((0.0..=1.0).contains(&ece));
        let nll = negative_log_likelihood(&logits, &labels).unwrap();
        prop_assert!(nll >= 0.0);
    }

    /// NLL lower-bounds cross-entropy of the uniform prediction only when
    /// the model is better than uniform on average — but it always exceeds
    /// −log p for the largest assigned probability. Cheap sanity: scaling
    /// logits by a positive constant preserves accuracy.
    #[test]
    fn accuracy_scale_invariance((logits, labels) in logits_and_labels(), s in 0.1f32..5.0) {
        let a = accuracy(&logits, &labels).unwrap();
        let scaled = logits.mul_scalar(s);
        prop_assert_eq!(a, accuracy(&scaled, &labels).unwrap());
    }

    /// AUC is antisymmetric: swapping positives and negatives maps
    /// a → 1 − a. And it is invariant under any strictly increasing
    /// transform of the scores.
    #[test]
    fn auc_antisymmetry_and_monotone_invariance(
        pos in prop::collection::vec(-10.0f64..10.0, 1..30),
        neg in prop::collection::vec(-10.0f64..10.0, 1..30),
    ) {
        let a = roc_auc(&pos, &neg);
        let b = roc_auc(&neg, &pos);
        prop_assert!((a + b - 1.0).abs() < 1e-9);
        // Strictly increasing transform: x -> x^3 + 2x (monotone on R).
        let f = |v: f64| v.powi(3) + 2.0 * v;
        let pos_t: Vec<f64> = pos.iter().map(|&v| f(v)).collect();
        let neg_t: Vec<f64> = neg.iter().map(|&v| f(v)).collect();
        prop_assert!((roc_auc(&pos_t, &neg_t) - a).abs() < 1e-9);
    }

    /// mIoU is 1 exactly for perfect predictions and in [0, 1] always.
    #[test]
    fn miou_bounds(
        pair in (1usize..64).prop_flat_map(|n| (
            prop::collection::vec(0usize..4, n),
            prop::collection::vec(0usize..4, n),
        )),
    ) {
        let (preds, targets) = pair;
        let v = mean_iou(&preds, &targets, 4);
        prop_assert!((0.0..=1.0).contains(&v));
        prop_assert_eq!(mean_iou(&targets, &targets, 4), 1.0);
    }
}
