//! Whole-model finetuning on a downstream task (the paper's primary
//! transfer protocol).

use crate::evaluate::{evaluate, EvalReport};
use crate::training::{train, TrainConfig};
use crate::Result;
use rt_data::Task;
use rt_models::MicroResNet;
use rt_tensor::rng::SeedStream;

/// Finetunes `model` end-to-end on `task`: replaces the classifier head
/// with a fresh one sized for the task, trains every unmasked parameter,
/// and evaluates on the task's test split.
///
/// Pruned weights stay pruned throughout (the optimizer re-applies masks),
/// so the ticket's sparsity pattern is preserved — only the surviving
/// weights and the new head move.
///
/// # Errors
///
/// Propagates training and evaluation errors.
pub fn finetune(model: &mut MicroResNet, task: &Task, config: &TrainConfig) -> Result<EvalReport> {
    let seeds = SeedStream::new(config.seed);
    model.replace_head(task.train.num_classes(), &mut seeds.child("head").rng())?;
    model.set_backbone_trainable(true);
    train(model, &task.train, config)?;
    evaluate(model, &task.test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretrain::{pretrain, PretrainScheme};
    use rt_data::{DownstreamSpec, FamilyConfig, TaskFamily};
    use rt_models::ResNetConfig;
    use rt_prune::{omp, OmpConfig, PruneScope};

    #[test]
    fn finetuning_a_pretrained_ticket_beats_chance() {
        let family = TaskFamily::new(FamilyConfig::smoke(), 31);
        let source = family.source_task(48, 16).unwrap();
        let spec = DownstreamSpec {
            name: "ft-test".to_string(),
            gap: 0.3,
            num_classes: 2,
            train_size: 32,
            test_size: 32,
        };
        let downstream = family.downstream_task(&spec).unwrap();

        let pre = pretrain(
            &ResNetConfig::smoke(4),
            &source,
            PretrainScheme::Natural,
            6,
            0.05,
            1,
        )
        .unwrap();
        let mut model = pre.fresh_model(2).unwrap();
        let ticket = omp(&model, &OmpConfig::unstructured(0.5)).unwrap();
        ticket.apply(&mut model).unwrap();

        let cfg = TrainConfig::paper_finetune(8, 8, 0.05, 3);
        let report = finetune(&mut model, &downstream, &cfg).unwrap();
        assert!(
            report.accuracy > 0.55,
            "finetuned 2-class accuracy {} ≤ chance",
            report.accuracy
        );
        // Sparsity preserved through finetuning.
        let sparsity = rt_prune::model_sparsity(&model, &PruneScope::backbone());
        assert!((sparsity - 0.5).abs() < 0.02, "{sparsity}");
        // Head matches the downstream task now.
        assert_eq!(model.config().num_classes, 2);
    }
}
