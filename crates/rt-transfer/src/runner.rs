//! Fault-tolerant experiment runner: cell isolation, bounded retries, and
//! an append-only JSONL journal with cell-level resume.
//!
//! Every `rt-bench` figure driver is a *sweep* — a sequence of independent
//! **cells** (one `(pretrain scheme, architecture, task, sparsity)` point,
//! or one IMP trajectory). Before this module, a single panicking cell or
//! killed process lost the entire sweep. The [`Runner`] fixes that:
//!
//! * **Isolation** — each cell executes under `catch_unwind`, so a panic
//!   in one cell cannot take down its neighbours.
//! * **Bounded retry** — a failed cell is re-run up to
//!   [`RunnerConfig::max_retries`] times; each attempt receives a
//!   seed bump ([`CellCtx::seed_bump`]) so a retry does not replay the
//!   exact stochastic trajectory that just crashed.
//! * **Journal** — every completed cell is appended (and flushed) as one
//!   JSON line to `results/<id>-<scale>.journal.jsonl`. A re-run with
//!   `--resume` loads the journal and skips completed cells, replaying
//!   their recorded values; because cells are seeded purely by their key
//!   position, a resumed sweep's final record is byte-identical to an
//!   uninterrupted one (proven by property tests and the fig1
//!   kill-and-resume integration test).
//!
//! The fault-injection harness ([`crate::fault`]) hooks into
//! [`Runner::run_cell`]: an armed panic-cell fault fires *inside* the
//! isolation boundary, exactly like a real crash.
//!
//! # Journal format
//!
//! One JSON object per line:
//!
//! ```json
//! {"v":1,"key":"robust/r18/c10/s0.9000","attempt":1,"value":0.8125}
//! ```
//!
//! `key` is the cell's stable identity (execution order does not matter),
//! `attempt` records how many tries the cell took (1 = first try), and
//! `value` is the cell's serialized output. The file is append-only;
//! a torn final line (the crash happened mid-append) is detected and
//! ignored on load.

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use rt_obs::Stopwatch;
use std::time::Duration;

/// Journal format version.
const JOURNAL_VERSION: u32 = 1;

/// Stats-summary format version.
const SUMMARY_VERSION: u32 = 1;

/// Errors produced by the runner layer (cell execution and journal I/O).
#[derive(Debug)]
#[non_exhaustive]
pub enum RunnerError {
    /// A cell kept failing after every allowed retry.
    CellFailed {
        /// The cell's key.
        key: String,
        /// How many attempts were made (1 + retries).
        attempts: usize,
        /// Panic payload / error description of the final attempt.
        detail: String,
    },
    /// The journal file could not be created, read, or appended.
    Journal(std::io::Error),
    /// A journal value could not be encoded or replayed into the
    /// requested cell output type.
    Codec {
        /// The cell's key.
        key: String,
        /// Serde error description.
        detail: String,
    },
    /// A cell exceeded its wall-clock deadline on every allowed attempt:
    /// the watchdog tripped the cell's supervision token, the work was
    /// cancelled cooperatively, and the retry budget ran out.
    DeadlineExceeded {
        /// The cell's key.
        key: String,
        /// How many attempts were made (1 + retries).
        attempts: usize,
        /// The configured per-cell deadline, in milliseconds.
        deadline_ms: u64,
    },
}

impl fmt::Display for RunnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunnerError::CellFailed {
                key,
                attempts,
                detail,
            } => write!(
                f,
                "cell `{key}` failed after {attempts} attempt(s): {detail}"
            ),
            RunnerError::Journal(e) => write!(f, "journal I/O error: {e}"),
            RunnerError::Codec { key, detail } => {
                write!(f, "cell `{key}` value could not be (de)serialized: {detail}")
            }
            RunnerError::DeadlineExceeded {
                key,
                attempts,
                deadline_ms,
            } => write!(
                f,
                "cell `{key}` exceeded its {deadline_ms} ms deadline on all {attempts} attempt(s)"
            ),
        }
    }
}

/// The workspace-wide driver exit-code convention. Every `rt-bench`
/// driver routes its terminal failure paths through this enum instead of
/// scattering bare `std::process::exit(n)` calls:
///
/// * `1` — work was attempted and persistently failed (a cell exhausted
///   its panic retries, a gate failed, a final save could not land),
/// * `2` — the invocation itself was invalid (bad scale, unknown flag),
/// * `3` — a cell exhausted its *deadline* budget (every attempt was
///   cancelled by the watchdog), distinguishable from `1` so sweep
///   orchestrators can react to "too slow" differently from "broken".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ExitCode {
    /// Persistent failure after exhausting recovery (exit 1).
    PersistentFailure = 1,
    /// Invalid invocation / usage error (exit 2).
    Usage = 2,
    /// Deadline budget exhausted: the watchdog cancelled every attempt
    /// of some cell (exit 3).
    DeadlineBudgetExhausted = 3,
}

impl ExitCode {
    /// The numeric process exit code.
    pub fn code(self) -> i32 {
        self as i32
    }

    /// Maps a terminal [`RunnerError`] to its conventional exit code.
    pub fn for_error(err: &RunnerError) -> Self {
        match err {
            RunnerError::DeadlineExceeded { .. } => ExitCode::DeadlineBudgetExhausted,
            _ => ExitCode::PersistentFailure,
        }
    }

    /// Maps a terminal unified [`rt_nn::RtError`] to its conventional exit
    /// code: deadline expiry (serving or a boxed
    /// [`RunnerError::DeadlineExceeded`]) is `3`, everything else is `1`.
    /// Usage errors never reach this — drivers exit [`ExitCode::Usage`]
    /// straight from argument parsing.
    pub fn for_rt_error(err: &rt_nn::RtError) -> Self {
        match err {
            rt_nn::RtError::Deadline { .. } => ExitCode::DeadlineBudgetExhausted,
            rt_nn::RtError::Layer { source, .. } => match source.downcast_ref::<RunnerError>() {
                Some(r) => ExitCode::for_error(r),
                None => ExitCode::PersistentFailure,
            },
            _ => ExitCode::PersistentFailure,
        }
    }

    /// Terminates the process with this code, flushing telemetry first so
    /// the observability journal records the failure.
    pub fn exit(self) -> ! {
        rt_obs::finalize();
        std::process::exit(self.code())
    }
}

impl std::error::Error for RunnerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunnerError::Journal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RunnerError {
    fn from(e: std::io::Error) -> Self {
        RunnerError::Journal(e)
    }
}

/// Joins the workspace error funnel: runner failures box into
/// [`rt_nn::RtError::Layer`] so drivers propagate them with `?` alongside
/// tensor/nn errors. The impl lives here (not in `rt-nn`) because the
/// funnel sits below this crate in the dependency graph; consumers
/// recover the structure by downcasting the boxed source.
impl From<RunnerError> for rt_nn::RtError {
    fn from(e: RunnerError) -> Self {
        rt_nn::RtError::Layer {
            layer: "runner",
            source: Box::new(e),
        }
    }
}

/// Configuration of a [`Runner`].
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Where the JSONL journal lives; `None` disables journaling (cells
    /// still get isolation and retries).
    pub journal_path: Option<PathBuf>,
    /// When true, previously journaled cells are skipped and their
    /// recorded values replayed. When false, an existing journal at
    /// `journal_path` is truncated and the sweep starts fresh.
    pub resume: bool,
    /// How many times a failed cell is re-run before the runner gives up
    /// (0 = fail on first panic).
    pub max_retries: usize,
    /// Per-attempt seed offset: attempt `n` receives
    /// `n * seed_bump` as [`CellCtx::seed_bump`] (0 on the first attempt,
    /// so fault-free sweeps are unaffected).
    pub seed_bump: u64,
    /// When true, [`Runner::run_cells`] executes the independent cells of
    /// a batch concurrently on the [`rt_par`] worker pool. Journal
    /// appends, stats, and telemetry remain ordered by cell index, so the
    /// journal bytes are identical to a serial run. Default off; drivers
    /// opt in via `RT_PAR_CELLS=1` (see
    /// [`RunnerConfig::for_experiment`]).
    pub parallel: bool,
    /// Per-cell wall-clock deadline. Each attempt runs under a fresh
    /// supervision scope whose token the `rt-par` watchdog trips after
    /// this duration; the cancelled attempt is retried with a seed bump
    /// exactly like a panicked one. `None` (the default) disarms the
    /// watchdog entirely. Drivers read `RT_DEADLINE=secs` via
    /// [`RunnerConfig::for_experiment`].
    pub deadline: Option<Duration>,
    /// Base for exponential retry backoff: before retry `n` (1-based) the
    /// runner sleeps `retry_backoff_ms << (n-1)` milliseconds, capped at
    /// 5 s. `0` (the default) disables backoff, keeping unit tests and
    /// journal-byte comparisons instant; [`RunnerConfig::for_experiment`]
    /// sets 250 ms so real sweeps don't hammer a struggling machine.
    pub retry_backoff_ms: u64,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            journal_path: None,
            resume: false,
            max_retries: 1,
            seed_bump: 0x9e37_79b9,
            parallel: false,
            deadline: None,
            retry_backoff_ms: 0,
        }
    }
}

impl RunnerConfig {
    /// Starts a builder from the defaults.
    pub fn builder() -> RunnerConfigBuilder {
        RunnerConfigBuilder {
            cfg: RunnerConfig::default(),
        }
    }

    /// Conventional config for an experiment driver: journal under
    /// `results_dir/<id>-<scale>.journal.jsonl`. Parallel cell execution
    /// is enabled when the `RT_PAR_CELLS` environment variable is `1`
    /// (any other value, or unset, keeps the serial executor); a per-cell
    /// deadline is armed when `RT_DEADLINE` holds a positive number of
    /// seconds (fractional allowed). Driver retries back off from 250 ms.
    pub fn for_experiment(
        results_dir: &std::path::Path,
        id: &str,
        scale_label: &str,
        resume: bool,
    ) -> Self {
        RunnerConfig::builder()
            .journal_path(results_dir.join(format!("{id}-{scale_label}.journal.jsonl")))
            .resume(resume)
            .retry_backoff_ms(250)
            .env_overrides()
            .build()
    }
}

/// Builder for [`RunnerConfig`] (the driver-facing construction path —
/// field-struct literals stay available for tests that want a one-liner).
#[derive(Debug, Clone)]
pub struct RunnerConfigBuilder {
    cfg: RunnerConfig,
}

impl RunnerConfigBuilder {
    /// Journals cells under `path` (enables resume/replay).
    #[must_use]
    pub fn journal_path(mut self, path: PathBuf) -> Self {
        self.cfg.journal_path = Some(path);
        self
    }

    /// Whether to replay an existing journal instead of truncating it.
    #[must_use]
    pub fn resume(mut self, resume: bool) -> Self {
        self.cfg.resume = resume;
        self
    }

    /// Retry budget for failed cells (0 = fail on first panic).
    #[must_use]
    pub fn max_retries(mut self, retries: usize) -> Self {
        self.cfg.max_retries = retries;
        self
    }

    /// Per-attempt seed offset (see [`RunnerConfig::seed_bump`]).
    #[must_use]
    pub fn seed_bump(mut self, bump: u64) -> Self {
        self.cfg.seed_bump = bump;
        self
    }

    /// Executes independent batch cells on the `rt-par` pool.
    #[must_use]
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.cfg.parallel = parallel;
        self
    }

    /// Arms the per-cell wall-clock watchdog.
    #[must_use]
    pub fn deadline(mut self, deadline: Option<Duration>) -> Self {
        self.cfg.deadline = deadline;
        self
    }

    /// Base for exponential retry backoff, in milliseconds.
    #[must_use]
    pub fn retry_backoff_ms(mut self, ms: u64) -> Self {
        self.cfg.retry_backoff_ms = ms;
        self
    }

    /// Applies the runner's environment overrides: `RT_PAR_CELLS=1`
    /// enables parallel cell execution and `RT_DEADLINE=secs` arms the
    /// watchdog. Both are fail-safe parses (a typo keeps the default
    /// rather than changing sweep behavior), matching the long-standing
    /// semantics of [`RunnerConfig::for_experiment`].
    #[must_use]
    pub fn env_overrides(mut self) -> Self {
        if std::env::var("RT_PAR_CELLS").as_deref() == Ok("1") {
            self.cfg.parallel = true;
        }
        if let Some(d) = deadline_from_env() {
            self.cfg.deadline = Some(d);
        }
        self
    }

    /// Finalizes the config.
    pub fn build(self) -> RunnerConfig {
        self.cfg
    }
}

/// Parses `RT_DEADLINE` (seconds, fractional allowed) into a per-cell
/// deadline. Non-positive, non-finite, or malformed values disarm the
/// watchdog rather than erroring — a typo must not change sweep results.
pub fn deadline_from_env() -> Option<Duration> {
    let raw = std::env::var("RT_DEADLINE").ok()?;
    let secs: f64 = raw.trim().parse().ok()?;
    if secs.is_finite() && secs > 0.0 {
        Some(Duration::from_secs_f64(secs))
    } else {
        None
    }
}

/// Exponential backoff delay before retry `attempt` (1-based):
/// `base_ms << (attempt-1)`, capped at 5 s. Zero base means no backoff.
fn backoff_delay(base_ms: u64, attempt: usize) -> Duration {
    if base_ms == 0 {
        return Duration::ZERO;
    }
    let shift = attempt.saturating_sub(1).min(16) as u32;
    Duration::from_millis(base_ms.saturating_mul(1u64 << shift).min(5_000))
}

/// Per-attempt context handed to a cell closure.
#[derive(Debug, Clone, Copy)]
pub struct CellCtx {
    /// 0-based attempt number (0 = first try).
    pub attempt: usize,
    /// Seed offset for this attempt; 0 on the first attempt. Cells add
    /// this to every seed they derive so a retry explores a different
    /// stochastic trajectory instead of replaying the crash.
    pub seed_bump: u64,
    /// 0-based execution ordinal of the cell within the sweep (counts
    /// every `run_cell` call, including journal-skipped ones, so ordinals
    /// are stable across interrupted and resumed runs).
    pub ordinal: usize,
}

/// Execution counters and timings, reported at the end of a sweep and
/// exported as the `<id>-<scale>.stats.json` summary next to the journal.
///
/// The JSON field names follow the summary's vocabulary (`completed` /
/// `resumed` / `retried`) rather than the in-process field names.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunnerStats {
    /// Cells executed (to completion) in this process.
    #[serde(rename = "completed")]
    pub executed: usize,
    /// Cells skipped because the journal already held their value
    /// (i.e. replayed on `--resume`).
    #[serde(rename = "resumed")]
    pub skipped: usize,
    /// Retries performed (excluding first attempts).
    #[serde(rename = "retried")]
    pub retries: usize,
    /// Cells that kept panicking until the retry budget ran out.
    #[serde(default)]
    pub failed: usize,
    /// Wall time spent actually executing cells (excludes journal
    /// replays), in milliseconds.
    #[serde(default)]
    pub executed_ms: f64,
    /// Attempts cancelled by the watchdog deadline (each such attempt
    /// either retried or, with the budget spent, became a
    /// [`RunnerError::DeadlineExceeded`]).
    #[serde(default)]
    pub deadline_trips: usize,
}

/// The JSON document written next to the journal at the end of a sweep
/// (`<id>-<scale>.stats.json`): what ran, what was replayed, what failed,
/// and how long it all took. `summarize_results` renders these into its
/// runner-stats table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunnerSummary {
    /// Summary format version ([`SUMMARY_VERSION`]).
    pub v: u32,
    /// The journal this summary describes (as configured).
    pub journal: String,
    /// Wall time from runner construction to summary write, milliseconds.
    pub wall_ms: f64,
    /// Execution counters and timings.
    pub stats: RunnerStats,
}

/// One journal line.
#[derive(Serialize, Deserialize)]
struct JournalEntry {
    v: u32,
    key: String,
    attempt: usize,
    value: serde_json::Value,
}

/// The fault-tolerant cell executor. See the module docs for semantics.
pub struct Runner {
    cfg: RunnerConfig,
    completed: HashMap<String, serde_json::Value>,
    journal: Option<std::fs::File>,
    next_ordinal: usize,
    started: Stopwatch,
    summary_written: bool,
    /// Execution counters.
    pub stats: RunnerStats,
}

impl Runner {
    /// Opens a runner. With `cfg.resume` an existing journal is loaded
    /// (tolerating a torn final line); without it any existing journal is
    /// truncated.
    ///
    /// # Errors
    ///
    /// Returns [`RunnerError::Journal`] when the journal file cannot be
    /// opened or created.
    pub fn new(cfg: RunnerConfig) -> Result<Self, RunnerError> {
        let mut completed = HashMap::new();
        let journal = match &cfg.journal_path {
            None => None,
            Some(path) => {
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)?;
                    }
                }
                if cfg.resume && path.exists() {
                    let (loaded, valid_len) = load_journal(path)?;
                    completed = loaded;
                    let disk_len = std::fs::metadata(path)?.len();
                    if valid_len < disk_len {
                        // Truncate the torn/corrupt tail *before* opening
                        // in append mode: appending after a torn partial
                        // line would concatenate the next record onto it,
                        // corrupting both. Dropped cells simply re-run.
                        let file = std::fs::OpenOptions::new().write(true).open(path)?;
                        file.set_len(valid_len)?;
                        file.sync_all()?;
                        rt_obs::console!(
                            "[runner] truncated journal {} from {disk_len} to {valid_len} bytes \
                             (dropped torn tail)",
                            path.display()
                        );
                    }
                    if !completed.is_empty() {
                        rt_obs::console!(
                            "[runner] resuming: {} completed cell(s) loaded from {}",
                            completed.len(),
                            path.display()
                        );
                    }
                }
                let file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .truncate(false)
                    .open(path)?;
                if !cfg.resume {
                    // Fresh run: drop any stale journal content.
                    file.set_len(0)?;
                }
                Some(file)
            }
        };
        Ok(Runner {
            cfg,
            completed,
            journal,
            next_ordinal: 0,
            started: Stopwatch::start(),
            summary_written: false,
            stats: RunnerStats::default(),
        })
    }

    /// A journal-less runner (isolation + retries only).
    pub fn ephemeral() -> Self {
        Self::new(RunnerConfig::default()).expect("journal-less runner construction is infallible")
    }

    /// Number of completed cells currently known (journal + this run).
    pub fn completed_cells(&self) -> usize {
        self.completed.len()
    }

    /// Executes one sweep cell.
    ///
    /// If the journal already holds `key`, the recorded value is replayed
    /// without executing `f` at all. Otherwise `f` runs under
    /// `catch_unwind`; on panic it is retried (with a bumped
    /// [`CellCtx::seed_bump`]) up to `max_retries` times, and the final
    /// value is appended to the journal before being returned.
    ///
    /// # Errors
    ///
    /// [`RunnerError::CellFailed`] when every attempt panicked,
    /// [`RunnerError::Codec`] when the value cannot round-trip through
    /// JSON, [`RunnerError::Journal`] on append failure.
    pub fn run_cell<T, F>(&mut self, key: &str, mut f: F) -> Result<T, RunnerError>
    where
        T: Serialize + DeserializeOwned,
        F: FnMut(CellCtx) -> T,
    {
        let ordinal = self.next_ordinal;
        self.next_ordinal += 1;

        if let Some(value) = self.completed.get(key) {
            self.stats.skipped += 1;
            // The structured record of *why* this cell did not execute:
            // its value was replayed from the resume journal.
            rt_obs::counter("runner.cells_replayed").inc();
            rt_obs::event(
                "runner.cell",
                &[
                    ("key", key.into()),
                    ("ordinal", ordinal.into()),
                    ("outcome", "replayed".into()),
                ],
            );
            return serde_json::from_value(value.clone()).map_err(|e| RunnerError::Codec {
                key: key.to_string(),
                detail: format!("journal replay failed: {e}"),
            });
        }

        let cell_span = rt_obs::span!("runner.cell", "key" => key, "ordinal" => ordinal);
        let cell_t0 = Stopwatch::start();
        // Cost-registry watermarks: the per-cell delta of the model-wide
        // FLOP/byte counters becomes span attrs, so a trace shows what
        // each sweep cell actually computed. Both reads are no-ops (0)
        // below level `all`.
        let track_cost = rt_obs::metrics_enabled();
        let (flops_before, bytes_before) = if track_cost {
            (
                rt_obs::counter("model.flops").get(),
                rt_obs::counter("model.bytes").get(),
            )
        } else {
            (0, 0)
        };
        let mut attempt = 0usize;
        loop {
            let ctx = CellCtx {
                attempt,
                seed_bump: (attempt as u64).wrapping_mul(self.cfg.seed_bump),
                ordinal,
            };
            // Each attempt runs under a fresh supervision scope: the
            // scope's token is the thread's ambient (so `ExecCtx`,
            // `rt-par` batches, and the hang fault all inherit it) and
            // the watchdog trips it once the deadline passes.
            let scope = rt_par::CancelScope::new();
            let attempt_t0 = Stopwatch::start();
            let outcome = {
                let _ambient = rt_par::with_cancel(scope.token());
                let _deadline = self
                    .cfg
                    .deadline
                    .map(|d| rt_par::watchdog::arm(scope.token(), d));
                catch_unwind(AssertUnwindSafe(|| {
                    // Fault-injection hook: armed cell faults (delay,
                    // hang, panic) fire inside the isolation boundary,
                    // like any real stall or crash.
                    crate::fault::fire_cell_faults(ordinal, key);
                    f(ctx)
                }))
                // Watchdog disarmed and ambient restored here; a value
                // that raced the deadline and still completed is kept.
            };
            match outcome {
                Ok(value) => {
                    self.record(key, attempt + 1, &value)?;
                    self.stats.executed += 1;
                    self.stats.executed_ms += cell_t0.elapsed_ms();
                    cell_span.attr("attempts", attempt + 1);
                    if track_cost {
                        let df = rt_obs::counter("model.flops").get() - flops_before;
                        let db = rt_obs::counter("model.bytes").get() - bytes_before;
                        if df > 0 || db > 0 {
                            cell_span.attr("model.flops", df);
                            cell_span.attr("model.bytes", db);
                        }
                    }
                    rt_obs::counter("runner.cells_executed").inc();
                    rt_obs::event(
                        "runner.cell",
                        &[
                            ("key", key.into()),
                            ("ordinal", ordinal.into()),
                            ("outcome", "executed".into()),
                            ("attempts", (attempt + 1).into()),
                        ],
                    );
                    return Ok(value);
                }
                Err(payload) => {
                    // Classify by the scope, not the payload: any unwind
                    // after the watchdog tripped — the `Cancelled`
                    // payload from a chunk boundary, or a panic racing
                    // the cancellation — counts as a deadline trip.
                    let deadline_hit = scope.tripped();
                    let attempt_ms = attempt_t0.elapsed_ms();
                    let detail = if deadline_hit {
                        let budget_ms = self.cfg.deadline.map(|d| d.as_millis()).unwrap_or(0);
                        format!(
                            "deadline of {budget_ms} ms exceeded \
                             (attempt cancelled after {attempt_ms:.0} ms)"
                        )
                    } else {
                        panic_message(payload.as_ref())
                    };
                    if deadline_hit {
                        self.stats.deadline_trips += 1;
                        rt_obs::counter("runner.deadline_trips").inc();
                        rt_obs::histogram("cell.deadline_ms").observe(attempt_ms);
                        // The structured journal record of the trip.
                        rt_obs::event(
                            "runner.cell",
                            &[
                                ("key", key.into()),
                                ("ordinal", ordinal.into()),
                                ("outcome", "deadline".into()),
                                ("attempt", (attempt + 1).into()),
                            ],
                        );
                    }
                    rt_obs::console!(
                        "[runner] cell `{key}` (#{ordinal}) attempt {} {}: {detail}",
                        attempt + 1,
                        if deadline_hit { "cancelled" } else { "panicked" }
                    );
                    if attempt >= self.cfg.max_retries {
                        self.stats.failed += 1;
                        self.stats.executed_ms += cell_t0.elapsed_ms();
                        cell_span.attr("failed", true);
                        cell_span.attr("attempts", attempt + 1);
                        rt_obs::counter("runner.cells_failed").inc();
                        rt_obs::event(
                            "runner.cell",
                            &[
                                ("key", key.into()),
                                ("ordinal", ordinal.into()),
                                ("outcome", "failed".into()),
                                ("attempts", (attempt + 1).into()),
                            ],
                        );
                        return Err(if deadline_hit {
                            RunnerError::DeadlineExceeded {
                                key: key.to_string(),
                                attempts: attempt + 1,
                                deadline_ms: self
                                    .cfg
                                    .deadline
                                    .map(|d| d.as_millis() as u64)
                                    .unwrap_or(0),
                            }
                        } else {
                            RunnerError::CellFailed {
                                key: key.to_string(),
                                attempts: attempt + 1,
                                detail,
                            }
                        });
                    }
                    attempt += 1;
                    self.stats.retries += 1;
                    rt_obs::counter("runner.retries").inc();
                    let backoff = backoff_delay(self.cfg.retry_backoff_ms, attempt);
                    rt_obs::console!(
                        "[runner] retrying cell `{key}` with seed bump {} after {} ms backoff",
                        (attempt as u64).wrapping_mul(self.cfg.seed_bump),
                        backoff.as_millis()
                    );
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
            }
        }
    }

    /// Executes a batch of *independent* sweep cells, optionally in
    /// parallel.
    ///
    /// `f(i, ctx)` computes the value of cell `keys[i]`; cells in a batch
    /// must not depend on each other's results. With
    /// [`RunnerConfig::parallel`] unset (the default) this is exactly a
    /// loop of [`Runner::run_cell`] calls. With it set, pending cells are
    /// fanned out across the [`rt_par`] worker pool, and once every cell
    /// in the batch has settled, journal appends, stats updates, and
    /// telemetry are replayed **in cell-index order** — so the journal
    /// bytes are identical to a serial run and a resumed sweep cannot
    /// observe the scheduling.
    ///
    /// Fault semantics match the serial path: cell-scoped faults (panics,
    /// hangs, delays) armed on the calling thread fire inside the
    /// worker's isolation boundary (via
    /// [`crate::fault::SharedCellFaults`]), and consumed budgets are
    /// restored to the calling thread's plan afterwards. Deadlines are
    /// likewise enforced per attempt inside each worker, and deadline
    /// telemetry is replayed in cell-index order during the fold.
    ///
    /// If some cells fail after every retry, the successful cells of the
    /// batch are still journaled (in index order) before the error for
    /// the *lowest-index* failed cell is returned — exactly the state an
    /// interrupted serial sweep leaves behind, so `--resume` picks up
    /// only the genuinely missing work.
    ///
    /// # Errors
    ///
    /// As [`Runner::run_cell`].
    pub fn run_cells<T, F>(&mut self, keys: &[String], f: F) -> Result<Vec<T>, RunnerError>
    where
        T: Serialize + DeserializeOwned + Send,
        F: Fn(usize, CellCtx) -> T + Sync,
    {
        if !self.cfg.parallel || rt_par::threads() <= 1 || keys.len() <= 1 {
            return keys
                .iter()
                .enumerate()
                .map(|(i, key)| self.run_cell(key, |ctx| f(i, ctx)))
                .collect();
        }

        let base = self.next_ordinal;
        self.next_ordinal += keys.len();
        let batch_span = rt_obs::span!("runner.batch", "cells" => keys.len());

        // Per-cell outcome of one parallel attempt loop. `trips` records
        // each deadline-cancelled attempt as (1-based attempt, attempt
        // wall ms) so the fold can replay telemetry in cell-index order.
        enum Outcome<T> {
            Done {
                value: T,
                attempts: usize,
                elapsed_ms: f64,
                trips: Vec<(usize, f64)>,
            },
            Failed {
                attempts: usize,
                detail: String,
                elapsed_ms: f64,
                trips: Vec<(usize, f64)>,
                deadline: bool,
            },
        }

        // Partition into replays (resolved serially below, in order) and
        // pending work. Slot i holds the outcome of pending cell i.
        let pending: Vec<usize> = (0..keys.len())
            .filter(|&i| !self.completed.contains_key(&keys[i]))
            .collect();
        let slots: Vec<std::sync::Mutex<Option<Outcome<T>>>> =
            pending.iter().map(|_| std::sync::Mutex::new(None)).collect();

        let faults = crate::fault::SharedCellFaults::snapshot();
        let max_retries = self.cfg.max_retries;
        let seed_bump = self.cfg.seed_bump;
        let deadline = self.cfg.deadline;
        let retry_backoff_ms = self.cfg.retry_backoff_ms;
        {
            let faults = &faults;
            let pending = &pending;
            let slots = &slots;
            let f = &f;
            rt_par::run_tasks(pending.len(), &move |t: usize| {
                let i = pending[t];
                let key = &keys[i];
                let ordinal = base + i;
                let t0 = Stopwatch::start();
                let mut attempt = 0usize;
                let mut trips: Vec<(usize, f64)> = Vec::new();
                let outcome = loop {
                    let ctx = CellCtx {
                        attempt,
                        seed_bump: (attempt as u64).wrapping_mul(seed_bump),
                        ordinal,
                    };
                    // Fresh scope per attempt: the cell's work sees this
                    // token as ambient (not the batch-wide token the
                    // worker itself runs under), so a watchdog trip
                    // cancels only this attempt.
                    let scope = rt_par::CancelScope::new();
                    let attempt_t0 = Stopwatch::start();
                    let attempt_outcome = {
                        let _ambient = rt_par::with_cancel(scope.token());
                        let _deadline = deadline.map(|d| rt_par::watchdog::arm(scope.token(), d));
                        catch_unwind(AssertUnwindSafe(|| {
                            faults.fire(ordinal, key);
                            f(i, ctx)
                        }))
                    };
                    match attempt_outcome {
                        Ok(value) => {
                            break Outcome::Done {
                                value,
                                attempts: attempt + 1,
                                elapsed_ms: t0.elapsed_ms(),
                                trips,
                            }
                        }
                        Err(payload) => {
                            let deadline_hit = scope.tripped();
                            let attempt_ms = attempt_t0.elapsed_ms();
                            if deadline_hit {
                                trips.push((attempt + 1, attempt_ms));
                            }
                            if attempt >= max_retries {
                                let detail = if deadline_hit {
                                    let budget_ms =
                                        deadline.map(|d| d.as_millis()).unwrap_or(0);
                                    format!(
                                        "deadline of {budget_ms} ms exceeded \
                                         (attempt cancelled after {attempt_ms:.0} ms)"
                                    )
                                } else {
                                    panic_message(payload.as_ref())
                                };
                                break Outcome::Failed {
                                    attempts: attempt + 1,
                                    detail,
                                    elapsed_ms: t0.elapsed_ms(),
                                    trips,
                                    deadline: deadline_hit,
                                };
                            }
                            attempt += 1;
                            let backoff = backoff_delay(retry_backoff_ms, attempt);
                            if !backoff.is_zero() {
                                std::thread::sleep(backoff);
                            }
                        }
                    }
                };
                *slots[t].lock().expect("cell slot lock poisoned") = Some(outcome);
            });
        }
        faults.restore();

        // Barrier passed: fold outcomes back in strict cell-index order so
        // journal bytes, stats, and events match the serial executor.
        let mut results: Vec<Option<T>> = (0..keys.len()).map(|_| None).collect();
        let mut first_error: Option<RunnerError> = None;
        let mut slot_iter = slots.into_iter();
        for i in 0..keys.len() {
            let key = &keys[i];
            let ordinal = base + i;
            if !pending.contains(&i) {
                // Replayed from the journal — same bookkeeping as run_cell.
                self.stats.skipped += 1;
                rt_obs::counter("runner.cells_replayed").inc();
                rt_obs::event(
                    "runner.cell",
                    &[
                        ("key", key.as_str().into()),
                        ("ordinal", ordinal.into()),
                        ("outcome", "replayed".into()),
                    ],
                );
                let value = self.completed.get(key).expect("partitioned as replay");
                match serde_json::from_value(value.clone()) {
                    Ok(v) => results[i] = Some(v),
                    Err(e) => {
                        first_error.get_or_insert(RunnerError::Codec {
                            key: key.to_string(),
                            detail: format!("journal replay failed: {e}"),
                        });
                    }
                }
                continue;
            }
            let outcome = slot_iter
                .next()
                .expect("one slot per pending cell")
                .into_inner()
                .expect("cell slot lock poisoned")
                .expect("barrier guarantees a settled outcome");
            let replay_trips = |stats: &mut RunnerStats, trips: &[(usize, f64)]| {
                for &(trip_attempt, attempt_ms) in trips {
                    stats.deadline_trips += 1;
                    rt_obs::counter("runner.deadline_trips").inc();
                    rt_obs::histogram("cell.deadline_ms").observe(attempt_ms);
                    rt_obs::event(
                        "runner.cell",
                        &[
                            ("key", key.as_str().into()),
                            ("ordinal", ordinal.into()),
                            ("outcome", "deadline".into()),
                            ("attempt", trip_attempt.into()),
                        ],
                    );
                }
            };
            match outcome {
                Outcome::Done {
                    value,
                    attempts,
                    elapsed_ms,
                    trips,
                } => {
                    replay_trips(&mut self.stats, &trips);
                    self.record(key, attempts, &value)?;
                    self.stats.executed += 1;
                    self.stats.retries += attempts - 1;
                    self.stats.executed_ms += elapsed_ms;
                    rt_obs::counter("runner.cells_executed").inc();
                    if attempts > 1 {
                        rt_obs::counter("runner.retries").add((attempts - 1) as u64);
                    }
                    rt_obs::event(
                        "runner.cell",
                        &[
                            ("key", key.as_str().into()),
                            ("ordinal", ordinal.into()),
                            ("outcome", "executed".into()),
                            ("attempts", attempts.into()),
                        ],
                    );
                    results[i] = Some(value);
                }
                Outcome::Failed {
                    attempts,
                    detail,
                    elapsed_ms,
                    trips,
                    deadline,
                } => {
                    replay_trips(&mut self.stats, &trips);
                    self.stats.failed += 1;
                    self.stats.retries += attempts - 1;
                    self.stats.executed_ms += elapsed_ms;
                    rt_obs::counter("runner.cells_failed").inc();
                    rt_obs::console!(
                        "[runner] cell `{key}` (#{ordinal}) failed after {attempts} attempt(s): {detail}"
                    );
                    rt_obs::event(
                        "runner.cell",
                        &[
                            ("key", key.as_str().into()),
                            ("ordinal", ordinal.into()),
                            ("outcome", "failed".into()),
                            ("attempts", attempts.into()),
                        ],
                    );
                    first_error.get_or_insert(if deadline {
                        RunnerError::DeadlineExceeded {
                            key: key.to_string(),
                            attempts,
                            deadline_ms: self
                                .cfg
                                .deadline
                                .map(|d| d.as_millis() as u64)
                                .unwrap_or(0),
                        }
                    } else {
                        RunnerError::CellFailed {
                            key: key.to_string(),
                            attempts,
                            detail,
                        }
                    });
                }
            }
        }
        batch_span.attr("executed", pending.len());
        if let Some(err) = first_error {
            return Err(err);
        }
        Ok(results
            .into_iter()
            .map(|v| v.expect("no error implies every cell settled"))
            .collect())
    }

    /// Writes the [`RunnerSummary`] JSON next to the journal
    /// (`<id>-<scale>.stats.json`), atomically. Returns the path written,
    /// or `None` for a journal-less runner. Called automatically on drop
    /// if not invoked explicitly.
    ///
    /// # Errors
    ///
    /// Propagates file I/O errors from the atomic write.
    pub fn write_summary(&mut self) -> Result<Option<PathBuf>, RunnerError> {
        let Some(journal_path) = self.cfg.journal_path.clone() else {
            return Ok(None);
        };
        let path = summary_path(&journal_path);
        let summary = RunnerSummary {
            v: SUMMARY_VERSION,
            journal: journal_path.display().to_string(),
            wall_ms: self.started.elapsed_ms(),
            stats: self.stats,
        };
        let bytes = serde_json::to_vec_pretty(&summary).map_err(|e| RunnerError::Codec {
            key: "<summary>".to_string(),
            detail: format!("summary encode failed: {e}"),
        })?;
        rt_nn::checkpoint::atomic_write(&path, &bytes)?;
        self.summary_written = true;
        Ok(Some(path))
    }

    fn record<T: Serialize>(
        &mut self,
        key: &str,
        attempt: usize,
        value: &T,
    ) -> Result<(), RunnerError> {
        let json_value = serde_json::to_value(value).map_err(|e| RunnerError::Codec {
            key: key.to_string(),
            detail: format!("encode failed: {e}"),
        })?;
        if let Some(file) = self.journal.as_mut() {
            let entry = JournalEntry {
                v: JOURNAL_VERSION,
                key: key.to_string(),
                attempt,
                value: json_value.clone(),
            };
            let line = serde_json::to_string(&entry).map_err(|e| RunnerError::Codec {
                key: key.to_string(),
                detail: format!("journal encode failed: {e}"),
            })?;
            writeln!(file, "{line}")?;
            file.flush()?;
        }
        self.completed.insert(key.to_string(), json_value);
        Ok(())
    }
}

impl Drop for Runner {
    fn drop(&mut self) {
        // Best-effort: a sweep that forgot (or failed before being able)
        // to call `write_summary` still leaves its stats on disk. Errors
        // are swallowed — summaries must never panic a teardown path.
        if !self.summary_written {
            let _ = self.write_summary();
        }
    }
}

/// Derives the stats-summary path from the journal path:
/// `x.journal.jsonl` → `x.stats.json` (falling back to appending
/// `.stats.json` for unconventional journal names).
fn summary_path(journal: &std::path::Path) -> PathBuf {
    let s = journal.display().to_string();
    match s.strip_suffix(".journal.jsonl") {
        Some(stem) => PathBuf::from(format!("{stem}.stats.json")),
        None => PathBuf::from(format!("{s}.stats.json")),
    }
}

/// Loads a journal, returning the completed-cell map and the byte length
/// of the **valid prefix**: consecutive well-formed, newline-terminated
/// lines from the start of the file. Everything past the prefix — a torn
/// final line from an interrupted append, a line missing its newline, or
/// mid-file corruption — is reported and excluded from the map, and the
/// caller truncates the file to the prefix so new appends cannot
/// concatenate onto damaged bytes. Within the prefix, later entries for
/// the same key win.
fn load_journal(
    path: &std::path::Path,
) -> Result<(HashMap<String, serde_json::Value>, u64), RunnerError> {
    let bytes = std::fs::read(path)?;
    let mut completed = HashMap::new();
    let mut offset = 0usize;
    let mut lineno = 0usize;
    while offset < bytes.len() {
        let Some(rel) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            // Final line never got its newline: torn mid-append.
            rt_obs::console!(
                "[runner] dropping torn final journal line of {} ({} trailing byte(s))",
                path.display(),
                bytes.len() - offset
            );
            break;
        };
        let line_end = offset + rel;
        lineno += 1;
        let text = String::from_utf8_lossy(&bytes[offset..line_end]);
        if !text.trim().is_empty() {
            match serde_json::from_str::<JournalEntry>(&text) {
                Ok(entry) => {
                    completed.insert(entry.key, entry.value);
                }
                Err(e) => {
                    rt_obs::console!(
                        "[runner] dropping malformed journal line {lineno} of {} \
                         and everything after it ({e})",
                        path.display()
                    );
                    break;
                }
            }
        }
        offset = line_end + 1;
    }
    Ok((completed, offset as u64))
}

/// Renders a `catch_unwind` payload as text (panic messages are almost
/// always `&str` or `String`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(c) = payload.downcast_ref::<rt_par::Cancelled>() {
        c.to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// True when `--resume` appears in the process arguments. Drivers pass
/// this into [`RunnerConfig::for_experiment`].
pub fn resume_from_args() -> bool {
    std::env::args().any(|a| a == "--resume")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{self, FaultPlan};

    fn temp_journal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("rt-runner-tests");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(format!("{name}.journal.jsonl"));
        let _ = std::fs::remove_file(&path);
        path
    }

    /// A deterministic toy sweep: cell i computes a seeded value.
    fn sweep(runner: &mut Runner, n: usize) -> Result<Vec<f64>, RunnerError> {
        (0..n)
            .map(|i| {
                runner.run_cell(&format!("cell-{i}"), |ctx| {
                    (i as f64 + 1.0) * 0.5 + ctx.seed_bump as f64 * 0.0
                })
            })
            .collect()
    }

    #[test]
    fn journal_less_runner_executes_cells() {
        let mut r = Runner::ephemeral();
        let out = sweep(&mut r, 4).unwrap();
        assert_eq!(out, vec![0.5, 1.0, 1.5, 2.0]);
        assert_eq!(r.stats.executed, 4);
        assert_eq!(r.stats.skipped, 0);
    }

    #[test]
    fn panicking_cell_is_retried_with_seed_bump() {
        let mut r = Runner::ephemeral();
        let mut bumps = Vec::new();
        let value = r
            .run_cell("flaky", |ctx| {
                bumps.push(ctx.seed_bump);
                if ctx.attempt == 0 {
                    panic!("simulated crash");
                }
                42u64
            })
            .unwrap();
        assert_eq!(value, 42);
        assert_eq!(bumps.len(), 2);
        assert_eq!(bumps[0], 0, "first attempt unbumped");
        assert!(bumps[1] > 0, "retry gets a nonzero seed bump");
        assert_eq!(r.stats.retries, 1);
    }

    #[test]
    fn persistent_panic_exhausts_retries() {
        let mut r = Runner::ephemeral();
        let result: Result<u32, _> = r.run_cell("doomed", |_| panic!("always"));
        match result {
            Err(RunnerError::CellFailed { attempts, detail, .. }) => {
                assert_eq!(attempts, 2, "1 try + 1 retry (default max_retries=1)");
                assert!(detail.contains("always"));
            }
            other => panic!("expected CellFailed, got {other:?}"),
        }
    }

    #[test]
    fn journal_resume_skips_completed_cells() {
        let path = temp_journal("resume-skip");
        let cfg = RunnerConfig {
            journal_path: Some(path.clone()),
            resume: false,
            ..RunnerConfig::default()
        };
        let mut first = Runner::new(cfg.clone()).unwrap();
        let a = sweep(&mut first, 5).unwrap();
        drop(first);

        let mut resumed = Runner::new(RunnerConfig {
            resume: true,
            ..cfg
        })
        .unwrap();
        let b = sweep(&mut resumed, 5).unwrap();
        assert_eq!(a, b);
        assert_eq!(resumed.stats.skipped, 5);
        assert_eq!(resumed.stats.executed, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fresh_run_truncates_stale_journal() {
        let path = temp_journal("truncate-stale");
        let cfg = RunnerConfig {
            journal_path: Some(path.clone()),
            resume: false,
            ..RunnerConfig::default()
        };
        let mut first = Runner::new(cfg.clone()).unwrap();
        sweep(&mut first, 3).unwrap();
        drop(first);
        // Without --resume the journal restarts from zero.
        let mut second = Runner::new(cfg).unwrap();
        assert_eq!(second.completed_cells(), 0);
        sweep(&mut second, 3).unwrap();
        assert_eq!(second.stats.executed, 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_panic_interrupt_then_resume_matches_uninterrupted() {
        // The canonical kill-and-resume flow on the toy sweep.
        let n = 8;
        let path_a = temp_journal("uninterrupted");
        let mut clean = Runner::new(RunnerConfig {
            journal_path: Some(path_a.clone()),
            resume: false,
            ..RunnerConfig::default()
        })
        .unwrap();
        let expected = sweep(&mut clean, n).unwrap();

        let path_b = temp_journal("interrupted");
        let cfg_b = RunnerConfig {
            journal_path: Some(path_b.clone()),
            resume: false,
            max_retries: 0, // a persistent fault kills the run outright
            ..RunnerConfig::default()
        };
        {
            let _g = fault::scoped(FaultPlan::default().with_panic_cell(4, usize::MAX));
            let mut doomed = Runner::new(cfg_b.clone()).unwrap();
            let aborted = sweep(&mut doomed, n);
            assert!(matches!(aborted, Err(RunnerError::CellFailed { .. })));
            assert_eq!(doomed.stats.executed, 4, "cells before the kill persisted");
        }
        let mut resumed = Runner::new(RunnerConfig {
            resume: true,
            ..cfg_b
        })
        .unwrap();
        let actual = sweep(&mut resumed, n).unwrap();
        assert_eq!(actual, expected);
        assert_eq!(resumed.stats.skipped, 4);
        assert_eq!(resumed.stats.executed, n - 4);
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
    }

    #[test]
    fn torn_final_journal_line_is_tolerated() {
        let path = temp_journal("torn-line");
        let cfg = RunnerConfig {
            journal_path: Some(path.clone()),
            resume: false,
            ..RunnerConfig::default()
        };
        let mut r = Runner::new(cfg.clone()).unwrap();
        sweep(&mut r, 3).unwrap();
        drop(r);
        // Simulate a crash mid-append: chop the file inside the last line.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let resumed = Runner::new(RunnerConfig {
            resume: true,
            ..cfg
        })
        .unwrap();
        assert_eq!(resumed.completed_cells(), 2, "torn cell re-runs, rest kept");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn structured_values_round_trip_through_the_journal() {
        use crate::experiment::Series;
        let path = temp_journal("series-roundtrip");
        let cfg = RunnerConfig {
            journal_path: Some(path.clone()),
            resume: false,
            ..RunnerConfig::default()
        };
        let mut r = Runner::new(cfg.clone()).unwrap();
        let mut s = Series::new("demo");
        s.push(0.5, 0.912345678901234);
        s.push(0.9, 0.312);
        let stored: Series = r.run_cell("series", |_| s.clone()).unwrap();
        assert_eq!(stored, s);
        drop(r);
        let mut resumed = Runner::new(RunnerConfig {
            resume: true,
            ..cfg
        })
        .unwrap();
        let replayed: Series = resumed
            .run_cell("series", |_| panic!("must not re-execute"))
            .unwrap();
        assert_eq!(replayed, s, "f64 payloads replay bit-exactly");
        let _ = std::fs::remove_file(&path);
    }

    /// Batch variant of [`sweep`]: same keys and values via `run_cells`.
    fn batch_sweep(runner: &mut Runner, n: usize) -> Result<Vec<f64>, RunnerError> {
        let keys: Vec<String> = (0..n).map(|i| format!("cell-{i}")).collect();
        runner.run_cells(&keys, |i, ctx| {
            (i as f64 + 1.0) * 0.5 + ctx.seed_bump as f64 * 0.0
        })
    }

    #[test]
    fn parallel_batch_matches_serial_journal_bytes() {
        let n = 6;
        let serial_path = temp_journal("batch-serial");
        let mut serial = Runner::new(RunnerConfig {
            journal_path: Some(serial_path.clone()),
            resume: false,
            parallel: false,
            ..RunnerConfig::default()
        })
        .unwrap();
        let a = batch_sweep(&mut serial, n).unwrap();
        drop(serial);

        rt_par::set_threads(4);
        let par_path = temp_journal("batch-parallel");
        let mut par = Runner::new(RunnerConfig {
            journal_path: Some(par_path.clone()),
            resume: false,
            parallel: true,
            ..RunnerConfig::default()
        })
        .unwrap();
        let b = batch_sweep(&mut par, n).unwrap();
        assert_eq!(par.stats.executed, n);
        drop(par);

        assert_eq!(a, b, "values agree across executors");
        let serial_bytes = std::fs::read(&serial_path).unwrap();
        let par_bytes = std::fs::read(&par_path).unwrap();
        assert_eq!(
            serial_bytes, par_bytes,
            "journal bytes are identical: appends are ordered by cell index"
        );
        let _ = std::fs::remove_file(&serial_path);
        let _ = std::fs::remove_file(&par_path);
    }

    #[test]
    fn parallel_batch_replays_completed_cells() {
        rt_par::set_threads(4);
        let path = temp_journal("batch-replay");
        let cfg = RunnerConfig {
            journal_path: Some(path.clone()),
            resume: false,
            parallel: true,
            ..RunnerConfig::default()
        };
        let mut first = Runner::new(cfg.clone()).unwrap();
        let a = batch_sweep(&mut first, 5).unwrap();
        drop(first);
        let mut resumed = Runner::new(RunnerConfig {
            resume: true,
            ..cfg
        })
        .unwrap();
        let b = batch_sweep(&mut resumed, 5).unwrap();
        assert_eq!(a, b);
        assert_eq!(resumed.stats.skipped, 5);
        assert_eq!(resumed.stats.executed, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parallel_kill_and_resume_matches_uninterrupted() {
        // The kill-and-resume flow with the parallel batch executor: a
        // persistent injected panic fails one cell; its batch-mates still
        // journal, and a resumed run re-executes only the missing cell.
        rt_par::set_threads(4);
        let n = 8;
        let clean_path = temp_journal("batch-clean");
        let mut clean = Runner::new(RunnerConfig {
            journal_path: Some(clean_path.clone()),
            resume: false,
            parallel: true,
            ..RunnerConfig::default()
        })
        .unwrap();
        let expected = batch_sweep(&mut clean, n).unwrap();

        let path = temp_journal("batch-interrupted");
        let cfg = RunnerConfig {
            journal_path: Some(path.clone()),
            resume: false,
            max_retries: 0,
            parallel: true,
            ..RunnerConfig::default()
        };
        {
            let _g = fault::scoped(FaultPlan::default().with_panic_cell(3, usize::MAX));
            let mut doomed = Runner::new(cfg.clone()).unwrap();
            let aborted = batch_sweep(&mut doomed, n);
            match aborted {
                Err(RunnerError::CellFailed { key, .. }) => assert_eq!(key, "cell-3"),
                other => panic!("expected CellFailed, got {other:?}"),
            }
            assert_eq!(doomed.stats.failed, 1);
            assert_eq!(doomed.stats.executed, n - 1, "batch-mates persisted");
        }
        let mut resumed = Runner::new(RunnerConfig {
            resume: true,
            ..cfg
        })
        .unwrap();
        let actual = batch_sweep(&mut resumed, n).unwrap();
        assert_eq!(actual, expected);
        assert_eq!(resumed.stats.skipped, n - 1);
        assert_eq!(resumed.stats.executed, 1, "only the killed cell re-runs");
        let _ = std::fs::remove_file(&clean_path);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parallel_fault_budget_survives_the_batch() {
        // A `times = 1` fault fired inside a parallel batch must stay
        // spent for subsequent cells on the installing thread.
        rt_par::set_threads(2);
        let _g = fault::scoped(FaultPlan::default().with_panic_cell(1, 1));
        let mut r = Runner::new(RunnerConfig {
            parallel: true,
            ..RunnerConfig::default()
        })
        .unwrap();
        // max_retries = 1 (default): the injected panic consumes the
        // budget on attempt 0 and the retry succeeds.
        let out = batch_sweep(&mut r, 3).unwrap();
        assert_eq!(out, vec![0.5, 1.0, 1.5]);
        assert_eq!(r.stats.retries, 1);
        // Budget restored as spent: the same ordinal no longer fires.
        assert!(std::panic::catch_unwind(|| fault::fire_panic_cell(1, "again")).is_ok());
    }

    #[test]
    fn resume_flag_detection() {
        // Process args in the test harness never include --resume.
        assert!(!resume_from_args());
    }

    #[test]
    fn summary_is_written_next_to_the_journal() {
        let path = temp_journal("summary-explicit");
        let stats_path = super::summary_path(&path);
        let _ = std::fs::remove_file(&stats_path);
        let mut r = Runner::new(RunnerConfig {
            journal_path: Some(path.clone()),
            resume: false,
            ..RunnerConfig::default()
        })
        .unwrap();
        sweep(&mut r, 3).unwrap();
        let _ = r
            .run_cell("flaky", |ctx| {
                if ctx.attempt == 0 {
                    panic!("one crash");
                }
                1.0f64
            })
            .unwrap();
        let written = r.write_summary().unwrap().expect("journaled runner");
        assert_eq!(written, stats_path);
        let text = std::fs::read_to_string(&stats_path).unwrap();
        let summary: RunnerSummary = serde_json::from_str(&text).unwrap();
        assert_eq!(summary.v, 1);
        assert_eq!(summary.stats.executed, 4);
        assert_eq!(summary.stats.retries, 1);
        assert_eq!(summary.stats.failed, 0);
        assert!(summary.wall_ms >= 0.0);
        assert!(summary.stats.executed_ms <= summary.wall_ms + 1.0);
        // The JSON uses the summary vocabulary, not the field names.
        assert!(text.contains("\"completed\""), "{text}");
        assert!(text.contains("\"resumed\""), "{text}");
        assert!(text.contains("\"retried\""), "{text}");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&stats_path);
    }

    #[test]
    fn drop_writes_the_summary_best_effort() {
        let path = temp_journal("summary-drop");
        let stats_path = super::summary_path(&path);
        let _ = std::fs::remove_file(&stats_path);
        {
            let mut r = Runner::new(RunnerConfig {
                journal_path: Some(path.clone()),
                resume: false,
                ..RunnerConfig::default()
            })
            .unwrap();
            sweep(&mut r, 2).unwrap();
            // No explicit write_summary: drop must cover it.
        }
        let summary: RunnerSummary =
            serde_json::from_str(&std::fs::read_to_string(&stats_path).unwrap()).unwrap();
        assert_eq!(summary.stats.executed, 2);
        assert_eq!(summary.stats.skipped, 0);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&stats_path);
    }

    #[test]
    fn replayed_and_executed_cells_emit_distinct_events() {
        let _t = rt_obs::testing::lock();
        let path = temp_journal("skip-events");
        let cfg = RunnerConfig {
            journal_path: Some(path.clone()),
            resume: false,
            ..RunnerConfig::default()
        };
        let mut first = Runner::new(cfg.clone()).unwrap();
        sweep(&mut first, 2).unwrap();
        drop(first);

        let handle = rt_obs::init_memory(rt_obs::Level::All);
        let mut resumed = Runner::new(RunnerConfig {
            resume: true,
            ..cfg
        })
        .unwrap();
        sweep(&mut resumed, 3).unwrap(); // 2 replayed + 1 executed
        let lines = handle.lines();
        let replayed: Vec<&String> = lines
            .iter()
            .filter(|l| l.contains("\"outcome\":\"replayed\""))
            .collect();
        let executed: Vec<&String> = lines
            .iter()
            .filter(|l| l.contains("\"outcome\":\"executed\""))
            .collect();
        assert_eq!(replayed.len(), 2, "{lines:?}");
        assert_eq!(executed.len(), 1, "{lines:?}");
        assert!(executed[0].contains("\"attempts\":1"), "{lines:?}");
        assert_eq!(rt_obs::counter("runner.cells_replayed").get(), 2);
        assert_eq!(rt_obs::counter("runner.cells_executed").get(), 1);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&super::summary_path(&path));
    }

    #[test]
    fn backoff_delay_is_exponential_and_capped() {
        use std::time::Duration;
        assert_eq!(backoff_delay(0, 1), Duration::ZERO, "base 0 disables backoff");
        assert_eq!(backoff_delay(250, 1), Duration::from_millis(250));
        assert_eq!(backoff_delay(250, 2), Duration::from_millis(500));
        assert_eq!(backoff_delay(250, 3), Duration::from_millis(1000));
        assert_eq!(backoff_delay(250, 20), Duration::from_millis(5000), "capped");
        assert_eq!(backoff_delay(250, 1000), Duration::from_millis(5000), "shift clamped");
    }

    #[test]
    fn exit_codes_follow_the_convention() {
        assert_eq!(ExitCode::PersistentFailure.code(), 1);
        assert_eq!(ExitCode::Usage.code(), 2);
        assert_eq!(ExitCode::DeadlineBudgetExhausted.code(), 3);
        let deadline = RunnerError::DeadlineExceeded {
            key: "cell-0".into(),
            attempts: 2,
            deadline_ms: 100,
        };
        assert_eq!(ExitCode::for_error(&deadline), ExitCode::DeadlineBudgetExhausted);
        let failed = RunnerError::CellFailed {
            key: "cell-0".into(),
            attempts: 2,
            detail: "boom".into(),
        };
        assert_eq!(ExitCode::for_error(&failed), ExitCode::PersistentFailure);
    }

    #[test]
    fn deadline_cancels_transient_hang_and_retry_succeeds() {
        // A hang with a budget of 1 stalls attempt 0; the watchdog trips
        // the cell's token, the attempt unwinds at the next cancellation
        // check, and the retry (budget spent) completes normally.
        let _g = fault::scoped(FaultPlan::default().with_hang(0, 1));
        let mut r = Runner::new(RunnerConfig {
            deadline: Some(Duration::from_millis(100)),
            ..RunnerConfig::default()
        })
        .unwrap();
        let value = r.run_cell("hung-once", |ctx| 7.0 + ctx.seed_bump as f64 * 0.0);
        assert_eq!(value.unwrap(), 7.0);
        assert_eq!(r.stats.deadline_trips, 1);
        assert_eq!(r.stats.retries, 1);
        assert_eq!(r.stats.executed, 1);
    }

    #[test]
    fn persistent_hang_exhausts_the_deadline_budget() {
        let _g = fault::scoped(FaultPlan::default().with_hang(0, usize::MAX));
        let mut r = Runner::new(RunnerConfig {
            deadline: Some(Duration::from_millis(50)),
            ..RunnerConfig::default()
        })
        .unwrap();
        let result: Result<f64, _> = r.run_cell("hung-forever", |_| 1.0);
        match result {
            Err(RunnerError::DeadlineExceeded {
                key,
                attempts,
                deadline_ms,
            }) => {
                assert_eq!(key, "hung-forever");
                assert_eq!(attempts, 2, "1 try + 1 retry (default max_retries=1)");
                assert_eq!(deadline_ms, 50);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(r.stats.deadline_trips, 2, "every attempt tripped");
        assert_eq!(r.stats.failed, 1);
    }

    #[test]
    fn hang_interrupt_then_resume_matches_uninterrupted() {
        // The deadline analogue of the kill-and-resume flow: a persistent
        // hang on cell 4 aborts the sweep via the watchdog; resuming
        // without the fault re-executes only cell 4 onward, and the final
        // journal is byte-identical to an uninterrupted run.
        let n = 8;
        let clean_path = temp_journal("hang-clean");
        let mut clean = Runner::new(RunnerConfig {
            journal_path: Some(clean_path.clone()),
            resume: false,
            ..RunnerConfig::default()
        })
        .unwrap();
        let expected = sweep(&mut clean, n).unwrap();
        drop(clean);

        let path = temp_journal("hang-interrupted");
        let cfg = RunnerConfig {
            journal_path: Some(path.clone()),
            resume: false,
            max_retries: 0,
            deadline: Some(Duration::from_millis(100)),
            ..RunnerConfig::default()
        };
        {
            let _g = fault::scoped(FaultPlan::default().with_hang(4, usize::MAX));
            let mut doomed = Runner::new(cfg.clone()).unwrap();
            let aborted = sweep(&mut doomed, n);
            assert!(matches!(aborted, Err(RunnerError::DeadlineExceeded { .. })));
            assert_eq!(doomed.stats.executed, 4, "cells before the hang persisted");
            assert_eq!(doomed.stats.deadline_trips, 1);
        }
        let mut resumed = Runner::new(RunnerConfig {
            resume: true,
            ..cfg
        })
        .unwrap();
        let actual = sweep(&mut resumed, n).unwrap();
        assert_eq!(actual, expected);
        assert_eq!(resumed.stats.skipped, 4);
        assert_eq!(resumed.stats.executed, n - 4);
        assert_eq!(
            std::fs::read(&clean_path).unwrap(),
            std::fs::read(&path).unwrap(),
            "resumed journal is byte-identical to the uninterrupted run"
        );
        let _ = std::fs::remove_file(&clean_path);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parallel_hang_interrupt_then_resume_matches_uninterrupted() {
        // Same flow through the parallel batch executor: the hang is
        // detected inside a worker, batch-mates still journal in index
        // order, and resume restores byte-identity.
        rt_par::set_threads(4);
        let n = 8;
        let clean_path = temp_journal("par-hang-clean");
        let mut clean = Runner::new(RunnerConfig {
            journal_path: Some(clean_path.clone()),
            resume: false,
            parallel: true,
            ..RunnerConfig::default()
        })
        .unwrap();
        let expected = batch_sweep(&mut clean, n).unwrap();
        drop(clean);

        let path = temp_journal("par-hang-interrupted");
        let cfg = RunnerConfig {
            journal_path: Some(path.clone()),
            resume: false,
            max_retries: 0,
            parallel: true,
            deadline: Some(Duration::from_millis(100)),
            ..RunnerConfig::default()
        };
        {
            let _g = fault::scoped(FaultPlan::default().with_hang(3, usize::MAX));
            let mut doomed = Runner::new(cfg.clone()).unwrap();
            let aborted = batch_sweep(&mut doomed, n);
            match aborted {
                Err(RunnerError::DeadlineExceeded { key, .. }) => assert_eq!(key, "cell-3"),
                other => panic!("expected DeadlineExceeded, got {other:?}"),
            }
            assert_eq!(doomed.stats.executed, n - 1, "batch-mates persisted");
            assert_eq!(doomed.stats.deadline_trips, 1);
        }
        let mut resumed = Runner::new(RunnerConfig {
            resume: true,
            ..cfg
        })
        .unwrap();
        let actual = batch_sweep(&mut resumed, n).unwrap();
        assert_eq!(actual, expected);
        assert_eq!(resumed.stats.skipped, n - 1);
        assert_eq!(resumed.stats.executed, 1, "only the hung cell re-runs");
        assert_eq!(
            std::fs::read(&clean_path).unwrap(),
            std::fs::read(&path).unwrap(),
            "resumed journal is byte-identical to the uninterrupted run"
        );
        let _ = std::fs::remove_file(&clean_path);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_resume_produces_byte_identical_final_journal() {
        // Crash mid-append: the journal's last record is cut mid-byte.
        // `--resume` must drop the torn line, truncate the file to the
        // valid prefix, re-execute that cell, and end byte-identical to
        // a never-interrupted run.
        let n = 5;
        let clean_path = temp_journal("torn-clean");
        let mut clean = Runner::new(RunnerConfig {
            journal_path: Some(clean_path.clone()),
            resume: false,
            ..RunnerConfig::default()
        })
        .unwrap();
        let expected = sweep(&mut clean, n).unwrap();
        drop(clean);

        let path = temp_journal("torn-resume");
        let cfg = RunnerConfig {
            journal_path: Some(path.clone()),
            resume: false,
            ..RunnerConfig::default()
        };
        let mut first = Runner::new(cfg.clone()).unwrap();
        sweep(&mut first, n).unwrap();
        drop(first);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let mut resumed = Runner::new(RunnerConfig {
            resume: true,
            ..cfg
        })
        .unwrap();
        let actual = sweep(&mut resumed, n).unwrap();
        assert_eq!(actual, expected);
        assert_eq!(resumed.stats.skipped, n - 1, "intact prefix replayed");
        assert_eq!(resumed.stats.executed, 1, "torn cell re-executed");
        assert_eq!(
            std::fs::read(&clean_path).unwrap(),
            std::fs::read(&path).unwrap(),
            "truncate-then-append restores byte-identity"
        );
        let _ = std::fs::remove_file(&clean_path);
        let _ = std::fs::remove_file(&path);
    }
}
