//! Terminal line-chart rendering for experiment records.
//!
//! The reproduction is driven entirely from a terminal, so every
//! [`ExperimentRecord`](crate::experiment::ExperimentRecord) can render
//! itself as a Unicode chart: series are drawn over a character grid with
//! one glyph per series, the y-axis is labeled, and a legend follows.

use crate::experiment::Series;

/// Rendering options for [`render_chart`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChartOptions {
    /// Plot-area width in columns (excluding the y-axis gutter).
    pub width: usize,
    /// Plot-area height in rows.
    pub height: usize,
}

impl Default for ChartOptions {
    fn default() -> Self {
        ChartOptions {
            width: 56,
            height: 14,
        }
    }
}

/// Glyphs assigned to series, in order.
const GLYPHS: [char; 8] = ['●', '○', '▲', '△', '■', '□', '◆', '◇'];

/// Renders a set of series as a Unicode line chart with a legend.
///
/// Points are plotted at their (x, y) positions scaled into the plot area,
/// with straight-line interpolation between consecutive points of a
/// series. Returns an empty string when there is nothing to plot.
///
/// # Example
///
/// ```rust
/// use rt_transfer::chart::{render_chart, ChartOptions};
/// use rt_transfer::experiment::Series;
///
/// let mut s = Series::new("robust");
/// s.push(0.5, 0.9);
/// s.push(0.9, 0.7);
/// let chart = render_chart(&[s], &ChartOptions::default());
/// assert!(chart.contains("robust"));
/// assert!(chart.contains('●'));
/// ```
pub fn render_chart(series: &[Series], options: &ChartOptions) -> String {
    let (w, h) = (options.width.max(8), options.height.max(3));
    let points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| (p.x, p.y)))
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if points.is_empty() {
        return String::new();
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &points {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; w]; h];
    let to_col = |x: f64| (((x - x_min) / (x_max - x_min)) * (w - 1) as f64).round() as usize;
    let to_row = |y: f64| {
        let t = (y - y_min) / (y_max - y_min);
        ((1.0 - t) * (h - 1) as f64).round() as usize
    };
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        // Interpolated segments first so markers overwrite them.
        for pair in s.points.windows(2) {
            let (c0, r0) = (to_col(pair[0].x), to_row(pair[0].y));
            let (c1, r1) = (to_col(pair[1].x), to_row(pair[1].y));
            let steps = c0.abs_diff(c1).max(r0.abs_diff(r1)).max(1);
            for k in 0..=steps {
                let t = k as f64 / steps as f64;
                let c = (c0 as f64 + t * (c1 as f64 - c0 as f64)).round() as usize;
                let r = (r0 as f64 + t * (r1 as f64 - r0 as f64)).round() as usize;
                if grid[r][c] == ' ' {
                    grid[r][c] = '·';
                }
            }
        }
        for p in &s.points {
            if p.x.is_finite() && p.y.is_finite() {
                grid[to_row(p.y)][to_col(p.x)] = glyph;
            }
        }
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{y_max:8.3} ┤")
        } else if r == h - 1 {
            format!("{y_min:8.3} ┤")
        } else {
            "         │".to_string()
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("         └");
    out.extend(std::iter::repeat_n('─', w));
    out.push('\n');
    out.push_str(&format!(
        "          {:<w$.3}{:>.3}\n",
        x_min,
        x_max,
        w = w.saturating_sub(5)
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(label: &str, pts: &[(f64, f64)]) -> Series {
        let mut s = Series::new(label);
        for &(x, y) in pts {
            s.push(x, y);
        }
        s
    }

    #[test]
    fn renders_markers_and_legend() {
        let a = series("robust", &[(0.5, 0.9), (0.7, 0.85), (0.9, 0.7)]);
        let b = series("natural", &[(0.5, 0.95), (0.7, 0.8), (0.9, 0.5)]);
        let chart = render_chart(&[a, b], &ChartOptions::default());
        assert!(chart.contains('●'));
        assert!(chart.contains('○'));
        assert!(chart.contains("robust"));
        assert!(chart.contains("natural"));
        // Y-axis endpoints are labeled.
        assert!(chart.contains("0.950"));
        assert!(chart.contains("0.500"));
    }

    #[test]
    fn empty_series_render_nothing() {
        assert!(render_chart(&[], &ChartOptions::default()).is_empty());
        let empty = Series::new("none");
        assert!(render_chart(&[empty], &ChartOptions::default()).is_empty());
    }

    #[test]
    fn single_point_is_plottable() {
        let s = series("dot", &[(1.0, 2.0)]);
        let chart = render_chart(&[s], &ChartOptions::default());
        assert!(chart.contains('●'));
    }

    #[test]
    fn higher_values_plot_higher() {
        let s = series("line", &[(0.0, 0.0), (1.0, 1.0)]);
        let chart = render_chart(
            &[s],
            &ChartOptions {
                width: 20,
                height: 5,
            },
        );
        let rows: Vec<&str> = chart.lines().collect();
        // The y=1 endpoint is in the first row, the y=0 endpoint in the
        // last plot row.
        assert!(rows[0].contains('●'), "{chart}");
        assert!(rows[4].contains('●'), "{chart}");
    }

    #[test]
    fn non_finite_points_are_skipped() {
        let mut s = Series::new("bad");
        s.push(0.0, f64::NAN);
        s.push(1.0, 1.0);
        s.push(2.0, 2.0);
        let chart = render_chart(&[s], &ChartOptions::default());
        assert!(chart.contains('●'));
    }
}
