//! The generic minibatch training loop shared by pretraining, IMP rounds,
//! and finetuning.
//!
//! # Divergence guard
//!
//! Every batch loss is checked for finiteness *before* the backward pass:
//! a NaN/Inf loss aborts the epoch with a structured
//! [`NnError::Diverged`] error instead of silently poisoning the weights.
//! [`train_with_recovery`] layers a rewind-and-retry policy on top — on
//! divergence it restores the last good end-of-epoch [`StateDict`]
//! snapshot, scales the learning rate down, bumps the shuffle seed, and
//! retries the epoch, up to a bounded number of rewinds. Adversarial
//! (PGD) pretraining, the path where non-finite losses are most likely,
//! routes through it by default.

use crate::Result;
use rt_adv::attack::{perturb, AttackConfig};
use rt_adv::smoothing::gaussian_augment;
use rt_data::{Dataset, PrefetchLoader};
use rt_nn::checkpoint::StateDict;
use rt_nn::loss::CrossEntropyLoss;
use rt_nn::optim::Sgd;
use rt_nn::schedule::{ConstantLr, CosineLr, LrSchedule, StepDecay};
use rt_nn::{prefix_fingerprint, ActCache, ExecCtx, Layer, NnError};
use rt_tensor::pool;
use rt_tensor::rng::SeedStream;
use serde::{Deserialize, Serialize};

/// Training objective: what the inner loss sees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Standard cross-entropy on clean inputs.
    Natural,
    /// The paper's Eq. 1 minimax: cross-entropy on PGD-perturbed inputs
    /// (adversarial training, Madry et al.).
    Adversarial(AttackConfig),
    /// Randomized-smoothing pretraining: cross-entropy on Gaussian-noised
    /// inputs with the given σ (Cohen et al.).
    GaussianNoise(f32),
}

/// Learning-rate schedule selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SchedulePolicy {
    /// Constant learning rate.
    #[default]
    Constant,
    /// The paper's step decay: ×0.1 at 1/3 and 2/3 of training.
    PaperStep,
    /// Cosine annealing to zero.
    Cosine,
}

/// Hyper-parameters of one training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Base learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay (weights only).
    pub weight_decay: f32,
    /// Learning-rate schedule.
    pub schedule: SchedulePolicy,
    /// Training objective.
    pub objective: Objective,
    /// Seed for shuffling, attack random starts, and noise.
    pub seed: u64,
}

impl TrainConfig {
    /// The paper's finetuning recipe (momentum 0.9, weight decay 1e-4,
    /// step-decay schedule) with a natural objective.
    pub fn paper_finetune(epochs: usize, batch_size: usize, lr: f32, seed: u64) -> Self {
        TrainConfig {
            epochs,
            batch_size,
            lr,
            momentum: 0.9,
            weight_decay: 1e-4,
            schedule: SchedulePolicy::PaperStep,
            objective: Objective::Natural,
            seed,
        }
    }

    /// Returns a copy with a different objective.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean loss of each epoch, in order. Finite by construction: a
    /// non-finite loss either errors out ([`NnError::Diverged`]) or is
    /// recovered from before the epoch is recorded.
    pub epoch_losses: Vec<f64>,
    /// Number of divergence rewinds performed (always 0 for [`train`]).
    #[serde(default)]
    pub rewinds: usize,
}

impl TrainReport {
    /// Loss of the final epoch (`NaN`-free by construction; `0.0` if no
    /// epochs ran).
    pub fn final_loss(&self) -> f64 {
        self.epoch_losses.last().copied().unwrap_or(0.0)
    }
}

fn make_schedule(cfg: &TrainConfig) -> Box<dyn LrSchedule> {
    match cfg.schedule {
        SchedulePolicy::Constant => Box::new(ConstantLr::new(cfg.lr)),
        SchedulePolicy::PaperStep => Box::new(StepDecay::paper_recipe(cfg.lr, cfg.epochs)),
        SchedulePolicy::Cosine => Box::new(CosineLr::new(cfg.lr, cfg.lr * 1e-3, cfg.epochs.max(1))),
    }
}

/// Divergence-recovery policy for [`train_with_recovery`]: on a
/// non-finite loss, rewind to the last good end-of-epoch snapshot, scale
/// the learning rate by `lr_factor`, bump the shuffle/attack seed by
/// `seed_bump`, and retry the epoch — at most `max_rewinds` times over
/// the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Total rewind budget for the run; once exhausted the
    /// [`NnError::Diverged`] error propagates to the caller.
    pub max_rewinds: usize,
    /// Multiplier applied to the effective learning rate at each rewind
    /// (the canonical policy halves it).
    pub lr_factor: f32,
    /// Offset added to the root seed at each rewind so the retried epoch
    /// sees a different shuffle order and attack/noise draws.
    pub seed_bump: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_rewinds: 3,
            lr_factor: 0.5,
            seed_bump: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RecoveryPolicy {
    /// No recovery: divergence errors propagate immediately. With this
    /// policy [`train_with_recovery`] is byte-identical to [`train`].
    pub fn none() -> Self {
        RecoveryPolicy {
            max_rewinds: 0,
            lr_factor: 1.0,
            seed_bump: 0,
        }
    }
}

/// The frozen-prefix split this epoch trains under, or `None` when the
/// activation cache cannot engage. Engagement requires all of:
///
/// * a **Natural** objective — PGD differentiates through the prefix to
///   the pixels, and noise objectives randomize the prefix *input*, so
///   neither can skip it;
/// * a [`rt_nn::Sequential`] model (the only splittable container);
/// * a non-empty cacheable prefix (pure per-sample layers, all frozen);
/// * a non-zero cache capacity (`RT_ACT_CACHE_MB=0` is the kill switch).
fn engaged_split(model: &mut dyn Layer, config: &TrainConfig, cache: &ActCache) -> Option<usize> {
    if !matches!(config.objective, Objective::Natural) || !cache.is_enabled() {
        return None;
    }
    model
        .as_sequential_mut()
        .map(|seq| seq.split_at_trainable())
        .filter(|&split| split > 0)
}

/// Runs one epoch: shuffle (via the prefetch loader), (optionally)
/// attack/noise, forward (serving the frozen prefix from the activation
/// cache when engaged), loss, backward, step. Returns the mean batch loss.
///
/// The batch loss is checked for finiteness *before* the backward pass so
/// a diverged batch never poisons the weights with NaN gradients.
///
/// # Determinism
///
/// Bit-identical to the legacy serial loop: the loader consumes `rng`
/// exactly like `Dataset::shuffled_batches` and serves identical batches
/// (prefetch only hides gather latency), and the cache path recomposes
/// per-sample prefix outputs whose bytes equal a fresh prefix forward.
fn run_epoch(
    model: &mut dyn Layer,
    loader: &mut PrefetchLoader,
    cache: &mut ActCache,
    config: &TrainConfig,
    loss_fn: &CrossEntropyLoss,
    lr: f32,
    epoch: usize,
    root_seed: u64,
) -> Result<f64> {
    let opt = Sgd::new(lr)
        .with_momentum(config.momentum)
        .with_weight_decay(config.weight_decay);
    let seeds = SeedStream::new(root_seed);
    let mut rng = seeds.child("epoch").child_idx(epoch as u64).rng();
    loader.begin_epoch(config.batch_size, &mut rng);
    let split = engaged_split(model, config, cache);
    if let Some(split) = split {
        // Declare the prefix identity: a mismatch (perturbed weight, new
        // mask, different split) drops every cached activation before the
        // first batch can consult it.
        let seq = model.as_sequential_mut().expect("split implies sequential");
        cache.begin_epoch(prefix_fingerprint(seq, split));
    }
    let mut epoch_loss = 0.0f64;
    let mut batches = 0usize;
    // Hoisted out of the batch loop: one registry lookup per epoch, and
    // the per-batch stopwatch only starts when the handle is live
    // (level `all`).
    let batch_hist = rt_obs::histogram("train.batch_ms");
    let time_batches = batch_hist.is_active();
    while let Some(batch) = loader.next_batch() {
        let batch_t0 = rt_obs::Stopwatch::start_if(time_batches);
        let ctx = ExecCtx::train();
        // Batch-boundary cancellation check: the ctx snapshots the
        // ambient supervision token, so a watchdog-tripped deadline stops
        // the epoch between batches — never mid-kernel, and with the
        // model weights in a consistent (pre-step) state.
        if ctx.is_cancelled() {
            loader.release(batch);
            return Err(NnError::DeadlineExceeded {
                epoch,
                batch: batches,
            });
        }
        let inputs = match &config.objective {
            // Natural training consumes the gathered batch directly.
            Objective::Natural => None,
            Objective::Adversarial(attack) => Some(perturb(
                model,
                batch.images(),
                batch.labels(),
                attack,
                &mut rng,
            )?),
            Objective::GaussianNoise(sigma) => {
                Some(gaussian_augment(batch.images(), *sigma, &mut rng))
            }
        };
        let logits = match split {
            Some(split) => {
                let seq = model.as_sequential_mut().expect("split implies sequential");
                match cache.assemble(batch.indices()) {
                    // Every sample resident: skip the prefix forward, the
                    // assembled tensor is bit-identical to recomputing it.
                    Some(mid) => {
                        let y = seq.forward_suffix(&mid, ctx, split)?;
                        pool::put(mid.into_vec());
                        y
                    }
                    None => {
                        let mid = seq.forward_prefix(batch.images(), ctx, split)?;
                        cache.insert(batch.indices(), &mid);
                        seq.forward_suffix(&mid, ctx, split)?
                    }
                }
            }
            None => model.forward(inputs.as_ref().unwrap_or(batch.images()), ctx)?,
        };
        let out = loss_fn.forward(&logits, batch.labels())?;
        // Fault-injection hook (no-op unless a plan is installed) feeding
        // the divergence guard.
        let batch_loss = crate::fault::corrupt_loss(epoch, batches, out.loss);
        if !batch_loss.is_finite() {
            loader.release(batch);
            return Err(NnError::Diverged {
                epoch,
                batch: batches,
            });
        }
        match split {
            // The prefix is frozen: the optimizer zeroes (and never
            // applies) its gradients, so stopping backward at the split
            // is unobservable in every trained byte.
            Some(split) => {
                model
                    .as_sequential_mut()
                    .expect("split implies sequential")
                    .backward_suffix(&out.grad, ctx, split)?;
            }
            None => {
                model.backward(&out.grad, ctx)?;
            }
        }
        opt.step(model)?;
        loader.release(batch);
        if let Some(t0) = batch_t0 {
            batch_hist.observe(t0.elapsed_ms());
        }
        epoch_loss += batch_loss as f64;
        batches += 1;
    }
    let mean = if batches == 0 {
        0.0
    } else {
        epoch_loss / batches as f64
    };
    if !mean.is_finite() {
        return Err(NnError::Diverged {
            epoch,
            batch: batches.saturating_sub(1),
        });
    }
    Ok(mean)
}

/// Trains `model` on `data` under `config`, returning per-epoch losses.
///
/// Adversarial objectives regenerate PGD examples against the *current*
/// model every batch, exactly as in adversarial training. BatchNorm runs
/// in train mode for the update pass and (inside the attack) in eval mode.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for a zero batch size,
/// [`NnError::Diverged`] when a batch or epoch loss goes non-finite, and
/// propagates layer/optimizer errors. For automatic divergence recovery
/// use [`train_with_recovery`].
pub fn train(model: &mut dyn Layer, data: &Dataset, config: &TrainConfig) -> Result<TrainReport> {
    train_with_recovery(model, data, config, &RecoveryPolicy::none())
}

/// [`train`] with divergence recovery: on a non-finite loss the model is
/// rewound to the last good end-of-epoch snapshot (initial weights for an
/// epoch-0 divergence), the learning rate is scaled by
/// `policy.lr_factor`, the seed is bumped, and the epoch is retried —
/// bounded by `policy.max_rewinds` total rewinds.
///
/// With [`RecoveryPolicy::none`] (or when no divergence occurs under a
/// zero-rewind-free run) this is byte-identical to [`train`]; the
/// snapshot is only captured when recovery is actually possible.
///
/// # Errors
///
/// As [`train`]; additionally returns the final [`NnError::Diverged`]
/// once the rewind budget is exhausted.
pub fn train_with_recovery(
    model: &mut dyn Layer,
    data: &Dataset,
    config: &TrainConfig,
    policy: &RecoveryPolicy,
) -> Result<TrainReport> {
    if config.batch_size == 0 {
        return Err(NnError::InvalidConfig {
            detail: "batch size must be positive".to_string(),
        });
    }
    let _run_span = rt_obs::span!(
        "train.run",
        "epochs" => config.epochs,
        "batch_size" => config.batch_size,
        "examples" => data.len(),
        "objective" => objective_label(&config.objective),
    );
    let loss_fn = CrossEntropyLoss::new();
    let schedule = make_schedule(config);
    // The pipeline state lives for the whole run: the loader's permutation
    // and batch buffers recycle across epochs (allocation-free steady
    // state), and the activation cache persists so epochs after the first
    // skip the frozen prefix — surviving rewinds too, because restoring
    // trainable params leaves the (fingerprinted) frozen prefix untouched.
    let mut loader = PrefetchLoader::new(data);
    let mut cache = ActCache::new();
    let mut report = TrainReport {
        epoch_losses: Vec::with_capacity(config.epochs),
        rewinds: 0,
    };
    let mut lr_scale: f32 = 1.0;
    let mut seed_offset: u64 = 0;
    let mut rewinds_left = policy.max_rewinds;
    // Snapshotting costs a full weight clone per epoch; skip it entirely
    // when the policy cannot rewind.
    let mut last_good: Option<StateDict> =
        (policy.max_rewinds > 0).then(|| StateDict::capture(model));
    let mut epoch = 0usize;
    while epoch < config.epochs {
        let lr = (schedule.lr_at(epoch) * lr_scale).max(1e-8);
        let root_seed = config.seed.wrapping_add(seed_offset);
        let epoch_span = rt_obs::span!(
            "train.epoch",
            "epoch" => epoch,
            "lr" => lr as f64,
        );
        let epoch_t0 = rt_obs::Stopwatch::start_if(epoch_span.is_active());
        match run_epoch(
            model,
            &mut loader,
            &mut cache,
            config,
            &loss_fn,
            lr,
            epoch,
            root_seed,
        ) {
            Ok(mean) => {
                epoch_span.attr("loss", mean);
                if let Some(t0) = epoch_t0 {
                    let secs = t0.elapsed_s();
                    if secs > 0.0 {
                        epoch_span.attr("imgs_per_sec", data.len() as f64 / secs);
                    }
                }
                report.epoch_losses.push(mean);
                if let Some(snap) = last_good.as_mut() {
                    *snap = StateDict::capture(model);
                }
                epoch += 1;
            }
            Err(NnError::Diverged { epoch: e, batch }) => {
                epoch_span.attr("diverged", true);
                if rewinds_left == 0 {
                    return Err(NnError::Diverged { epoch: e, batch });
                }
                rewinds_left -= 1;
                report.rewinds += 1;
                rt_obs::counter("train.rewinds").inc();
                let snap = last_good
                    .as_ref()
                    .expect("max_rewinds > 0 always snapshots");
                snap.restore(model)?;
                lr_scale *= policy.lr_factor;
                seed_offset = seed_offset.wrapping_add(policy.seed_bump);
                rt_obs::console!(
                    "[recover] non-finite loss at epoch {e}, batch {batch}: \
                     rewound to last good snapshot, lr scale now {lr_scale:.4} \
                     ({rewinds_left} rewind(s) left)"
                );
            }
            Err(other) => return Err(other),
        }
    }
    Ok(report)
}

/// Short label for the objective, used as a span attribute.
fn objective_label(objective: &Objective) -> &'static str {
    match objective {
        Objective::Natural => "natural",
        Objective::Adversarial(_) => "adversarial",
        Objective::GaussianNoise(_) => "gaussian",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_data::{FamilyConfig, TaskFamily};
    use rt_models::{MicroResNet, ResNetConfig};
    use rt_tensor::rng::rng_from_seed;

    fn smoke_setup() -> (MicroResNet, Dataset) {
        let family = TaskFamily::new(FamilyConfig::smoke(), 11);
        let task = family.source_task(32, 16).unwrap();
        let config = ResNetConfig::smoke(task.train.num_classes());
        let model = MicroResNet::new(&config, &mut rng_from_seed(0)).unwrap();
        (model, task.train)
    }

    #[test]
    fn natural_training_reduces_loss() {
        let (mut model, data) = smoke_setup();
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 8,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            schedule: SchedulePolicy::Constant,
            objective: Objective::Natural,
            seed: 1,
        };
        let report = train(&mut model, &data, &cfg).unwrap();
        assert_eq!(report.epoch_losses.len(), 6);
        assert!(
            report.final_loss() < report.epoch_losses[0],
            "{:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn adversarial_training_runs_and_learns() {
        let (mut model, data) = smoke_setup();
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 8,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 0.0,
            schedule: SchedulePolicy::Constant,
            objective: Objective::Adversarial(AttackConfig::pgd(0.2, 2)),
            seed: 2,
        };
        let report = train(&mut model, &data, &cfg).unwrap();
        assert!(report.final_loss() < report.epoch_losses[0]);
    }

    #[test]
    fn gaussian_objective_runs() {
        let (mut model, data) = smoke_setup();
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 8,
            lr: 0.05,
            momentum: 0.0,
            weight_decay: 0.0,
            schedule: SchedulePolicy::Cosine,
            objective: Objective::GaussianNoise(0.3),
            seed: 3,
        };
        let report = train(&mut model, &data, &cfg).unwrap();
        assert_eq!(report.epoch_losses.len(), 2);
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut m1, data) = smoke_setup();
        let (mut m2, _) = smoke_setup();
        let cfg = TrainConfig::paper_finetune(2, 8, 0.05, 42);
        let r1 = train(&mut m1, &data, &cfg).unwrap();
        let r2 = train(&mut m2, &data, &cfg).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn zero_batch_size_rejected() {
        let (mut model, data) = smoke_setup();
        let mut cfg = TrainConfig::paper_finetune(1, 8, 0.05, 0);
        cfg.batch_size = 0;
        assert!(train(&mut model, &data, &cfg).is_err());
    }

    #[test]
    fn tripped_ambient_token_stops_training_at_a_batch_boundary() {
        // With a pre-tripped supervision token ambient, the very first
        // batch-boundary check fires: training returns the structured
        // deadline error without touching the weights.
        let (mut model, data) = smoke_setup();
        let cfg = TrainConfig::paper_finetune(2, 8, 0.05, 11);
        let scope = rt_par::CancelScope::new();
        scope.trip();
        let _ambient = rt_par::with_cancel(scope.token());
        match train(&mut model, &data, &cfg) {
            Err(NnError::DeadlineExceeded { epoch, batch }) => {
                assert_eq!((epoch, batch), (0, 0));
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn injected_nan_loss_yields_structured_diverged_error() {
        let (mut model, data) = smoke_setup();
        let _g = crate::fault::scoped(
            crate::fault::FaultPlan::default().with_nan_loss(0, 1, usize::MAX),
        );
        let cfg = TrainConfig::paper_finetune(2, 8, 0.05, 9);
        match train(&mut model, &data, &cfg) {
            Err(NnError::Diverged { epoch, batch }) => {
                assert_eq!((epoch, batch), (0, 1));
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn recovery_rewinds_and_completes_with_finite_losses() {
        let (mut model, data) = smoke_setup();
        // One NaN-flip in epoch 1; the seed-bumped retry runs clean.
        let _g =
            crate::fault::scoped(crate::fault::FaultPlan::default().with_nan_loss(1, 0, 1));
        let cfg = TrainConfig::paper_finetune(3, 8, 0.05, 10);
        let report =
            train_with_recovery(&mut model, &data, &cfg, &RecoveryPolicy::default()).unwrap();
        assert_eq!(report.rewinds, 1);
        assert_eq!(report.epoch_losses.len(), 3);
        assert!(
            report.epoch_losses.iter().all(|l| l.is_finite()),
            "{:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn recovery_budget_is_bounded() {
        let (mut model, data) = smoke_setup();
        // Persistent fault: every attempt at epoch 0 diverges.
        let _g = crate::fault::scoped(
            crate::fault::FaultPlan::default().with_nan_loss(0, 0, usize::MAX),
        );
        let cfg = TrainConfig::paper_finetune(2, 8, 0.05, 11);
        let policy = RecoveryPolicy {
            max_rewinds: 2,
            ..RecoveryPolicy::default()
        };
        assert!(matches!(
            train_with_recovery(&mut model, &data, &cfg, &policy),
            Err(NnError::Diverged { epoch: 0, .. })
        ));
    }

    #[test]
    fn recovery_is_identical_to_train_on_clean_runs() {
        let (mut m1, data) = smoke_setup();
        let (mut m2, _) = smoke_setup();
        let cfg = TrainConfig::paper_finetune(2, 8, 0.05, 12);
        let plain = train(&mut m1, &data, &cfg).unwrap();
        let recovered =
            train_with_recovery(&mut m2, &data, &cfg, &RecoveryPolicy::default()).unwrap();
        assert_eq!(plain, recovered, "clean path must be byte-identical");
    }

    #[test]
    fn adversarial_training_recovers_from_injected_nan() {
        // The acceptance scenario: PGD pretraining objective + injected
        // NaN → rewind + LR halving → all reported losses finite.
        let (mut model, data) = smoke_setup();
        let _g =
            crate::fault::scoped(crate::fault::FaultPlan::default().with_nan_loss(1, 1, 1));
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 8,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 0.0,
            schedule: SchedulePolicy::Constant,
            objective: Objective::Adversarial(AttackConfig::pgd(0.2, 2)),
            seed: 13,
        };
        let report =
            train_with_recovery(&mut model, &data, &cfg, &RecoveryPolicy::default()).unwrap();
        assert_eq!(report.rewinds, 1);
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn masked_weights_survive_training() {
        use rt_prune::{omp, OmpConfig};
        let (mut model, data) = smoke_setup();
        let ticket = omp(&model, &OmpConfig::unstructured(0.5)).unwrap();
        ticket.apply(&mut model).unwrap();
        let cfg = TrainConfig::paper_finetune(2, 8, 0.05, 7);
        train(&mut model, &data, &cfg).unwrap();
        for p in model.params() {
            if let Some(mask) = &p.mask {
                for (&w, &k) in p.data.data().iter().zip(mask.data()) {
                    if k == 0.0 {
                        assert_eq!(w, 0.0, "pruned weight moved in {}", p.name);
                    }
                }
            }
        }
    }
}
