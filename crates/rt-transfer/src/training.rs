//! The generic minibatch training loop shared by pretraining, IMP rounds,
//! and finetuning.

use crate::Result;
use rt_adv::attack::{perturb, AttackConfig};
use rt_adv::smoothing::gaussian_augment;
use rt_data::Dataset;
use rt_nn::loss::CrossEntropyLoss;
use rt_nn::optim::Sgd;
use rt_nn::schedule::{ConstantLr, CosineLr, LrSchedule, StepDecay};
use rt_nn::{Layer, Mode, NnError};
use rt_tensor::rng::SeedStream;
use serde::{Deserialize, Serialize};

/// Training objective: what the inner loss sees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Standard cross-entropy on clean inputs.
    Natural,
    /// The paper's Eq. 1 minimax: cross-entropy on PGD-perturbed inputs
    /// (adversarial training, Madry et al.).
    Adversarial(AttackConfig),
    /// Randomized-smoothing pretraining: cross-entropy on Gaussian-noised
    /// inputs with the given σ (Cohen et al.).
    GaussianNoise(f32),
}

/// Learning-rate schedule selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SchedulePolicy {
    /// Constant learning rate.
    #[default]
    Constant,
    /// The paper's step decay: ×0.1 at 1/3 and 2/3 of training.
    PaperStep,
    /// Cosine annealing to zero.
    Cosine,
}

/// Hyper-parameters of one training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Base learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay (weights only).
    pub weight_decay: f32,
    /// Learning-rate schedule.
    pub schedule: SchedulePolicy,
    /// Training objective.
    pub objective: Objective,
    /// Seed for shuffling, attack random starts, and noise.
    pub seed: u64,
}

impl TrainConfig {
    /// The paper's finetuning recipe (momentum 0.9, weight decay 1e-4,
    /// step-decay schedule) with a natural objective.
    pub fn paper_finetune(epochs: usize, batch_size: usize, lr: f32, seed: u64) -> Self {
        TrainConfig {
            epochs,
            batch_size,
            lr,
            momentum: 0.9,
            weight_decay: 1e-4,
            schedule: SchedulePolicy::PaperStep,
            objective: Objective::Natural,
            seed,
        }
    }

    /// Returns a copy with a different objective.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean loss of each epoch, in order.
    pub epoch_losses: Vec<f64>,
}

impl TrainReport {
    /// Loss of the final epoch (`NaN`-free by construction; `0.0` if no
    /// epochs ran).
    pub fn final_loss(&self) -> f64 {
        self.epoch_losses.last().copied().unwrap_or(0.0)
    }
}

fn make_schedule(cfg: &TrainConfig) -> Box<dyn LrSchedule> {
    match cfg.schedule {
        SchedulePolicy::Constant => Box::new(ConstantLr::new(cfg.lr)),
        SchedulePolicy::PaperStep => Box::new(StepDecay::paper_recipe(cfg.lr, cfg.epochs)),
        SchedulePolicy::Cosine => Box::new(CosineLr::new(cfg.lr, cfg.lr * 1e-3, cfg.epochs.max(1))),
    }
}

/// Trains `model` on `data` under `config`, returning per-epoch losses.
///
/// Adversarial objectives regenerate PGD examples against the *current*
/// model every batch, exactly as in adversarial training. BatchNorm runs
/// in train mode for the update pass and (inside the attack) in eval mode.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for a zero batch size and propagates
/// layer/optimizer errors.
pub fn train(model: &mut dyn Layer, data: &Dataset, config: &TrainConfig) -> Result<TrainReport> {
    if config.batch_size == 0 {
        return Err(NnError::InvalidConfig {
            detail: "batch size must be positive".to_string(),
        });
    }
    let loss_fn = CrossEntropyLoss::new();
    let schedule = make_schedule(config);
    let seeds = SeedStream::new(config.seed);
    let mut report = TrainReport {
        epoch_losses: Vec::with_capacity(config.epochs),
    };
    for epoch in 0..config.epochs {
        let mut opt = Sgd::new(schedule.lr_at(epoch).max(1e-8))
            .with_momentum(config.momentum)
            .with_weight_decay(config.weight_decay);
        let _ = &mut opt; // momentum state lives in the params, not here
        let mut rng = seeds.child("epoch").child_idx(epoch as u64).rng();
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for (images, labels) in data.shuffled_batches(config.batch_size, &mut rng) {
            let inputs = match &config.objective {
                Objective::Natural => images,
                Objective::Adversarial(attack) => {
                    perturb(model, &images, &labels, attack, &mut rng)?
                }
                Objective::GaussianNoise(sigma) => gaussian_augment(&images, *sigma, &mut rng),
            };
            let logits = model.forward(&inputs, Mode::Train)?;
            let out = loss_fn.forward(&logits, &labels)?;
            model.backward(&out.grad)?;
            opt.step(model)?;
            epoch_loss += out.loss as f64;
            batches += 1;
        }
        report.epoch_losses.push(if batches == 0 {
            0.0
        } else {
            epoch_loss / batches as f64
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_data::{FamilyConfig, TaskFamily};
    use rt_models::{MicroResNet, ResNetConfig};
    use rt_tensor::rng::rng_from_seed;

    fn smoke_setup() -> (MicroResNet, Dataset) {
        let family = TaskFamily::new(FamilyConfig::smoke(), 11);
        let task = family.source_task(32, 16).unwrap();
        let config = ResNetConfig::smoke(task.train.num_classes());
        let model = MicroResNet::new(&config, &mut rng_from_seed(0)).unwrap();
        (model, task.train)
    }

    #[test]
    fn natural_training_reduces_loss() {
        let (mut model, data) = smoke_setup();
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 8,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            schedule: SchedulePolicy::Constant,
            objective: Objective::Natural,
            seed: 1,
        };
        let report = train(&mut model, &data, &cfg).unwrap();
        assert_eq!(report.epoch_losses.len(), 6);
        assert!(
            report.final_loss() < report.epoch_losses[0],
            "{:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn adversarial_training_runs_and_learns() {
        let (mut model, data) = smoke_setup();
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 8,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 0.0,
            schedule: SchedulePolicy::Constant,
            objective: Objective::Adversarial(AttackConfig::pgd(0.2, 2)),
            seed: 2,
        };
        let report = train(&mut model, &data, &cfg).unwrap();
        assert!(report.final_loss() < report.epoch_losses[0]);
    }

    #[test]
    fn gaussian_objective_runs() {
        let (mut model, data) = smoke_setup();
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 8,
            lr: 0.05,
            momentum: 0.0,
            weight_decay: 0.0,
            schedule: SchedulePolicy::Cosine,
            objective: Objective::GaussianNoise(0.3),
            seed: 3,
        };
        let report = train(&mut model, &data, &cfg).unwrap();
        assert_eq!(report.epoch_losses.len(), 2);
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut m1, data) = smoke_setup();
        let (mut m2, _) = smoke_setup();
        let cfg = TrainConfig::paper_finetune(2, 8, 0.05, 42);
        let r1 = train(&mut m1, &data, &cfg).unwrap();
        let r2 = train(&mut m2, &data, &cfg).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn zero_batch_size_rejected() {
        let (mut model, data) = smoke_setup();
        let mut cfg = TrainConfig::paper_finetune(1, 8, 0.05, 0);
        cfg.batch_size = 0;
        assert!(train(&mut model, &data, &cfg).is_err());
    }

    #[test]
    fn masked_weights_survive_training() {
        use rt_prune::{omp, OmpConfig};
        let (mut model, data) = smoke_setup();
        let ticket = omp(&model, &OmpConfig::unstructured(0.5)).unwrap();
        ticket.apply(&mut model).unwrap();
        let cfg = TrainConfig::paper_finetune(2, 8, 0.05, 7);
        train(&mut model, &data, &cfg).unwrap();
        for p in model.params() {
            if let Some(mask) = &p.mask {
                for (&w, &k) in p.data.data().iter().zip(mask.data()) {
                    if k == 0.0 {
                        assert_eq!(w, 0.0, "pruned weight moved in {}", p.name);
                    }
                }
            }
        }
    }
}
