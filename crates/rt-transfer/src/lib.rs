//! Transfer-learning pipelines for the robust-tickets reproduction.
//!
//! This crate wires the substrates together into the paper's experimental
//! protocol:
//!
//! 1. **Pretrain** a dense [`MicroResNet`](rt_models::MicroResNet) on the
//!    synthetic source task under one of three schemes — natural training,
//!    PGD adversarial training (the robustness prior), or randomized
//!    smoothing ([`pretrain()`]). Pretrained snapshots are cached on disk so
//!    the nine experiment drivers share them.
//! 2. **Draw a ticket** with OMP / IMP / A-IMP / LMP ([`ticket`]).
//! 3. **Transfer**: whole-model finetuning ([`finetune`]) or linear
//!    evaluation on frozen features ([`linear`]).
//! 4. **Measure** accuracy, calibration, adversarial accuracy, OoD AUC,
//!    and FID ([`evaluate`]).
//!
//! [`experiment`] holds the scale presets (smoke / standard / paper) and
//! the result-record types the `rt-bench` drivers serialize.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod evaluate;
pub mod experiment;
pub mod finetune;
pub mod linear;
pub mod pretrain;
pub mod ticket;
pub mod training;

pub use evaluate::EvalReport;
pub use experiment::{Preset, Scale};
pub use pretrain::{pretrain, PretrainScheme, Pretrained};
pub use training::{train, Objective, TrainConfig, TrainReport};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, rt_nn::NnError>;
