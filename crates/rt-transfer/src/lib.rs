//! Transfer-learning pipelines for the robust-tickets reproduction.
//!
//! This crate wires the substrates together into the paper's experimental
//! protocol:
//!
//! 1. **Pretrain** a dense [`MicroResNet`](rt_models::MicroResNet) on the
//!    synthetic source task under one of three schemes — natural training,
//!    PGD adversarial training (the robustness prior), or randomized
//!    smoothing ([`pretrain()`]). Pretrained snapshots are cached on disk so
//!    the nine experiment drivers share them.
//! 2. **Draw a ticket** with OMP / IMP / A-IMP / LMP ([`ticket`]).
//! 3. **Transfer**: whole-model finetuning ([`finetune`]) or linear
//!    evaluation on frozen features ([`linear`]).
//! 4. **Measure** accuracy, calibration, adversarial accuracy, OoD AUC,
//!    and FID ([`evaluate`]).
//!
//! [`experiment`] holds the scale presets (smoke / standard / paper) and
//! the result-record types the `rt-bench` drivers serialize.
//!
//! # Fault tolerance
//!
//! Long sweeps survive crashes and divergence through three layers (see
//! DESIGN.md §"Fault tolerance"):
//!
//! * [`runner`] — cell-level `catch_unwind` isolation, bounded seed-bumped
//!   retries, and an append-only JSONL journal enabling `--resume`.
//! * [`training::train_with_recovery`] — divergence guard (structured
//!   [`rt_nn::NnError::Diverged`] errors) with rewind + LR-halving
//!   recovery, used by adversarial pretraining.
//! * [`fault`] — the deterministic, seeded fault-injection harness the
//!   tests use to prove both of the above actually recover.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod evaluate;
pub mod experiment;
pub mod fault;
pub mod finetune;
pub mod linear;
pub mod pretrain;
pub mod runner;
pub mod ticket;
pub mod training;

pub use evaluate::EvalReport;
pub use experiment::{Preset, Scale};
pub use pretrain::{pretrain, PretrainScheme, Pretrained};
pub use runner::{CellCtx, Runner, RunnerConfig, RunnerError};
pub use training::{
    train, train_with_recovery, Objective, RecoveryPolicy, TrainConfig, TrainReport,
};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, rt_nn::NnError>;
