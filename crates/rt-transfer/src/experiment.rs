//! Experiment scaffolding: scale presets shared by every `rt-bench` driver
//! and the result-record types they emit.

use crate::linear::LinearEvalConfig;
use crate::pretrain::PretrainScheme;
use crate::ticket::{LmpRunConfig, LmpScoreInit};
use crate::training::{Objective, SchedulePolicy, TrainConfig};
use rt_adv::attack::AttackConfig;
use rt_data::{DownstreamSpec, FamilyConfig};
use rt_models::ResNetConfig;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::PathBuf;

/// Experiment scale.
///
/// * `Smoke` — seconds; used by tests and CI to exercise every driver.
/// * `Standard` — minutes per driver on one CPU core; the scale at which
///   EXPERIMENTS.md records results.
/// * `Paper` — the largest configuration; hours on one core. Same code
///   path, bigger numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Scale {
    /// CI-sized.
    Smoke,
    /// The reported scale.
    #[default]
    Standard,
    /// Full scale.
    Paper,
}

impl Scale {
    /// Parses `smoke` / `standard` / `paper` (case-insensitive).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Scale::Smoke),
            "standard" => Some(Scale::Standard),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Reads `--scale <value>` or `--scale=<value>` from process
    /// arguments, defaulting to [`Scale::Standard`]. On an unrecognized
    /// or missing value it prints a usage message to stderr and exits
    /// with status 2 (a CLI usage error must not look like a crash).
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        Scale::from_arg_slice(&args).unwrap_or_else(|bad| {
            rt_obs::console!("error: unknown scale `{bad}`");
            rt_obs::console!(
                "usage: {} [--scale smoke|standard|paper] [--scale=<value>] [--resume]",
                args.first().map(String::as_str).unwrap_or("<driver>")
            );
            crate::runner::ExitCode::Usage.exit();
        })
    }

    /// Parses `--scale` out of an argument slice (both the two-token
    /// `--scale smoke` and the `--scale=smoke` forms; the last occurrence
    /// wins). Returns the offending value on failure — the testable core
    /// of [`Scale::from_args`].
    ///
    /// # Errors
    ///
    /// Returns the unparseable scale string (or `"<missing>"` when
    /// `--scale` is the final token with no value).
    pub fn from_arg_slice(args: &[String]) -> std::result::Result<Scale, String> {
        let mut scale = Scale::Standard;
        let mut i = 0;
        while i < args.len() {
            if let Some(v) = args[i].strip_prefix("--scale=") {
                scale = Scale::parse(v).ok_or_else(|| v.to_string())?;
            } else if args[i] == "--scale" {
                let v = args.get(i + 1).ok_or_else(|| "<missing>".to_string())?;
                scale = Scale::parse(v).ok_or_else(|| v.clone())?;
                i += 1;
            }
            i += 1;
        }
        Ok(scale)
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scale::Smoke => write!(f, "smoke"),
            Scale::Standard => write!(f, "standard"),
            Scale::Paper => write!(f, "paper"),
        }
    }
}

/// Every knob an experiment driver needs, resolved per scale.
#[derive(Debug, Clone)]
pub struct Preset {
    /// Scale this preset was built for.
    pub scale: Scale,
    /// Synthetic-generator configuration.
    pub family: FamilyConfig,
    /// Root seed of the whole experiment universe.
    pub seed: u64,
    /// Source-task sizes.
    pub source_train: usize,
    /// Source test-set size.
    pub source_test: usize,
    /// Downstream (CIFAR-analog) sizes.
    pub downstream_train: usize,
    /// Downstream test-set size.
    pub downstream_test: usize,
    /// Pretraining epochs.
    pub pretrain_epochs: usize,
    /// Pretraining learning rate.
    pub pretrain_lr: f32,
    /// PGD configuration used for adversarial pretraining.
    pub pretrain_attack: AttackConfig,
    /// Gaussian σ for randomized-smoothing pretraining.
    pub smoothing_sigma: f32,
    /// PGD configuration used when *evaluating* adversarial accuracy.
    pub eval_attack: AttackConfig,
    /// Whole-model finetuning epochs.
    pub finetune_epochs: usize,
    /// Finetuning learning rate.
    pub finetune_lr: f32,
    /// Minibatch size for finetuning/IMP rounds.
    pub batch_size: usize,
    /// Linear-evaluation configuration.
    pub linear: LinearEvalConfig,
    /// OMP sparsity grid (Fig. 1/2/3/6/7's x-axis).
    pub sparsity_grid: Vec<f64>,
    /// IMP configuration: final sparsity and round count.
    pub imp_final_sparsity: f64,
    /// IMP rounds (each round yields one sparsity point).
    pub imp_rounds: usize,
    /// Training epochs inside each IMP round.
    pub imp_round_epochs: usize,
    /// LMP epochs.
    pub lmp_epochs: usize,
    /// OoD set size.
    pub ood_samples: usize,
    /// Samples per side for FID estimation.
    pub fid_samples: usize,
    /// Segmentation scenes (train).
    pub seg_train: usize,
    /// Segmentation scenes (test).
    pub seg_test: usize,
    /// Segmentation foreground classes.
    pub seg_classes: usize,
    /// Segmentation training epochs.
    pub seg_epochs: usize,
    /// Independent finetune/eval seeds averaged per reported cell (reduces
    /// the single-run variance that would otherwise swamp the paper's
    /// robust-vs-natural gaps at this scale).
    pub eval_seeds: usize,
}

impl Preset {
    /// Builds the preset for a scale.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Smoke => Preset {
                scale,
                family: FamilyConfig::smoke(),
                seed: 2023,
                source_train: 64,
                source_test: 32,
                downstream_train: 32,
                downstream_test: 32,
                pretrain_epochs: 3,
                pretrain_lr: 0.05,
                pretrain_attack: AttackConfig::pgd(0.5, 2),
                smoothing_sigma: 0.5,
                eval_attack: AttackConfig::pgd(0.25, 2),
                finetune_epochs: 2,
                finetune_lr: 0.03,
                batch_size: 16,
                linear: LinearEvalConfig {
                    steps: 80,
                    lr: 0.5,
                    seed: 0,
                },
                sparsity_grid: vec![0.5, 0.9],
                imp_final_sparsity: 0.9,
                imp_rounds: 2,
                imp_round_epochs: 1,
                lmp_epochs: 2,
                ood_samples: 32,
                fid_samples: 48,
                seg_train: 16,
                seg_test: 8,
                seg_classes: 3,
                seg_epochs: 2,
                eval_seeds: 1,
            },
            Scale::Standard => Preset {
                scale,
                family: FamilyConfig::paper(),
                seed: 2023,
                source_train: 384,
                source_test: 192,
                downstream_train: 160,
                downstream_test: 192,
                pretrain_epochs: 8,
                pretrain_lr: 0.05,
                pretrain_attack: AttackConfig::pgd(0.4, 3),
                smoothing_sigma: 0.4,
                eval_attack: AttackConfig::pgd(0.25, 4),
                finetune_epochs: 10,
                finetune_lr: 0.01,
                batch_size: 32,
                linear: LinearEvalConfig {
                    steps: 250,
                    lr: 0.5,
                    seed: 0,
                },
                sparsity_grid: vec![0.5, 0.7, 0.9, 0.95, 0.99],
                imp_final_sparsity: 0.99,
                imp_rounds: 4,
                imp_round_epochs: 2,
                lmp_epochs: 4,
                ood_samples: 192,
                fid_samples: 256,
                seg_train: 96,
                seg_test: 48,
                seg_classes: 4,
                seg_epochs: 8,
                eval_seeds: 2,
            },
            Scale::Paper => Preset {
                scale,
                family: FamilyConfig::paper(),
                seed: 2023,
                source_train: 2048,
                source_test: 512,
                downstream_train: 512,
                downstream_test: 512,
                pretrain_epochs: 30,
                pretrain_lr: 0.05,
                pretrain_attack: AttackConfig::pgd(0.4, 5),
                smoothing_sigma: 0.4,
                eval_attack: AttackConfig::pgd(0.25, 7),
                finetune_epochs: 20,
                finetune_lr: 0.01,
                batch_size: 64,
                linear: LinearEvalConfig {
                    steps: 500,
                    lr: 0.5,
                    seed: 0,
                },
                sparsity_grid: vec![0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.98, 0.99],
                imp_final_sparsity: 0.99,
                imp_rounds: 8,
                imp_round_epochs: 4,
                lmp_epochs: 10,
                ood_samples: 512,
                fid_samples: 512,
                seg_train: 384,
                seg_test: 128,
                seg_classes: 6,
                seg_epochs: 12,
                eval_seeds: 3,
            },
        }
    }

    /// The ResNet-18-analog architecture at this scale.
    pub fn arch_r18(&self) -> ResNetConfig {
        match self.scale {
            Scale::Smoke => ResNetConfig::smoke(self.family.base_classes),
            _ => ResNetConfig::r18_analog(self.family.base_classes),
        }
    }

    /// The ResNet-50-analog architecture at this scale (the smoke scale
    /// substitutes a second tiny architecture to keep CI fast).
    pub fn arch_r50(&self) -> ResNetConfig {
        match self.scale {
            Scale::Smoke => {
                let mut cfg = ResNetConfig::smoke(self.family.base_classes);
                cfg.stage_widths = [4, 8, 12, 20];
                cfg
            }
            _ => ResNetConfig::r50_analog(self.family.base_classes),
        }
    }

    /// CIFAR-10-analog downstream spec.
    pub fn c10_spec(&self) -> DownstreamSpec {
        DownstreamSpec::c10_analog(
            self.family.base_classes,
            self.downstream_train,
            self.downstream_test,
        )
    }

    /// CIFAR-100-analog downstream spec.
    pub fn c100_spec(&self) -> DownstreamSpec {
        DownstreamSpec::c100_analog(
            self.family.base_classes,
            self.downstream_train,
            self.downstream_test,
        )
    }

    /// Finetuning configuration (the paper's recipe at this scale).
    pub fn finetune_cfg(&self, seed: u64) -> TrainConfig {
        TrainConfig::paper_finetune(
            self.finetune_epochs,
            self.batch_size,
            self.finetune_lr,
            seed,
        )
    }

    /// IMP round-training configuration with the given objective.
    pub fn imp_round_cfg(&self, objective: Objective, seed: u64) -> TrainConfig {
        TrainConfig {
            epochs: self.imp_round_epochs,
            batch_size: self.batch_size,
            lr: self.finetune_lr,
            momentum: 0.9,
            weight_decay: 1e-4,
            schedule: SchedulePolicy::Constant,
            objective,
            seed,
        }
    }

    /// LMP configuration at a target sparsity.
    pub fn lmp_cfg(&self, sparsity: f64, seed: u64) -> LmpRunConfig {
        LmpRunConfig {
            sparsity,
            epochs: self.lmp_epochs,
            batch_size: self.batch_size,
            score_lr: 0.1,
            head_lr: self.finetune_lr,
            init: LmpScoreInit::Magnitude,
            seed,
        }
    }

    /// Adversarial pretraining scheme at this scale.
    pub fn adversarial_scheme(&self) -> PretrainScheme {
        PretrainScheme::Adversarial(self.pretrain_attack)
    }

    /// Randomized-smoothing pretraining scheme at this scale.
    pub fn smoothing_scheme(&self) -> PretrainScheme {
        PretrainScheme::RandomSmoothing(self.smoothing_sigma)
    }

    /// Disk cache directory for pretrained snapshots.
    pub fn cache_dir(&self) -> PathBuf {
        PathBuf::from("target").join("pretrain-cache")
    }

    /// Cache key for a `(architecture, scheme)` pretraining run at this
    /// scale.
    pub fn cache_key(&self, arch_label: &str, scheme: &PretrainScheme) -> String {
        format!(
            "{}-{}-{}-seed{}",
            self.scale,
            arch_label,
            scheme.label(),
            self.seed
        )
    }

    /// Directory where drivers write their JSON records.
    pub fn results_dir(&self) -> PathBuf {
        PathBuf::from("results")
    }
}

/// One (x, y) point of a reported curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// X coordinate (usually sparsity).
    pub x: f64,
    /// Y coordinate (accuracy, mIoU, AUC, …).
    pub y: f64,
}

/// A labeled curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (e.g. `"robust/R18/c10"`).
    pub label: String,
    /// The curve's points, in x order.
    pub points: Vec<SeriesPoint>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push(SeriesPoint { x, y });
    }
}

/// A full experiment record: everything needed to regenerate one figure or
/// table of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Stable identifier (`"fig1"`, `"table1"`, …).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Scale the record was produced at.
    pub scale: String,
    /// The measured curves.
    pub series: Vec<Series>,
    /// Free-form notes (shape checks, caveats).
    pub notes: Vec<String>,
}

impl ExperimentRecord {
    /// Creates an empty record.
    pub fn new(id: impl Into<String>, title: impl Into<String>, scale: Scale) -> Self {
        ExperimentRecord {
            id: id.into(),
            title: title.into(),
            scale: scale.to_string(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Renders the record as a GitHub-flavored markdown table (x down the
    /// rows, one column per series).
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "### {} — {} (scale: {})\n\n",
            self.id, self.title, self.scale
        );
        // Collect the union of x values.
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

        out.push_str("| x |");
        for s in &self.series {
            out.push_str(&format!(" {} |", s.label));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.series {
            out.push_str("---|");
        }
        out.push('\n');
        for &x in &xs {
            out.push_str(&format!("| {x:.4} |"));
            for s in &self.series {
                match s.points.iter().find(|p| (p.x - x).abs() < 1e-12) {
                    Some(p) => out.push_str(&format!(" {:.4} |", p.y)),
                    None => out.push_str(" — |"),
                }
            }
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("- {n}\n"));
            }
        }
        out
    }

    /// Writes the record as pretty JSON into `dir/<id>-<scale>.json`.
    /// The write is atomic (temp file + rename) so an interrupted driver
    /// never leaves a torn record where a complete one used to be.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the directory cannot be created or written.
    pub fn save(&self, dir: &std::path::Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}-{}.json", self.id, self.scale));
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        rt_nn::checkpoint::atomic_write(&path, json.as_bytes())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("STANDARD"), Some(Scale::Standard));
        assert_eq!(Scale::parse("Paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
        assert_eq!(Scale::Smoke.to_string(), "smoke");
    }

    #[test]
    fn scale_arg_slice_parsing() {
        let args = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert_eq!(Scale::from_arg_slice(&args(&["drv"])), Ok(Scale::Standard));
        assert_eq!(
            Scale::from_arg_slice(&args(&["drv", "--scale", "smoke"])),
            Ok(Scale::Smoke)
        );
        assert_eq!(
            Scale::from_arg_slice(&args(&["drv", "--scale=paper"])),
            Ok(Scale::Paper)
        );
        // Last occurrence wins; unrelated flags are ignored.
        assert_eq!(
            Scale::from_arg_slice(&args(&["drv", "--scale=paper", "--resume", "--scale", "smoke"])),
            Ok(Scale::Smoke)
        );
        assert_eq!(
            Scale::from_arg_slice(&args(&["drv", "--scale", "huge"])),
            Err("huge".to_string())
        );
        assert_eq!(
            Scale::from_arg_slice(&args(&["drv", "--scale=huge"])),
            Err("huge".to_string())
        );
        assert_eq!(
            Scale::from_arg_slice(&args(&["drv", "--scale"])),
            Err("<missing>".to_string())
        );
    }

    #[test]
    fn presets_scale_monotonically() {
        let smoke = Preset::new(Scale::Smoke);
        let standard = Preset::new(Scale::Standard);
        let paper = Preset::new(Scale::Paper);
        assert!(smoke.source_train < standard.source_train);
        assert!(standard.source_train < paper.source_train);
        assert!(smoke.pretrain_epochs < standard.pretrain_epochs);
        assert!(standard.pretrain_epochs < paper.pretrain_epochs);
        assert!(standard.sparsity_grid.len() <= paper.sparsity_grid.len());
    }

    #[test]
    fn cache_keys_distinguish_everything() {
        let p = Preset::new(Scale::Standard);
        let k1 = p.cache_key("r18", &PretrainScheme::Natural);
        let k2 = p.cache_key("r50", &PretrainScheme::Natural);
        let k3 = p.cache_key("r18", &p.adversarial_scheme());
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
    }

    #[test]
    fn r50_arch_is_larger_than_r18() {
        for scale in [Scale::Smoke, Scale::Standard] {
            let p = Preset::new(scale);
            use rt_nn::Layer as _;
            use rt_tensor::rng::rng_from_seed;
            let r18 = rt_models::MicroResNet::new(&p.arch_r18(), &mut rng_from_seed(0)).unwrap();
            let r50 = rt_models::MicroResNet::new(&p.arch_r50(), &mut rng_from_seed(0)).unwrap();
            assert!(r50.param_count() > r18.param_count(), "{scale:?}");
        }
    }

    #[test]
    fn record_markdown_layout() {
        let mut rec = ExperimentRecord::new("figX", "demo", Scale::Smoke);
        let mut a = Series::new("robust");
        a.push(0.5, 0.9);
        a.push(0.9, 0.8);
        let mut b = Series::new("natural");
        b.push(0.5, 0.85);
        rec.series.push(a);
        rec.series.push(b);
        rec.notes.push("robust wins".to_string());
        let md = rec.to_markdown();
        assert!(md.contains("| x | robust | natural |"));
        assert!(md.contains("| 0.5000 | 0.9000 | 0.8500 |"));
        assert!(md.contains("| 0.9000 | 0.8000 | — |"));
        assert!(md.contains("- robust wins"));
    }

    #[test]
    fn record_save_round_trip() {
        let dir = std::env::temp_dir().join("rt-record-test");
        let _ = std::fs::remove_dir_all(&dir);
        let rec = ExperimentRecord::new("figY", "demo", Scale::Smoke);
        let path = rec.save(&dir).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        let back: ExperimentRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
