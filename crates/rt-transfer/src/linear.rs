//! Linear evaluation: the ticket's weights are *frozen* and only a new
//! linear classifier is trained on its pooled features (Fig. 2, Fig. 9).
//!
//! Because the backbone never changes, features are extracted once in eval
//! mode and the head is trained directly on the cached feature matrix —
//! mathematically identical to freezing the backbone inside the full loop,
//! and an order of magnitude faster.

use crate::evaluate::extract_features;
use crate::Result;
use rt_data::Task;
use rt_metrics::accuracy;
use rt_models::MicroResNet;
use rt_nn::layers::Linear;
use rt_nn::loss::CrossEntropyLoss;
use rt_nn::optim::Sgd;
use rt_nn::{ExecCtx, Layer};
use rt_tensor::rng::SeedStream;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a linear evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearEvalConfig {
    /// Full-batch gradient steps on the head.
    pub steps: usize,
    /// Head learning rate.
    pub lr: f32,
    /// Seed for head initialization.
    pub seed: u64,
}

impl Default for LinearEvalConfig {
    fn default() -> Self {
        LinearEvalConfig {
            steps: 200,
            lr: 0.5,
            seed: 0,
        }
    }
}

/// Trains a fresh linear head on the frozen features of `model` over
/// `task.train` and returns the test accuracy.
///
/// # Errors
///
/// Propagates feature-extraction and training errors.
pub fn linear_eval(model: &mut MicroResNet, task: &Task, config: &LinearEvalConfig) -> Result<f64> {
    let train_feats = extract_features(model, task.train.images())?;
    let test_feats = extract_features(model, task.test.images())?;
    let classes = task.train.num_classes();
    let seeds = SeedStream::new(config.seed);
    let mut head = Linear::new(model.feature_dim(), classes, &mut seeds.child("head").rng())?;
    let loss_fn = CrossEntropyLoss::new();
    let opt = Sgd::new(config.lr).with_momentum(0.9);
    let ctx = ExecCtx::train();
    for _ in 0..config.steps {
        let logits = head.forward(&train_feats, ctx)?;
        let out = loss_fn.forward(&logits, task.train.labels())?;
        head.backward(&out.grad, ctx)?;
        opt.step(&mut head)?;
    }
    let logits = head.forward(&test_feats, ExecCtx::eval())?;
    accuracy(&logits, task.test.labels()).map_err(rt_nn::NnError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretrain::{pretrain, PretrainScheme};
    use rt_data::{DownstreamSpec, FamilyConfig, TaskFamily};
    use rt_models::ResNetConfig;
    use rt_nn::checkpoint::StateDict;

    #[test]
    fn linear_eval_beats_chance_and_preserves_backbone() {
        let family = TaskFamily::new(FamilyConfig::smoke(), 41);
        let source = family.source_task(48, 16).unwrap();
        let spec = DownstreamSpec {
            name: "lin-test".to_string(),
            gap: 0.2,
            num_classes: 2,
            train_size: 40,
            test_size: 40,
        };
        let task = family.downstream_task(&spec).unwrap();
        let pre = pretrain(
            &ResNetConfig::smoke(4),
            &source,
            PretrainScheme::Natural,
            6,
            0.05,
            1,
        )
        .unwrap();
        let mut model = pre.fresh_model(2).unwrap();
        let before = StateDict::capture(&model);
        let acc = linear_eval(&mut model, &task, &LinearEvalConfig::default()).unwrap();
        assert!(acc > 0.55, "linear-eval accuracy {acc} ≤ chance");
        // The backbone (and even the old head) is untouched.
        assert_eq!(StateDict::capture(&model), before);
    }

    #[test]
    fn pretrained_features_are_linearly_separable_downstream() {
        // Features from a pretrained model must support clearly
        // above-chance linear probing on a near-domain task — the premise
        // of transfer learning. (Random conv features are a surprisingly
        // strong baseline at smoke scale, so we assert absolute quality
        // rather than a pairwise win.)
        let family = TaskFamily::new(FamilyConfig::smoke(), 42);
        let source = family.source_task(64, 16).unwrap();
        let spec = DownstreamSpec {
            name: "lin-cmp".to_string(),
            gap: 0.1,
            num_classes: 3,
            train_size: 48,
            test_size: 48,
        };
        let task = family.downstream_task(&spec).unwrap();
        let cfg = LinearEvalConfig::default();

        let pre = pretrain(
            &ResNetConfig::smoke(4),
            &source,
            PretrainScheme::Natural,
            8,
            0.05,
            7,
        )
        .unwrap();
        let mut trained = pre.fresh_model(1).unwrap();
        let acc_trained = linear_eval(&mut trained, &task, &cfg).unwrap();
        assert!(
            acc_trained > 0.5,
            "pretrained features should probe well above 1/3 chance, got {acc_trained}"
        );
    }
}
