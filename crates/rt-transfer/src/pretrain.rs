//! Source-task pretraining under the three schemes of the paper, with a
//! disk cache so the experiment drivers share pretrained models.

use crate::training::{train, Objective, SchedulePolicy, TrainConfig};
use crate::Result;
use rt_adv::attack::AttackConfig;
use rt_data::Task;
use rt_models::{MicroResNet, ResNetConfig};
use rt_nn::checkpoint::StateDict;
use rt_nn::NnError;
use rt_tensor::rng::SeedStream;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// How the dense source model is pretrained.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PretrainScheme {
    /// Plain cross-entropy training → *natural* tickets.
    Natural,
    /// PGD adversarial training → *robust* tickets.
    Adversarial(AttackConfig),
    /// Randomized-smoothing (Gaussian-noise) training → the alternative
    /// robustness prior of Fig. 6.
    RandomSmoothing(f32),
}

impl PretrainScheme {
    /// Short stable label (used in cache keys and report rows).
    pub fn label(&self) -> String {
        match self {
            PretrainScheme::Natural => "natural".to_string(),
            PretrainScheme::Adversarial(a) => {
                format!("adv-e{:.3}-s{}", a.epsilon, a.steps)
            }
            PretrainScheme::RandomSmoothing(sigma) => format!("rs-{sigma:.3}"),
        }
    }

    fn objective(&self) -> Objective {
        match self {
            PretrainScheme::Natural => Objective::Natural,
            PretrainScheme::Adversarial(a) => Objective::Adversarial(*a),
            PretrainScheme::RandomSmoothing(sigma) => Objective::GaussianNoise(*sigma),
        }
    }
}

/// A pretrained dense model plus its weight snapshot (the `θ_pre` every
/// ticket scheme reads) and provenance.
pub struct Pretrained {
    /// The trained model (weights == `snapshot`).
    pub model: MicroResNet,
    /// Snapshot of the pretrained weights and buffers, used for IMP
    /// rewinding and for re-materializing fresh copies.
    pub snapshot: StateDict,
    /// The scheme that produced it.
    pub scheme: PretrainScheme,
    /// The architecture (for rebuilding models from the snapshot).
    pub arch: ResNetConfig,
}

impl Pretrained {
    /// Builds a fresh model carrying the pretrained weights — cheap
    /// insurance against accidental cross-experiment state leaks.
    ///
    /// # Errors
    ///
    /// Propagates construction/restore errors.
    pub fn fresh_model(&self, seed: u64) -> Result<MicroResNet> {
        let mut model = MicroResNet::new(&self.arch, &mut SeedStream::new(seed).rng())?;
        self.snapshot.restore(&mut model)?;
        Ok(model)
    }
}

/// Pretrains a dense model of architecture `arch` on `source.train` under
/// `scheme`.
///
/// # Errors
///
/// Propagates training errors.
pub fn pretrain(
    arch: &ResNetConfig,
    source: &Task,
    scheme: PretrainScheme,
    epochs: usize,
    lr: f32,
    seed: u64,
) -> Result<Pretrained> {
    let seeds = SeedStream::new(seed);
    let arch = arch.clone().with_classes(source.train.num_classes());
    let mut model = MicroResNet::new(&arch, &mut seeds.child("init").rng())?;
    let cfg = TrainConfig {
        epochs,
        batch_size: 32,
        lr,
        momentum: 0.9,
        weight_decay: 1e-4,
        schedule: SchedulePolicy::PaperStep,
        objective: scheme.objective(),
        seed: seeds.child("train").seed(),
    };
    train(&mut model, &source.train, &cfg)?;
    let snapshot = StateDict::capture(&model);
    Ok(Pretrained {
        model,
        snapshot,
        scheme,
        arch,
    })
}

/// Cached snapshot payload (architecture + weights) as stored on disk.
#[derive(Serialize, Deserialize)]
struct CacheEntry {
    arch: ResNetConfig,
    scheme_label: String,
    snapshot: StateDict,
}

/// Pretrains with a JSON disk cache: if `(key)` was pretrained before, the
/// snapshot is loaded instead of retrained. The cache key should encode
/// every input that affects the result (architecture, scheme, scale,
/// seed) — [`crate::Preset`] builds such keys.
///
/// # Errors
///
/// Propagates training errors; I/O problems fall back to retraining (a
/// cache must never change results).
#[allow(clippy::too_many_arguments)] // a flat config mirror of `pretrain` + cache keys
pub fn pretrain_cached(
    cache_dir: &Path,
    key: &str,
    arch: &ResNetConfig,
    source: &Task,
    scheme: PretrainScheme,
    epochs: usize,
    lr: f32,
    seed: u64,
) -> Result<Pretrained> {
    let path = cache_path(cache_dir, key);
    if let Some(hit) = try_load(&path, arch) {
        let mut model = MicroResNet::new(
            &arch.clone().with_classes(source.train.num_classes()),
            &mut SeedStream::new(seed).rng(),
        )?;
        hit.snapshot.restore(&mut model)?;
        return Ok(Pretrained {
            model,
            snapshot: hit.snapshot,
            scheme,
            arch: hit.arch,
        });
    }
    let result = pretrain(arch, source, scheme, epochs, lr, seed)?;
    let entry = CacheEntry {
        arch: result.arch.clone(),
        scheme_label: scheme.label(),
        snapshot: result.snapshot.clone(),
    };
    if let Ok(json) = serde_json::to_string(&entry) {
        let _ = std::fs::create_dir_all(cache_dir);
        let _ = std::fs::write(&path, json);
    }
    Ok(result)
}

fn cache_path(dir: &Path, key: &str) -> PathBuf {
    // Keys are generated internally and filesystem-safe by construction;
    // sanitize defensively anyway.
    let safe: String = key
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect();
    dir.join(format!("{safe}.json"))
}

fn try_load(path: &Path, expected_arch: &ResNetConfig) -> Option<CacheEntry> {
    let json = std::fs::read_to_string(path).ok()?;
    let entry: CacheEntry = serde_json::from_str(&json).ok()?;
    // Architectural drift invalidates the cache (class count may differ —
    // it is set from the task at restore time).
    let mut a = entry.arch.clone();
    let mut b = expected_arch.clone();
    a.num_classes = 0;
    b.num_classes = 0;
    (a == b).then_some(entry)
}

/// Validates that a snapshot can be restored into `arch`; exposed for
/// integration tests.
///
/// # Errors
///
/// Returns [`NnError::StateDictMismatch`] on incompatibility.
pub fn validate_snapshot(arch: &ResNetConfig, snapshot: &StateDict, classes: usize) -> Result<()> {
    let mut model = MicroResNet::new(
        &arch.clone().with_classes(classes),
        &mut SeedStream::new(0).rng(),
    )?;
    snapshot.restore(&mut model).map_err(|e| match e {
        NnError::StateDictMismatch { detail } => NnError::StateDictMismatch { detail },
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_data::{FamilyConfig, TaskFamily};
    use rt_metrics::accuracy;
    use rt_nn::{Layer, Mode};

    fn source() -> Task {
        TaskFamily::new(FamilyConfig::smoke(), 5)
            .source_task(48, 24)
            .unwrap()
    }

    #[test]
    fn natural_pretraining_beats_chance() {
        let task = source();
        let mut pre = pretrain(
            &ResNetConfig::smoke(4),
            &task,
            PretrainScheme::Natural,
            8,
            0.05,
            1,
        )
        .unwrap();
        let logits = pre.model.forward(task.test.images(), Mode::Eval).unwrap();
        let acc = accuracy(&logits, task.test.labels()).unwrap();
        assert!(acc > 0.4, "pretrained accuracy {acc} ≤ chance (0.25)");
    }

    #[test]
    fn scheme_labels_are_distinct() {
        let a = PretrainScheme::Natural.label();
        let b = PretrainScheme::Adversarial(AttackConfig::pgd(0.25, 3)).label();
        let c = PretrainScheme::RandomSmoothing(0.25).label();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn fresh_model_matches_snapshot() {
        let task = source();
        let pre = pretrain(
            &ResNetConfig::smoke(4),
            &task,
            PretrainScheme::Natural,
            2,
            0.05,
            2,
        )
        .unwrap();
        let mut fresh = pre.fresh_model(99).unwrap();
        let mut orig = pre.fresh_model(100).unwrap();
        let x = task.test.images().slice_rows(0, 4).unwrap();
        let y1 = fresh.forward(&x, Mode::Eval).unwrap();
        let y2 = orig.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y1, y2, "fresh models from the same snapshot must agree");
    }

    #[test]
    fn cache_round_trip_preserves_weights() {
        let dir = std::env::temp_dir().join("rt-pretrain-cache-test");
        let _ = std::fs::remove_dir_all(&dir);
        let task = source();
        let arch = ResNetConfig::smoke(4);
        let first = pretrain_cached(
            &dir,
            "unit-test-key",
            &arch,
            &task,
            PretrainScheme::Natural,
            2,
            0.05,
            3,
        )
        .unwrap();
        // Second call must hit the cache and restore identical weights.
        let second = pretrain_cached(
            &dir,
            "unit-test-key",
            &arch,
            &task,
            PretrainScheme::Natural,
            2,
            0.05,
            3,
        )
        .unwrap();
        assert_eq!(first.snapshot, second.snapshot);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_rejects_architecture_drift() {
        let dir = std::env::temp_dir().join("rt-pretrain-cache-drift");
        let _ = std::fs::remove_dir_all(&dir);
        let task = source();
        pretrain_cached(
            &dir,
            "drift-key",
            &ResNetConfig::smoke(4),
            &task,
            PretrainScheme::Natural,
            1,
            0.05,
            4,
        )
        .unwrap();
        // Same key, different architecture: must retrain, not corrupt.
        let other = pretrain_cached(
            &dir,
            "drift-key",
            &ResNetConfig::r18_analog(4),
            &task,
            PretrainScheme::Natural,
            1,
            0.05,
            4,
        )
        .unwrap();
        assert_eq!(
            other.arch.stage_widths,
            ResNetConfig::r18_analog(4).stage_widths
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_snapshot_detects_mismatch() {
        let task = source();
        let pre = pretrain(
            &ResNetConfig::smoke(4),
            &task,
            PretrainScheme::Natural,
            1,
            0.05,
            5,
        )
        .unwrap();
        assert!(validate_snapshot(&ResNetConfig::smoke(4), &pre.snapshot, 4).is_ok());
        assert!(validate_snapshot(&ResNetConfig::r18_analog(4), &pre.snapshot, 4).is_err());
    }
}
