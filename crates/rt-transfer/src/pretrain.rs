//! Source-task pretraining under the three schemes of the paper, with a
//! disk cache so the experiment drivers share pretrained models.

use crate::training::{
    train_with_recovery, Objective, RecoveryPolicy, SchedulePolicy, TrainConfig, TrainReport,
};
use crate::Result;
use rt_adv::attack::AttackConfig;
use rt_data::Task;
use rt_models::{MicroResNet, ResNetConfig};
use rt_nn::checkpoint::StateDict;
use rt_nn::NnError;
use rt_tensor::rng::SeedStream;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// How the dense source model is pretrained.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PretrainScheme {
    /// Plain cross-entropy training → *natural* tickets.
    Natural,
    /// PGD adversarial training → *robust* tickets.
    Adversarial(AttackConfig),
    /// Randomized-smoothing (Gaussian-noise) training → the alternative
    /// robustness prior of Fig. 6.
    RandomSmoothing(f32),
}

impl PretrainScheme {
    /// Short stable label (used in cache keys and report rows).
    pub fn label(&self) -> String {
        match self {
            PretrainScheme::Natural => "natural".to_string(),
            PretrainScheme::Adversarial(a) => {
                format!("adv-e{:.3}-s{}", a.epsilon, a.steps)
            }
            PretrainScheme::RandomSmoothing(sigma) => format!("rs-{sigma:.3}"),
        }
    }

    fn objective(&self) -> Objective {
        match self {
            PretrainScheme::Natural => Objective::Natural,
            PretrainScheme::Adversarial(a) => Objective::Adversarial(*a),
            PretrainScheme::RandomSmoothing(sigma) => Objective::GaussianNoise(*sigma),
        }
    }
}

/// A pretrained dense model plus its weight snapshot (the `θ_pre` every
/// ticket scheme reads) and provenance.
pub struct Pretrained {
    /// The trained model (weights == `snapshot`).
    pub model: MicroResNet,
    /// Snapshot of the pretrained weights and buffers, used for IMP
    /// rewinding and for re-materializing fresh copies.
    pub snapshot: StateDict,
    /// The scheme that produced it.
    pub scheme: PretrainScheme,
    /// The architecture (for rebuilding models from the snapshot).
    pub arch: ResNetConfig,
    /// Training report of the pretraining run (empty for cache hits —
    /// the cache stores weights, not histories).
    pub report: TrainReport,
}

impl Pretrained {
    /// Builds a fresh model carrying the pretrained weights — cheap
    /// insurance against accidental cross-experiment state leaks.
    ///
    /// # Errors
    ///
    /// Propagates construction/restore errors.
    pub fn fresh_model(&self, seed: u64) -> Result<MicroResNet> {
        let mut model = MicroResNet::new(&self.arch, &mut SeedStream::new(seed).rng())?;
        self.snapshot.restore(&mut model)?;
        Ok(model)
    }
}

/// Pretrains a dense model of architecture `arch` on `source.train` under
/// `scheme`, with the default divergence-recovery policy: PGD adversarial
/// pretraining is the workspace's most NaN-prone loop, and a single bad
/// batch must not cost the whole (hours-long at paper scale) run.
///
/// # Errors
///
/// Propagates training errors, including [`rt_nn::NnError::Diverged`]
/// once the recovery budget is exhausted.
pub fn pretrain(
    arch: &ResNetConfig,
    source: &Task,
    scheme: PretrainScheme,
    epochs: usize,
    lr: f32,
    seed: u64,
) -> Result<Pretrained> {
    let _span = rt_obs::span!(
        "pretrain.train",
        "scheme" => scheme.label(),
        "epochs" => epochs,
    );
    let seeds = SeedStream::new(seed);
    let arch = arch.clone().with_classes(source.train.num_classes());
    let mut model = MicroResNet::new(&arch, &mut seeds.child("init").rng())?;
    let cfg = TrainConfig {
        epochs,
        batch_size: 32,
        lr,
        momentum: 0.9,
        weight_decay: 1e-4,
        schedule: SchedulePolicy::PaperStep,
        objective: scheme.objective(),
        seed: seeds.child("train").seed(),
    };
    let report = train_with_recovery(&mut model, &source.train, &cfg, &RecoveryPolicy::default())?;
    let snapshot = StateDict::capture(&model);
    Ok(Pretrained {
        model,
        snapshot,
        scheme,
        arch,
        report,
    })
}

/// Cached snapshot payload (architecture + weights) as stored on disk.
/// `checksum` (over the snapshot, see [`StateDict::checksum`]) defaults
/// to `None` so pre-hardening cache files still load.
#[derive(Serialize, Deserialize)]
struct CacheEntry {
    arch: ResNetConfig,
    scheme_label: String,
    snapshot: StateDict,
    #[serde(default)]
    checksum: Option<u64>,
}

/// Pretrains with a JSON disk cache: if `(key)` was pretrained before, the
/// snapshot is loaded instead of retrained. The cache key should encode
/// every input that affects the result (architecture, scheme, scale,
/// seed) — [`crate::Preset`] builds such keys.
///
/// # Errors
///
/// Propagates training errors; I/O problems fall back to retraining (a
/// cache must never change results).
#[allow(clippy::too_many_arguments)] // a flat config mirror of `pretrain` + cache keys
pub fn pretrain_cached(
    cache_dir: &Path,
    key: &str,
    arch: &ResNetConfig,
    source: &Task,
    scheme: PretrainScheme,
    epochs: usize,
    lr: f32,
    seed: u64,
) -> Result<Pretrained> {
    let path = cache_path(cache_dir, key);
    if let Some(hit) = try_load(&path, arch) {
        rt_obs::counter("pretrain.cache_hits").inc();
        rt_obs::event("pretrain.cache", &[("key", key.into()), ("hit", true.into())]);
        let mut model = MicroResNet::new(
            &arch.clone().with_classes(source.train.num_classes()),
            &mut SeedStream::new(seed).rng(),
        )?;
        hit.snapshot.restore(&mut model)?;
        return Ok(Pretrained {
            model,
            snapshot: hit.snapshot,
            scheme,
            arch: hit.arch,
            report: TrainReport {
                epoch_losses: Vec::new(),
                rewinds: 0,
            },
        });
    }
    rt_obs::counter("pretrain.cache_misses").inc();
    rt_obs::event(
        "pretrain.cache",
        &[("key", key.into()), ("hit", false.into())],
    );
    let result = pretrain(arch, source, scheme, epochs, lr, seed)?;
    let entry = CacheEntry {
        arch: result.arch.clone(),
        scheme_label: scheme.label(),
        snapshot: result.snapshot.clone(),
        checksum: Some(result.snapshot.checksum()),
    };
    if let Ok(json) = serde_json::to_string(&entry) {
        // Fault-injection hook (no-op unless armed) simulating a torn
        // write, then an atomic temp-file + rename so real interruptions
        // never leave a half-written cache entry at the final path.
        let json = crate::fault::corrupt_checkpoint_bytes(json);
        if let Err(e) = rt_nn::checkpoint::atomic_write(&path, json.as_bytes()) {
            rt_obs::console!("[pretrain-cache] write failed (cache skipped): {e}");
        }
    }
    Ok(result)
}

fn cache_path(dir: &Path, key: &str) -> PathBuf {
    // Keys are generated internally and filesystem-safe by construction;
    // sanitize defensively anyway.
    let safe: String = key
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect();
    dir.join(format!("{safe}.json"))
}

fn try_load(path: &Path, expected_arch: &ResNetConfig) -> Option<CacheEntry> {
    let json = std::fs::read_to_string(path).ok()?;
    let entry: CacheEntry = match serde_json::from_str(&json) {
        Ok(entry) => entry,
        Err(e) => {
            if !json.is_empty() {
                rt_obs::console!(
                    "[pretrain-cache] {} is corrupt ({e}); retraining",
                    path.display()
                );
            }
            return None;
        }
    };
    // Integrity: a stored checksum must match the recomputed one, and the
    // weights must be finite — a corrupted cache entry silently feeding
    // garbage into every downstream figure would be far worse than the
    // retrain it costs to reject it.
    if let Some(stored) = entry.checksum {
        let actual = entry.snapshot.checksum();
        if stored != actual {
            rt_obs::console!(
                "[pretrain-cache] {} failed checksum ({stored:#018x} vs {actual:#018x}); retraining",
                path.display()
            );
            return None;
        }
    }
    if let Err(e) = entry.snapshot.validate_finite() {
        rt_obs::console!(
            "[pretrain-cache] {} holds non-finite weights ({e}); retraining",
            path.display()
        );
        return None;
    }
    // Architectural drift invalidates the cache (class count may differ —
    // it is set from the task at restore time).
    let mut a = entry.arch.clone();
    let mut b = expected_arch.clone();
    a.num_classes = 0;
    b.num_classes = 0;
    (a == b).then_some(entry)
}

/// Validates that a snapshot can be restored into `arch`; exposed for
/// integration tests.
///
/// # Errors
///
/// Returns [`NnError::StateDictMismatch`] on incompatibility.
pub fn validate_snapshot(arch: &ResNetConfig, snapshot: &StateDict, classes: usize) -> Result<()> {
    let mut model = MicroResNet::new(
        &arch.clone().with_classes(classes),
        &mut SeedStream::new(0).rng(),
    )?;
    snapshot.restore(&mut model).map_err(|e| match e {
        NnError::StateDictMismatch { detail } => NnError::StateDictMismatch { detail },
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_data::{FamilyConfig, TaskFamily};
    use rt_metrics::accuracy;
    use rt_nn::{ExecCtx, Layer};

    fn source() -> Task {
        TaskFamily::new(FamilyConfig::smoke(), 5)
            .source_task(48, 24)
            .unwrap()
    }

    #[test]
    fn natural_pretraining_beats_chance() {
        let task = source();
        let mut pre = pretrain(
            &ResNetConfig::smoke(4),
            &task,
            PretrainScheme::Natural,
            8,
            0.05,
            1,
        )
        .unwrap();
        let logits = pre.model.forward(task.test.images(), ExecCtx::eval()).unwrap();
        let acc = accuracy(&logits, task.test.labels()).unwrap();
        assert!(acc > 0.4, "pretrained accuracy {acc} ≤ chance (0.25)");
    }

    #[test]
    fn scheme_labels_are_distinct() {
        let a = PretrainScheme::Natural.label();
        let b = PretrainScheme::Adversarial(AttackConfig::pgd(0.25, 3)).label();
        let c = PretrainScheme::RandomSmoothing(0.25).label();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn fresh_model_matches_snapshot() {
        let task = source();
        let pre = pretrain(
            &ResNetConfig::smoke(4),
            &task,
            PretrainScheme::Natural,
            2,
            0.05,
            2,
        )
        .unwrap();
        let mut fresh = pre.fresh_model(99).unwrap();
        let mut orig = pre.fresh_model(100).unwrap();
        let x = task.test.images().slice_rows(0, 4).unwrap();
        let y1 = fresh.forward(&x, ExecCtx::eval()).unwrap();
        let y2 = orig.forward(&x, ExecCtx::eval()).unwrap();
        assert_eq!(y1, y2, "fresh models from the same snapshot must agree");
    }

    #[test]
    fn cache_round_trip_preserves_weights() {
        let dir = std::env::temp_dir().join("rt-pretrain-cache-test");
        let _ = std::fs::remove_dir_all(&dir);
        let task = source();
        let arch = ResNetConfig::smoke(4);
        let first = pretrain_cached(
            &dir,
            "unit-test-key",
            &arch,
            &task,
            PretrainScheme::Natural,
            2,
            0.05,
            3,
        )
        .unwrap();
        // Second call must hit the cache and restore identical weights.
        let second = pretrain_cached(
            &dir,
            "unit-test-key",
            &arch,
            &task,
            PretrainScheme::Natural,
            2,
            0.05,
            3,
        )
        .unwrap();
        assert_eq!(first.snapshot, second.snapshot);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_rejects_architecture_drift() {
        let dir = std::env::temp_dir().join("rt-pretrain-cache-drift");
        let _ = std::fs::remove_dir_all(&dir);
        let task = source();
        pretrain_cached(
            &dir,
            "drift-key",
            &ResNetConfig::smoke(4),
            &task,
            PretrainScheme::Natural,
            1,
            0.05,
            4,
        )
        .unwrap();
        // Same key, different architecture: must retrain, not corrupt.
        let other = pretrain_cached(
            &dir,
            "drift-key",
            &ResNetConfig::r18_analog(4),
            &task,
            PretrainScheme::Natural,
            1,
            0.05,
            4,
        )
        .unwrap();
        assert_eq!(
            other.arch.stage_widths,
            ResNetConfig::r18_analog(4).stage_widths
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_cache_entry_falls_back_to_retraining() {
        let dir = std::env::temp_dir().join("rt-pretrain-cache-trunc");
        let _ = std::fs::remove_dir_all(&dir);
        let task = source();
        let arch = ResNetConfig::smoke(4);
        // The injected fault truncates the first cache write (torn-write
        // analog that survives even the atomic rename).
        {
            let _g = crate::fault::scoped(
                crate::fault::FaultPlan::default().with_truncation(40, 1),
            );
            pretrain_cached(
                &dir,
                "trunc-key",
                &arch,
                &task,
                PretrainScheme::Natural,
                1,
                0.05,
                6,
            )
            .unwrap();
        }
        // Second call must detect the corrupt entry, retrain, and agree
        // with an uncached run bit-for-bit.
        let second = pretrain_cached(
            &dir,
            "trunc-key",
            &arch,
            &task,
            PretrainScheme::Natural,
            1,
            0.05,
            6,
        )
        .unwrap();
        let direct = pretrain(&arch, &task, PretrainScheme::Natural, 1, 0.05, 6).unwrap();
        assert_eq!(second.snapshot, direct.snapshot);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn adversarial_pretraining_survives_injected_nan() {
        let task = source();
        let _g =
            crate::fault::scoped(crate::fault::FaultPlan::default().with_nan_loss(0, 0, 1));
        let pre = pretrain(
            &ResNetConfig::smoke(4),
            &task,
            PretrainScheme::Adversarial(AttackConfig::pgd(0.3, 2)),
            2,
            0.05,
            7,
        )
        .unwrap();
        assert_eq!(pre.report.rewinds, 1, "one rewind consumed");
        assert_eq!(pre.report.epoch_losses.len(), 2);
        assert!(pre.report.epoch_losses.iter().all(|l| l.is_finite()));
        pre.snapshot.validate_finite().unwrap();
    }

    #[test]
    fn validate_snapshot_detects_mismatch() {
        let task = source();
        let pre = pretrain(
            &ResNetConfig::smoke(4),
            &task,
            PretrainScheme::Natural,
            1,
            0.05,
            5,
        )
        .unwrap();
        assert!(validate_snapshot(&ResNetConfig::smoke(4), &pre.snapshot, 4).is_ok());
        assert!(validate_snapshot(&ResNetConfig::r18_analog(4), &pre.snapshot, 4).is_err());
    }
}
