//! Deterministic, seeded fault injection for fault-tolerance testing.
//!
//! The experiment runner ([`crate::runner`]), the training loop
//! ([`crate::training`]), and the pretrain disk cache
//! ([`crate::pretrain`]) each consult this module at their fault points.
//! When no plan is installed (the default), every hook is a no-op on the
//! hot path — a single thread-local `Option` check.
//!
//! Five fault kinds are supported, mirroring the failure modes the
//! fault-tolerant runner must survive:
//!
//! * **NaN-flip loss** — [`corrupt_loss`] replaces the batch loss at a
//!   given `(epoch, batch)` coordinate with `NaN`, triggering the
//!   divergence guard in [`crate::training::train_with_recovery`].
//! * **Panic-in-cell** — [`fire_panic_cell`] panics when the runner
//!   executes a given cell ordinal, simulating a crashed/killed driver.
//! * **Hang-in-cell** — [`fire_hang_cell`] spins (cooperatively — it
//!   polls the ambient [`rt_par::CancelToken`]) when the runner executes
//!   a given cell ordinal, simulating a wedged cell that only the
//!   watchdog deadline can recover.
//! * **Delay-in-cell** — [`fire_delay_cell`] sleeps a fixed number of
//!   milliseconds before the cell body, for testing deadline margins
//!   without wedging anything.
//! * **Truncate-checkpoint-bytes** — [`corrupt_checkpoint_bytes`]
//!   truncates a serialized checkpoint payload before it reaches disk,
//!   simulating a torn write that integrity checks must catch on load.
//!
//! Plans are installed per **thread** (tests run concurrently; faults must
//! not leak across them) either programmatically ([`install`] /
//! [`scoped`]) or from the `RT_FAULTS` environment variable
//! ([`install_from_env`], used by the drivers), e.g.:
//!
//! ```text
//! RT_FAULTS="nan-loss:1:0:1,panic-cell:3:inf,truncate:64:1,hang:2:1,delay:0:250"
//! ```
//!
//! Every fault has a `times` budget so recovery paths can be tested:
//! a `times = 1` NaN-flip fires once and the seed-bumped retry succeeds.

use std::cell::RefCell;

/// A NaN-flip fault: replaces the batch loss at `(epoch, batch)` with NaN,
/// at most `times` times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NanLossFault {
    /// Epoch coordinate (0-based).
    pub epoch: usize,
    /// Batch coordinate within the epoch (0-based).
    pub batch: usize,
    /// Remaining firing budget (`usize::MAX` = every time).
    pub times: usize,
}

/// A panic-in-cell fault: panics when the runner executes the cell with
/// this ordinal (0-based execution order), at most `times` times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicCellFault {
    /// Cell ordinal in execution order (0-based, counts every
    /// `run_cell` call including skipped ones).
    pub ordinal: usize,
    /// Remaining firing budget (`usize::MAX` = every attempt — the cell
    /// can never complete, simulating a hard kill).
    pub times: usize,
}

/// A checkpoint-truncation fault: keeps only the first `keep_bytes` bytes
/// of a serialized checkpoint payload, at most `times` times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruncateFault {
    /// How many leading bytes of the payload survive.
    pub keep_bytes: usize,
    /// Remaining firing budget.
    pub times: usize,
}

/// A hang-in-cell fault: the cell spins until its supervision token is
/// cancelled (the cooperative analog of an infinite loop), at most
/// `times` times. With no deadline armed, the hang is genuinely forever —
/// exactly the failure mode the watchdog exists to break.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HangFault {
    /// Cell ordinal in execution order (0-based).
    pub ordinal: usize,
    /// Remaining firing budget (`usize::MAX` = every attempt).
    pub times: usize,
}

/// A delay-in-cell fault: sleeps `ms` milliseconds before the cell body,
/// at most `times` times — a hang that ends on its own, for probing
/// deadline margins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelayFault {
    /// Cell ordinal in execution order (0-based).
    pub ordinal: usize,
    /// Milliseconds to sleep.
    pub ms: u64,
    /// Remaining firing budget.
    pub times: usize,
}

/// A complete fault plan. Install with [`install`] / [`scoped`]; build
/// with the `with_*` combinators or parse from the environment with
/// [`FaultPlan::from_env`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// NaN-flip loss faults.
    pub nan_losses: Vec<NanLossFault>,
    /// Panic-in-cell faults.
    pub panic_cells: Vec<PanicCellFault>,
    /// Checkpoint truncation faults.
    pub truncations: Vec<TruncateFault>,
    /// Hang-in-cell faults.
    pub hangs: Vec<HangFault>,
    /// Delay-in-cell faults.
    pub delays: Vec<DelayFault>,
}

impl FaultPlan {
    /// Adds a NaN-flip loss fault at `(epoch, batch)` firing `times` times.
    pub fn with_nan_loss(mut self, epoch: usize, batch: usize, times: usize) -> Self {
        self.nan_losses.push(NanLossFault {
            epoch,
            batch,
            times,
        });
        self
    }

    /// Adds a panic-in-cell fault at `ordinal` firing `times` times.
    pub fn with_panic_cell(mut self, ordinal: usize, times: usize) -> Self {
        self.panic_cells.push(PanicCellFault { ordinal, times });
        self
    }

    /// Adds a checkpoint-truncation fault keeping `keep_bytes` bytes,
    /// firing `times` times.
    pub fn with_truncation(mut self, keep_bytes: usize, times: usize) -> Self {
        self.truncations.push(TruncateFault { keep_bytes, times });
        self
    }

    /// Adds a hang-in-cell fault at `ordinal` firing `times` times.
    pub fn with_hang(mut self, ordinal: usize, times: usize) -> Self {
        self.hangs.push(HangFault { ordinal, times });
        self
    }

    /// Adds a delay-in-cell fault at `ordinal` sleeping `ms` milliseconds,
    /// firing `times` times.
    pub fn with_delay(mut self, ordinal: usize, ms: u64, times: usize) -> Self {
        self.delays.push(DelayFault { ordinal, ms, times });
        self
    }

    /// Builds a seeded "kill the run somewhere" plan: picks a pseudorandom
    /// cell ordinal in `0..n_cells` from `seed` (SplitMix64) and arms a
    /// persistent panic there. Returns the plan and the chosen ordinal.
    pub fn random_interrupt(seed: u64, n_cells: usize) -> (Self, usize) {
        let ordinal = if n_cells == 0 {
            0
        } else {
            (splitmix64(seed) % n_cells as u64) as usize
        };
        (
            FaultPlan::default().with_panic_cell(ordinal, usize::MAX),
            ordinal,
        )
    }

    /// Parses a plan from the `RT_FAULTS` environment variable. Returns
    /// `None` when unset or empty.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("RT_FAULTS").ok()?;
        if raw.trim().is_empty() {
            return None;
        }
        Some(Self::parse(&raw))
    }

    /// Parses the `RT_FAULTS` grammar: a comma-separated list of
    /// `nan-loss:<epoch>:<batch>:<times>`, `panic-cell:<ordinal>[:<times>]`,
    /// `truncate:<keep_bytes>[:<times>]`, `hang:<ordinal>[:<times>]`, and
    /// `delay:<ordinal>:<ms>[:<times>]`; `<times>` accepts `inf`.
    /// Malformed entries are reported on stderr and skipped — a typo in a
    /// fault spec must never take down a real run.
    ///
    /// [`FaultPlan`]'s `Display` emits this grammar back out (kind-grouped,
    /// `inf` for unbounded budgets), and `parse(plan.to_string()) == plan`
    /// for every constructible plan — property-tested in
    /// `tests/fault_grammar.rs`.
    pub fn parse(raw: &str) -> Self {
        let mut plan = FaultPlan::default();
        for spec in raw.split(',') {
            let parts: Vec<&str> = spec.trim().split(':').collect();
            let parsed = match parts.as_slice() {
                ["nan-loss", e, b, t] => match (parse_n(e), parse_n(b), parse_n(t)) {
                    (Some(e), Some(b), Some(t)) => {
                        plan = plan.with_nan_loss(e, b, t);
                        true
                    }
                    _ => false,
                },
                ["panic-cell", o] => match parse_n(o) {
                    Some(o) => {
                        plan = plan.with_panic_cell(o, usize::MAX);
                        true
                    }
                    None => false,
                },
                ["panic-cell", o, t] => match (parse_n(o), parse_n(t)) {
                    (Some(o), Some(t)) => {
                        plan = plan.with_panic_cell(o, t);
                        true
                    }
                    _ => false,
                },
                ["truncate", k] => match parse_n(k) {
                    Some(k) => {
                        plan = plan.with_truncation(k, 1);
                        true
                    }
                    None => false,
                },
                ["truncate", k, t] => match (parse_n(k), parse_n(t)) {
                    (Some(k), Some(t)) => {
                        plan = plan.with_truncation(k, t);
                        true
                    }
                    _ => false,
                },
                ["hang", o] => match parse_n(o) {
                    Some(o) => {
                        plan = plan.with_hang(o, usize::MAX);
                        true
                    }
                    None => false,
                },
                ["hang", o, t] => match (parse_n(o), parse_n(t)) {
                    (Some(o), Some(t)) => {
                        plan = plan.with_hang(o, t);
                        true
                    }
                    _ => false,
                },
                ["delay", o, ms] => match (parse_n(o), parse_ms(ms)) {
                    (Some(o), Some(ms)) => {
                        plan = plan.with_delay(o, ms, 1);
                        true
                    }
                    _ => false,
                },
                ["delay", o, ms, t] => match (parse_n(o), parse_ms(ms), parse_n(t)) {
                    (Some(o), Some(ms), Some(t)) => {
                        plan = plan.with_delay(o, ms, t);
                        true
                    }
                    _ => false,
                },
                _ => false,
            };
            if !parsed {
                rt_obs::console!("[fault] ignoring malformed RT_FAULTS entry `{spec}`");
            }
        }
        plan
    }
}

fn parse_n(s: &str) -> Option<usize> {
    if s == "inf" {
        Some(usize::MAX)
    } else {
        s.parse().ok()
    }
}

/// Millisecond fields are plain numbers — `inf` would mean "sleep
/// forever", which is what `hang` is for.
fn parse_ms(s: &str) -> Option<u64> {
    s.parse().ok()
}

fn fmt_times(t: usize) -> String {
    if t == usize::MAX {
        "inf".to_string()
    } else {
        t.to_string()
    }
}

/// Emits the canonical `RT_FAULTS` spec for this plan: entries grouped by
/// kind in declaration order (`nan-loss`, `panic-cell`, `truncate`,
/// `hang`, `delay`), every field explicit, `inf` for unbounded budgets.
/// `FaultPlan::parse` round-trips this exactly.
impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut entries: Vec<String> = Vec::new();
        for n in &self.nan_losses {
            entries.push(format!(
                "nan-loss:{}:{}:{}",
                n.epoch,
                n.batch,
                fmt_times(n.times)
            ));
        }
        for p in &self.panic_cells {
            entries.push(format!("panic-cell:{}:{}", p.ordinal, fmt_times(p.times)));
        }
        for t in &self.truncations {
            entries.push(format!("truncate:{}:{}", t.keep_bytes, fmt_times(t.times)));
        }
        for h in &self.hangs {
            entries.push(format!("hang:{}:{}", h.ordinal, fmt_times(h.times)));
        }
        for d in &self.delays {
            entries.push(format!("delay:{}:{}:{}", d.ordinal, d.ms, fmt_times(d.times)));
        }
        f.write_str(&entries.join(","))
    }
}

/// SplitMix64 mixer — used only to derive deterministic fault positions.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

thread_local! {
    static PLAN: RefCell<Option<FaultPlan>> = const { RefCell::new(None) };
}

/// Installs `plan` for the current thread, replacing any previous plan.
pub fn install(plan: FaultPlan) {
    PLAN.with(|p| *p.borrow_mut() = Some(plan));
}

/// Removes the current thread's fault plan.
pub fn clear() {
    PLAN.with(|p| *p.borrow_mut() = None);
}

/// True when a fault plan is installed on this thread.
pub fn is_active() -> bool {
    PLAN.with(|p| p.borrow().is_some())
}

/// Installs the plan described by `RT_FAULTS`, if any. Called by the
/// driver-facing runner constructor so faults can be injected into real
/// binaries without recompiling.
pub fn install_from_env() {
    if let Some(plan) = FaultPlan::from_env() {
        rt_obs::console!("[fault] RT_FAULTS plan installed: {plan:?}");
        install(plan);
    }
}

/// RAII guard that clears the thread's fault plan on drop — keeps test
/// panics (including *expected* injected panics) from leaking faults into
/// subsequent tests on the same thread.
pub struct FaultGuard(());

impl Drop for FaultGuard {
    fn drop(&mut self) {
        clear();
    }
}

/// Installs `plan` and returns a guard that clears it when dropped.
#[must_use = "the plan is cleared as soon as the guard drops"]
pub fn scoped(plan: FaultPlan) -> FaultGuard {
    install(plan);
    FaultGuard(())
}

/// Training-loop hook: returns `loss`, or NaN when a NaN-flip fault is
/// armed for `(epoch, batch)` (consuming one unit of its budget).
pub fn corrupt_loss(epoch: usize, batch: usize, loss: f32) -> f32 {
    PLAN.with(|p| {
        let mut guard = p.borrow_mut();
        let Some(plan) = guard.as_mut() else {
            return loss;
        };
        for fault in &mut plan.nan_losses {
            if fault.epoch == epoch && fault.batch == batch && fault.times > 0 {
                if fault.times != usize::MAX {
                    fault.times -= 1;
                }
                rt_obs::console!("[fault] NaN-flip loss at epoch {epoch}, batch {batch}");
                return f32::NAN;
            }
        }
        loss
    })
}

/// Runner hook: panics when a panic-in-cell fault is armed for `ordinal`
/// (consuming one unit of its budget).
///
/// # Panics
///
/// Deliberately — that is the fault.
pub fn fire_panic_cell(ordinal: usize, key: &str) {
    let fire = PLAN.with(|p| {
        let mut guard = p.borrow_mut();
        let Some(plan) = guard.as_mut() else {
            return false;
        };
        for fault in &mut plan.panic_cells {
            if fault.ordinal == ordinal && fault.times > 0 {
                if fault.times != usize::MAX {
                    fault.times -= 1;
                }
                return true;
            }
        }
        false
    });
    if fire {
        panic!("injected fault: panic in cell #{ordinal} (`{key}`)");
    }
}

/// Spins until the ambient supervision token is cancelled, then unwinds
/// with [`rt_par::Cancelled`] — the cooperative simulation of a wedged
/// cell. With no watchdog deadline armed this loops forever, exactly like
/// the real failure it models.
fn hang_until_cancelled(ordinal: usize, key: &str) -> ! {
    rt_obs::console!("[fault] hanging cell #{ordinal} (`{key}`) until cancelled");
    let token = rt_par::current_cancel();
    loop {
        token.check();
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}

/// Runner hook: hangs (until the supervision token trips) when a
/// hang-in-cell fault is armed for `ordinal`, consuming one unit of its
/// budget.
pub fn fire_hang_cell(ordinal: usize, key: &str) {
    let fire = PLAN.with(|p| {
        let mut guard = p.borrow_mut();
        let Some(plan) = guard.as_mut() else {
            return false;
        };
        consume_hang(&mut plan.hangs, ordinal)
    });
    if fire {
        hang_until_cancelled(ordinal, key);
    }
}

/// Runner hook: sleeps when a delay-in-cell fault is armed for `ordinal`,
/// consuming one unit of its budget.
pub fn fire_delay_cell(ordinal: usize, key: &str) {
    let ms = PLAN.with(|p| {
        let mut guard = p.borrow_mut();
        let Some(plan) = guard.as_mut() else {
            return None;
        };
        consume_delay(&mut plan.delays, ordinal)
    });
    if let Some(ms) = ms {
        rt_obs::console!("[fault] delaying cell #{ordinal} (`{key}`) by {ms} ms");
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// All cell-entry faults in one call, in deterministic order: delay, then
/// hang, then panic. The runner invokes this inside its `catch_unwind`
/// isolation boundary for serial cells.
pub fn fire_cell_faults(ordinal: usize, key: &str) {
    fire_delay_cell(ordinal, key);
    fire_hang_cell(ordinal, key);
    fire_panic_cell(ordinal, key);
}

fn consume_hang(hangs: &mut [HangFault], ordinal: usize) -> bool {
    for fault in hangs.iter_mut() {
        if fault.ordinal == ordinal && fault.times > 0 {
            if fault.times != usize::MAX {
                fault.times -= 1;
            }
            return true;
        }
    }
    false
}

fn consume_delay(delays: &mut [DelayFault], ordinal: usize) -> Option<u64> {
    for fault in delays.iter_mut() {
        if fault.ordinal == ordinal && fault.times > 0 {
            if fault.times != usize::MAX {
                fault.times -= 1;
            }
            return Some(fault.ms);
        }
    }
    None
}

/// Thread-safe view of the installing thread's cell-entry faults
/// (panic, hang, delay), for the runner's *parallel* batch executor.
///
/// Fault plans are installed per thread ([`install`] / [`scoped`]), so a
/// cell closure running on an [`rt_par`] worker thread would never see the
/// plan armed by the test or driver thread. The batch executor instead
/// [`snapshot`](SharedCellFaults::snapshot)s the armed cell faults on the
/// installing thread, lets every worker consult the shared handle (budget
/// consumption is serialized by a mutex), and
/// [`restore`](SharedCellFaults::restore)s the consumed budgets back into
/// the thread-local plan after the barrier — so serial and parallel cell
/// execution observe identical fault semantics.
#[derive(Debug)]
pub struct SharedCellFaults(std::sync::Mutex<SharedCellState>);

#[derive(Debug, Default)]
struct SharedCellState {
    panic_cells: Vec<PanicCellFault>,
    hangs: Vec<HangFault>,
    delays: Vec<DelayFault>,
}

impl SharedCellFaults {
    /// Snapshots the current thread's armed cell-entry faults (empty when
    /// no plan is installed — every [`fire`](SharedCellFaults::fire) is
    /// then a no-op).
    pub fn snapshot() -> Self {
        let state = PLAN.with(|p| {
            p.borrow()
                .as_ref()
                .map(|plan| SharedCellState {
                    panic_cells: plan.panic_cells.clone(),
                    hangs: plan.hangs.clone(),
                    delays: plan.delays.clone(),
                })
                .unwrap_or_default()
        });
        SharedCellFaults(std::sync::Mutex::new(state))
    }

    /// Thread-safe equivalent of [`fire_cell_faults`]: delays, hangs, or
    /// panics when a fault is armed for `ordinal`, consuming one unit of
    /// the matching budget. The mutex is held only while consuming
    /// budgets, never while sleeping or spinning.
    ///
    /// # Panics
    ///
    /// Deliberately — that is the fault (and a hang unwinds with
    /// [`rt_par::Cancelled`] once the supervision token trips).
    pub fn fire(&self, ordinal: usize, key: &str) {
        let (delay_ms, hang, panic_now) = {
            let mut state = self.0.lock().expect("fault snapshot lock poisoned");
            let delay_ms = consume_delay(&mut state.delays, ordinal);
            let hang = consume_hang(&mut state.hangs, ordinal);
            let mut panic_now = false;
            // A hang never reaches the panic hook (it unwinds first), so
            // only consume the panic budget when not hanging — matching
            // the serial `fire_cell_faults` ordering exactly.
            if !hang {
                for fault in state.panic_cells.iter_mut() {
                    if fault.ordinal == ordinal && fault.times > 0 {
                        if fault.times != usize::MAX {
                            fault.times -= 1;
                        }
                        panic_now = true;
                        break;
                    }
                }
            }
            (delay_ms, hang, panic_now)
        };
        if let Some(ms) = delay_ms {
            rt_obs::console!("[fault] delaying cell #{ordinal} (`{key}`) by {ms} ms");
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        if hang {
            hang_until_cancelled(ordinal, key);
        }
        if panic_now {
            panic!("injected fault: panic in cell #{ordinal} (`{key}`)");
        }
    }

    /// Writes the (possibly consumed) budgets back into the calling
    /// thread's plan, so a `times = 1` fault fired inside a parallel batch
    /// stays spent for subsequent serial cells.
    pub fn restore(self) {
        let state = self.0.into_inner().expect("fault snapshot lock poisoned");
        PLAN.with(|p| {
            if let Some(plan) = p.borrow_mut().as_mut() {
                plan.panic_cells = state.panic_cells;
                plan.hangs = state.hangs;
                plan.delays = state.delays;
            }
        });
    }
}

/// Checkpoint-write hook: truncates `payload` when a truncation fault is
/// armed (consuming one unit of its budget); otherwise returns it intact.
pub fn corrupt_checkpoint_bytes(payload: String) -> String {
    PLAN.with(|p| {
        let mut guard = p.borrow_mut();
        let Some(plan) = guard.as_mut() else {
            return payload;
        };
        for fault in &mut plan.truncations {
            if fault.times > 0 {
                if fault.times != usize::MAX {
                    fault.times -= 1;
                }
                let keep = fault.keep_bytes.min(payload.len());
                rt_obs::console!("[fault] truncating checkpoint payload to {keep} bytes");
                let mut truncated = payload;
                // Truncate on a char boundary (JSON is ASCII in practice,
                // but never panic inside the fault harness itself).
                let mut k = keep;
                while k > 0 && !truncated.is_char_boundary(k) {
                    k -= 1;
                }
                truncated.truncate(k);
                return truncated;
            }
        }
        payload
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_are_noops_without_a_plan() {
        clear();
        assert!(!is_active());
        assert_eq!(corrupt_loss(0, 0, 1.5), 1.5);
        fire_panic_cell(0, "cell"); // must not panic
        assert_eq!(corrupt_checkpoint_bytes("abc".to_string()), "abc");
    }

    #[test]
    fn nan_loss_budget_is_consumed() {
        let _g = scoped(FaultPlan::default().with_nan_loss(1, 2, 1));
        assert_eq!(corrupt_loss(0, 0, 1.0), 1.0, "wrong coordinate untouched");
        assert!(corrupt_loss(1, 2, 1.0).is_nan(), "armed coordinate fires");
        assert_eq!(corrupt_loss(1, 2, 1.0), 1.0, "budget exhausted");
    }

    #[test]
    fn panic_cell_fires_and_respects_budget() {
        let _g = scoped(FaultPlan::default().with_panic_cell(3, 1));
        fire_panic_cell(2, "other"); // not armed
        let caught = std::panic::catch_unwind(|| fire_panic_cell(3, "victim"));
        assert!(caught.is_err(), "armed ordinal panics");
        fire_panic_cell(3, "victim"); // budget spent, no panic
    }

    #[test]
    fn truncation_keeps_prefix() {
        let _g = scoped(FaultPlan::default().with_truncation(4, 1));
        assert_eq!(corrupt_checkpoint_bytes("0123456789".into()), "0123");
        assert_eq!(corrupt_checkpoint_bytes("0123456789".into()), "0123456789");
    }

    #[test]
    fn random_interrupt_is_deterministic_and_in_range() {
        let (p1, o1) = FaultPlan::random_interrupt(42, 16);
        let (p2, o2) = FaultPlan::random_interrupt(42, 16);
        assert_eq!(p1, p2);
        assert_eq!(o1, o2);
        assert!(o1 < 16);
        for seed in 0..32 {
            let (_, o) = FaultPlan::random_interrupt(seed, 7);
            assert!(o < 7);
        }
    }

    #[test]
    fn env_grammar_parses() {
        // Same code path from_env uses, without touching the process
        // environment (tests run concurrently).
        let plan = FaultPlan::parse("nan-loss:1:0:1, panic-cell:3:inf, truncate:64");
        assert_eq!(
            plan,
            FaultPlan::default()
                .with_nan_loss(1, 0, 1)
                .with_panic_cell(3, usize::MAX)
                .with_truncation(64, 1)
        );
        // Malformed entries are skipped, valid ones kept.
        let partial = FaultPlan::parse("bogus, panic-cell:2:5, nan-loss:oops");
        assert_eq!(partial, FaultPlan::default().with_panic_cell(2, 5));
    }

    #[test]
    fn hang_and_delay_grammar_parses() {
        let plan = FaultPlan::parse("hang:2, hang:5:3, delay:0:250, delay:1:10:2");
        assert_eq!(
            plan,
            FaultPlan::default()
                .with_hang(2, usize::MAX)
                .with_hang(5, 3)
                .with_delay(0, 250, 1)
                .with_delay(1, 10, 2)
        );
        // `inf` is a budget, not a duration.
        let bad = FaultPlan::parse("delay:0:inf, hang:oops, delay:1");
        assert_eq!(bad, FaultPlan::default());
    }

    #[test]
    fn display_is_canonical_and_round_trips() {
        let plan = FaultPlan::default()
            .with_nan_loss(1, 0, 1)
            .with_panic_cell(3, usize::MAX)
            .with_truncation(64, 1)
            .with_hang(2, usize::MAX)
            .with_delay(0, 250, 2);
        let spec = plan.to_string();
        assert_eq!(
            spec,
            "nan-loss:1:0:1,panic-cell:3:inf,truncate:64:1,hang:2:inf,delay:0:250:2"
        );
        assert_eq!(FaultPlan::parse(&spec), plan);
        assert_eq!(FaultPlan::default().to_string(), "");
    }

    #[test]
    fn delay_budget_is_consumed() {
        let _g = scoped(FaultPlan::default().with_delay(4, 1, 1));
        let t0 = rt_obs::Stopwatch::start();
        fire_delay_cell(3, "other"); // not armed
        assert!(t0.elapsed() < std::time::Duration::from_millis(50));
        fire_delay_cell(4, "victim"); // sleeps ~1ms, consumes budget
        let t1 = rt_obs::Stopwatch::start();
        fire_delay_cell(4, "victim"); // budget spent: no sleep
        assert!(t1.elapsed() < std::time::Duration::from_millis(50));
    }

    #[test]
    fn hang_fires_and_unwinds_on_cancellation() {
        let _g = scoped(FaultPlan::default().with_hang(7, 1));
        fire_hang_cell(6, "other"); // not armed: returns immediately
        let scope = rt_par::CancelScope::new();
        scope.trip(); // pre-tripped: the hang exits on its first poll
        let _amb = rt_par::with_cancel(scope.token());
        let payload = std::panic::catch_unwind(|| fire_hang_cell(7, "victim"))
            .expect_err("armed hang must unwind once cancelled");
        assert!(payload.downcast_ref::<rt_par::Cancelled>().is_some());
        fire_hang_cell(7, "victim"); // budget spent: no hang
    }

    #[test]
    fn shared_cell_faults_mirror_serial_semantics() {
        let _g = scoped(
            FaultPlan::default()
                .with_panic_cell(1, 1)
                .with_hang(2, 1)
                .with_delay(3, 1, 1),
        );
        let shared = SharedCellFaults::snapshot();
        shared.fire(0, "clean"); // nothing armed for ordinal 0
        assert!(std::panic::catch_unwind(|| shared.fire(1, "boom")).is_err());
        let scope = rt_par::CancelScope::new();
        scope.trip();
        {
            let _amb = rt_par::with_cancel(scope.token());
            let payload = std::panic::catch_unwind(|| shared.fire(2, "wedge"))
                .expect_err("hang unwinds under a tripped token");
            assert!(payload.downcast_ref::<rt_par::Cancelled>().is_some());
        }
        shared.fire(3, "slow"); // 1ms delay, then returns
        shared.restore();
        // All budgets were consumed inside the shared view and written
        // back: nothing fires serially any more.
        fire_panic_cell(1, "boom");
        fire_hang_cell(2, "wedge");
        fire_delay_cell(3, "slow");
    }
}
