//! High-level ticket-drawing pipelines combining the `rt-prune` schemes
//! with this crate's training loops.

use crate::pretrain::Pretrained;
use crate::training::{train, Objective, TrainConfig};
use crate::Result;
use rt_adv::attack::AttackConfig;
use rt_data::{Dataset, Task};
use rt_models::MicroResNet;
use rt_nn::loss::CrossEntropyLoss;
use rt_nn::optim::Sgd;
use rt_nn::{ExecCtx, Layer};
use rt_prune::{
    finalize_lmp, imp, init_lmp, lmp_apply_masks, lmp_update_scores, ImpConfig, PruneScope,
    ScoreInit, TicketMask,
};
use rt_tensor::rng::SeedStream;
use serde::{Deserialize, Serialize};

/// Builds the IMP rewind target: the pretrained weights for every
/// parameter whose name and shape still match, and the model's current
/// value elsewhere (the classifier head after a downstream replacement).
/// Rewinding to the raw source snapshot would clash with the replaced
/// head's shape.
fn rewind_target_for(model: &MicroResNet, pretrained: &Pretrained) -> rt_nn::checkpoint::StateDict {
    let mut target = rt_nn::checkpoint::StateDict::capture(model);
    for entry in &mut target.params {
        if let Some(pre) = pretrained
            .snapshot
            .params
            .iter()
            .find(|p| p.name == entry.name && p.tensor.shape() == entry.tensor.shape())
        {
            entry.tensor = pre.tensor.clone();
        }
    }
    for (dst, src) in target.buffers.iter_mut().zip(&pretrained.snapshot.buffers) {
        if dst.shape() == src.shape() {
            *dst = src.clone();
        }
    }
    target
}

/// Where IMP's iterative pruning runs (Fig. 4's "US"/"DS" variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ImpSite {
    /// On the upstream (source) task.
    Upstream,
    /// On the downstream task.
    Downstream,
}

/// Draws an IMP or A-IMP ticket: the objective in `round_cfg` selects
/// vanilla IMP ([`Objective::Natural`]) or the paper's A-IMP
/// ([`Objective::Adversarial`], Eq. 1).
///
/// `model` must already carry the pretrained weights and a head sized for
/// `data`. After the call, `model` holds `m ⊙ θ_pre` (rewound + masked).
///
/// # Errors
///
/// Propagates IMP and training errors.
pub fn imp_ticket(
    model: &mut MicroResNet,
    pretrained: &Pretrained,
    data: &Dataset,
    imp_cfg: &ImpConfig,
    round_cfg: &TrainConfig,
) -> Result<TicketMask> {
    let base_seed = round_cfg.seed;
    let rewind_target = rewind_target_for(model, pretrained);
    imp(model, &rewind_target, imp_cfg, |net, round| {
        let cfg = round_cfg.with_seed(
            SeedStream::new(base_seed)
                .child("imp-round")
                .child_idx(round as u64)
                .seed(),
        );
        // The IMP driver hands us `&mut dyn Layer`; our training loop is
        // already dynamic, so this is a straight delegation.
        train(net, data, &cfg).map(|_| ())
    })
}

/// Like [`imp_ticket`], but returns the *whole trajectory*: one
/// `(sparsity, ticket)` pair per IMP round. One call yields every point of
/// a Fig. 4 curve. The model is left at the final ticket.
///
/// # Errors
///
/// Propagates IMP and training errors.
pub fn imp_ticket_trajectory(
    model: &mut MicroResNet,
    pretrained: &Pretrained,
    data: &Dataset,
    imp_cfg: &ImpConfig,
    round_cfg: &TrainConfig,
) -> Result<Vec<(f64, TicketMask)>> {
    let base_seed = round_cfg.seed;
    let rewind_target = rewind_target_for(model, pretrained);
    let mut trajectory = Vec::with_capacity(imp_cfg.rounds);
    rt_prune::imp_with_observer(
        model,
        &rewind_target,
        imp_cfg,
        |net, round| {
            let cfg = round_cfg.with_seed(
                SeedStream::new(base_seed)
                    .child("imp-round")
                    .child_idx(round as u64)
                    .seed(),
            );
            train(net, data, &cfg).map(|_| ())
        },
        |round, ticket| {
            trajectory.push((imp_cfg.sparsity_at_round(round), ticket.clone()));
        },
    )?;
    Ok(trajectory)
}

/// A-IMP convenience: [`imp_ticket`] with the adversarial objective.
///
/// # Errors
///
/// Propagates IMP and training errors.
pub fn adversarial_imp_ticket(
    model: &mut MicroResNet,
    pretrained: &Pretrained,
    data: &Dataset,
    imp_cfg: &ImpConfig,
    round_cfg: &TrainConfig,
    attack: AttackConfig,
) -> Result<TicketMask> {
    let cfg = round_cfg.with_objective(Objective::Adversarial(attack));
    imp_ticket(model, pretrained, data, imp_cfg, &cfg)
}

/// Hyper-parameters of an LMP run (Eq. 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LmpRunConfig {
    /// Target sparsity of the learned mask.
    pub sparsity: f64,
    /// Epochs of mask/head learning on the downstream task.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Learning rate of the straight-through score updates.
    pub score_lr: f32,
    /// Learning rate of the trainable parameters (head, BatchNorm affine).
    pub head_lr: f32,
    /// Score initialization.
    pub init: LmpScoreInit,
    /// Seed for shuffling and initialization.
    pub seed: u64,
}

/// Serializable mirror of [`ScoreInit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LmpScoreInit {
    /// Scores start at `|θ_pre|`.
    Magnitude,
    /// Scores start random.
    Random,
}

impl From<LmpScoreInit> for ScoreInit {
    fn from(v: LmpScoreInit) -> ScoreInit {
        match v {
            LmpScoreInit::Magnitude => ScoreInit::Magnitude,
            LmpScoreInit::Random => ScoreInit::Random,
        }
    }
}

/// Result of an LMP run: the learned task-specific ticket and the test
/// accuracy of the masked, frozen-weight subnetwork.
#[derive(Debug, Clone)]
pub struct LmpOutcome {
    /// The learned mask.
    pub ticket: TicketMask,
    /// Test accuracy of `m_t ⊙ θ_pre` with the trained head.
    pub test_accuracy: f64,
}

/// Runs LMP on a downstream task: freezes the pretrained weights, learns a
/// per-layer top-k mask by straight-through estimation while a fresh head
/// (and the BatchNorm affines) train normally, then evaluates.
///
/// # Errors
///
/// Propagates layer/optimizer errors.
pub fn lmp_run(model: &mut MicroResNet, task: &Task, cfg: &LmpRunConfig) -> Result<LmpOutcome> {
    let seeds = SeedStream::new(cfg.seed);
    model.replace_head(task.train.num_classes(), &mut seeds.child("head").rng())?;
    let scope = PruneScope::backbone();
    init_lmp(
        model,
        &scope,
        cfg.init.into(),
        &mut seeds.child("scores").rng(),
    )?;

    let loss_fn = CrossEntropyLoss::new();
    let head_opt = Sgd::new(cfg.head_lr).with_momentum(0.9);
    for epoch in 0..cfg.epochs {
        let mut rng = seeds.child("epoch").child_idx(epoch as u64).rng();
        for (images, labels) in task.train.shuffled_batches(cfg.batch_size, &mut rng) {
            lmp_apply_masks(model, cfg.sparsity)?;
            let ctx = ExecCtx::train();
            let logits = model.forward(&images, ctx)?;
            let out = loss_fn.forward(&logits, &labels)?;
            model.backward(&out.grad, ctx)?;
            lmp_update_scores(model, cfg.score_lr)?;
            head_opt.step(model)?;
        }
    }
    let ticket = finalize_lmp(model, cfg.sparsity)?;
    let report = crate::evaluate::evaluate(model, &task.test)?;
    Ok(LmpOutcome {
        ticket,
        test_accuracy: report.accuracy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretrain::{pretrain, PretrainScheme};
    use rt_data::{DownstreamSpec, FamilyConfig, TaskFamily};
    use rt_models::ResNetConfig;
    use rt_prune::model_sparsity;

    fn setup() -> (TaskFamily, Task, Pretrained) {
        let family = TaskFamily::new(FamilyConfig::smoke(), 51);
        let source = family.source_task(48, 16).unwrap();
        let spec = DownstreamSpec {
            name: "ticket-test".to_string(),
            gap: 0.3,
            num_classes: 2,
            train_size: 24,
            test_size: 24,
        };
        let task = family.downstream_task(&spec).unwrap();
        let pre = pretrain(
            &ResNetConfig::smoke(4),
            &source,
            PretrainScheme::Natural,
            4,
            0.05,
            1,
        )
        .unwrap();
        (family, task, pre)
    }

    #[test]
    fn upstream_imp_ticket_reaches_sparsity() {
        let (_, _, pre) = setup();
        let family = TaskFamily::new(FamilyConfig::smoke(), 51);
        let source = family.source_task(48, 16).unwrap();
        let mut model = pre.fresh_model(3).unwrap();
        let imp_cfg = ImpConfig::paper(0.6, 2);
        let round_cfg = TrainConfig::paper_finetune(1, 8, 0.05, 9);
        let ticket = imp_ticket(&mut model, &pre, &source.train, &imp_cfg, &round_cfg).unwrap();
        assert!((ticket.sparsity() - 0.6).abs() < 0.03);
        assert!((model_sparsity(&model, &PruneScope::backbone()) - 0.6).abs() < 0.03);
    }

    #[test]
    fn adversarial_imp_ticket_runs() {
        let (_, task, pre) = setup();
        let mut model = pre.fresh_model(4).unwrap();
        model
            .replace_head(task.train.num_classes(), &mut SeedStream::new(5).rng())
            .unwrap();
        let imp_cfg = ImpConfig::paper(0.5, 2);
        let round_cfg = TrainConfig::paper_finetune(1, 8, 0.05, 10);
        let ticket = adversarial_imp_ticket(
            &mut model,
            &pre,
            &task.train,
            &imp_cfg,
            &round_cfg,
            AttackConfig::pgd(0.2, 2),
        )
        .unwrap();
        assert!((ticket.sparsity() - 0.5).abs() < 0.05);
    }

    #[test]
    fn lmp_learns_a_mask_with_frozen_weights() {
        let (_, task, pre) = setup();
        let mut model = pre.fresh_model(6).unwrap();
        let cfg = LmpRunConfig {
            sparsity: 0.5,
            epochs: 3,
            batch_size: 8,
            score_lr: 0.1,
            head_lr: 0.05,
            init: LmpScoreInit::Magnitude,
            seed: 11,
        };
        let outcome = lmp_run(&mut model, &task, &cfg).unwrap();
        assert!((outcome.ticket.sparsity() - 0.5).abs() < 0.05);
        assert!(outcome.test_accuracy >= 0.4, "{}", outcome.test_accuracy);
        // Kept weights equal the pretrained values (weights were frozen).
        let pre_params = &pre.snapshot.params;
        for (p, snap) in model.params().iter().zip(pre_params) {
            if p.name.starts_with("head.") || p.kind != rt_nn::ParamKind::Weight {
                continue;
            }
            let Some(mask) = &p.mask else { continue };
            for ((&w, &orig), &keep) in p
                .data
                .data()
                .iter()
                .zip(snap.tensor.data())
                .zip(mask.data())
            {
                if keep > 0.0 {
                    assert_eq!(w, orig, "frozen weight changed in {}", p.name);
                } else {
                    assert_eq!(w, 0.0);
                }
            }
        }
    }

    #[test]
    fn lmp_random_init_also_works() {
        let (_, task, pre) = setup();
        let mut model = pre.fresh_model(7).unwrap();
        let cfg = LmpRunConfig {
            sparsity: 0.3,
            epochs: 2,
            batch_size: 8,
            score_lr: 0.1,
            head_lr: 0.05,
            init: LmpScoreInit::Random,
            seed: 12,
        };
        let outcome = lmp_run(&mut model, &task, &cfg).unwrap();
        assert!((outcome.ticket.sparsity() - 0.3).abs() < 0.05);
    }
}
