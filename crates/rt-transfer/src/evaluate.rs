//! Batched evaluation: accuracy, calibration, adversarial accuracy, OoD
//! detection, and feature extraction (for linear eval and FID).

use crate::Result;
use rt_adv::attack::{perturb, AttackConfig};
use rt_data::Dataset;
use rt_metrics::{accuracy, expected_calibration_error, negative_log_likelihood, roc_auc};
use rt_models::MicroResNet;
use rt_nn::{ExecCtx, Layer};
use rt_tensor::rng::SeedStream;
use rt_tensor::{reduce, special, Tensor};
use serde::{Deserialize, Serialize};

/// Batch size used by all evaluation loops (memory-bound, not tuned).
pub const EVAL_BATCH: usize = 64;

/// Classification evaluation summary (the Acc/ECE/NLL rows of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Top-1 accuracy.
    pub accuracy: f64,
    /// Expected calibration error (15 bins).
    pub ece: f64,
    /// Mean negative log-likelihood.
    pub nll: f64,
}

/// Collects the model's logits over a dataset in eval mode.
///
/// # Errors
///
/// Propagates model errors.
pub fn collect_logits(model: &mut dyn Layer, data: &Dataset) -> Result<Tensor> {
    let mut rows: Vec<f32> = Vec::new();
    let mut classes = 0usize;
    for (images, _) in data.batches(EVAL_BATCH) {
        let logits = model.forward(&images, ExecCtx::eval())?;
        classes = logits.shape()[1];
        rows.extend_from_slice(logits.data());
    }
    Tensor::from_vec(vec![data.len(), classes], rows).map_err(rt_nn::NnError::from)
}

/// Evaluates clean accuracy, ECE, and NLL on a dataset.
///
/// # Errors
///
/// Propagates model and metric errors.
pub fn evaluate(model: &mut dyn Layer, data: &Dataset) -> Result<EvalReport> {
    let logits = collect_logits(model, data)?;
    Ok(EvalReport {
        accuracy: accuracy(&logits, data.labels()).map_err(rt_nn::NnError::from)?,
        ece: expected_calibration_error(&logits, data.labels(), 15)
            .map_err(rt_nn::NnError::from)?,
        nll: negative_log_likelihood(&logits, data.labels()).map_err(rt_nn::NnError::from)?,
    })
}

/// Accuracy under a PGD/FGSM attack over the whole dataset ("Adv-Acc").
///
/// # Errors
///
/// Propagates attack and model errors.
pub fn evaluate_adversarial(
    model: &mut dyn Layer,
    data: &Dataset,
    attack: &AttackConfig,
    seed: u64,
) -> Result<f64> {
    let seeds = SeedStream::new(seed);
    let mut correct = 0usize;
    for (batch_idx, (images, labels)) in data.batches(EVAL_BATCH).into_iter().enumerate() {
        let mut rng = seeds.child_idx(batch_idx as u64).rng();
        let adv = perturb(model, &images, &labels, attack, &mut rng)?;
        let logits = model.forward(&adv, ExecCtx::eval())?;
        let pred = reduce::argmax_rows(&logits).map_err(rt_nn::NnError::from)?;
        correct += pred.iter().zip(&labels).filter(|(p, l)| p == l).count();
    }
    Ok(correct as f64 / data.len().max(1) as f64)
}

/// Max-softmax confidence scores for every sample in `images`.
fn confidence_scores(model: &mut dyn Layer, images: &Tensor) -> Result<Vec<f64>> {
    let n = images.shape()[0];
    let mut scores = Vec::with_capacity(n);
    let mut start = 0usize;
    while start < n {
        let end = (start + EVAL_BATCH).min(n);
        let batch = images
            .slice_rows(start, end)
            .map_err(rt_nn::NnError::from)?;
        let logits = model.forward(&batch, ExecCtx::eval())?;
        let probs = special::softmax_rows(&logits).map_err(rt_nn::NnError::from)?;
        let conf = reduce::max_rows(&probs).map_err(rt_nn::NnError::from)?;
        scores.extend(conf.data().iter().map(|&c| c as f64));
        start = end;
    }
    Ok(scores)
}

/// ROC-AUC of max-softmax OoD detection: in-distribution test images
/// should receive higher confidence than `ood` images.
///
/// # Errors
///
/// Propagates model errors.
pub fn ood_auc(model: &mut dyn Layer, in_dist: &Dataset, ood: &Dataset) -> Result<f64> {
    let pos = confidence_scores(model, in_dist.images())?;
    let neg = confidence_scores(model, ood.images())?;
    Ok(roc_auc(&pos, &neg))
}

/// Negative-energy scores `logsumexp(logits)` for every sample — the
/// energy-based OoD score of Liu et al., provided as an alternative to
/// max-softmax (an extension beyond the paper's protocol).
fn energy_scores(model: &mut dyn Layer, images: &Tensor) -> Result<Vec<f64>> {
    let n = images.shape()[0];
    let mut scores = Vec::with_capacity(n);
    let mut start = 0usize;
    while start < n {
        let end = (start + EVAL_BATCH).min(n);
        let batch = images
            .slice_rows(start, end)
            .map_err(rt_nn::NnError::from)?;
        let logits = model.forward(&batch, ExecCtx::eval())?;
        let lse = special::logsumexp_rows(&logits).map_err(rt_nn::NnError::from)?;
        scores.extend(lse.data().iter().map(|&c| c as f64));
        start = end;
    }
    Ok(scores)
}

/// ROC-AUC of energy-based OoD detection (higher `logsumexp` = more
/// in-distribution).
///
/// # Errors
///
/// Propagates model errors.
pub fn ood_auc_energy(model: &mut dyn Layer, in_dist: &Dataset, ood: &Dataset) -> Result<f64> {
    let pos = energy_scores(model, in_dist.images())?;
    let neg = energy_scores(model, ood.images())?;
    Ok(roc_auc(&pos, &neg))
}

/// Extracts pooled backbone features `[N, F]` for every image (eval mode).
/// Used by linear evaluation and FID.
///
/// # Errors
///
/// Propagates model errors.
pub fn extract_features(model: &mut MicroResNet, images: &Tensor) -> Result<Tensor> {
    let n = images.shape()[0];
    let mut rows: Vec<f32> = Vec::new();
    let mut dim = model.feature_dim();
    let mut start = 0usize;
    while start < n {
        let end = (start + EVAL_BATCH).min(n);
        let batch = images
            .slice_rows(start, end)
            .map_err(rt_nn::NnError::from)?;
        let feats = model.forward_features(&batch, ExecCtx::eval())?;
        dim = feats.shape()[1];
        rows.extend_from_slice(feats.data());
        start = end;
    }
    Tensor::from_vec(vec![n, dim], rows).map_err(rt_nn::NnError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_data::{FamilyConfig, TaskFamily};
    use rt_models::ResNetConfig;
    use rt_tensor::rng::rng_from_seed;

    fn setup() -> (MicroResNet, Dataset, Dataset) {
        let family = TaskFamily::new(FamilyConfig::smoke(), 21);
        let task = family.source_task(32, 16).unwrap();
        let ood = family.ood_dataset(16).unwrap();
        let mut model = MicroResNet::new(
            &ResNetConfig::smoke(task.train.num_classes()),
            &mut rng_from_seed(0),
        )
        .unwrap();
        // Warm BN stats.
        model.forward(task.train.images(), ExecCtx::train()).unwrap();
        model.zero_grad();
        (model, task.test, ood)
    }

    #[test]
    fn evaluate_produces_sane_metrics() {
        let (mut model, test, _) = setup();
        let report = evaluate(&mut model, &test).unwrap();
        assert!((0.0..=1.0).contains(&report.accuracy));
        assert!((0.0..=1.0).contains(&report.ece));
        assert!(report.nll > 0.0 && report.nll.is_finite());
    }

    #[test]
    fn collect_logits_matches_dataset_size() {
        let (mut model, test, _) = setup();
        let logits = collect_logits(&mut model, &test).unwrap();
        assert_eq!(logits.shape()[0], test.len());
        assert_eq!(logits.shape()[1], 4);
    }

    #[test]
    fn adversarial_accuracy_not_above_clean() {
        let (mut model, test, _) = setup();
        let clean = evaluate(&mut model, &test).unwrap().accuracy;
        let adv = evaluate_adversarial(&mut model, &test, &AttackConfig::pgd(0.5, 3), 1).unwrap();
        assert!(
            adv <= clean + 1e-9,
            "attack cannot increase accuracy: {adv} vs {clean}"
        );
    }

    #[test]
    fn ood_auc_in_unit_interval() {
        let (mut model, test, ood) = setup();
        let auc = ood_auc(&mut model, &test, &ood).unwrap();
        assert!((0.0..=1.0).contains(&auc));
        let energy = ood_auc_energy(&mut model, &test, &ood).unwrap();
        assert!((0.0..=1.0).contains(&energy));
    }

    #[test]
    fn features_have_declared_dimension() {
        let (mut model, test, _) = setup();
        let feats = extract_features(&mut model, test.images()).unwrap();
        assert_eq!(feats.shape(), &[test.len(), model.feature_dim()]);
        assert!(feats.all_finite());
    }
}
