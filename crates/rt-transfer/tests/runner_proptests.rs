//! Property tests for the fault-tolerant runner's resume guarantee.
//!
//! For *any* sweep length and *any* seeded interrupt point, a sweep that
//! is killed mid-flight (injected persistent panic, zero retries) and then
//! restarted with `resume: true` must produce exactly the values of an
//! uninterrupted sweep, skipping precisely the cells that completed before
//! the kill.

use proptest::prelude::*;
use rt_transfer::fault::{self, FaultPlan};
use rt_transfer::runner::{Runner, RunnerConfig, RunnerError};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Unique journal path per proptest case (cases may run concurrently
/// across test threads, and shrinking replays cases in-process).
fn temp_journal() -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let id = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join("rt-runner-proptests");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("case-{}-{id}.journal.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// Cheap deterministic cell payload: a SplitMix64-style hash of the cell
/// index, shifted by the runner's per-attempt seed bump (zero on first
/// attempts, so fault-free runs are bump-independent).
fn cell_value(i: usize, seed_bump: u64) -> f64 {
    let mut x = (i as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(seed_bump);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % 1_000_003) as f64 / 1_000_003.0
}

fn sweep(runner: &mut Runner, n: usize) -> Result<Vec<f64>, RunnerError> {
    (0..n)
        .map(|i| runner.run_cell(&format!("cell-{i:03}"), |ctx| cell_value(i, ctx.seed_bump)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn resume_after_random_interrupt_matches_uninterrupted(
        seed in any::<u64>(),
        n in 2usize..24,
    ) {
        // Reference: journal-less uninterrupted sweep.
        let mut clean = Runner::ephemeral();
        let expected = sweep(&mut clean, n).unwrap();

        // Interrupted run: a seeded persistent panic somewhere in 0..n,
        // zero retries — the sweep dies at that exact cell.
        let path = temp_journal();
        let cfg = RunnerConfig {
            journal_path: Some(path.clone()),
            resume: false,
            max_retries: 0,
            ..RunnerConfig::default()
        };
        let (plan, kill_ordinal) = FaultPlan::random_interrupt(seed, n);
        {
            let _g = fault::scoped(plan);
            let mut doomed = Runner::new(cfg.clone()).unwrap();
            let aborted = sweep(&mut doomed, n);
            prop_assert!(
                matches!(aborted, Err(RunnerError::CellFailed { .. })),
                "the injected kill must abort the sweep"
            );
            prop_assert_eq!(doomed.stats.executed, kill_ordinal);
        }

        // Resumed run: replays the journaled prefix, executes the rest.
        let mut resumed = Runner::new(RunnerConfig { resume: true, ..cfg }).unwrap();
        let actual = sweep(&mut resumed, n).unwrap();
        prop_assert_eq!(actual, expected);
        prop_assert_eq!(resumed.stats.skipped, kill_ordinal);
        prop_assert_eq!(resumed.stats.executed, n - kill_ordinal);

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn retried_cells_still_land_in_the_journal(
        seed in any::<u64>(),
        n in 1usize..12,
    ) {
        // A one-shot (times = 1) panic at a seeded ordinal: the default
        // retry budget absorbs it, the sweep completes, and a resume run
        // replays every cell without executing anything.
        let path = temp_journal();
        let cfg = RunnerConfig {
            journal_path: Some(path.clone()),
            resume: false,
            ..RunnerConfig::default()
        };
        let (_, ordinal) = FaultPlan::random_interrupt(seed, n);
        let flaky_values = {
            let _g = fault::scoped(FaultPlan::default().with_panic_cell(ordinal, 1));
            let mut flaky = Runner::new(cfg.clone()).unwrap();
            let values = sweep(&mut flaky, n).unwrap();
            prop_assert_eq!(flaky.stats.retries, 1);
            prop_assert_eq!(flaky.stats.executed, n);
            values
        };

        let mut resumed = Runner::new(RunnerConfig { resume: true, ..cfg }).unwrap();
        let replayed = sweep(&mut resumed, n).unwrap();
        prop_assert_eq!(replayed, flaky_values);
        prop_assert_eq!(resumed.stats.skipped, n);
        prop_assert_eq!(resumed.stats.executed, 0);

        let _ = std::fs::remove_file(&path);
    }
}
