//! Acceptance properties of the pipelined finetune engine.
//!
//! The two PR-10 features — async batch prefetch (`RT_PREFETCH`) and the
//! frozen-prefix activation cache (`RT_ACT_CACHE_MB`) — are performance
//! features under a hard bit-identity contract: for ANY seed, batch size,
//! and pool width, training with a feature on must produce exactly the
//! per-epoch losses and final parameter bytes of training with it off.
//! These tests pin that contract, plus the cache-invalidation guarantee
//! on the rewind path (a perturbed prefix can never serve stale bytes).

use proptest::prelude::*;
use rt_data::{set_prefetch_default, Dataset, FamilyConfig, TaskFamily};
use rt_nn::layers::{Conv2d, Conv2dConfig, Flatten, Linear, Relu};
use rt_nn::{
    prefix_fingerprint, set_act_cache_default_mb, ActCache, ExecCtx, Layer, Sequential,
};
use rt_tensor::rng::rng_from_seed;
use rt_transfer::training::{train, Objective, SchedulePolicy, TrainConfig};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes tests that flip the process-wide pipeline defaults
/// (prefetch, cache capacity) so concurrent test threads never observe
/// each other's overrides mid-comparison.
fn pipeline_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK.get_or_init(|| Mutex::new(()));
    lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Restores both pipeline defaults on drop, so a failing assertion never
/// leaks an override into later tests.
struct DefaultsGuard;

impl Drop for DefaultsGuard {
    fn drop(&mut self) {
        set_prefetch_default(true);
        set_act_cache_default_mb(256);
    }
}

fn smoke_data() -> Dataset {
    let family = TaskFamily::new(FamilyConfig::smoke(), 11);
    family.source_task(32, 16).unwrap().train
}

/// A finetune-shaped model: a two-conv backbone (4 of 6 children) ahead
/// of a trainable linear head. With the backbone frozen,
/// `split_at_trainable` covers the conv/relu prefix plus the param-free
/// `Flatten` — 5 of 6 children, well over half the layers.
fn ticket_model(seed: u64, num_classes: usize, freeze_backbone: bool) -> Sequential {
    let mut rng = rng_from_seed(seed);
    let mut seq = Sequential::new(vec![
        Box::new(Conv2d::new(3, 8, Conv2dConfig::same3x3(), &mut rng).unwrap())
            as Box<dyn Layer>,
        Box::new(Relu::new()),
        Box::new(Conv2d::new(8, 8, Conv2dConfig::same3x3(), &mut rng).unwrap()),
        Box::new(Relu::new()),
        Box::new(Flatten::new()),
        Box::new(Linear::new(8 * 8 * 8, num_classes, &mut rng).unwrap()),
    ]);
    if freeze_backbone {
        for child in seq.children_mut()[..4].iter_mut() {
            for p in child.params_mut() {
                p.trainable = false;
            }
        }
    }
    seq
}

fn train_cfg(epochs: usize, batch_size: usize, seed: u64) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 1e-4,
        schedule: SchedulePolicy::Constant,
        objective: Objective::Natural,
        seed,
    }
}

/// Every parameter byte of both models, bit-compared.
fn assert_params_bit_equal(a: &Sequential, b: &Sequential, what: &str) {
    let (pa, pb) = (a.params(), b.params());
    assert_eq!(pa.len(), pb.len(), "{what}: param count");
    for (x, y) in pa.iter().zip(&pb) {
        assert_eq!(x.name, y.name, "{what}: param order");
        for (u, v) in x.data.data().iter().zip(y.data.data()) {
            assert_eq!(
                u.to_bits(),
                v.to_bits(),
                "{what}: {} diverged",
                x.name
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// (a) Prefetch on vs off: bit-identical per-epoch losses and final
    /// params, at 1 and 4 pool threads.
    #[test]
    fn prefetch_is_bit_identical(seed in 0u64..1000, batch in 4usize..13) {
        let _serial = pipeline_lock();
        let _restore = DefaultsGuard;
        let data = smoke_data();
        let cfg = train_cfg(2, batch, seed);
        for threads in [1usize, 4] {
            rt_par::set_threads(threads);
            set_prefetch_default(false);
            let mut serial = ticket_model(seed, data.num_classes(), true);
            let serial_report = train(&mut serial, &data, &cfg).unwrap();
            set_prefetch_default(true);
            let mut prefetched = ticket_model(seed, data.num_classes(), true);
            let prefetched_report = train(&mut prefetched, &data, &cfg).unwrap();
            prop_assert_eq!(&serial_report, &prefetched_report);
            assert_params_bit_equal(&serial, &prefetched, "prefetch");
        }
    }

    /// (b) Activation cache on vs off: bit-identical per-epoch losses and
    /// final params, at 1 and 4 pool threads. Three epochs so epochs 2–3
    /// actually serve from the warm cache.
    #[test]
    fn activation_cache_is_bit_identical(seed in 0u64..1000, batch in 4usize..13) {
        let _serial = pipeline_lock();
        let _restore = DefaultsGuard;
        let data = smoke_data();
        let cfg = train_cfg(3, batch, seed);
        for threads in [1usize, 4] {
            rt_par::set_threads(threads);
            set_act_cache_default_mb(0);
            let mut plain = ticket_model(seed, data.num_classes(), true);
            let plain_report = train(&mut plain, &data, &cfg).unwrap();
            set_act_cache_default_mb(256);
            let mut cached = ticket_model(seed, data.num_classes(), true);
            let cached_report = train(&mut cached, &data, &cfg).unwrap();
            prop_assert_eq!(&plain_report, &cached_report);
            assert_params_bit_equal(&plain, &cached, "act-cache");
        }
    }
}

/// The cache-invalidation property on the rewind path: warm the cache,
/// perturb a *frozen prefix* weight (what an LR-rewind restore would do if
/// it ever touched the prefix), and keep training — cached vs uncached
/// runs must stay bit-identical, which is only possible if the perturbed
/// fingerprint dropped every stale entry.
#[test]
fn perturbed_prefix_invalidates_instead_of_serving_stale_bytes() {
    let _serial = pipeline_lock();
    let _restore = DefaultsGuard;
    let data = smoke_data();
    let classes = data.num_classes();
    let perturb = |model: &mut Sequential| {
        let p = &mut model.children_mut()[0].params_mut()[0];
        p.data.data_mut()[0] += 0.25;
    };
    set_act_cache_default_mb(256);
    let mut cached = ticket_model(21, classes, true);
    let warm = train(&mut cached, &data, &train_cfg(2, 8, 77)).unwrap();
    perturb(&mut cached);
    let after = train(&mut cached, &data, &train_cfg(2, 8, 78)).unwrap();
    set_act_cache_default_mb(0);
    let mut plain = ticket_model(21, classes, true);
    let warm_plain = train(&mut plain, &data, &train_cfg(2, 8, 77)).unwrap();
    perturb(&mut plain);
    let after_plain = train(&mut plain, &data, &train_cfg(2, 8, 78)).unwrap();
    assert_eq!(warm, warm_plain);
    assert_eq!(after, after_plain, "stale cache bytes leaked past a prefix change");
    assert_params_bit_equal(&cached, &plain, "post-perturbation");
}

/// Direct witness that the invalidation is the *cache dropping entries*
/// (not luck): the real prefix fingerprint moves under a one-weight
/// perturbation and `begin_epoch` clears residents.
#[test]
fn fingerprint_tracks_the_real_prefix() {
    let mut model = ticket_model(3, 4, true);
    let split = model.split_at_trainable();
    assert_eq!(
        split, 5,
        "cacheable prefix must cover the frozen backbone plus Flatten"
    );
    let fp = prefix_fingerprint(&model, split);
    let x = rt_tensor::Tensor::from_fn(&[2, 3, 8, 8], |i| (i % 7) as f32 * 0.1);
    let mid = model.forward_prefix(&x, ExecCtx::train(), split).unwrap();
    let mut cache = ActCache::with_capacity_mb(16);
    cache.begin_epoch(fp);
    cache.insert(&[0, 1], &mid);
    assert_eq!(cache.len(), 2);
    model.children_mut()[0].params_mut()[0].data.data_mut()[0] += 0.5;
    let fp2 = prefix_fingerprint(&model, split);
    assert_ne!(fp, fp2, "prefix fingerprint must track weight bytes");
    cache.begin_epoch(fp2);
    assert!(cache.is_empty(), "stale entries survived a prefix change");
}

/// An unfrozen backbone must disable the cache entirely (split 0): the
/// engine never caches activations that tomorrow's step would change.
#[test]
fn unfrozen_backbone_has_no_cacheable_prefix() {
    let model = ticket_model(9, 4, false);
    assert_eq!(model.split_at_trainable(), 0);
}
