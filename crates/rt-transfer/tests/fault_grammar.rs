//! Property tests for the `RT_FAULTS` grammar.
//!
//! The grammar is the operator-facing surface of the fault-injection
//! subsystem, so it gets the strongest guarantee we can state: for *any*
//! constructible [`FaultPlan`], `parse(plan.to_string()) == plan`
//! (display is a canonical, lossless encoding), and malformed entries
//! mixed into an otherwise-valid spec are skipped without perturbing the
//! valid part — a typo must never change which faults fire.

use proptest::prelude::*;
use rt_transfer::fault::FaultPlan;

/// Budget fields: small numbers, a boundary value, and `inf`
/// (`usize::MAX`, displayed as `inf`).
fn times_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![0usize..100, Just(1), Just(usize::MAX)]
}

/// An arbitrary constructible plan, built through the public `with_*`
/// combinators exactly as driver code would.
fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    let nan = (0usize..1000, 0usize..1000, times_strategy());
    let panic = (0usize..1000, times_strategy());
    let trunc = (0usize..100_000, times_strategy());
    let hang = (0usize..1000, times_strategy());
    let delay = (0usize..1000, 0u64..100_000, times_strategy());
    (
        prop::collection::vec(nan, 0..4),
        prop::collection::vec(panic, 0..4),
        prop::collection::vec(trunc, 0..4),
        prop::collection::vec(hang, 0..4),
        prop::collection::vec(delay, 0..4),
    )
        .prop_map(|(nans, panics, truncs, hangs, delays)| {
            let mut plan = FaultPlan::default();
            for (e, b, t) in nans {
                plan = plan.with_nan_loss(e, b, t);
            }
            for (o, t) in panics {
                plan = plan.with_panic_cell(o, t);
            }
            for (k, t) in truncs {
                plan = plan.with_truncation(k, t);
            }
            for (o, t) in hangs {
                plan = plan.with_hang(o, t);
            }
            for (o, ms, t) in delays {
                plan = plan.with_delay(o, ms, t);
            }
            plan
        })
}

/// Specs `FaultPlan::parse` must reject: wrong arity, unknown kinds,
/// non-numeric fields, and `inf` where only a finite number is legal.
fn malformed_spec() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("hang".to_string()),
        Just("hang:x".to_string()),
        Just("hang:1:2:3".to_string()),
        Just("delay:3".to_string()),
        Just("delay:1:inf".to_string()),
        Just("delay:1:2:3:4".to_string()),
        Just("panic-cell".to_string()),
        Just("panic-cell:".to_string()),
        Just("nan-loss:1:2".to_string()),
        Just("nan-loss:a:b:c".to_string()),
        Just("truncate".to_string()),
        Just("bogus:1:2".to_string()),
        Just(":::".to_string()),
        Just("hang:-1".to_string()),
        Just("delay:0:-250".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_display_round_trips(plan in plan_strategy()) {
        let encoded = plan.to_string();
        let reparsed = FaultPlan::parse(&encoded);
        prop_assert_eq!(&reparsed, &plan, "display must be lossless: `{}`", encoded);
        // Display is canonical: a second trip is byte-stable.
        prop_assert_eq!(reparsed.to_string(), encoded);
    }

    #[test]
    fn malformed_entries_never_perturb_the_valid_part(
        plan in plan_strategy(),
        bad in prop::collection::vec(malformed_spec(), 1..4),
        front in any::<bool>(),
    ) {
        let valid = plan.to_string();
        let noise = bad.join(",");
        let mixed = if valid.is_empty() {
            noise
        } else if front {
            format!("{noise},{valid}")
        } else {
            format!("{valid},{noise}")
        };
        prop_assert_eq!(
            FaultPlan::parse(&mixed),
            plan,
            "malformed entries must be skipped, not misparsed: `{}`",
            mixed
        );
    }

    #[test]
    fn arbitrary_garbage_never_panics(raw in "[a-z0-9:,\\-]{0,64}") {
        // Parsing is total: any string yields *some* plan.
        let _ = FaultPlan::parse(&raw);
    }
}
