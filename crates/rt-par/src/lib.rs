//! Deterministic data-parallel compute layer.
//!
//! `rt-par` is a **zero-dependency** (std-only) persistent worker pool with
//! one hard guarantee: *any* thread count produces **bit-identical floats**
//! to the serial path. The guarantee rests on two rules, which every caller
//! in the workspace follows:
//!
//! 1. **Size-deterministic chunking** — work is split into chunks whose
//!    boundaries are a pure function of the *problem size* (never of the
//!    worker count). `RT_THREADS=1` and `RT_THREADS=64` execute exactly the
//!    same chunks, merely on fewer or more threads.
//! 2. **Ordered accumulation** — chunk results are combined strictly in
//!    chunk-index order on the calling thread ([`par_chunks`] returns a
//!    `Vec` ordered by chunk index). Floating-point reduction order is
//!    therefore fixed, regardless of which worker finished first.
//!
//! Tasks that write disjoint outputs ([`par_chunks_mut`]) are trivially
//! deterministic; tasks that reduce go through the ordered-fold path.
//!
//! # Pool lifecycle
//!
//! The global pool is created lazily on first use, sized by the
//! `RT_THREADS` environment variable (default:
//! `std::thread::available_parallelism()`), and can be resized at runtime
//! with [`set_threads`]. A thread count of `n` means *`n` compute threads
//! total*: the calling thread always participates in its own batches
//! (work-helping), so `RT_THREADS=1` spawns no workers at all and runs
//! every task inline — the serial path *is* the 1-thread configuration.
//!
//! Because the caller helps drain its own batch, nested [`run_tasks`]
//! calls (a parallel runner cell whose training loop calls a parallel
//! GEMM) can never deadlock: even with every worker busy, the nested
//! caller completes its batch single-handedly.
//!
//! # Panics
//!
//! A panic inside a task is caught on the executing thread, the rest of
//! the batch still runs, and the first payload is re-thrown on the calling
//! thread once the batch completes — so `catch_unwind` isolation layered
//! above (e.g. the experiment runner's cell boundary) observes the same
//! panic it would have seen serially.
//!
//! # Telemetry
//!
//! `rt-par` sits *below* `rt-obs` in the crate graph, so instrumentation
//! is injected rather than imported: [`set_observer`] installs hooks
//! (`on_tasks`, `on_queue_ms`, `on_pool_threads`, `on_watchdog_trip`,
//! `on_worker_respawn`) that `rt_obs::install_par_observer` wires to the
//! `par.tasks` counter, the `par.queue_ms` histogram, the
//! `par.pool_threads` gauge, and the supervision counters
//! `watchdog.trips` / `par.worker_respawns`.
//!
//! # Supervision
//!
//! [`cancel`] provides cooperative cancellation ([`CancelToken`] /
//! [`CancelScope`]): the caller's ambient token is captured into every
//! batch and checked with one relaxed load per chunk claim, so tripping a
//! token stops a batch at the next chunk boundary and unwinds the waiting
//! caller with a [`Cancelled`] payload. [`watchdog`] turns wall-clock
//! deadlines into token trips. The pool **self-heals**: a worker thread
//! that dies mid-task is respawned (bumping [`pool_generation`]), and
//! after repeated deaths the pool degrades to serial inline execution
//! ([`pool_degraded`]) rather than silently losing parallelism — results
//! are unchanged either way because chunking is size-deterministic.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};
use std::time::Instant;

pub mod cancel;
pub mod stage;
pub mod watchdog;

pub use cancel::{current_cancel, with_cancel, AmbientGuard, CancelScope, CancelToken, Cancelled};
pub use stage::{stage, Staged};

// ---------------------------------------------------------------------------
// Observer hooks (wired to rt-obs by `rt_obs::install_par_observer`)
// ---------------------------------------------------------------------------

/// Telemetry hooks invoked by the pool. Plain function pointers so the
/// crate stays dependency-free; `rt-obs` installs an adapter at session
/// start.
#[derive(Debug, Clone, Copy)]
pub struct ParObserver {
    /// Called with the task count of every [`run_tasks`] batch.
    pub on_tasks: fn(u64),
    /// Called with the milliseconds a pooled batch waited between enqueue
    /// and its first claim by a worker thread.
    pub on_queue_ms: fn(f64),
    /// Called with the configured thread count whenever the pool is
    /// (re)built.
    pub on_pool_threads: fn(u64),
    /// Called with `1` each time the watchdog trips a deadline token.
    pub on_watchdog_trip: fn(u64),
    /// Called with `1` each time a dead worker thread is respawned.
    pub on_worker_respawn: fn(u64),
}

static OBSERVER: OnceLock<ParObserver> = OnceLock::new();

/// Installs the process-wide telemetry observer. The first call wins;
/// later calls return `false` and are ignored (telemetry hooks must stay
/// stable once the pool is live).
pub fn set_observer(obs: ParObserver) -> bool {
    let installed = OBSERVER.set(obs).is_ok();
    if installed {
        // Report the current pool size immediately so a gauge installed
        // after pool creation still has a value.
        (obs.on_pool_threads)(threads() as u64);
    }
    installed
}

#[inline]
fn observe_tasks(n: u64) {
    if let Some(obs) = OBSERVER.get() {
        (obs.on_tasks)(n);
    }
}

#[inline]
fn observe_queue_ms(ms: f64) {
    if let Some(obs) = OBSERVER.get() {
        (obs.on_queue_ms)(ms);
    }
}

#[inline]
fn observe_pool_threads(n: u64) {
    if let Some(obs) = OBSERVER.get() {
        (obs.on_pool_threads)(n);
    }
}

#[inline]
pub(crate) fn observe_watchdog_trip(n: u64) {
    if let Some(obs) = OBSERVER.get() {
        (obs.on_watchdog_trip)(n);
    }
}

#[inline]
fn observe_worker_respawn(n: u64) {
    if let Some(obs) = OBSERVER.get() {
        (obs.on_worker_respawn)(n);
    }
}

// ---------------------------------------------------------------------------
// Batch: one `run_tasks` invocation
// ---------------------------------------------------------------------------

/// Type-erased pointer to the task closure of a live batch.
///
/// Safety: the pointee is only dereferenced while the owning
/// [`run_tasks`] frame is blocked waiting for the batch to complete, so
/// the erased lifetime can never dangle (see `run_tasks` for the proof
/// obligation).
struct TaskPtr(*const (dyn Fn(usize) + Sync));

unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

struct BatchState {
    /// Number of task indices that have finished executing.
    done: usize,
    /// First panic payload observed while executing this batch.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Batch {
    task: TaskPtr,
    total: usize,
    /// Next task index to claim (may overshoot `total`; claimants that
    /// draw an out-of-range index simply stop).
    next: AtomicUsize,
    state: Mutex<BatchState>,
    cv: Condvar,
    enqueued: Instant,
    /// Set by the first *worker* claim, for the queue-latency histogram.
    first_claim: AtomicBool,
    /// The caller's ambient cancellation token at `run_tasks` time. Every
    /// chunk claim checks it (one relaxed load), and executing threads
    /// install it as their own ambient so nested batches inherit it.
    cancel: CancelToken,
}

impl Batch {
    fn new(task: TaskPtr, total: usize, cancel: CancelToken) -> Self {
        Batch {
            task,
            total,
            next: AtomicUsize::new(0),
            state: Mutex::new(BatchState {
                done: 0,
                panic: None,
            }),
            cv: Condvar::new(),
            enqueued: Instant::now(),
            first_claim: AtomicBool::new(false),
            cancel,
        }
    }

    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.total
    }

    /// Claims and executes task indices until none remain. Returns once
    /// this thread can claim no further index (other threads may still be
    /// executing their claimed indices).
    fn work(&self, from_worker: bool) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                return;
            }
            if from_worker
                && !self.first_claim.swap(true, Ordering::Relaxed)
            {
                observe_queue_ms(self.enqueued.elapsed().as_secs_f64() * 1e3);
            }
            // Chunk-boundary cancellation check: a tripped token skips the
            // remaining chunks (recorded as a `Cancelled` outcome so the
            // waiting caller unwinds), without interrupting the chunk that
            // is already executing on some other thread.
            let outcome = if self.cancel.is_cancelled() {
                Err(Box::new(Cancelled) as Box<dyn std::any::Any + Send>)
            } else {
                // Safety: see `TaskPtr` — the closure outlives every claim.
                let task = unsafe { &*self.task.0 };
                // Propagate the batch's token as the executing thread's
                // ambient so nested `run_tasks` calls inherit it.
                let _ambient = cancel::with_cancel(self.cancel);
                catch_unwind(AssertUnwindSafe(|| task(i)))
            };
            let mut st = self.state.lock().expect("batch state poisoned");
            if let Err(payload) = outcome {
                if st.panic.is_none() {
                    st.panic = Some(payload);
                }
            }
            st.done += 1;
            if st.done == self.total {
                self.cv.notify_all();
            }
        }
    }

    /// Blocks until every task index has finished, then re-throws the
    /// first panic observed (if any).
    fn wait(&self) {
        let mut st = self.state.lock().expect("batch state poisoned");
        while st.done < self.total {
            st = self.cv.wait(st).expect("batch state poisoned");
        }
        if let Some(payload) = st.panic.take() {
            drop(st);
            resume_unwind(payload);
        }
    }
}

// ---------------------------------------------------------------------------
// Pool
// ---------------------------------------------------------------------------

/// Worker deaths tolerated before the pool stops respawning and degrades
/// to serial inline execution. Generous enough that an isolated poisoned
/// batch never degrades the pool, small enough that a systematically
/// crashing workload cannot respawn-loop forever.
const MAX_WORKER_DEATHS: usize = 8;

struct PoolShared {
    queue: Mutex<VecDeque<Arc<Batch>>>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Bumped once per worker respawn; lets callers observe healing.
    generation: AtomicU64,
    /// Total worker deaths over this pool's lifetime.
    deaths: AtomicUsize,
    /// Once set, `run_tasks` stops injecting batches and runs inline.
    degraded: AtomicBool,
}

struct Pool {
    shared: Arc<PoolShared>,
    /// Worker threads spawned (== configured threads − 1; the caller is
    /// the final compute thread).
    workers: usize,
}

impl Pool {
    fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            deaths: AtomicUsize::new(0),
            degraded: AtomicBool::new(false),
        });
        let workers = threads - 1;
        for w in 0..workers {
            spawn_worker(Arc::clone(&shared), format!("rt-par-{w}"));
        }
        observe_pool_threads(threads as u64);
        Pool { shared, workers }
    }

    fn degraded(&self) -> bool {
        self.shared.degraded.load(Ordering::Relaxed)
    }

    fn inject(&self, batch: Arc<Batch>) {
        let mut q = self.shared.queue.lock().expect("pool queue poisoned");
        q.push_back(batch);
        drop(q);
        self.shared.cv.notify_all();
    }

    fn remove(&self, batch: &Arc<Batch>) {
        let mut q = self.shared.queue.lock().expect("pool queue poisoned");
        if let Some(pos) = q.iter().position(|b| Arc::ptr_eq(b, batch)) {
            q.remove(pos);
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
    }
}

fn spawn_worker(shared: Arc<PoolShared>, name: String) {
    std::thread::Builder::new()
        .name(name)
        .spawn(move || worker_entry(shared))
        .expect("failed to spawn rt-par worker");
}

/// Worker thread body: runs the claim loop behind a [`WorkerSentinel`]
/// whose `Drop` detects a panicking exit and heals the pool.
fn worker_entry(shared: Arc<PoolShared>) {
    let sentinel = WorkerSentinel {
        shared: Arc::clone(&shared),
    };
    worker_loop(&shared);
    // Clean shutdown: defuse the sentinel so Drop does not respawn.
    std::mem::forget(sentinel);
}

/// Drop-based supervisor for one worker thread. If the worker unwinds
/// (task panics are caught inside `Batch::work`, so reaching here means
/// the worker *itself* died — e.g. a poisoned lock or an injected fault),
/// the sentinel bumps the pool generation, fires the respawn observer
/// hook, and spawns a replacement — unless the death budget is exhausted,
/// in which case the pool degrades to serial execution.
struct WorkerSentinel {
    shared: Arc<PoolShared>,
}

impl Drop for WorkerSentinel {
    fn drop(&mut self) {
        if !std::thread::panicking() || self.shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let deaths = self.shared.deaths.fetch_add(1, Ordering::SeqCst) + 1;
        let generation = self.shared.generation.fetch_add(1, Ordering::SeqCst) + 1;
        observe_worker_respawn(1);
        if deaths >= MAX_WORKER_DEATHS {
            // Degradation ladder, final rung: stop respawning, run every
            // future batch inline on the caller. Wake sleepers so live
            // workers notice shutdown-ward state changes promptly.
            self.shared.degraded.store(true, Ordering::SeqCst);
            self.shared.cv.notify_all();
            return;
        }
        let shared = Arc::clone(&self.shared);
        let name = format!("rt-par-heal-{generation}");
        if std::thread::Builder::new()
            .name(name)
            .spawn(move || worker_entry(shared))
            .is_err()
        {
            // Cannot even spawn a replacement: degrade instead of
            // silently shrinking the pool.
            self.shared.degraded.store(true, Ordering::SeqCst);
        }
    }
}

/// Test hook: makes the next `n` batch claims by pool workers panic the
/// *worker thread itself* (after the batch is visible in the queue, so
/// batch accounting is unaffected and the caller drains the work). Used
/// to exercise the self-healing path deterministically.
static KILL_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Arms the worker-death fault hook for the next `n` worker claims.
pub fn inject_worker_death(n: usize) {
    KILL_WORKERS.fetch_add(n, Ordering::SeqCst);
}

fn consume_worker_death() -> bool {
    let mut cur = KILL_WORKERS.load(Ordering::SeqCst);
    while cur > 0 {
        match KILL_WORKERS.compare_exchange(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let batch = {
            let mut q = shared.queue.lock().expect("pool queue poisoned");
            loop {
                // Drop exhausted batches from the front; their remaining
                // in-flight indices are finished by whoever claimed them.
                while q.front().is_some_and(|b| b.exhausted()) {
                    q.pop_front();
                }
                if let Some(front) = q.front() {
                    break Arc::clone(front);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = shared.cv.wait(q).expect("pool queue poisoned");
            }
        };
        // Injected worker death: the batch is still queued, so the caller
        // (or a healed replacement) finishes its chunks; only this thread
        // dies, exercising the sentinel respawn path.
        if consume_worker_death() {
            panic!("injected fault: rt-par worker death");
        }
        batch.work(true);
        // The batch this worker just drained is exhausted; retire it so
        // later arrivals don't scan past it.
        let mut q = shared.queue.lock().expect("pool queue poisoned");
        if let Some(pos) = q.iter().position(|b| Arc::ptr_eq(b, &batch)) {
            q.remove(pos);
        }
    }
}

static GLOBAL: OnceLock<RwLock<Arc<Pool>>> = OnceLock::new();

fn default_threads() -> usize {
    match std::env::var("RT_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => 1,
        },
        Err(_) => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

fn global() -> &'static RwLock<Arc<Pool>> {
    GLOBAL.get_or_init(|| RwLock::new(Arc::new(Pool::new(default_threads()))))
}

fn current_pool() -> Arc<Pool> {
    Arc::clone(&global().read().expect("pool lock poisoned"))
}

/// The configured compute-thread count (workers + the calling thread).
pub fn threads() -> usize {
    current_pool().workers + 1
}

/// Rebuilds the global pool with `n` compute threads (clamped to ≥ 1).
/// Batches already in flight complete on the old workers; new batches go
/// to the new pool. Because chunking is size-deterministic, changing the
/// thread count never changes results — only wall-clock time.
///
/// Rebuilding also *heals* a degraded pool: a `set_threads` call on a
/// pool that gave up after repeated worker deaths starts over with a
/// fresh death budget.
pub fn set_threads(n: usize) {
    let n = n.max(1);
    let mut guard = global().write().expect("pool lock poisoned");
    if guard.workers + 1 == n && !guard.degraded() {
        return;
    }
    *guard = Arc::new(Pool::new(n));
}

/// Monotone counter of worker respawns in the current pool (0 for a pool
/// that has never lost a worker).
pub fn pool_generation() -> u64 {
    current_pool().shared.generation.load(Ordering::SeqCst)
}

/// Whether the current pool has degraded to serial inline execution after
/// exhausting its worker-death budget. A degraded pool still completes
/// every batch — on the calling thread — with bit-identical results.
pub fn pool_degraded() -> bool {
    current_pool().degraded()
}

// ---------------------------------------------------------------------------
// Core execution primitive
// ---------------------------------------------------------------------------

/// Executes `task(0..total)` across the pool, blocking until every index
/// has run. Indices may execute on any thread in any order; callers own
/// the determinism contract by writing disjoint outputs or folding
/// returned chunks in order (see the crate docs).
///
/// The calling thread always participates, so this cannot deadlock even
/// when invoked from inside another batch.
///
/// The caller's ambient [`CancelToken`] (see [`with_cancel`]) is captured
/// into the batch and checked at every chunk claim; if it trips mid-batch
/// the remaining chunks are skipped and this call unwinds with a
/// [`Cancelled`] payload once in-flight chunks finish.
///
/// # Panics
///
/// Re-throws the first panic raised by any task after the whole batch has
/// completed.
pub fn run_tasks(total: usize, task: &(dyn Fn(usize) + Sync)) {
    if total == 0 {
        return;
    }
    observe_tasks(total as u64);
    let token = cancel::current_cancel();
    let pool = current_pool();
    if pool.workers == 0 || total == 1 || pool.degraded() {
        // Serial path: identical chunk sequence, executed inline, with
        // the same chunk-boundary cancellation checks as the pooled path.
        for i in 0..total {
            token.check();
            task(i);
        }
        return;
    }
    // Erase the closure lifetime. Safety: `batch.wait()` below does not
    // return until `done == total`, and no thread dereferences the task
    // pointer after claiming an out-of-range index, so the reference is
    // live for every dereference.
    let erased: TaskPtr = TaskPtr(unsafe {
        std::mem::transmute::<
            *const (dyn Fn(usize) + Sync),
            *const (dyn Fn(usize) + Sync + 'static),
        >(task as *const (dyn Fn(usize) + Sync))
    });
    let batch = Arc::new(Batch::new(erased, total, token));
    pool.inject(Arc::clone(&batch));
    batch.work(false);
    batch.wait();
    pool.remove(&batch);
}

// ---------------------------------------------------------------------------
// High-level deterministic APIs
// ---------------------------------------------------------------------------

/// Number of chunks a length-`len` problem splits into at chunk size
/// `chunk` (a pure function of the two sizes — never of the pool).
#[inline]
pub fn chunk_count(len: usize, chunk: usize) -> usize {
    assert!(chunk > 0, "chunk size must be non-zero");
    len.div_ceil(chunk)
}

/// Maps fixed-size chunks of `data` in parallel, returning one result per
/// chunk **in chunk-index order**. Fold the returned vector serially to
/// obtain a reduction whose float order is independent of the thread
/// count.
///
/// # Panics
///
/// Panics if `chunk == 0`, and re-throws task panics (see [`run_tasks`]).
pub fn par_chunks<T, R, F>(data: &[T], chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let n = chunk_count(data.len(), chunk);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    run_tasks(n, &|i| {
        let start = i * chunk;
        let end = (start + chunk).min(data.len());
        let r = f(i, &data[start..end]);
        *slots[i].lock().expect("par_chunks slot poisoned") = Some(r);
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("par_chunks slot poisoned")
                .expect("every chunk index ran")
        })
        .collect()
}

/// Raw pointer wrapper for handing disjoint sub-slices to tasks.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Returns the wrapped pointer. Going through a method (rather than
    /// field access) makes closures capture the whole `Sync` wrapper
    /// instead of the bare `*mut T` under edition-2021 precise capture.
    fn get(&self) -> *mut T {
        self.0
    }
}

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Mutates fixed-size, **disjoint** chunks of `data` in parallel. The
/// closure receives the chunk index and the mutable chunk; because chunks
/// never overlap and chunk boundaries depend only on `data.len()` and
/// `chunk`, results are bit-identical for every thread count.
///
/// # Panics
///
/// Panics if `chunk == 0`, and re-throws task panics (see [`run_tasks`]).
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    let n = chunk_count(len, chunk);
    let base = SendPtr(data.as_mut_ptr());
    run_tasks(n, &|i| {
        let start = i * chunk;
        let end = (start + chunk).min(len);
        // Safety: chunk ranges [start, end) are pairwise disjoint and in
        // bounds, and `data` is mutably borrowed for the whole call.
        let slice = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        f(i, slice);
    });
}

/// Runs two closures, potentially in parallel, and returns both results.
///
/// # Panics
///
/// Re-throws the first panic raised by either closure.
pub fn par_join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
{
    let fa = Mutex::new(Some(a));
    let fb = Mutex::new(Some(b));
    let ra: Mutex<Option<RA>> = Mutex::new(None);
    let rb: Mutex<Option<RB>> = Mutex::new(None);
    run_tasks(2, &|i| {
        if i == 0 {
            let f = fa.lock().expect("par_join slot").take().expect("ran once");
            *ra.lock().expect("par_join slot") = Some(f());
        } else {
            let f = fb.lock().expect("par_join slot").take().expect("ran once");
            *rb.lock().expect("par_join slot") = Some(f());
        }
    });
    (
        ra.into_inner().expect("par_join slot").expect("task 0 ran"),
        rb.into_inner().expect("par_join slot").expect("task 1 ran"),
    )
}

/// A zero-sized, `Copy` handle to the global pool, carried inside
/// `rt_nn::ExecCtx` so layers receive their parallelism context
/// explicitly instead of reaching for globals ad hoc.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Handle;

impl Handle {
    /// See [`threads`].
    pub fn threads(self) -> usize {
        threads()
    }

    /// See [`run_tasks`].
    pub fn run_tasks(self, total: usize, task: &(dyn Fn(usize) + Sync)) {
        run_tasks(total, task)
    }

    /// See [`par_chunks`].
    pub fn par_chunks<T, R, F>(self, data: &[T], chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        par_chunks(data, chunk, f)
    }

    /// See [`par_chunks_mut`].
    pub fn par_chunks_mut<T, F>(self, data: &mut [T], chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        par_chunks_mut(data, chunk, f)
    }

    /// See [`par_join`].
    pub fn par_join<RA, RB, A, B>(self, a: A, b: B) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
    {
        par_join(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Serializes tests that reconfigure the global pool.
    fn pool_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn serial_and_parallel_chunked_sums_are_bit_identical() {
        let _g = pool_lock();
        let data: Vec<f32> = (0..100_003)
            .map(|i| ((i as f32) * 0.37).sin() * 1e3)
            .collect();
        let chunk = 4096;
        let mut baselines = Vec::new();
        for &t in &[1usize, 2, 4, 7] {
            set_threads(t);
            let partials = par_chunks(&data, chunk, |_, c| c.iter().sum::<f32>());
            assert_eq!(partials.len(), chunk_count(data.len(), chunk));
            let total: f32 = partials.iter().fold(0.0, |a, &b| a + b);
            baselines.push(total.to_bits());
        }
        assert!(
            baselines.windows(2).all(|w| w[0] == w[1]),
            "chunked sum must be bit-identical across thread counts: {baselines:?}"
        );
        set_threads(1);
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_chunks() {
        let _g = pool_lock();
        set_threads(4);
        let mut data = vec![0u64; 10_000];
        par_chunks_mut(&mut data, 17, |i, c| {
            for (j, v) in c.iter_mut().enumerate() {
                *v = (i * 17 + j) as u64;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u64);
        }
        set_threads(1);
    }

    #[test]
    fn results_preserve_chunk_order() {
        let _g = pool_lock();
        set_threads(4);
        let data: Vec<usize> = (0..1000).collect();
        let firsts = par_chunks(&data, 100, |i, c| (i, c[0]));
        for (i, &(idx, first)) in firsts.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(first, i * 100);
        }
        set_threads(1);
    }

    #[test]
    fn par_join_returns_both_results() {
        let _g = pool_lock();
        set_threads(2);
        let (a, b) = par_join(|| 6 * 7, || "done".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "done");
        set_threads(1);
    }

    #[test]
    fn panic_in_task_propagates_after_batch_completes() {
        let _g = pool_lock();
        set_threads(4);
        let ran = AtomicU64::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_tasks(16, &|i| {
                ran.fetch_add(1, Ordering::SeqCst);
                if i == 3 {
                    panic!("task 3 exploded");
                }
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str>");
        assert_eq!(msg, "task 3 exploded");
        // The rest of the batch still ran (no cancellation).
        assert_eq!(ran.load(Ordering::SeqCst), 16);
        set_threads(1);
    }

    #[test]
    fn nested_run_tasks_completes() {
        let _g = pool_lock();
        set_threads(2);
        let total = AtomicU64::new(0);
        run_tasks(4, &|_| {
            // Nested batch from inside a batch: the inner caller helps
            // itself, so this must not deadlock even on a busy pool.
            run_tasks(8, &|_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), 32);
        set_threads(1);
    }

    #[test]
    fn zero_tasks_is_a_no_op_and_one_task_runs_inline() {
        let _g = pool_lock();
        set_threads(4);
        run_tasks(0, &|_| panic!("must not run"));
        let caller = std::thread::current().id();
        run_tasks(1, &|_| {
            assert_eq!(std::thread::current().id(), caller, "single task inlines");
        });
        set_threads(1);
    }

    #[test]
    fn set_threads_clamps_and_reports() {
        let _g = pool_lock();
        set_threads(0);
        assert_eq!(threads(), 1);
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(1);
        assert_eq!(threads(), 1);
    }

    #[test]
    fn observer_counts_tasks() {
        let _g = pool_lock();
        static TASKS: AtomicU64 = AtomicU64::new(0);
        // First installation wins; in case another test got here first we
        // still exercise the counting path through the same static.
        let _ = set_observer(ParObserver {
            on_tasks: |n| {
                TASKS.fetch_add(n, Ordering::SeqCst);
            },
            on_queue_ms: |_| {},
            on_pool_threads: |_| {},
            on_watchdog_trip: |_| {},
            on_worker_respawn: |_| {},
        });
        set_threads(2);
        let before = TASKS.load(Ordering::SeqCst);
        run_tasks(5, &|_| {});
        assert_eq!(TASKS.load(Ordering::SeqCst), before + 5);
        set_threads(1);
    }

    #[test]
    fn chunk_count_is_a_pure_size_function() {
        assert_eq!(chunk_count(0, 8), 0);
        assert_eq!(chunk_count(8, 8), 1);
        assert_eq!(chunk_count(9, 8), 2);
        assert_eq!(chunk_count(1000, 1), 1000);
    }

    #[test]
    #[should_panic(expected = "chunk size must be non-zero")]
    fn zero_chunk_size_panics() {
        let _ = chunk_count(10, 0);
    }

    #[test]
    fn serial_path_checks_cancellation_between_tasks() {
        let _g = pool_lock();
        set_threads(1);
        let scope = CancelScope::new();
        let _amb = with_cancel(scope.token());
        let ran = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_tasks(10, &|i| {
                ran.fetch_add(1, Ordering::SeqCst);
                if i == 2 {
                    scope.trip();
                }
            });
        }));
        let payload = result.expect_err("cancelled serial batch must unwind");
        assert!(payload.downcast_ref::<Cancelled>().is_some());
        assert_eq!(
            ran.load(Ordering::SeqCst),
            3,
            "serial path stops at the first boundary after the trip"
        );
    }

    #[test]
    fn tripped_token_cancels_pooled_batch_at_chunk_boundaries() {
        let _g = pool_lock();
        set_threads(4);
        let scope = CancelScope::new();
        let token = scope.token();
        let ran = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _amb = with_cancel(token);
            run_tasks(100, &|i| {
                ran.fetch_add(1, Ordering::SeqCst);
                if i == 0 {
                    scope.trip();
                } else {
                    // Park until the trip lands so at most one claim per
                    // thread executes before cancellation is observable.
                    while !token.is_cancelled() {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
            });
        }));
        let payload = result.expect_err("cancelled batch must unwind");
        assert!(payload.downcast_ref::<Cancelled>().is_some());
        let executed = ran.load(Ordering::SeqCst);
        assert!(
            executed <= threads() as u64 + 1,
            "claims after the trip must be skipped (executed {executed})"
        );
        set_threads(1);
    }

    #[test]
    fn pre_cancelled_ambient_skips_pooled_batch_entirely() {
        let _g = pool_lock();
        set_threads(4);
        let scope = CancelScope::new();
        scope.trip();
        let _amb = with_cancel(scope.token());
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_tasks(32, &|_| panic!("must never execute"));
        }));
        let payload = result.expect_err("pre-cancelled batch must unwind");
        assert!(payload.downcast_ref::<Cancelled>().is_some());
        set_threads(1);
    }

    #[test]
    fn dead_worker_is_respawned_and_work_completes() {
        let _g = pool_lock();
        set_threads(1);
        set_threads(4); // fresh pool with a zeroed generation counter
        let gen_before = pool_generation();
        inject_worker_death(1);
        let t0 = Instant::now();
        while pool_generation() == gen_before {
            // Keep feeding batches until a worker claims one (and dies);
            // the caller drains whatever the dead worker left behind.
            let ran = AtomicU64::new(0);
            run_tasks(32, &|_| {
                ran.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_micros(200));
            });
            assert_eq!(ran.load(Ordering::SeqCst), 32, "batch must still complete");
            assert!(
                t0.elapsed() < std::time::Duration::from_secs(30),
                "worker death was never observed/healed"
            );
        }
        assert!(!pool_degraded(), "a single death must not degrade the pool");
        set_threads(1);
    }

    #[test]
    fn repeated_worker_deaths_degrade_to_serial_and_set_threads_heals() {
        let _g = pool_lock();
        set_threads(1);
        set_threads(2); // fresh pool: one worker, zero deaths
        inject_worker_death(MAX_WORKER_DEATHS);
        let t0 = Instant::now();
        while !pool_degraded() {
            run_tasks(16, &|_| {
                std::thread::sleep(std::time::Duration::from_micros(100));
            });
            assert!(
                t0.elapsed() < std::time::Duration::from_secs(60),
                "pool failed to degrade after {MAX_WORKER_DEATHS} deaths"
            );
        }
        // Degraded pool still completes every batch, inline.
        let ran = AtomicU64::new(0);
        run_tasks(10, &|_| {
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 10);
        // Rebuilding heals: fresh pool, fresh death budget.
        set_threads(2);
        assert!(!pool_degraded());
        set_threads(1);
    }

    #[test]
    fn handle_is_copy_and_delegates() {
        let _g = pool_lock();
        set_threads(2);
        let h = Handle;
        let h2 = h; // Copy
        assert_eq!(h.threads(), 2);
        let mut out = vec![0.0f32; 64];
        h2.par_chunks_mut(&mut out, 16, |i, c| c.fill(i as f32));
        assert_eq!(out[0], 0.0);
        assert_eq!(out[63], 3.0);
        set_threads(1);
    }
}
