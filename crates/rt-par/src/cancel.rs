//! Cooperative cancellation: tokens, scopes, and the thread-local ambient.
//!
//! A [`CancelToken`] is a *generation snapshot* of a shared atomic counter:
//! the token remembers the counter value at creation time, and is
//! "cancelled" exactly when the counter has moved past that value. This
//! gives three properties the supervision layer needs:
//!
//! 1. **One relaxed load per check.** [`CancelToken::is_cancelled`] is a
//!    single `Relaxed` atomic load plus an integer compare — cheap enough
//!    to call at every chunk boundary in `rt-par` and every batch boundary
//!    in the training loop without measurable overhead.
//! 2. **`Copy`, no allocation.** Tokens are a `&'static AtomicU64` plus a
//!    `u64`, so they thread through `ExecCtx` (which is `Copy`) for free.
//!    Slots come from a fixed static pool; a [`CancelScope`] *borrows* a
//!    slot for its lifetime rather than owning an allocation.
//! 3. **Stale tokens fail safe.** After a scope's slot is recycled, any
//!    token that outlived the scope reads a newer generation and reports
//!    *cancelled* — leaked tokens can never keep stale work running.
//!
//! Cancellation is **cooperative and deterministic**: nothing is
//! interrupted; workers observe the token at chunk boundaries and unwind
//! with a [`Cancelled`] payload. Because checks happen only at
//! size-deterministic chunk boundaries, a run whose token is never tripped
//! is bit-identical to an unsupervised run.
//!
//! The *ambient* token is a thread-local that [`with_cancel`] installs and
//! [`current_cancel`] reads. `run_tasks` captures the caller's ambient
//! token into the batch and re-installs it on every executing thread, so
//! nested parallelism inherits cancellation without any plumbing.

use std::cell::Cell;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Panic payload used to unwind cancelled work. The experiment runner's
/// `catch_unwind` boundary downcasts to this type to distinguish a
/// deadline cancellation from an organic task panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("work cancelled by supervision token")
    }
}

/// Number of generation slots available for concurrently-live scopes.
/// Scopes are short-lived (one runner cell attempt each), so collisions
/// require > `SLOT_COUNT` *simultaneous* scopes; a collision only makes
/// cancellation spuriously conservative (extra retry), never unsound.
const SLOT_COUNT: usize = 256;

static SLOTS: [AtomicU64; SLOT_COUNT] = [const { AtomicU64::new(0) }; SLOT_COUNT];
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

/// Dedicated slot for [`CancelToken::never`]; `trip` refuses to touch it,
/// so "never" tokens are permanently un-cancellable.
static NEVER_SLOT: AtomicU64 = AtomicU64::new(0);

/// A `Copy` cancellation probe: a generation snapshot of one shared
/// counter slot. See the module docs for semantics.
#[derive(Clone, Copy)]
pub struct CancelToken {
    slot: &'static AtomicU64,
    expected: u64,
}

impl CancelToken {
    /// A token that can never be cancelled — the default ambient value.
    pub fn never() -> Self {
        CancelToken {
            slot: &NEVER_SLOT,
            expected: 0,
        }
    }

    /// One relaxed load: has this token's generation been superseded?
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.slot.load(Ordering::Relaxed) != self.expected
    }

    /// Unwinds with a [`Cancelled`] payload if the token has been tripped.
    /// This deliberately does *not* call `panic!` so the process panic
    /// hook stays quiet for routine deadline cancellations.
    #[inline]
    pub fn check(&self) {
        if self.is_cancelled() {
            resume_unwind(Box::new(Cancelled));
        }
    }

    /// Advances the slot's generation past this token. Returns `true` if
    /// this call performed the trip, `false` if the token was already
    /// cancelled (or is a `never` token, which cannot be tripped).
    pub fn trip(&self) -> bool {
        if std::ptr::eq(self.slot, &NEVER_SLOT) {
            return false;
        }
        self.slot
            .compare_exchange(
                self.expected,
                self.expected.wrapping_add(1),
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("slot", &(self.slot as *const AtomicU64))
            .field("expected", &self.expected)
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.slot, other.slot) && self.expected == other.expected
    }
}

impl Eq for CancelToken {}

impl std::hash::Hash for CancelToken {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (self.slot as *const AtomicU64).hash(state);
        self.expected.hash(state);
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::never()
    }
}

/// Owner of one cancellation generation: hand [`CancelScope::token`] to
/// the work being supervised, keep the scope on the supervising side, and
/// call [`CancelScope::trip`] (directly or via the watchdog) to cancel.
///
/// Dropping the scope releases its slot for reuse; tokens that outlive
/// the scope read as cancelled once the slot is recycled.
#[derive(Debug)]
pub struct CancelScope {
    token: CancelToken,
}

impl CancelScope {
    /// Claims the next slot round-robin and snapshots its generation.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        let idx = NEXT_SLOT.fetch_add(1, Ordering::Relaxed) % SLOT_COUNT;
        let slot = &SLOTS[idx];
        CancelScope {
            token: CancelToken {
                slot,
                expected: slot.load(Ordering::Relaxed),
            },
        }
    }

    /// The `Copy` token to thread into supervised work.
    pub fn token(&self) -> CancelToken {
        self.token
    }

    /// Cancels the scope. Returns `true` if this call tripped it.
    pub fn trip(&self) -> bool {
        self.token.trip()
    }

    /// Whether the scope has been cancelled (by anyone).
    pub fn tripped(&self) -> bool {
        self.token.is_cancelled()
    }
}

thread_local! {
    static AMBIENT: Cell<CancelToken> = const { Cell::new(CancelToken {
        slot: &NEVER_SLOT,
        expected: 0,
    }) };
}

/// The calling thread's ambient cancellation token (never-cancelled by
/// default). `ExecCtx::new` snapshots this, and `run_tasks` propagates it
/// into batches, so any code below a [`with_cancel`] guard inherits the
/// supervising scope automatically.
pub fn current_cancel() -> CancelToken {
    AMBIENT.with(Cell::get)
}

/// RAII guard restoring the previous ambient token on drop.
#[derive(Debug)]
pub struct AmbientGuard {
    prev: CancelToken,
}

/// Installs `token` as the calling thread's ambient cancellation token
/// until the returned guard drops (guards nest: drop restores the
/// previous ambient, not `never`).
#[must_use = "the ambient token is uninstalled when the guard drops"]
pub fn with_cancel(token: CancelToken) -> AmbientGuard {
    let prev = AMBIENT.with(|c| c.replace(token));
    AmbientGuard { prev }
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        AMBIENT.with(|c| c.set(prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn fresh_scope_is_not_cancelled_and_trips_once() {
        let scope = CancelScope::new();
        let token = scope.token();
        assert!(!token.is_cancelled());
        assert!(!scope.tripped());
        assert!(scope.trip(), "first trip wins");
        assert!(!scope.trip(), "second trip is a no-op");
        assert!(token.is_cancelled());
        assert!(scope.tripped());
    }

    #[test]
    fn never_token_cannot_be_tripped() {
        let t = CancelToken::never();
        assert!(!t.is_cancelled());
        assert!(!t.trip());
        assert!(!t.is_cancelled());
    }

    #[test]
    fn check_unwinds_with_cancelled_payload() {
        let scope = CancelScope::new();
        let token = scope.token();
        token.check(); // not yet tripped: no-op
        scope.trip();
        let payload = catch_unwind(AssertUnwindSafe(|| token.check()))
            .expect_err("tripped token must unwind");
        assert!(payload.downcast_ref::<Cancelled>().is_some());
    }

    #[test]
    fn ambient_nests_and_restores() {
        assert!(!current_cancel().is_cancelled());
        let outer = CancelScope::new();
        let inner = CancelScope::new();
        {
            let _g1 = with_cancel(outer.token());
            assert_eq!(current_cancel(), outer.token());
            {
                let _g2 = with_cancel(inner.token());
                assert_eq!(current_cancel(), inner.token());
            }
            assert_eq!(current_cancel(), outer.token());
        }
        assert_eq!(current_cancel(), CancelToken::never());
    }

    #[test]
    fn stale_token_reads_cancelled_after_slot_reuse() {
        let scope = CancelScope::new();
        let stale = scope.token();
        // Recycle the slot: trip it via a later scope on the same slot.
        scope.trip();
        drop(scope);
        assert!(stale.is_cancelled(), "superseded generation fails safe");
    }

    #[test]
    fn token_equality_and_hash_follow_slot_and_generation() {
        use std::collections::HashSet;
        let scope = CancelScope::new();
        let a = scope.token();
        let b = scope.token();
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
        assert_ne!(a, CancelToken::never());
    }
}
