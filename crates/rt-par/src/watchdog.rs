//! Wall-clock deadline enforcement: a single lazy watchdog thread that
//! trips [`CancelToken`]s when their armed deadline expires.
//!
//! [`arm`] registers `(token, deadline)` and returns a guard; dropping the
//! guard disarms the deadline (the normal case — the supervised work
//! finished in time). The watchdog thread sleeps until the *nearest*
//! armed deadline, trips every expired token via its CAS (so a trip that
//! races with completion is resolved atomically), fires the
//! `on_watchdog_trip` observer hook for each successful trip, and goes
//! back to sleep. With nothing armed it blocks indefinitely on a condvar
//! — zero steady-state cost.
//!
//! The thread is named `rt-watchdog` and is spawned at most once per
//! process, on first [`arm`]. It is intentionally hosted in `rt-par`
//! (alongside the pool workers) so the workspace-wide thread-discipline
//! rule — no `thread::spawn` outside `rt-par`/`rt-obs` — holds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::cancel::CancelToken;
use crate::observe_watchdog_trip;

struct Entry {
    id: u64,
    token: CancelToken,
    deadline: Instant,
}

struct Registry {
    entries: Mutex<Vec<Entry>>,
    cv: Condvar,
}

static REGISTRY: OnceLock<&'static Registry> = OnceLock::new();
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| {
        let reg: &'static Registry = Box::leak(Box::new(Registry {
            entries: Mutex::new(Vec::new()),
            cv: Condvar::new(),
        }));
        std::thread::Builder::new()
            .name("rt-watchdog".to_string())
            .spawn(move || watchdog_loop(reg))
            .expect("failed to spawn rt-watchdog thread");
        reg
    })
}

fn watchdog_loop(reg: &'static Registry) {
    let mut entries = reg.entries.lock().expect("watchdog registry poisoned");
    loop {
        let now = Instant::now();
        entries.retain(|e| {
            if e.deadline <= now {
                if e.token.trip() {
                    observe_watchdog_trip(1);
                }
                false
            } else {
                true
            }
        });
        let nearest = entries.iter().map(|e| e.deadline).min();
        entries = match nearest {
            Some(at) => {
                let wait = at.saturating_duration_since(Instant::now());
                reg.cv
                    .wait_timeout(entries, wait)
                    .expect("watchdog registry poisoned")
                    .0
            }
            None => reg.cv.wait(entries).expect("watchdog registry poisoned"),
        };
    }
}

/// Disarms its deadline on drop. If the deadline already fired, dropping
/// the guard is a no-op (the token stays tripped; completion-vs-trip
/// races are settled by the token's CAS).
#[derive(Debug)]
#[must_use = "the deadline is disarmed when the guard drops"]
pub struct DeadlineGuard {
    id: u64,
}

/// Arms a wall-clock deadline: after `after`, the watchdog thread trips
/// `token`. Drop the returned guard to disarm.
pub fn arm(token: CancelToken, after: Duration) -> DeadlineGuard {
    let reg = registry();
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let deadline = Instant::now() + after;
    {
        let mut entries = reg.entries.lock().expect("watchdog registry poisoned");
        entries.push(Entry {
            id,
            token,
            deadline,
        });
    }
    // Wake the watchdog so it re-derives the nearest deadline.
    reg.cv.notify_all();
    DeadlineGuard { id }
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        if let Some(reg) = REGISTRY.get() {
            let mut entries = reg.entries.lock().expect("watchdog registry poisoned");
            entries.retain(|e| e.id != self.id);
            // No wakeup needed: a spurious short sleep is harmless.
        }
    }
}

/// Number of deadlines currently armed (test/introspection hook).
pub fn armed() -> usize {
    REGISTRY
        .get()
        .map(|reg| {
            reg.entries
                .lock()
                .expect("watchdog registry poisoned")
                .len()
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cancel::CancelScope;

    #[test]
    fn expired_deadline_trips_token() {
        let scope = CancelScope::new();
        let _guard = arm(scope.token(), Duration::from_millis(20));
        let t0 = Instant::now();
        while !scope.tripped() {
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "watchdog failed to trip an expired deadline"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(scope.tripped());
    }

    #[test]
    fn disarmed_deadline_never_fires() {
        let scope = CancelScope::new();
        {
            let _guard = arm(scope.token(), Duration::from_millis(30));
            // Guard dropped here: the deadline is disarmed well before it
            // would fire.
        }
        std::thread::sleep(Duration::from_millis(90));
        assert!(!scope.tripped(), "disarmed deadline must not trip");
    }

    #[test]
    fn many_deadlines_trip_independently() {
        let doomed = CancelScope::new();
        let safe = CancelScope::new();
        let _d = arm(doomed.token(), Duration::from_millis(15));
        let g = arm(safe.token(), Duration::from_secs(3600));
        let t0 = Instant::now();
        while !doomed.tripped() {
            assert!(t0.elapsed() < Duration::from_secs(5));
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(!safe.tripped(), "far deadline must be untouched");
        drop(g);
        std::thread::sleep(Duration::from_millis(30));
        assert!(!safe.tripped(), "disarmed far deadline stays untripped");
    }
}
