//! Single-slot asynchronous staging for pipelined producers.
//!
//! [`stage`] hands a closure to a dedicated background thread and returns a
//! [`Staged`] handle; [`Staged::wait`] later collects the result. The
//! intended shape is a double-buffered pipeline: while the consumer works
//! on item *k*, the producer closure for item *k + 1* runs off the
//! critical path (the `rt-data` prefetch loader is the canonical user).
//!
//! # Determinism
//!
//! The closure's *result* is what matters, never *where* it ran: a staged
//! job may execute on the background thread or be claimed by the waiting
//! caller ([`Staged::wait`] steals still-pending jobs), and both paths
//! produce the same bytes because the closure itself is deterministic.
//! Staging therefore never changes numerics — it only overlaps latency.
//!
//! # Scheduling
//!
//! One lazily-spawned worker (`rt-par-stage`) drains a FIFO queue. A
//! single thread is deliberate: staging exists to hide producer latency
//! behind consumer compute, not to parallelise producers — the compute
//! pool ([`crate::run_tasks`]) stays in charge of real parallelism, and a
//! lone staging thread cannot oversubscribe it. If the worker cannot be
//! spawned (or is busy), the claim-on-wait path keeps every pipeline
//! live-lock free: `wait` never blocks on a job nobody is running.
//!
//! # Supervision
//!
//! The caller's ambient [`CancelToken`] at [`stage`] time is re-installed
//! around the closure's execution, so staged work inherits cooperative
//! cancellation exactly like pool tasks. A panic inside the closure is
//! captured and re-thrown from [`Staged::wait`] on the consumer thread;
//! the staging worker itself survives.

use crate::cancel::{current_cancel, with_cancel, CancelToken};
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Lifecycle of one staged job.
enum State<T> {
    /// Not yet claimed; the closure is waiting to run.
    Pending(Box<dyn FnOnce() -> T + Send>),
    /// Claimed by the worker or a stealing waiter; result not ready yet.
    Running,
    /// Finished; the value waits for [`Staged::wait`].
    Done(T),
    /// The closure panicked; the payload is re-thrown at [`Staged::wait`].
    Panicked(Box<dyn Any + Send>),
}

struct Slot<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
    /// The submitter's ambient supervision token, re-installed around the
    /// closure so nested `rt-par` work inherits cancellation.
    cancel: CancelToken,
}

/// Object-safe face of a [`Slot`] so the queue can hold mixed result types.
trait Job: Send + Sync {
    /// Claims and executes the job if it is still pending; no-op otherwise.
    fn run(&self);
}

impl<T: Send> Job for Slot<T> {
    fn run(&self) {
        let f = {
            let mut st = self.state.lock().expect("stage slot poisoned");
            match std::mem::replace(&mut *st, State::Running) {
                State::Pending(f) => f,
                other => {
                    // Already claimed (or finished) by the other side;
                    // restore whatever was there and walk away.
                    *st = other;
                    return;
                }
            }
        };
        let _ambient = with_cancel(self.cancel);
        let outcome = catch_unwind(AssertUnwindSafe(f));
        let mut st = self.state.lock().expect("stage slot poisoned");
        *st = match outcome {
            Ok(v) => State::Done(v),
            Err(payload) => State::Panicked(payload),
        };
        self.cv.notify_all();
    }
}

struct StageQueue {
    jobs: Mutex<VecDeque<Arc<dyn Job>>>,
    cv: Condvar,
}

fn queue() -> &'static StageQueue {
    static QUEUE: OnceLock<StageQueue> = OnceLock::new();
    QUEUE.get_or_init(|| StageQueue {
        jobs: Mutex::new(VecDeque::new()),
        cv: Condvar::new(),
    })
}

/// Spawns the staging worker on first use. Spawn failure is tolerated:
/// jobs are then executed by their waiters via the steal path.
fn ensure_worker() {
    static WORKER: OnceLock<bool> = OnceLock::new();
    WORKER.get_or_init(|| {
        std::thread::Builder::new()
            .name("rt-par-stage".to_string())
            .spawn(worker_loop)
            .is_ok()
    });
}

fn worker_loop() {
    let q = queue();
    loop {
        let job = {
            let mut jobs = q.jobs.lock().expect("stage queue poisoned");
            loop {
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                jobs = q.cv.wait(jobs).expect("stage queue poisoned");
            }
        };
        // `run` catches closure panics internally, so the worker survives
        // arbitrary job failures.
        job.run();
    }
}

/// Handle to a staged closure; redeem it with [`Staged::wait`].
///
/// Dropping the handle without waiting is allowed — the job still runs (or
/// is discarded with the queue's reference once executed) and its result
/// is dropped.
pub struct Staged<T> {
    slot: Arc<Slot<T>>,
}

impl<T: Send + 'static> Staged<T> {
    /// Whether the result is already available (non-blocking).
    pub fn is_ready(&self) -> bool {
        matches!(
            *self.slot.state.lock().expect("stage slot poisoned"),
            State::Done(_) | State::Panicked(_)
        )
    }

    /// Blocks until the staged closure has run and returns its result.
    ///
    /// If the job is still pending (worker busy or unavailable), the
    /// caller claims and runs it inline — waiting can never deadlock.
    ///
    /// # Panics
    ///
    /// Re-throws the closure's panic payload if it panicked (including the
    /// [`crate::Cancelled`] unwind used by cooperative cancellation).
    pub fn wait(self) -> T {
        // Steal-if-pending: a no-op when the worker already claimed it.
        self.slot.run();
        let mut st = self.slot.state.lock().expect("stage slot poisoned");
        loop {
            match std::mem::replace(&mut *st, State::Running) {
                State::Done(v) => return v,
                State::Panicked(payload) => {
                    drop(st);
                    resume_unwind(payload);
                }
                running => {
                    *st = running;
                    st = self
                        .slot
                        .cv
                        .wait(st)
                        .expect("stage slot poisoned");
                }
            }
        }
    }
}

/// Stages `f` for background execution and returns a handle to its result.
///
/// The closure runs at most once — on the `rt-par-stage` worker, or inline
/// on the first [`Staged::wait`] that finds it still pending. The caller's
/// ambient [`CancelToken`] is captured now and re-installed around the
/// closure wherever it executes.
pub fn stage<T, F>(f: F) -> Staged<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let slot = Arc::new(Slot {
        state: Mutex::new(State::Pending(Box::new(f))),
        cv: Condvar::new(),
        cancel: current_cancel(),
    });
    ensure_worker();
    {
        let q = queue();
        q.jobs
            .lock()
            .expect("stage queue poisoned")
            .push_back(Arc::clone(&slot) as Arc<dyn Job>);
        q.cv.notify_one();
    }
    Staged { slot }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CancelScope;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn staged_value_round_trips() {
        let s = stage(|| 40 + 2);
        assert_eq!(s.wait(), 42);
    }

    #[test]
    fn many_staged_jobs_all_complete() {
        let handles: Vec<_> = (0..64).map(|i| stage(move || i * i)).collect();
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.wait(), i * i);
        }
    }

    #[test]
    fn wait_steals_pending_work() {
        // Saturate the single worker with a slow job, then verify a later
        // job still completes promptly via the caller's steal path.
        let slow = stage(|| {
            std::thread::sleep(std::time::Duration::from_millis(100));
            1
        });
        let fast = stage(|| 2);
        assert_eq!(fast.wait(), 2);
        assert_eq!(slow.wait(), 1);
    }

    #[test]
    fn closure_panic_is_rethrown_at_wait() {
        let s = stage(|| -> usize { panic!("staged boom") });
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| s.wait()))
            .expect_err("panic must propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "staged boom");
        // The worker must survive a panicking job.
        assert_eq!(stage(|| 7).wait(), 7);
    }

    #[test]
    fn dropped_handle_still_executes_without_blocking_later_jobs() {
        static RAN: AtomicUsize = AtomicUsize::new(0);
        drop(stage(|| RAN.fetch_add(1, Ordering::SeqCst)));
        // A later job completing proves the queue drained past the
        // orphaned one (single FIFO worker).
        assert_eq!(stage(|| 5).wait(), 5);
        assert_eq!(RAN.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn ambient_cancel_token_reaches_the_staged_closure() {
        let scope = CancelScope::new();
        let staged = {
            let _ambient = crate::with_cancel(scope.token());
            stage(|| crate::current_cancel().is_cancelled())
        };
        // Not tripped: the closure sees a live token (false) regardless of
        // which thread ran it.
        assert!(!staged.wait());
        scope.trip();
        let staged = {
            let _ambient = crate::with_cancel(scope.token());
            stage(|| crate::current_cancel().is_cancelled())
        };
        assert!(staged.wait(), "tripped token must be visible in the job");
    }
}
