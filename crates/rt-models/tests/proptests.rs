//! Property-based tests: MicroResNet shape/gradient invariants across
//! randomized architectures.

use proptest::prelude::*;
use rt_models::{BlockKind, MicroResNet, ResNetConfig};
use rt_nn::{ExecCtx, Layer};
use rt_tensor::rng::rng_from_seed;
use rt_tensor::{init, Tensor};

fn arbitrary_config() -> impl Strategy<Value = ResNetConfig> {
    (
        prop::bool::ANY,
        1usize..=3, // width base (scaled ×4)
        1usize..=2, // blocks per stage
        2usize..=5, // classes
        1usize..=2, // expansion
    )
        .prop_map(|(bottleneck, wb, bps, classes, expansion)| {
            let w = 4 * wb;
            ResNetConfig {
                block: if bottleneck {
                    BlockKind::Bottleneck
                } else {
                    BlockKind::Basic
                },
                stage_widths: [w, w, 2 * w, 2 * w],
                blocks_per_stage: [bps, 1, 1, bps],
                in_channels: 3,
                num_classes: classes,
                expansion,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any valid config builds, runs forward to the declared logit width,
    /// and produces finite activations and feature vectors.
    #[test]
    fn forward_shapes_hold_for_arbitrary_configs(config in arbitrary_config(), seed in 0u64..50) {
        let mut model = MicroResNet::new(&config, &mut rng_from_seed(seed)).unwrap();
        let x = init::normal(&[2, 3, 16, 16], 0.0, 1.0, &mut rng_from_seed(seed + 1));
        let logits = model.forward(&x, ExecCtx::train()).unwrap();
        prop_assert_eq!(logits.shape(), &[2, config.num_classes]);
        prop_assert!(logits.all_finite());
        let feats = model.forward_features(&x, ExecCtx::eval()).unwrap();
        prop_assert_eq!(feats.shape(), &[2, config.feature_dim()]);
        // Feature map is 2x2 after three downsamples of 16x16.
        let fm = model.forward_to_featmap(&x, ExecCtx::eval()).unwrap();
        prop_assert_eq!(fm.shape(), &[2, config.feature_dim(), 2, 2]);
    }

    /// Backward produces a finite, input-shaped, generically non-zero
    /// pixel gradient for every architecture — the property PGD requires.
    #[test]
    fn pixel_gradients_exist_for_arbitrary_configs(config in arbitrary_config(), seed in 0u64..50) {
        let mut model = MicroResNet::new(&config, &mut rng_from_seed(seed)).unwrap();
        let x = init::normal(&[1, 3, 16, 16], 0.0, 1.0, &mut rng_from_seed(seed + 2));
        let logits = model.forward(&x, ExecCtx::train()).unwrap();
        let grad_out = Tensor::from_fn(logits.shape(), |i| if i == 0 { 1.0 } else { -0.3 });
        let gx = model.backward(&grad_out, ExecCtx::default()).unwrap();
        prop_assert_eq!(gx.shape(), x.shape());
        prop_assert!(gx.all_finite());
        prop_assert!(gx.l1_norm() > 0.0);
    }

    /// Head replacement preserves the backbone: features before and after
    /// replacing the classifier are identical.
    #[test]
    fn head_swap_preserves_features(config in arbitrary_config(), seed in 0u64..50) {
        let mut model = MicroResNet::new(&config, &mut rng_from_seed(seed)).unwrap();
        let x = init::normal(&[2, 3, 16, 16], 0.0, 1.0, &mut rng_from_seed(seed + 3));
        // Warm BN stats once so Eval features are stable.
        model.forward(&x, ExecCtx::train()).unwrap();
        model.zero_grad();
        let before = model.forward_features(&x, ExecCtx::eval()).unwrap();
        model.replace_head(7, &mut rng_from_seed(seed + 4)).unwrap();
        let after = model.forward_features(&x, ExecCtx::eval()).unwrap();
        prop_assert_eq!(before, after);
        prop_assert_eq!(model.forward(&x, ExecCtx::eval()).unwrap().shape()[1], 7);
    }

    /// Parameter count decomposes: dense params == sum over layers of the
    /// sparsity report totals plus non-prunable params.
    #[test]
    fn sparsity_report_accounts_for_every_prunable_weight(config in arbitrary_config(), seed in 0u64..20) {
        use rt_prune::{layer_sparsity_report, PruneScope};
        let model = MicroResNet::new(&config, &mut rng_from_seed(seed)).unwrap();
        let scope = PruneScope::backbone();
        let report_total: usize = layer_sparsity_report(&model, &scope)
            .iter()
            .map(|l| l.total)
            .sum();
        let manual: usize = model
            .params()
            .iter()
            .filter(|p| scope.is_prunable(p))
            .map(|p| p.len())
            .sum();
        prop_assert_eq!(report_total, manual);
        prop_assert!(report_total < model.param_count());
    }
}
