//! Model zoo for the robust-tickets reproduction.
//!
//! The paper evaluates ResNet-18 and ResNet-50 ImageNet feature extractors.
//! On a single CPU core we reproduce the *topology* at micro scale:
//! [`MicroResNet`] keeps the stem → four residual stages → global average
//! pool → linear classifier layout, with [`block::BasicBlock`] for the
//! ResNet-18 analog and [`block::Bottleneck`] for the ResNet-50 analog (see
//! DESIGN.md for the substitution rationale).
//!
//! The backbone exposes three entry points the transfer pipelines need:
//!
//! * `MicroResNet::forward` (via [`rt_nn::Layer`]) — full classification forward pass,
//! * [`MicroResNet::forward_features`] — pooled `[N, F]` embeddings for
//!   linear evaluation and FID,
//! * [`MicroResNet::forward_to_featmap`] / backward counterpart — the
//!   spatial feature map consumed by the [`seg::SegmentationNet`] FCN head.
//!
//! # Example
//!
//! ```rust
//! use rt_models::{MicroResNet, ResNetConfig};
//! use rt_nn::{ExecCtx, Layer, Mode};
//! use rt_tensor::{rng::SeedStream, Tensor};
//!
//! # fn main() -> Result<(), rt_nn::NnError> {
//! let config = ResNetConfig::smoke(4);
//! let mut model = MicroResNet::new(&config, &mut SeedStream::new(0).rng())?;
//! let logits = model.forward(&Tensor::zeros(&[2, 3, 16, 16]), ExecCtx::eval())?;
//! assert_eq!(logits.shape(), &[2, 4]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod resnet;
pub mod seg;

pub use block::{BasicBlock, Bottleneck};
pub use resnet::{BlockKind, MicroResNet, ResNetConfig};
pub use seg::SegmentationNet;
