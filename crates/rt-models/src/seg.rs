//! FCN-style semantic segmentation head on a [`MicroResNet`] backbone.
//!
//! This reproduces the paper's Fig. 7 transfer path: a pruned/ticketed
//! backbone whose spatial feature map is decoded to per-pixel class logits
//! by a small convolutional head with nearest-neighbour upsampling.

use crate::MicroResNet;
use rand::Rng;
use rt_nn::layers::{BatchNorm2d, Conv2d, Conv2dConfig, Relu};
use rt_nn::{ExecCtx, Layer, NnError, Param, Result};
use rt_tensor::conv::{upsample2x, upsample2x_backward};
use rt_tensor::Tensor;

/// A segmentation network: MicroResNet backbone (its classifier head is
/// unused) + decode head (3×3 conv → BN → ReLU → repeated 2× upsampling →
/// 1×1 classifier conv).
///
/// The backbone downsamples 16×16 inputs to 2×2, so the head applies three
/// 2× upsamplings to restore full resolution.
pub struct SegmentationNet {
    backbone: MicroResNet,
    decode_conv: Conv2d,
    decode_bn: BatchNorm2d,
    decode_relu: Relu,
    classifier: Conv2d,
    upsample_steps: usize,
    featmap_shapes: Option<Vec<Vec<usize>>>,
}

impl SegmentationNet {
    /// Wraps a (possibly pretrained and pruned) backbone with a fresh
    /// decode head producing `num_classes` per-pixel logits.
    ///
    /// `upsample_steps` is the number of 2× upsamplings needed to restore
    /// the input resolution (3 for 16×16 inputs through this backbone).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero classes.
    pub fn new<R: Rng>(
        backbone: MicroResNet,
        num_classes: usize,
        upsample_steps: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if num_classes == 0 {
            return Err(NnError::InvalidConfig {
                detail: "segmentation head needs at least one class".to_string(),
            });
        }
        let feat = backbone.feature_dim();
        let decode_width = feat.max(8);
        Ok(SegmentationNet {
            decode_conv: Conv2d::new(feat, decode_width, Conv2dConfig::same3x3(), rng)?,
            decode_bn: BatchNorm2d::new(decode_width),
            decode_relu: Relu::new(),
            classifier: Conv2d::new(
                decode_width,
                num_classes,
                Conv2dConfig::pointwise().with_bias(true),
                rng,
            )?,
            backbone,
            upsample_steps,
            featmap_shapes: None,
        })
    }

    /// Immutable access to the backbone.
    pub fn backbone(&self) -> &MicroResNet {
        &self.backbone
    }

    /// Mutable access to the backbone (for pruning/freezing).
    pub fn backbone_mut(&mut self) -> &mut MicroResNet {
        &mut self.backbone
    }
}

impl std::fmt::Debug for SegmentationNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentationNet")
            .field("backbone", &self.backbone)
            .field("upsample_steps", &self.upsample_steps)
            .finish()
    }
}

impl Layer for SegmentationNet {
    fn forward(&mut self, input: &Tensor, ctx: ExecCtx) -> Result<Tensor> {
        let fm = self.backbone.forward_to_featmap(input, ctx)?;
        let x = self.decode_conv.forward(&fm, ctx)?;
        let x = self.decode_bn.forward(&x, ctx)?;
        let mut x = self.decode_relu.forward(&x, ctx)?;
        let mut shapes = Vec::with_capacity(self.upsample_steps);
        for _ in 0..self.upsample_steps {
            shapes.push(x.shape().to_vec());
            x = upsample2x(&x)?;
        }
        self.featmap_shapes = Some(shapes);
        self.classifier.forward(&x, ctx)
    }

    fn backward(&mut self, grad_output: &Tensor, ctx: ExecCtx) -> Result<Tensor> {
        let shapes = self
            .featmap_shapes
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward {
                layer: "SegmentationNet",
            })?
            .clone();
        let mut g = self.classifier.backward(grad_output, ctx)?;
        for shape in shapes.iter().rev() {
            g = upsample2x_backward(&g, shape)?;
        }
        let g = self.decode_relu.backward(&g, ctx)?;
        let g = self.decode_bn.backward(&g, ctx)?;
        let g = self.decode_conv.backward(&g, ctx)?;
        self.backbone.backward_from_featmap(&g, ctx)
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = self.backbone.params();
        // Drop the unused classification head of the backbone so the
        // optimizer and pruning never touch it.
        v.retain(|p| !p.name.starts_with("head."));
        v.extend(self.decode_conv.params());
        v.extend(self.decode_bn.params());
        v.extend(self.classifier.params());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = self.backbone.params_mut();
        v.retain(|p| !p.name.starts_with("head."));
        v.extend(self.decode_conv.params_mut());
        v.extend(self.decode_bn.params_mut());
        v.extend(self.classifier.params_mut());
        v
    }

    fn buffers(&self) -> Vec<&Tensor> {
        let mut v = self.backbone.buffers();
        v.extend(self.decode_bn.buffers());
        v
    }

    fn buffers_mut(&mut self) -> Vec<&mut Tensor> {
        let mut v = self.backbone.buffers_mut();
        v.extend(self.decode_bn.buffers_mut());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ResNetConfig;
    use rt_nn::loss::CrossEntropyLoss;
    use rt_nn::optim::Sgd;
    use rt_tensor::init;
    use rt_tensor::rng::rng_from_seed;

    fn seg_net(seed: u64) -> SegmentationNet {
        let mut rng = rng_from_seed(seed);
        let backbone = MicroResNet::new(&ResNetConfig::smoke(2), &mut rng).unwrap();
        SegmentationNet::new(backbone, 3, 3, &mut rng).unwrap()
    }

    #[test]
    fn output_restores_input_resolution() {
        let mut net = seg_net(0);
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = net.forward(&x, ExecCtx::eval()).unwrap();
        assert_eq!(y.shape(), &[2, 3, 16, 16]);
    }

    #[test]
    fn backward_produces_pixel_gradients() {
        let mut net = seg_net(1);
        let x = init::normal(&[1, 3, 16, 16], 0.0, 1.0, &mut rng_from_seed(2));
        let y = net.forward(&x, ExecCtx::train()).unwrap();
        let labels: Vec<usize> = (0..16 * 16).map(|i| i % 3).collect();
        let out = CrossEntropyLoss::new().forward_pixels(&y, &labels).unwrap();
        let gx = net.backward(&out.grad, ExecCtx::default()).unwrap();
        assert_eq!(gx.shape(), x.shape());
        assert!(gx.l1_norm() > 0.0);
        assert!(gx.all_finite());
    }

    #[test]
    fn excludes_backbone_classifier_head() {
        let net = seg_net(3);
        assert!(net.params().iter().all(|p| !p.name.starts_with("head.")));
    }

    #[test]
    fn training_reduces_pixel_loss() {
        let mut net = seg_net(4);
        // Trivial task: left half class 0, right half class 1.
        let x = Tensor::from_fn(&[4, 3, 16, 16], |i| if (i % 16) < 8 { 1.0 } else { -1.0 });
        let labels: Vec<usize> = (0..4 * 16 * 16).map(|i| usize::from(i % 16 >= 8)).collect();
        let loss_fn = CrossEntropyLoss::new();
        let opt = Sgd::new(0.05).with_momentum(0.9);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..25 {
            let y = net.forward(&x, ExecCtx::train()).unwrap();
            let out = loss_fn.forward_pixels(&y, &labels).unwrap();
            net.backward(&out.grad, ExecCtx::default()).unwrap();
            opt.step(&mut net).unwrap();
            first.get_or_insert(out.loss);
            last = out.loss;
        }
        assert!(last < first.unwrap() * 0.7, "{first:?} -> {last}");
    }

    #[test]
    fn zero_classes_rejected() {
        let mut rng = rng_from_seed(5);
        let backbone = MicroResNet::new(&ResNetConfig::smoke(2), &mut rng).unwrap();
        assert!(SegmentationNet::new(backbone, 0, 3, &mut rng).is_err());
    }
}
