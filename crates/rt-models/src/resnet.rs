//! The MicroResNet backbone family.

use crate::block::{BasicBlock, Bottleneck};
use rand::Rng;
use rt_nn::layers::{BatchNorm2d, Conv2d, Conv2dConfig, GlobalAvgPool, Linear, Relu};
use rt_nn::{ExecCtx, Layer, NnError, Param, Result};
use rt_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Which residual block a [`MicroResNet`] stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockKind {
    /// Two 3×3 convolutions (ResNet-18 style).
    Basic,
    /// 1×1 → 3×3 → 1×1 with channel expansion (ResNet-50 style).
    Bottleneck,
}

/// Architecture description for a [`MicroResNet`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResNetConfig {
    /// Residual block style.
    pub block: BlockKind,
    /// Base width of each of the four stages.
    pub stage_widths: [usize; 4],
    /// Residual blocks per stage.
    pub blocks_per_stage: [usize; 4],
    /// Input channels (3 for RGB).
    pub in_channels: usize,
    /// Number of classifier outputs.
    pub num_classes: usize,
    /// Bottleneck channel expansion (ignored for [`BlockKind::Basic`]).
    pub expansion: usize,
}

impl ResNetConfig {
    /// The ResNet-18 analog: basic blocks, `[2, 2, 2, 2]` per stage.
    pub fn r18_analog(num_classes: usize) -> Self {
        ResNetConfig {
            block: BlockKind::Basic,
            stage_widths: [8, 16, 32, 64],
            blocks_per_stage: [2, 2, 2, 2],
            in_channels: 3,
            num_classes,
            expansion: 1,
        }
    }

    /// The ResNet-50 analog: bottleneck blocks with the real ResNet
    /// expansion of 4 — noticeably more over-parameterized than the R18
    /// analog, mirroring the paper's R18-vs-R50 contrast at micro scale.
    pub fn r50_analog(num_classes: usize) -> Self {
        ResNetConfig {
            block: BlockKind::Bottleneck,
            stage_widths: [8, 16, 32, 64],
            blocks_per_stage: [2, 2, 2, 2],
            in_channels: 3,
            num_classes,
            expansion: 4,
        }
    }

    /// A minimal configuration for fast tests and smoke-scale experiments.
    pub fn smoke(num_classes: usize) -> Self {
        ResNetConfig {
            block: BlockKind::Basic,
            stage_widths: [4, 8, 8, 16],
            blocks_per_stage: [1, 1, 1, 1],
            in_channels: 3,
            num_classes,
            expansion: 1,
        }
    }

    /// Returns a copy with a different class count (head size).
    pub fn with_classes(mut self, num_classes: usize) -> Self {
        self.num_classes = num_classes;
        self
    }

    /// Output channel count of the final stage (= pooled feature dim).
    pub fn feature_dim(&self) -> usize {
        match self.block {
            BlockKind::Basic => self.stage_widths[3],
            BlockKind::Bottleneck => self.stage_widths[3] * self.expansion,
        }
    }
}

#[allow(clippy::large_enum_variant)] // few instances, heap indirection not worth it
enum AnyBlock {
    Basic(BasicBlock),
    Bottleneck(Bottleneck),
}

impl AnyBlock {
    fn as_layer(&self) -> &dyn Layer {
        match self {
            AnyBlock::Basic(b) => b,
            AnyBlock::Bottleneck(b) => b,
        }
    }

    fn as_layer_mut(&mut self) -> &mut dyn Layer {
        match self {
            AnyBlock::Basic(b) => b,
            AnyBlock::Bottleneck(b) => b,
        }
    }
}

/// A micro-scale ResNet: stem convolution → four residual stages → global
/// average pooling → linear classifier.
///
/// The spatial resolution halves at stages 2–4 (stride-2 first block), so a
/// 16×16 input yields a 2×2 final feature map.
pub struct MicroResNet {
    config: ResNetConfig,
    stem_conv: Conv2d,
    stem_bn: BatchNorm2d,
    stem_relu: Relu,
    blocks: Vec<AnyBlock>,
    gap: GlobalAvgPool,
    fc: Linear,
}

impl MicroResNet {
    /// Builds a randomly initialized network from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for degenerate configurations
    /// (zero widths, zero blocks, zero classes).
    pub fn new<R: Rng>(config: &ResNetConfig, rng: &mut R) -> Result<Self> {
        if config.num_classes == 0
            || config.in_channels == 0
            || config.stage_widths.contains(&0)
            || config.blocks_per_stage.contains(&0)
        {
            return Err(NnError::InvalidConfig {
                detail: format!("degenerate resnet config: {config:?}"),
            });
        }
        let stem_width = config.stage_widths[0];
        let stem_conv = Conv2d::new(config.in_channels, stem_width, Conv2dConfig::same3x3(), rng)?;
        let stem_bn = BatchNorm2d::new(stem_width);

        let mut blocks = Vec::new();
        let mut in_ch = stem_width;
        for (stage, (&width, &count)) in config
            .stage_widths
            .iter()
            .zip(&config.blocks_per_stage)
            .enumerate()
        {
            for b in 0..count {
                // First block of stages 2-4 downsamples.
                let stride = if stage > 0 && b == 0 { 2 } else { 1 };
                let block = match config.block {
                    BlockKind::Basic => {
                        let blk = BasicBlock::new(in_ch, width, stride, rng)?;
                        in_ch = width;
                        AnyBlock::Basic(blk)
                    }
                    BlockKind::Bottleneck => {
                        let blk = Bottleneck::new(in_ch, width, config.expansion, stride, rng)?;
                        in_ch = width * config.expansion;
                        AnyBlock::Bottleneck(blk)
                    }
                };
                blocks.push(block);
            }
        }
        let fc = Linear::new(in_ch, config.num_classes, rng)?;
        let mut net = MicroResNet {
            config: config.clone(),
            stem_conv,
            stem_bn,
            stem_relu: Relu::new(),
            blocks,
            gap: GlobalAvgPool::new(),
            fc,
        };
        net.assign_param_names();
        Ok(net)
    }

    fn assign_param_names(&mut self) {
        // Stable hierarchical names for diagnostics and checkpoints.
        for p in self.stem_conv.params_mut() {
            p.name = format!("stem.{}", p.name);
        }
        for p in self.stem_bn.params_mut() {
            p.name = format!("stem.{}", p.name);
        }
        for (i, block) in self.blocks.iter_mut().enumerate() {
            for p in block.as_layer_mut().params_mut() {
                p.name = format!("block{i}.{}", p.name);
            }
        }
        for p in self.fc.params_mut() {
            p.name = format!("head.{}", p.name);
        }
    }

    /// The architecture this network was built from.
    pub fn config(&self) -> &ResNetConfig {
        &self.config
    }

    /// Dimension of the pooled feature vector.
    pub fn feature_dim(&self) -> usize {
        self.config.feature_dim()
    }

    /// Runs stem + residual stages only, returning the spatial feature map
    /// `[N, C, h, w]` (the segmentation head consumes this).
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward_to_featmap(&mut self, input: &Tensor, ctx: ExecCtx) -> Result<Tensor> {
        let x = self.stem_conv.forward(input, ctx)?;
        let x = self.stem_bn.forward(&x, ctx)?;
        let mut x = self.stem_relu.forward(&x, ctx)?;
        for block in &mut self.blocks {
            x = block.as_layer_mut().forward(&x, ctx)?;
        }
        Ok(x)
    }

    /// Backpropagates a gradient arriving at the spatial feature map down
    /// to the pixels. Counterpart of [`MicroResNet::forward_to_featmap`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] without a prior forward.
    pub fn backward_from_featmap(&mut self, grad: &Tensor, ctx: ExecCtx) -> Result<Tensor> {
        let mut g = grad.clone();
        for block in self.blocks.iter_mut().rev() {
            g = block.as_layer_mut().backward(&g, ctx)?;
        }
        let g = self.stem_relu.backward(&g, ctx)?;
        let g = self.stem_bn.backward(&g, ctx)?;
        self.stem_conv.backward(&g, ctx)
    }

    /// Pooled `[N, feature_dim]` embeddings (no classifier). This is the
    /// representation used for linear evaluation and FID.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward_features(&mut self, input: &Tensor, ctx: ExecCtx) -> Result<Tensor> {
        let fm = self.forward_to_featmap(input, ctx)?;
        self.gap.forward(&fm, ctx)
    }

    /// Replaces the classification head with a freshly initialized
    /// `feature_dim → num_classes` linear layer (the transfer-learning
    /// "new classifier").
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero classes.
    pub fn replace_head<R: Rng>(&mut self, num_classes: usize, rng: &mut R) -> Result<()> {
        self.fc = Linear::new(self.feature_dim(), num_classes, rng)?;
        for p in self.fc.params_mut() {
            p.name = format!("head.{}", p.name);
        }
        self.config.num_classes = num_classes;
        Ok(())
    }

    /// Freezes or unfreezes every parameter outside the classifier head.
    /// Linear evaluation freezes the backbone.
    pub fn set_backbone_trainable(&mut self, trainable: bool) {
        for p in self.stem_conv.params_mut() {
            p.trainable = trainable;
        }
        for p in self.stem_bn.params_mut() {
            p.trainable = trainable;
        }
        for block in &mut self.blocks {
            for p in block.as_layer_mut().params_mut() {
                p.trainable = trainable;
            }
        }
    }

    /// Immutable access to the classifier head.
    pub fn head(&self) -> &Linear {
        &self.fc
    }
}

impl std::fmt::Debug for MicroResNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MicroResNet")
            .field("config", &self.config)
            .field("blocks", &self.blocks.len())
            .field("params", &self.param_count())
            .finish()
    }
}

impl Layer for MicroResNet {
    fn forward(&mut self, input: &Tensor, ctx: ExecCtx) -> Result<Tensor> {
        let feats = self.forward_features(input, ctx)?;
        self.fc.forward(&feats, ctx)
    }

    fn backward(&mut self, grad_output: &Tensor, ctx: ExecCtx) -> Result<Tensor> {
        let g = self.fc.backward(grad_output, ctx)?;
        let g = self.gap.backward(&g, ctx)?;
        self.backward_from_featmap(&g, ctx)
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = Vec::new();
        v.extend(self.stem_conv.params());
        v.extend(self.stem_bn.params());
        for block in &self.blocks {
            v.extend(block.as_layer().params());
        }
        v.extend(self.fc.params());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = Vec::new();
        v.extend(self.stem_conv.params_mut());
        v.extend(self.stem_bn.params_mut());
        for block in &mut self.blocks {
            v.extend(block.as_layer_mut().params_mut());
        }
        v.extend(self.fc.params_mut());
        v
    }

    fn buffers(&self) -> Vec<&Tensor> {
        let mut v = Vec::new();
        v.extend(self.stem_bn.buffers());
        for block in &self.blocks {
            v.extend(block.as_layer().buffers());
        }
        v
    }

    fn buffers_mut(&mut self) -> Vec<&mut Tensor> {
        let mut v = Vec::new();
        v.extend(self.stem_bn.buffers_mut());
        for block in &mut self.blocks {
            v.extend(block.as_layer_mut().buffers_mut());
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_nn::checkpoint::StateDict;
    use rt_nn::loss::CrossEntropyLoss;
    use rt_nn::optim::Sgd;
    use rt_tensor::init;
    use rt_tensor::rng::{rng_from_seed, SeedStream};

    #[test]
    fn r18_analog_shapes() {
        let mut model =
            MicroResNet::new(&ResNetConfig::r18_analog(10), &mut rng_from_seed(0)).unwrap();
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = model.forward(&x, ExecCtx::eval()).unwrap();
        assert_eq!(y.shape(), &[2, 10]);
        assert_eq!(model.feature_dim(), 64);
        // Feature map is 2x2 after three downsamples of 16x16.
        let fm = model.forward_to_featmap(&x, ExecCtx::eval()).unwrap();
        assert_eq!(fm.shape(), &[2, 64, 2, 2]);
    }

    #[test]
    fn r50_analog_has_more_params_than_r18() {
        let r18 = MicroResNet::new(&ResNetConfig::r18_analog(10), &mut rng_from_seed(0)).unwrap();
        let r50 = MicroResNet::new(&ResNetConfig::r50_analog(10), &mut rng_from_seed(0)).unwrap();
        assert!(
            r50.param_count() > r18.param_count(),
            "r50 {} !> r18 {}",
            r50.param_count(),
            r18.param_count()
        );
        assert_eq!(r50.feature_dim(), 256);
    }

    #[test]
    fn smoke_model_trains_on_tiny_task() {
        // Two linearly separable "classes" of constant images.
        let mut model = MicroResNet::new(&ResNetConfig::smoke(2), &mut rng_from_seed(1)).unwrap();
        let mut x = Tensor::zeros(&[8, 3, 8, 8]);
        let mut labels = Vec::new();
        for i in 0..8 {
            let v = if i % 2 == 0 { 1.0 } else { -1.0 };
            let start = i * 3 * 64;
            for p in &mut x.data_mut()[start..start + 3 * 64] {
                *p = v;
            }
            labels.push(i % 2);
        }
        let loss_fn = CrossEntropyLoss::new();
        let opt = Sgd::new(0.05).with_momentum(0.9);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            let logits = model.forward(&x, ExecCtx::train()).unwrap();
            let out = loss_fn.forward(&logits, &labels).unwrap();
            model.backward(&out.grad, ExecCtx::default()).unwrap();
            opt.step(&mut model).unwrap();
            first.get_or_insert(out.loss);
            last = out.loss;
        }
        assert!(
            last < first.unwrap() * 0.5,
            "loss failed to halve: {first:?} -> {last}"
        );
    }

    #[test]
    fn head_replacement_changes_output_dim() {
        let mut model = MicroResNet::new(&ResNetConfig::smoke(5), &mut rng_from_seed(2)).unwrap();
        model.replace_head(7, &mut rng_from_seed(3)).unwrap();
        let y = model
            .forward(&Tensor::zeros(&[1, 3, 16, 16]), ExecCtx::eval())
            .unwrap();
        assert_eq!(y.shape(), &[1, 7]);
        assert_eq!(model.config().num_classes, 7);
    }

    #[test]
    fn backbone_freeze_marks_params() {
        let mut model = MicroResNet::new(&ResNetConfig::smoke(2), &mut rng_from_seed(4)).unwrap();
        model.set_backbone_trainable(false);
        let frozen = model.params().iter().filter(|p| !p.trainable).count();
        let trainable = model.params().iter().filter(|p| p.trainable).count();
        assert_eq!(trainable, 2, "only head weight+bias stay trainable");
        assert!(frozen > 10);
        // Unfreeze restores everything.
        model.set_backbone_trainable(true);
        assert!(model.params().iter().all(|p| p.trainable));
    }

    #[test]
    fn featmap_backward_round_trip() {
        let mut model = MicroResNet::new(&ResNetConfig::smoke(2), &mut rng_from_seed(5)).unwrap();
        let x = init::normal(&[2, 3, 8, 8], 0.0, 1.0, &mut rng_from_seed(6));
        let fm = model.forward_to_featmap(&x, ExecCtx::train()).unwrap();
        let gx = model
            .backward_from_featmap(&Tensor::ones(fm.shape()), ExecCtx::default())
            .unwrap();
        assert_eq!(gx.shape(), x.shape());
        assert!(gx.all_finite());
    }

    #[test]
    fn checkpoint_round_trip() {
        let seeds = SeedStream::new(7);
        let mut model = MicroResNet::new(&ResNetConfig::smoke(3), &mut seeds.rng()).unwrap();
        let x = init::normal(&[2, 3, 8, 8], 0.0, 1.0, &mut seeds.child("x").rng());
        model.forward(&x, ExecCtx::train()).unwrap(); // move BN stats
        let snap = StateDict::capture(&model);
        let y_before = model.forward(&x, ExecCtx::eval()).unwrap();

        // Perturb, restore, verify bit-identical eval output.
        for p in model.params_mut() {
            p.data.map_inplace(|v| v + 1.0);
        }
        snap.restore(&mut model).unwrap();
        let y_after = model.forward(&x, ExecCtx::eval()).unwrap();
        assert_eq!(y_before, y_after);
    }

    #[test]
    fn param_names_are_hierarchical_and_unique_per_layer() {
        let model = MicroResNet::new(&ResNetConfig::smoke(2), &mut rng_from_seed(8)).unwrap();
        let names: Vec<&str> = model.params().iter().map(|p| p.name.as_str()).collect();
        assert!(names[0].starts_with("stem."));
        assert!(names.iter().any(|n| n.starts_with("block0.")));
        assert!(names.iter().any(|n| n.starts_with("head.")));
    }

    #[test]
    fn degenerate_configs_rejected() {
        let mut bad = ResNetConfig::smoke(0);
        assert!(MicroResNet::new(&bad, &mut rng_from_seed(9)).is_err());
        bad = ResNetConfig::smoke(2);
        bad.stage_widths[2] = 0;
        assert!(MicroResNet::new(&bad, &mut rng_from_seed(9)).is_err());
    }

    #[test]
    fn input_gradient_flows_to_pixels() {
        // The gradient w.r.t. the image must be non-zero — PGD depends on it.
        let mut model = MicroResNet::new(&ResNetConfig::smoke(2), &mut rng_from_seed(10)).unwrap();
        let x = init::normal(&[1, 3, 8, 8], 0.0, 1.0, &mut rng_from_seed(11));
        model.forward(&x, ExecCtx::train()).unwrap(); // warm BN
        let logits = model.forward(&x, ExecCtx::eval()).unwrap();
        let out = CrossEntropyLoss::new().forward(&logits, &[0]).unwrap();
        let gx = model.backward(&out.grad, ExecCtx::default()).unwrap();
        assert!(gx.l1_norm() > 0.0);
        assert!(gx.all_finite());
    }
}
