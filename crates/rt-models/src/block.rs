//! Residual blocks with hand-written skip-connection backprop.

use rand::Rng;
use rt_nn::layers::{BatchNorm2d, Conv2d, Conv2dConfig, Relu};
use rt_nn::{ExecCtx, Layer, Mode, NnError, Param, Result};
use rt_tensor::Tensor;

/// Projection shortcut: 1×1 strided convolution + BatchNorm, used when the
/// block changes resolution or channel count.
struct Projection {
    conv: Conv2d,
    bn: BatchNorm2d,
}

impl Projection {
    fn new<R: Rng>(in_ch: usize, out_ch: usize, stride: usize, rng: &mut R) -> Result<Self> {
        Ok(Projection {
            conv: Conv2d::new(
                in_ch,
                out_ch,
                Conv2dConfig::pointwise().with_stride(stride),
                rng,
            )?,
            bn: BatchNorm2d::new(out_ch),
        })
    }

    fn forward(&mut self, x: &Tensor, ctx: ExecCtx) -> Result<Tensor> {
        let y = self.conv.forward(x, ctx)?;
        self.bn.forward(&y, ctx)
    }

    fn backward(&mut self, g: &Tensor, ctx: ExecCtx) -> Result<Tensor> {
        let g = self.bn.backward(g, ctx)?;
        self.conv.backward(&g, ctx)
    }
}

/// The ResNet-18-style two-convolution residual block:
/// `relu(bn2(conv2(relu(bn1(conv1(x))))) + shortcut(x))`.
pub struct BasicBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    shortcut: Option<Projection>,
    post_relu_mask: Option<Vec<bool>>,
}

impl BasicBlock {
    /// Creates a basic block mapping `in_ch → out_ch` with the given stride
    /// on the first convolution. A projection shortcut is added
    /// automatically when shape changes.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero channel counts.
    pub fn new<R: Rng>(in_ch: usize, out_ch: usize, stride: usize, rng: &mut R) -> Result<Self> {
        let shortcut = if stride != 1 || in_ch != out_ch {
            Some(Projection::new(in_ch, out_ch, stride, rng)?)
        } else {
            None
        };
        Ok(BasicBlock {
            conv1: Conv2d::new(
                in_ch,
                out_ch,
                Conv2dConfig::same3x3().with_stride(stride),
                rng,
            )?,
            bn1: BatchNorm2d::new(out_ch),
            relu1: Relu::new(),
            conv2: Conv2d::new(out_ch, out_ch, Conv2dConfig::same3x3(), rng)?,
            bn2: BatchNorm2d::new(out_ch),
            shortcut,
            post_relu_mask: None,
        })
    }

    /// Whether this block uses a projection shortcut.
    pub fn has_projection(&self) -> bool {
        self.shortcut.is_some()
    }
}

impl std::fmt::Debug for BasicBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BasicBlock")
            .field("in_channels", &self.conv1.in_channels())
            .field("out_channels", &self.conv1.out_channels())
            .field("projection", &self.has_projection())
            .finish()
    }
}

impl Layer for BasicBlock {
    fn forward(&mut self, input: &Tensor, ctx: ExecCtx) -> Result<Tensor> {
        let a = self.conv1.forward(input, ctx)?;
        let a = self.bn1.forward(&a, ctx)?;
        let a = self.relu1.forward(&a, ctx)?;
        let a = self.conv2.forward(&a, ctx)?;
        let main = self.bn2.forward(&a, ctx)?;
        let skip = match &mut self.shortcut {
            Some(proj) => proj.forward(input, ctx)?,
            None => input.clone(),
        };
        let mut sum = main;
        sum.add_assign(&skip)?;
        self.post_relu_mask = Some(sum.data().iter().map(|&x| x > 0.0).collect());
        Ok(sum.map(|x| x.max(0.0)))
    }

    fn backward(&mut self, grad_output: &Tensor, ctx: ExecCtx) -> Result<Tensor> {
        let mask = self
            .post_relu_mask
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward {
                layer: "BasicBlock",
            })?;
        if grad_output.len() != mask.len() {
            return Err(NnError::StateDictMismatch {
                detail: "grad_output size does not match cached activation".to_string(),
            });
        }
        // Through the post-add ReLU.
        let g_sum = Tensor::from_vec(
            grad_output.shape().to_vec(),
            grad_output
                .data()
                .iter()
                .zip(mask)
                .map(|(&g, &p)| if p { g } else { 0.0 })
                .collect(),
        )
        .map_err(NnError::from)?;
        // Main branch.
        let g = self.bn2.backward(&g_sum, ctx)?;
        let g = self.conv2.backward(&g, ctx)?;
        let g = self.relu1.backward(&g, ctx)?;
        let g = self.bn1.backward(&g, ctx)?;
        let mut g_in = self.conv1.backward(&g, ctx)?;
        // Skip branch.
        let g_skip = match &mut self.shortcut {
            Some(proj) => proj.backward(&g_sum, ctx)?,
            None => g_sum,
        };
        g_in.add_assign(&g_skip)?;
        Ok(g_in)
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = Vec::new();
        v.extend(self.conv1.params());
        v.extend(self.bn1.params());
        v.extend(self.conv2.params());
        v.extend(self.bn2.params());
        if let Some(proj) = &self.shortcut {
            v.extend(proj.conv.params());
            v.extend(proj.bn.params());
        }
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = Vec::new();
        v.extend(self.conv1.params_mut());
        v.extend(self.bn1.params_mut());
        v.extend(self.conv2.params_mut());
        v.extend(self.bn2.params_mut());
        if let Some(proj) = &mut self.shortcut {
            v.extend(proj.conv.params_mut());
            v.extend(proj.bn.params_mut());
        }
        v
    }

    fn buffers(&self) -> Vec<&Tensor> {
        let mut v = Vec::new();
        v.extend(self.bn1.buffers());
        v.extend(self.bn2.buffers());
        if let Some(proj) = &self.shortcut {
            v.extend(proj.bn.buffers());
        }
        v
    }

    fn buffers_mut(&mut self) -> Vec<&mut Tensor> {
        let mut v = Vec::new();
        v.extend(self.bn1.buffers_mut());
        v.extend(self.bn2.buffers_mut());
        if let Some(proj) = &mut self.shortcut {
            v.extend(proj.bn.buffers_mut());
        }
        v
    }
}

/// The ResNet-50-style three-convolution bottleneck block:
/// 1×1 reduce → 3×3 (strided) → 1×1 expand, residual add, ReLU.
///
/// The expansion factor is configurable (the real ResNet-50 uses 4; the
/// micro analog defaults to 2 to stay CPU-sized).
pub struct Bottleneck {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    relu2: Relu,
    conv3: Conv2d,
    bn3: BatchNorm2d,
    shortcut: Option<Projection>,
    post_relu_mask: Option<Vec<bool>>,
}

impl Bottleneck {
    /// Creates a bottleneck block: `in_ch → mid_ch → mid_ch → mid_ch·expansion`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero channel counts or zero
    /// expansion.
    pub fn new<R: Rng>(
        in_ch: usize,
        mid_ch: usize,
        expansion: usize,
        stride: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if expansion == 0 {
            return Err(NnError::InvalidConfig {
                detail: "bottleneck expansion must be positive".to_string(),
            });
        }
        let out_ch = mid_ch * expansion;
        let shortcut = if stride != 1 || in_ch != out_ch {
            Some(Projection::new(in_ch, out_ch, stride, rng)?)
        } else {
            None
        };
        Ok(Bottleneck {
            conv1: Conv2d::new(in_ch, mid_ch, Conv2dConfig::pointwise(), rng)?,
            bn1: BatchNorm2d::new(mid_ch),
            relu1: Relu::new(),
            conv2: Conv2d::new(
                mid_ch,
                mid_ch,
                Conv2dConfig::same3x3().with_stride(stride),
                rng,
            )?,
            bn2: BatchNorm2d::new(mid_ch),
            relu2: Relu::new(),
            conv3: Conv2d::new(mid_ch, out_ch, Conv2dConfig::pointwise(), rng)?,
            bn3: BatchNorm2d::new(out_ch),
            shortcut,
            post_relu_mask: None,
        })
    }

    /// Whether this block uses a projection shortcut.
    pub fn has_projection(&self) -> bool {
        self.shortcut.is_some()
    }
}

impl std::fmt::Debug for Bottleneck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bottleneck")
            .field("in_channels", &self.conv1.in_channels())
            .field("out_channels", &self.conv3.out_channels())
            .field("projection", &self.has_projection())
            .finish()
    }
}

impl Layer for Bottleneck {
    fn forward(&mut self, input: &Tensor, ctx: ExecCtx) -> Result<Tensor> {
        let a = self.conv1.forward(input, ctx)?;
        let a = self.bn1.forward(&a, ctx)?;
        let a = self.relu1.forward(&a, ctx)?;
        let a = self.conv2.forward(&a, ctx)?;
        let a = self.bn2.forward(&a, ctx)?;
        let a = self.relu2.forward(&a, ctx)?;
        let a = self.conv3.forward(&a, ctx)?;
        let main = self.bn3.forward(&a, ctx)?;
        let skip = match &mut self.shortcut {
            Some(proj) => proj.forward(input, ctx)?,
            None => input.clone(),
        };
        let mut sum = main;
        sum.add_assign(&skip)?;
        self.post_relu_mask = Some(sum.data().iter().map(|&x| x > 0.0).collect());
        Ok(sum.map(|x| x.max(0.0)))
    }

    fn backward(&mut self, grad_output: &Tensor, ctx: ExecCtx) -> Result<Tensor> {
        let mask = self
            .post_relu_mask
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward {
                layer: "Bottleneck",
            })?;
        let g_sum = Tensor::from_vec(
            grad_output.shape().to_vec(),
            grad_output
                .data()
                .iter()
                .zip(mask)
                .map(|(&g, &p)| if p { g } else { 0.0 })
                .collect(),
        )
        .map_err(NnError::from)?;
        let g = self.bn3.backward(&g_sum, ctx)?;
        let g = self.conv3.backward(&g, ctx)?;
        let g = self.relu2.backward(&g, ctx)?;
        let g = self.bn2.backward(&g, ctx)?;
        let g = self.conv2.backward(&g, ctx)?;
        let g = self.relu1.backward(&g, ctx)?;
        let g = self.bn1.backward(&g, ctx)?;
        let mut g_in = self.conv1.backward(&g, ctx)?;
        let g_skip = match &mut self.shortcut {
            Some(proj) => proj.backward(&g_sum, ctx)?,
            None => g_sum,
        };
        g_in.add_assign(&g_skip)?;
        Ok(g_in)
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = Vec::new();
        v.extend(self.conv1.params());
        v.extend(self.bn1.params());
        v.extend(self.conv2.params());
        v.extend(self.bn2.params());
        v.extend(self.conv3.params());
        v.extend(self.bn3.params());
        if let Some(proj) = &self.shortcut {
            v.extend(proj.conv.params());
            v.extend(proj.bn.params());
        }
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = Vec::new();
        v.extend(self.conv1.params_mut());
        v.extend(self.bn1.params_mut());
        v.extend(self.conv2.params_mut());
        v.extend(self.bn2.params_mut());
        v.extend(self.conv3.params_mut());
        v.extend(self.bn3.params_mut());
        if let Some(proj) = &mut self.shortcut {
            v.extend(proj.conv.params_mut());
            v.extend(proj.bn.params_mut());
        }
        v
    }

    fn buffers(&self) -> Vec<&Tensor> {
        let mut v = Vec::new();
        v.extend(self.bn1.buffers());
        v.extend(self.bn2.buffers());
        v.extend(self.bn3.buffers());
        if let Some(proj) = &self.shortcut {
            v.extend(proj.bn.buffers());
        }
        v
    }

    fn buffers_mut(&mut self) -> Vec<&mut Tensor> {
        let mut v = Vec::new();
        v.extend(self.bn1.buffers_mut());
        v.extend(self.bn2.buffers_mut());
        v.extend(self.bn3.buffers_mut());
        if let Some(proj) = &mut self.shortcut {
            v.extend(proj.bn.buffers_mut());
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_nn::gradcheck::{check_input_gradient, check_param_gradients};
    use rt_tensor::init;
    use rt_tensor::rng::rng_from_seed;

    fn smooth_input(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = rng_from_seed(seed);
        init::normal(shape, 0.0, 1.0, &mut rng)
    }

    #[test]
    fn basic_block_shapes() {
        let mut rng = rng_from_seed(0);
        let mut same = BasicBlock::new(4, 4, 1, &mut rng).unwrap();
        assert!(!same.has_projection());
        let x = Tensor::ones(&[2, 4, 8, 8]);
        assert_eq!(
            same.forward(&x, ExecCtx::train()).unwrap().shape(),
            &[2, 4, 8, 8]
        );

        let mut down = BasicBlock::new(4, 8, 2, &mut rng).unwrap();
        assert!(down.has_projection());
        assert_eq!(
            down.forward(&x, ExecCtx::train()).unwrap().shape(),
            &[2, 8, 4, 4]
        );
    }

    #[test]
    fn bottleneck_shapes() {
        let mut rng = rng_from_seed(1);
        let mut block = Bottleneck::new(4, 4, 2, 2, &mut rng).unwrap();
        let x = Tensor::ones(&[1, 4, 8, 8]);
        assert_eq!(
            block.forward(&x, ExecCtx::train()).unwrap().shape(),
            &[1, 8, 4, 4]
        );
    }

    #[test]
    fn identity_skip_passes_signal_when_main_path_is_zero() {
        let mut rng = rng_from_seed(2);
        let mut block = BasicBlock::new(2, 2, 1, &mut rng).unwrap();
        // Zero both BN scales: the main branch contributes nothing, the
        // block reduces to relu(x).
        for p in block.params_mut() {
            if p.kind == rt_nn::ParamKind::BnScale {
                p.data.fill(0.0);
            }
        }
        let x = smooth_input(&[1, 2, 4, 4], 3);
        let y = block.forward(&x, ExecCtx::eval()).unwrap();
        let expect = x.map(|v| v.max(0.0));
        for (a, b) in y.data().iter().zip(expect.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn basic_block_gradcheck() {
        let mut rng = rng_from_seed(4);
        let mut block = BasicBlock::new(2, 3, 2, &mut rng).unwrap();
        // Warm up BN running stats, then check in eval mode.
        block
            .forward(&smooth_input(&[4, 2, 4, 4], 5), ExecCtx::train())
            .unwrap();
        let x = smooth_input(&[2, 2, 4, 4], 6);
        let rin = check_input_gradient(&mut block, &x, ExecCtx::eval(), 1e-2).unwrap();
        assert!(rin.passes(3e-2), "{rin:?}");
        let rp = check_param_gradients(&mut block, &x, ExecCtx::eval(), 1e-2).unwrap();
        assert!(rp.passes(3e-2), "{rp:?}");
    }

    #[test]
    fn bottleneck_gradcheck() {
        let mut rng = rng_from_seed(7);
        let mut block = Bottleneck::new(2, 2, 2, 1, &mut rng).unwrap();
        block
            .forward(&smooth_input(&[4, 2, 4, 4], 8), ExecCtx::train())
            .unwrap();
        let x = smooth_input(&[1, 2, 4, 4], 9);
        // eps must stay small: at 1e-2 the perturbation crosses ReLU kinks
        // and the finite difference is no longer a valid linearization.
        let rin = check_input_gradient(&mut block, &x, ExecCtx::eval(), 3e-3).unwrap();
        assert!(rin.passes(3e-2), "{rin:?}");
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = rng_from_seed(10);
        let mut block = BasicBlock::new(2, 2, 1, &mut rng).unwrap();
        assert!(block.backward(&Tensor::ones(&[1, 2, 4, 4]), ExecCtx::default()).is_err());
    }

    #[test]
    fn param_and_buffer_counts() {
        let mut rng = rng_from_seed(11);
        let plain = BasicBlock::new(4, 4, 1, &mut rng).unwrap();
        // conv1 w, bn1 γβ, conv2 w, bn2 γβ.
        assert_eq!(plain.params().len(), 6);
        assert_eq!(plain.buffers().len(), 4);
        let proj = BasicBlock::new(4, 8, 2, &mut rng).unwrap();
        assert_eq!(proj.params().len(), 9);
        assert_eq!(proj.buffers().len(), 6);
        let bneck = Bottleneck::new(4, 4, 2, 2, &mut rng).unwrap();
        assert_eq!(bneck.params().len(), 12);
        assert_eq!(bneck.buffers().len(), 8);
    }
}
