//! Trace-export integration tests: live span trees → Chrome `trace_event`
//! JSON round trips, and a proptest that exported `ts`/`dur` pairs never
//! overlap incorrectly within a thread — whatever garbage the recorded
//! float timestamps held.

use proptest::prelude::*;
use rt_obs::trace::build_trace;
use rt_obs::trace_tree::{build_forest, clamp_forest, flatten, intervals_consistent, CloseRec};
use rt_obs::{Event, Level};
use serde_json::Value;

/// A real nested run captured through the in-memory sink, exported, and
/// checked structurally: nesting, thread track, attrs-as-args.
#[test]
fn live_span_tree_round_trips_to_trace_json() {
    let _t = rt_obs::testing::lock();
    let handle = rt_obs::init_memory(Level::All);
    {
        let _run = rt_obs::span!("run", "scale" => "smoke");
        {
            let _pre = rt_obs::span!("pretrain");
            let _ep = rt_obs::span!("train.epoch", "epoch" => 0usize);
        }
        let _fin = rt_obs::span!("finetune");
    }
    rt_obs::finalize();
    let text = handle.lines().join("\n");
    let (events, malformed) = rt_obs::report::parse_jsonl(&text);
    assert_eq!(malformed, 0);
    let doc = build_trace(&events);
    let all = doc["traceEvents"].as_array().expect("object form");

    let xs: Vec<&Value> = all.iter().filter(|e| e["ph"] == "X").collect();
    assert_eq!(xs.len(), 4, "every span exported: {all:?}");

    // All four spans ran on the test thread -> one shared tid + a
    // thread_name metadata record for it.
    let tid = xs[0]["tid"].as_u64().unwrap();
    assert!(xs.iter().all(|e| e["tid"].as_u64() == Some(tid)));
    assert!(
        all.iter()
            .any(|e| e["ph"] == "M" && e["tid"].as_u64() == Some(tid)),
        "thread track is named"
    );

    // Attrs became args; the hierarchical path rides along.
    let find = |name: &str| xs.iter().find(|e| e["name"] == name).unwrap();
    assert_eq!(find("run")["args"]["scale"], "smoke");
    assert_eq!(find("train.epoch")["args"]["epoch"], 0);
    assert_eq!(
        find("train.epoch")["args"]["path"],
        "run/pretrain/train.epoch"
    );

    // Nesting survives: each child interval lies within its parent's.
    let interval = |name: &str| {
        let e = find(name);
        let t = e["ts"].as_i64().unwrap();
        (t, t + e["dur"].as_i64().unwrap())
    };
    let (r0, r1) = interval("run");
    let (p0, p1) = interval("pretrain");
    let (e0, e1) = interval("train.epoch");
    let (f0, f1) = interval("finetune");
    assert!(r0 <= p0 && p1 <= r1, "pretrain inside run");
    assert!(p0 <= e0 && e1 <= p1, "epoch inside pretrain");
    assert!(r0 <= f0 && f1 <= r1, "finetune inside run");
    assert!(p1 <= f0, "siblings ordered and disjoint");
}

/// Close-ordered depth walks with arbitrary (inconsistent) timings: the
/// exported intervals must always be pairwise nested-or-disjoint and
/// non-negative, and no span may be dropped.
proptest! {
    #[test]
    fn exported_intervals_never_overlap_incorrectly(
        walk in proptest::collection::vec((0u8..3, 0i64..20_000, 0i64..20_000), 1..40)
    ) {
        // Turn the random walk into a legal close sequence: depth moves
        // like a stack (RAII), timings stay arbitrary garbage.
        let mut depth = 0usize;
        let closes: Vec<CloseRec> = walk
            .iter()
            .map(|&(step, a, b)| {
                depth = match step {
                    0 => depth + 1,
                    _ => depth.saturating_sub(1),
                };
                CloseRec { depth, start_us: a, end_us: b }
            })
            .collect();
        let mut forest = build_forest(&closes);
        clamp_forest(&mut forest);
        let flat = flatten(&forest);
        prop_assert_eq!(flat.len(), closes.len(), "no span dropped");
        prop_assert!(intervals_consistent(&flat), "overlap in {:?}", flat);
    }
}

/// The same property end-to-end through the serde layer: random float
/// ms-timestamped span events on one thread export to consistent
/// integer-µs `ts`/`dur` pairs.
proptest! {
    #[test]
    fn trace_json_ts_dur_pairs_are_consistent(
        walk in proptest::collection::vec((0u8..3, 0.0f64..100.0, 0.0f64..100.0), 1..25)
    ) {
        let mut depth = 0usize;
        let events: Vec<Event> = walk
            .iter()
            .enumerate()
            .map(|(i, &(step, ms, ts_ms))| {
                depth = match step {
                    0 => depth + 1,
                    _ => depth.saturating_sub(1),
                };
                Event::Span {
                    name: format!("s{i}"),
                    path: format!("s{i}"),
                    depth,
                    ms,
                    self_ms: 0.0,
                    ts_ms,
                    thread: String::new(),
                    attrs: serde_json::Map::new(),
                    seq: i as u64,
                }
            })
            .collect();
        let doc = build_trace(&events);
        let spans: Vec<rt_obs::trace_tree::FlatSpan> = doc["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["ph"] == "X")
            .enumerate()
            .map(|(i, e)| rt_obs::trace_tree::FlatSpan {
                rec: i,
                start_us: e["ts"].as_i64().unwrap(),
                dur_us: e["dur"].as_i64().unwrap(),
            })
            .collect();
        prop_assert_eq!(spans.len(), events.len());
        prop_assert!(intervals_consistent(&spans), "overlap in {:?}", spans);
    }
}
