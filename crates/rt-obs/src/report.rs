//! Snapshot and report rendering: the per-run wall-time breakdown.
//!
//! A [`Snapshot`] can come from two places: the live in-process registry
//! ([`crate::snapshot`]) or an offline aggregation of one or more JSONL
//! telemetry streams ([`parse_jsonl`] + [`aggregate`] — the engine behind
//! the `obs_report` binary in `rt-bench`). Both feed
//! [`Snapshot::render_table`], which shows per-span count / total / self
//! / mean wall time (indented by nesting depth), top-level span coverage
//! of the observed wall time, histogram summaries, and counters.

use crate::sink::Event;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregated timing of one span path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanStat {
    /// Full hierarchical path (`fig1/pretrain/train.run`).
    pub path: String,
    /// Leaf name (`train.run`).
    pub name: String,
    /// Nesting depth (0 = top level).
    pub depth: usize,
    /// Number of times the span closed.
    pub count: u64,
    /// Summed wall time, milliseconds.
    pub total_ms: f64,
    /// Summed self time (total minus child spans), milliseconds.
    pub self_ms: f64,
    /// Longest single occurrence, milliseconds.
    pub max_ms: f64,
}

impl SpanStat {
    /// An empty stat for `path`.
    pub fn new(path: &str, name: &str, depth: usize) -> Self {
        SpanStat {
            path: path.to_string(),
            name: name.to_string(),
            depth,
            count: 0,
            total_ms: 0.0,
            self_ms: 0.0,
            max_ms: 0.0,
        }
    }
}

/// Serialized fixed-bucket histogram state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistSnapshot {
    /// Histogram name.
    pub name: String,
    /// Ascending bucket upper bounds (`value <= bound`).
    pub bounds: Vec<f64>,
    /// Per-bucket counts (`bounds.len() + 1`, last = overflow).
    pub counts: Vec<u64>,
    /// Sum of observations.
    pub sum: f64,
    /// Observation count.
    pub count: u64,
}

impl HistSnapshot {
    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` in `[0, 1]`
    /// (`f64::INFINITY` when it lands in the overflow bucket; `None` when
    /// empty).
    pub fn quantile_bound(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return Some(self.bounds.get(i).copied().unwrap_or(f64::INFINITY));
            }
        }
        Some(f64::INFINITY)
    }
}

/// Accumulated cost-model state of one accounting site (one layer): how
/// many FLOPs it actually executed vs. what dense execution would have
/// needed, bytes moved, and its live-vs-total parameter counts. Fed by
/// [`crate::cost::record_cost`]; integer-exact so reports can be
/// cross-checked against `rt-prune`'s `sparse_exec_report` with `==`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct CostStat {
    /// Site name (typically the layer's parameter name).
    pub name: String,
    /// Number of recorded executions.
    pub calls: u64,
    /// Accumulated FLOPs actually executed (plan-aware).
    pub flops: u64,
    /// Accumulated FLOPs a dense execution would have needed.
    pub dense_flops: u64,
    /// Accumulated bytes moved (activations + live weights).
    pub bytes: u64,
    /// Total parameter count (last-wins).
    pub params_total: u64,
    /// Live (unpruned) parameter count (last-wins).
    pub params_live: u64,
}

impl CostStat {
    /// An empty stat for `name`.
    pub fn new(name: &str) -> Self {
        CostStat {
            name: name.to_string(),
            ..CostStat::default()
        }
    }

    /// Arithmetic intensity in FLOPs per byte moved — the x-axis of a
    /// roofline plot (0.0 when no bytes were recorded).
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.flops as f64 / self.bytes as f64
        }
    }
}

/// A complete telemetry snapshot: span aggregates + metric registry +
/// observed wall time. Serializable — this is the `snapshot` payload of
/// `BENCH_obs.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Snapshot {
    /// Span aggregates, sorted by path.
    pub spans: Vec<SpanStat>,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states, sorted by name.
    pub histograms: Vec<HistSnapshot>,
    /// Per-layer cost-model stats, sorted by name (empty when no cost
    /// accounting ran; `default` keeps old BENCH_obs.json readable).
    #[serde(default)]
    pub costs: Vec<CostStat>,
    /// Observed wall time, milliseconds (process uptime for live
    /// snapshots; the largest event timestamp for offline aggregation).
    pub wall_ms: f64,
    /// Malformed JSONL lines dropped during offline parsing (always 0 for
    /// live snapshots). Surfaced by the report so torn streams are never
    /// silently under-counted.
    #[serde(default)]
    pub torn_lines: usize,
}

impl Snapshot {
    /// Fraction (0–1) of the observed wall time covered by *top-level*
    /// spans — the acceptance metric for "the breakdown explains where
    /// the run went". `None` when no wall time was observed.
    pub fn coverage(&self) -> Option<f64> {
        if self.wall_ms <= 0.0 {
            return None;
        }
        let top: f64 = self
            .spans
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| s.total_ms)
            .sum();
        Some((top / self.wall_ms).min(1.0))
    }

    /// Renders the wall-time breakdown table (spans indented by depth),
    /// coverage line, top-`k` histograms, and counters.
    pub fn render_table(&self) -> String {
        self.render_table_top_k(8)
    }

    /// [`Snapshot::render_table`] with an explicit histogram budget.
    pub fn render_table_top_k(&self, top_k: usize) -> String {
        let mut out = String::new();
        out.push_str("== rt-obs wall-time breakdown ==\n");
        if self.spans.is_empty() {
            out.push_str("(no spans recorded)\n");
        } else {
            let name_width = self
                .spans
                .iter()
                .map(|s| 2 * s.depth + s.name.len())
                .max()
                .unwrap_or(4)
                .max(4);
            out.push_str(&format!(
                "{:<name_width$}  {:>7}  {:>12}  {:>12}  {:>10}\n",
                "span", "count", "total ms", "self ms", "mean ms"
            ));
            // Path sort keeps children under their parents.
            let mut spans = self.spans.clone();
            spans.sort_by(|a, b| a.path.cmp(&b.path));
            for s in &spans {
                let label = format!("{}{}", "  ".repeat(s.depth), s.name);
                let mean = if s.count == 0 {
                    0.0
                } else {
                    s.total_ms / s.count as f64
                };
                out.push_str(&format!(
                    "{label:<name_width$}  {:>7}  {:>12.1}  {:>12.1}  {:>10.1}\n",
                    s.count, s.total_ms, s.self_ms, mean
                ));
            }
            if let Some(cov) = self.coverage() {
                out.push_str(&format!(
                    "top-level span coverage: {:.1}% of {:.1} ms observed wall time\n",
                    cov * 100.0,
                    self.wall_ms
                ));
                if cov < 0.90 {
                    out.push_str(&format!(
                        "WARNING: span coverage {:.1}% < 90% — {:.1} ms of wall time is \
                         unaccounted for (missing instrumentation or a torn stream?)\n",
                        cov * 100.0,
                        self.wall_ms * (1.0 - cov)
                    ));
                }
            }
        }
        if self.torn_lines > 0 {
            out.push_str(&format!(
                "torn_lines: {} malformed JSONL line(s) dropped during parsing\n",
                self.torn_lines
            ));
        }
        if !self.costs.is_empty() {
            out.push_str("\n== cost model (per layer) ==\n");
            let name_width = self
                .costs
                .iter()
                .map(|c| c.name.len())
                .max()
                .unwrap_or(5)
                .max(5)
                .max("TOTAL".len());
            out.push_str(&format!(
                "{:<name_width$}  {:>8}  {:>16}  {:>16}  {:>7}  {:>14}  {:>11}  {:>11}  {:>8}\n",
                "layer",
                "calls",
                "flops",
                "dense_flops",
                "saved%",
                "bytes",
                "params",
                "live",
                "flop/B"
            ));
            let mut total = CostStat::new("TOTAL");
            for c in &self.costs {
                let saved = if c.dense_flops == 0 {
                    0.0
                } else {
                    100.0 * (1.0 - c.flops as f64 / c.dense_flops as f64)
                };
                out.push_str(&format!(
                    "{:<name_width$}  {:>8}  {:>16}  {:>16}  {:>6.1}%  {:>14}  {:>11}  {:>11}  {:>8.2}\n",
                    c.name,
                    c.calls,
                    c.flops,
                    c.dense_flops,
                    saved,
                    c.bytes,
                    c.params_total,
                    c.params_live,
                    c.intensity()
                ));
                total.calls += c.calls;
                total.flops += c.flops;
                total.dense_flops += c.dense_flops;
                total.bytes += c.bytes;
                total.params_total += c.params_total;
                total.params_live += c.params_live;
            }
            let saved = if total.dense_flops == 0 {
                0.0
            } else {
                100.0 * (1.0 - total.flops as f64 / total.dense_flops as f64)
            };
            out.push_str(&format!(
                "{:<name_width$}  {:>8}  {:>16}  {:>16}  {:>6.1}%  {:>14}  {:>11}  {:>11}  {:>8.2}\n",
                total.name,
                total.calls,
                total.flops,
                total.dense_flops,
                saved,
                total.bytes,
                total.params_total,
                total.params_live,
                total.intensity()
            ));
        }
        let pool_hits = self.counters.get("pool.hits").copied().unwrap_or(0);
        let pool_misses = self.counters.get("pool.misses").copied().unwrap_or(0);
        if pool_hits + pool_misses > 0 {
            // Buffer-pool health belongs next to the roofline numbers: a
            // steady-state hit rate below ~100% means the hot path is
            // still allocating, which moves the bytes column for real.
            let leased = self
                .counters
                .get("pool.bytes_leased")
                .copied()
                .unwrap_or(0);
            let peak = self
                .gauges
                .get("mem.peak_pool_bytes")
                .copied()
                .unwrap_or(0.0);
            out.push_str(&format!(
                "pool: {:.1}% hit rate ({pool_hits} hits, {pool_misses} misses), \
                 {leased} bytes leased, peak {peak:.0} bytes outstanding\n",
                100.0 * pool_hits as f64 / (pool_hits + pool_misses) as f64
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str("\n== histograms ==\n");
            let mut hists = self.histograms.clone();
            hists.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.name.cmp(&b.name)));
            for h in hists.iter().take(top_k) {
                let fmt_bound = |b: Option<f64>| match b {
                    Some(v) if v.is_finite() => format!("{v}"),
                    Some(_) => "inf".to_string(),
                    None => "-".to_string(),
                };
                out.push_str(&format!(
                    "{}: count={} mean={:.3} p50<={} p90<={} p99<={}\n",
                    h.name,
                    h.count,
                    h.mean(),
                    fmt_bound(h.quantile_bound(0.5)),
                    fmt_bound(h.quantile_bound(0.9)),
                    fmt_bound(h.quantile_bound(0.99)),
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("\n== counters ==\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("{name} = {value}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("\n== gauges ==\n");
            for (name, value) in &self.gauges {
                out.push_str(&format!("{name} = {value}\n"));
            }
        }
        out
    }
}

/// Parses a JSONL telemetry stream. Malformed lines — including the torn
/// final line an interrupted process leaves behind — are counted, not
/// fatal.
pub fn parse_jsonl(text: &str) -> (Vec<Event>, usize) {
    let mut events = Vec::new();
    let mut malformed = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<Event>(line) {
            Ok(ev) => events.push(ev),
            Err(_) => malformed += 1,
        }
    }
    (events, malformed)
}

/// Aggregates parsed events into a [`Snapshot`]. Span events accumulate
/// by path; counter/gauge/histogram snapshot events are last-wins (they
/// are emitted as registry snapshots, with counts merged *across* streams
/// when multiple files are aggregated — see [`aggregate_streams`]).
pub fn aggregate(events: &[Event]) -> Snapshot {
    let mut spans: BTreeMap<String, SpanStat> = BTreeMap::new();
    let mut snap = Snapshot::default();
    for ev in events {
        match ev {
            Event::Span {
                name,
                path,
                depth,
                ms,
                self_ms,
                ts_ms,
                ..
            } => {
                let stat = spans
                    .entry(path.clone())
                    .or_insert_with(|| SpanStat::new(path, name, *depth));
                stat.count += 1;
                stat.total_ms += ms;
                stat.self_ms += self_ms;
                if *ms > stat.max_ms {
                    stat.max_ms = *ms;
                }
                if *ts_ms > snap.wall_ms {
                    snap.wall_ms = *ts_ms;
                }
            }
            Event::Point { ts_ms, .. } | Event::Log { ts_ms, .. } => {
                if *ts_ms > snap.wall_ms {
                    snap.wall_ms = *ts_ms;
                }
            }
            Event::Counter { name, value, .. } => {
                *snap.counters.entry(name.clone()).or_insert(0) = *value;
            }
            Event::Gauge { name, value, .. } => {
                snap.gauges.insert(name.clone(), *value);
            }
            Event::Cost {
                name,
                calls,
                flops,
                dense_flops,
                bytes,
                params_total,
                params_live,
                ..
            } => {
                // Snapshot semantics (like counters): a later emission of
                // the same site carries the accumulated state, so within
                // one stream the last event wins.
                snap.costs.retain(|c| c.name != *name);
                snap.costs.push(CostStat {
                    name: name.clone(),
                    calls: *calls,
                    flops: *flops,
                    dense_flops: *dense_flops,
                    bytes: *bytes,
                    params_total: *params_total,
                    params_live: *params_live,
                });
            }
            Event::Hist {
                name,
                bounds,
                counts,
                sum,
                count,
                ..
            } => {
                snap.histograms.retain(|h| h.name != *name);
                snap.histograms.push(HistSnapshot {
                    name: name.clone(),
                    bounds: bounds.clone(),
                    counts: counts.clone(),
                    sum: *sum,
                    count: *count,
                });
            }
            Event::Meta { .. } => {}
        }
    }
    snap.spans = spans.into_values().collect();
    snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    snap.costs.sort_by(|a, b| a.name.cmp(&b.name));
    snap
}

/// Aggregates multiple independently-recorded streams into one snapshot:
/// spans and histogram/counter totals are *summed* across streams,
/// `wall_ms` is summed too (each stream is a separate run's wall time).
pub fn aggregate_streams(streams: &[Vec<Event>]) -> Snapshot {
    let mut merged = Snapshot::default();
    for events in streams {
        let snap = aggregate(events);
        merged.wall_ms += snap.wall_ms;
        for s in snap.spans {
            match merged.spans.iter_mut().find(|m| m.path == s.path) {
                Some(m) => {
                    m.count += s.count;
                    m.total_ms += s.total_ms;
                    m.self_ms += s.self_ms;
                    m.max_ms = m.max_ms.max(s.max_ms);
                }
                None => merged.spans.push(s),
            }
        }
        for (name, value) in snap.counters {
            *merged.counters.entry(name).or_insert(0) += value;
        }
        for (name, value) in snap.gauges {
            merged.gauges.insert(name, value);
        }
        for h in snap.histograms {
            match merged
                .histograms
                .iter_mut()
                .find(|m| m.name == h.name && m.bounds == h.bounds)
            {
                Some(m) => {
                    for (a, b) in m.counts.iter_mut().zip(&h.counts) {
                        *a += b;
                    }
                    m.sum += h.sum;
                    m.count += h.count;
                }
                None => merged.histograms.push(h),
            }
        }
        for c in snap.costs {
            match merged.costs.iter_mut().find(|m| m.name == c.name) {
                Some(m) => {
                    // Each stream is an independent run: work accumulates,
                    // parameter counts describe the model (last-wins).
                    m.calls += c.calls;
                    m.flops += c.flops;
                    m.dense_flops += c.dense_flops;
                    m.bytes += c.bytes;
                    m.params_total = c.params_total;
                    m.params_live = c.params_live;
                }
                None => merged.costs.push(c),
            }
        }
        merged.torn_lines += snap.torn_lines;
    }
    merged.spans.sort_by(|a, b| a.path.cmp(&b.path));
    merged.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    merged.costs.sort_by(|a, b| a.name.cmp(&b.name));
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{testing, Level};

    #[test]
    fn jsonl_round_trip_matches_live_snapshot() {
        let _t = testing::lock();
        let handle = crate::init_memory(Level::All);
        {
            let _root = crate::span!("root");
            {
                let _child = crate::span!("child");
            }
            crate::counter("cells").add(4);
            crate::histogram_with_buckets("ms", &[1.0, 10.0]).observe(0.5);
        }
        crate::finalize();
        let text = handle.lines().join("\n");
        let (events, malformed) = parse_jsonl(&text);
        assert_eq!(malformed, 0);
        let offline = aggregate(&events);
        let live = crate::snapshot();
        // Span structure agrees between the live registry and the stream.
        assert_eq!(offline.spans.len(), live.spans.len());
        for (a, b) in offline.spans.iter().zip(&live.spans) {
            assert_eq!(a.path, b.path);
            assert_eq!(a.count, b.count);
            assert!((a.total_ms - b.total_ms).abs() < 1e-9);
        }
        assert_eq!(offline.counters.get("cells"), Some(&4));
        assert_eq!(offline.histograms.len(), 1);
        assert_eq!(offline.histograms[0].count, 1);
    }

    #[test]
    fn torn_final_line_is_tolerated() {
        let _t = testing::lock();
        let handle = crate::init_memory(Level::All);
        {
            let _g = crate::span!("kept");
        }
        crate::finalize();
        let mut text = handle.lines().join("\n");
        text.push_str("\n{\"t\":\"span\",\"name\":\"torn");
        let (events, malformed) = parse_jsonl(&text);
        assert_eq!(malformed, 1);
        let snap = aggregate(&events);
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].path, "kept");
    }

    #[test]
    fn coverage_uses_top_level_spans_only() {
        let snap = Snapshot {
            spans: vec![
                SpanStat {
                    count: 1,
                    total_ms: 90.0,
                    self_ms: 10.0,
                    ..SpanStat::new("run", "run", 0)
                },
                SpanStat {
                    count: 1,
                    total_ms: 80.0,
                    self_ms: 80.0,
                    ..SpanStat::new("run/inner", "inner", 1)
                },
            ],
            wall_ms: 100.0,
            ..Snapshot::default()
        };
        let cov = snap.coverage().unwrap();
        assert!((cov - 0.9).abs() < 1e-9, "inner span must not double-count");
    }

    #[test]
    fn quantile_bounds_walk_buckets() {
        let h = HistSnapshot {
            name: "q".into(),
            bounds: vec![1.0, 2.0, 4.0],
            counts: vec![5, 3, 1, 1],
            sum: 12.0,
            count: 10,
        };
        assert_eq!(h.quantile_bound(0.5), Some(1.0));
        assert_eq!(h.quantile_bound(0.8), Some(2.0));
        assert_eq!(h.quantile_bound(0.9), Some(4.0));
        assert_eq!(h.quantile_bound(1.0), Some(f64::INFINITY));
        assert!((h.mean() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn render_table_shows_hierarchy_and_coverage() {
        let snap = Snapshot {
            spans: vec![
                SpanStat {
                    count: 2,
                    total_ms: 100.0,
                    self_ms: 40.0,
                    max_ms: 60.0,
                    ..SpanStat::new("fig1", "fig1", 0)
                },
                SpanStat {
                    count: 4,
                    total_ms: 60.0,
                    self_ms: 60.0,
                    max_ms: 20.0,
                    ..SpanStat::new("fig1/pretrain", "pretrain", 1)
                },
            ],
            wall_ms: 105.0,
            ..Snapshot::default()
        };
        let table = snap.render_table();
        assert!(table.contains("fig1"), "{table}");
        assert!(table.contains("  pretrain"), "child indented: {table}");
        assert!(table.contains("95.2%"), "coverage rendered: {table}");
    }

    #[test]
    fn cost_events_aggregate_last_wins_then_sum_across_streams() {
        let cost = |calls: u64, flops: u64| Event::Cost {
            name: "head.weight".into(),
            calls,
            flops,
            dense_flops: flops * 2,
            bytes: flops * 4,
            params_total: 100,
            params_live: 40,
            seq: 0,
        };
        // Two snapshots in one stream (finalize ran twice): last wins.
        let stream = vec![cost(1, 10), cost(3, 30)];
        let snap = aggregate(&stream);
        assert_eq!(snap.costs.len(), 1);
        assert_eq!(snap.costs[0].calls, 3);
        assert_eq!(snap.costs[0].flops, 30);
        // Two independent streams: work sums, params stay descriptive.
        let merged = aggregate_streams(&[stream.clone(), stream]);
        assert_eq!(merged.costs[0].calls, 6);
        assert_eq!(merged.costs[0].flops, 60);
        assert_eq!(merged.costs[0].dense_flops, 120);
        assert_eq!(merged.costs[0].params_total, 100);
        assert_eq!(merged.costs[0].params_live, 40);
    }

    #[test]
    fn render_table_shows_cost_model_and_totals() {
        let snap = Snapshot {
            costs: vec![
                CostStat {
                    calls: 2,
                    flops: 60,
                    dense_flops: 100,
                    bytes: 30,
                    params_total: 50,
                    params_live: 30,
                    ..CostStat::new("stem.weight")
                },
                CostStat {
                    calls: 2,
                    flops: 40,
                    dense_flops: 100,
                    bytes: 10,
                    params_total: 50,
                    params_live: 20,
                    ..CostStat::new("head.weight")
                },
            ],
            ..Snapshot::default()
        };
        let table = snap.render_table();
        assert!(table.contains("cost model"), "{table}");
        assert!(table.contains("stem.weight"), "{table}");
        // Totals row: 100 flops vs 200 dense -> 50.0% saved, exact ints.
        assert!(table.contains("TOTAL"), "{table}");
        assert!(table.contains("50.0%"), "{table}");
        assert!((snap.costs[0].intensity() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn render_table_surfaces_pool_stats() {
        let mut snap = Snapshot::default();
        snap.counters.insert("pool.hits".into(), 3);
        snap.counters.insert("pool.misses".into(), 1);
        snap.counters.insert("pool.bytes_leased".into(), 4096);
        snap.gauges.insert("mem.peak_pool_bytes".into(), 1024.0);
        let table = snap.render_table();
        assert!(table.contains("75.0% hit rate"), "{table}");
        assert!(table.contains("4096 bytes leased"), "{table}");
        assert!(table.contains("peak 1024 bytes"), "{table}");
        // No pool traffic → no pool line.
        assert!(!Snapshot::default().render_table().contains("pool:"));
    }

    #[test]
    fn low_coverage_warns_and_torn_lines_are_visible() {
        let snap = Snapshot {
            spans: vec![SpanStat {
                count: 1,
                total_ms: 50.0,
                self_ms: 50.0,
                ..SpanStat::new("run", "run", 0)
            }],
            wall_ms: 100.0,
            torn_lines: 3,
            ..Snapshot::default()
        };
        let table = snap.render_table();
        assert!(table.contains("WARNING"), "coverage 50% must warn: {table}");
        assert!(table.contains("torn_lines: 3"), "{table}");
        // Healthy coverage, clean stream: neither line appears.
        let healthy = Snapshot {
            spans: vec![SpanStat {
                count: 1,
                total_ms: 95.0,
                self_ms: 95.0,
                ..SpanStat::new("run", "run", 0)
            }],
            wall_ms: 100.0,
            ..Snapshot::default()
        };
        let table = healthy.render_table();
        assert!(!table.contains("WARNING"), "{table}");
        assert!(!table.contains("torn_lines"), "{table}");
    }

    #[test]
    fn stream_merge_sums_spans_and_histograms() {
        let _t = testing::lock();
        let handle = crate::init_memory(Level::All);
        {
            let _g = crate::span!("work");
            crate::counter("n").add(2);
            crate::histogram_with_buckets("h", &[1.0]).observe(0.5);
        }
        crate::finalize();
        let text = handle.lines().join("\n");
        let (events, _) = parse_jsonl(&text);
        let merged = aggregate_streams(&[events.clone(), events]);
        assert_eq!(merged.spans[0].count, 2, "span counts sum across streams");
        assert_eq!(merged.counters.get("n"), Some(&4));
        assert_eq!(merged.histograms[0].count, 2);
    }
}
