//! `rt-obs` — the workspace's observability substrate.
//!
//! The paper's pipeline chains adversarial pretraining → ticket drawing →
//! per-cell transfer sweeps; a standard-scale run is minutes and a paper
//! run is hours of wall time. This crate answers *where that time goes*
//! with three primitives, all process-global and all gated behind a single
//! atomic level check so the instrumented hot paths cost nothing when
//! telemetry is off:
//!
//! * **Spans** ([`span!`], [`SpanGuard`]) — RAII wall-time scopes with a
//!   thread-local stack, hierarchical paths (`fig1/pretrain/train.run/…`),
//!   self-vs-child time accounting, and `key=value` attributes.
//! * **Metrics** ([`counter`], [`gauge`], [`histogram`]) — a process-global
//!   registry of atomic counters, gauges, and fixed-bucket histograms.
//! * **A JSONL event sink** ([`init_from_env`]) — `RT_OBS=path.jsonl`
//!   streams one JSON object per event; `RT_OBS_LEVEL=off|spans|all`
//!   selects how much is recorded. [`finalize`] snapshots the registry
//!   into the stream and durably flushes it. An in-memory sink
//!   ([`init_memory`]) serves the tests.
//!
//! [`snapshot`] captures the registry + span aggregates as a serializable
//! [`report::Snapshot`], whose [`report::Snapshot::render_table`] is the
//! per-run wall-time breakdown table (also produced offline from JSONL
//! files by the `obs_report` binary in `rt-bench`).
//!
//! # Levels and gating
//!
//! | level   | spans | metrics/events/log-mirror |
//! |---------|-------|---------------------------|
//! | `off`   |  no   |  no                       |
//! | `spans` |  yes  |  no                       |
//! | `all`   |  yes  |  yes                      |
//!
//! With `RT_OBS` unset and `RT_OBS_LEVEL` unset, the level is `off`:
//! every instrumentation site reduces to one relaxed atomic load — no
//! allocation, no I/O, no registry growth, and no file is ever created.
//! Setting `RT_OBS=path.jsonl` defaults the level to `all`.
//!
//! # Console output
//!
//! Library crates must not call `println!`/`eprintln!` directly (enforced
//! by `ci.sh`); they use [`console!`], which writes the line to stderr
//! *and* mirrors it into the telemetry stream as a `log` event when the
//! level is `all` — so a post-mortem JSONL holds the run's diagnostics
//! alongside its timings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod metrics;
pub mod report;
pub mod sink;
pub mod span;
pub mod trace;
pub mod trace_tree;

pub use metrics::{Counter, Gauge, Histogram};
pub use sink::{AttrValue, Event, MemoryHandle};
pub use span::SpanGuard;

use sink::{JsonlSink, MemorySink, Sink};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The sanctioned wall-clock timer for instrumentation code.
///
/// `ci.sh` bans ad-hoc `std::time::Instant::now()` timing outside
/// `rt-obs`/`rt-par`/`rt-bench` so every measurement flows through one
/// auditable type; production crates time things with a `Stopwatch`
/// (usually gated, via [`Stopwatch::start_if`], on a telemetry-level
/// check so the off level performs no clock read at all).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts a stopwatch (reads the monotonic clock).
    pub fn start() -> Stopwatch {
        Stopwatch(Instant::now())
    }

    /// Starts a stopwatch only when `active` — the gated-timing idiom:
    /// `let t0 = Stopwatch::start_if(hist.is_active());`. When `active`
    /// is false no clock is read, keeping disabled telemetry at exactly
    /// one relaxed atomic load per site.
    pub fn start_if(active: bool) -> Option<Stopwatch> {
        active.then(Stopwatch::start)
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Elapsed milliseconds since start.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }

    /// Elapsed seconds since start.
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Telemetry verbosity. See the crate docs for what each level records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Level {
    /// Everything disabled; instrumentation is a single atomic load.
    #[default]
    Off,
    /// Spans only (wall-time accounting, no metric registry growth).
    Spans,
    /// Spans + counters/gauges/histograms + structured events + log mirror.
    All,
}

impl Level {
    /// Parses `off` / `spans` / `all` (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(Level::Off),
            "spans" | "span" | "1" => Some(Level::Spans),
            "all" | "full" | "2" => Some(Level::All),
            _ => None,
        }
    }

    /// Stable label (`off` / `spans` / `all`).
    pub fn label(&self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Spans => "spans",
            Level::All => "all",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            1 => Level::Spans,
            2 => Level::All,
            _ => Level::Off,
        }
    }
}

/// The single fast-path gate: 0 = off, 1 = spans, 2 = all.
static LEVEL: AtomicU8 = AtomicU8::new(0);
/// Guards [`init_from_env`] idempotence.
static INITIALIZED: AtomicBool = AtomicBool::new(false);
/// Monotone event sequence number (shared by every sink write).
static SEQ: AtomicU64 = AtomicU64::new(0);

/// In-memory Chrome-trace capture: span/point events retained until
/// [`finalize`] converts them into a `trace_event` JSON file at `path`.
struct TraceBuf {
    path: PathBuf,
    events: Vec<Event>,
}

/// Everything behind the slow path: the sink and the metric/span registry.
struct Inner {
    start: Instant,
    sink: Option<Box<dyn Sink>>,
    counters: HashMap<String, std::sync::Arc<AtomicU64>>,
    gauges: HashMap<String, std::sync::Arc<AtomicU64>>,
    histograms: HashMap<String, std::sync::Arc<metrics::HistogramInner>>,
    span_stats: HashMap<String, report::SpanStat>,
    costs: HashMap<String, report::CostStat>,
    trace: Option<TraceBuf>,
}

impl Inner {
    fn new(sink: Option<Box<dyn Sink>>) -> Self {
        Inner {
            start: Instant::now(),
            sink,
            counters: HashMap::new(),
            gauges: HashMap::new(),
            histograms: HashMap::new(),
            span_stats: HashMap::new(),
            costs: HashMap::new(),
            trace: None,
        }
    }

    fn ts_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    fn emit(&mut self, event: &Event) {
        if let Some(sink) = self.sink.as_mut() {
            if let Ok(line) = serde_json::to_string(event) {
                sink.emit_line(&line);
            }
        }
        if let Some(tb) = self.trace.as_mut() {
            // Only spans and points draw in the trace viewer; snapshots
            // (counters/hists/costs) would just bloat the buffer.
            if matches!(event, Event::Span { .. } | Event::Point { .. }) {
                tb.events.push(event.clone());
            }
        }
    }
}

static INNER: Mutex<Option<Inner>> = Mutex::new(None);

fn lock_inner() -> std::sync::MutexGuard<'static, Option<Inner>> {
    // A panic while holding the lock (e.g. an injected fault inside a
    // span) must not poison telemetry for the rest of the process.
    INNER.lock().unwrap_or_else(|p| p.into_inner())
}

pub(crate) fn with_inner<R>(f: impl FnOnce(&mut Inner) -> R) -> Option<R> {
    let mut guard = lock_inner();
    guard.as_mut().map(f)
}

/// Current telemetry level.
pub fn level() -> Level {
    Level::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// True when spans are recorded (level ≥ `spans`). This is the one-atomic
/// fast-path check every span site performs.
#[inline]
pub fn spans_enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) >= 1
}

/// True when metrics/events/log-mirroring are recorded (level = `all`).
#[inline]
pub fn metrics_enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) >= 2
}

/// Next global event sequence number.
pub(crate) fn next_seq() -> u64 {
    SEQ.fetch_add(1, Ordering::Relaxed)
}

/// Initializes telemetry from the environment. Idempotent: only the first
/// call has any effect, so every layer (driver mains, library helpers)
/// may call it defensively.
///
/// * `RT_OBS=path.jsonl` — stream events to `path` (JSONL).
/// * `RT_OBS_TRACE=path.json` — additionally capture spans/events and
///   write a Chrome `trace_event` JSON file at [`finalize`] (open it in
///   `chrome://tracing` or Perfetto).
/// * `RT_OBS_LEVEL=off|spans|all` — verbosity; defaults to `all` when
///   `RT_OBS` or `RT_OBS_TRACE` is set and `off` otherwise.
///
/// With an effective level of `off` **nothing** is created: no file, no
/// registry, no background state.
pub fn init_from_env() {
    if INITIALIZED.swap(true, Ordering::SeqCst) {
        return;
    }
    let path = std::env::var("RT_OBS").ok().filter(|p| !p.trim().is_empty());
    let trace_path = std::env::var("RT_OBS_TRACE")
        .ok()
        .filter(|p| !p.trim().is_empty());
    let level = std::env::var("RT_OBS_LEVEL")
        .ok()
        .and_then(|s| Level::parse(&s))
        .unwrap_or(if path.is_some() || trace_path.is_some() {
            Level::All
        } else {
            Level::Off
        });
    if level == Level::Off {
        return;
    }
    let sink: Option<Box<dyn Sink>> = match &path {
        None => None,
        Some(p) => match JsonlSink::create(Path::new(p)) {
            Ok(s) => Some(Box::new(s)),
            Err(e) => {
                // Telemetry must never take down a run; degrade to
                // in-memory aggregation only.
                eprintln!("[rt-obs] cannot open {p}: {e}; continuing without a sink");
                None
            }
        },
    };
    install(level, sink);
    if let Some(p) = trace_path {
        set_trace_output(Path::new(&p));
    }
}

/// Enables Chrome-trace capture: spans and structured events recorded
/// from now on are buffered and written to `path` as a `trace_event`
/// JSON document by [`finalize`] (atomically, so a watcher never reads a
/// torn file). No-op at level `off`. Idempotent per path; calling again
/// redirects future output and keeps already-buffered events.
pub fn set_trace_output(path: &Path) {
    if level() == Level::Off {
        return;
    }
    with_inner(|inner| match inner.trace.as_mut() {
        Some(tb) => tb.path = path.to_path_buf(),
        None => {
            inner.trace = Some(TraceBuf {
                path: path.to_path_buf(),
                events: Vec::new(),
            });
        }
    });
}

/// Explicit (re)initialization — used by tools and tests. Replaces any
/// previous telemetry state. Pass `path = None` for in-memory aggregation
/// without a sink.
///
/// # Errors
///
/// Returns the I/O error when the sink file cannot be created.
pub fn init_manual(level: Level, path: Option<&Path>) -> std::io::Result<()> {
    let sink: Option<Box<dyn Sink>> = match path {
        Some(p) if level > Level::Off => Some(Box::new(JsonlSink::create(p)?)),
        _ => None,
    };
    INITIALIZED.store(true, Ordering::SeqCst);
    install(level, sink);
    Ok(())
}

/// Installs an in-memory sink (tests): every emitted JSONL line is
/// captured and readable through the returned handle.
pub fn init_memory(level: Level) -> MemoryHandle {
    let handle = MemoryHandle::default();
    INITIALIZED.store(true, Ordering::SeqCst);
    install(level, Some(Box::new(MemorySink::new(handle.clone()))));
    handle
}

fn install(level: Level, sink: Option<Box<dyn Sink>>) {
    let mut inner = Inner::new(sink);
    if level > Level::Off {
        let meta = Event::Meta {
            v: sink::SCHEMA_VERSION,
            unix_ms: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            pid: std::process::id(),
            level: level.label().to_string(),
            seq: next_seq(),
        };
        inner.emit(&meta);
    }
    *lock_inner() = Some(inner);
    LEVEL.store(level as u8, Ordering::SeqCst);
    if level > Level::Off {
        install_par_observer();
        install_pool_observer();
    }
}

/// Wires the [`rt_par`] worker pool's telemetry hooks into this crate's
/// metrics:
///
/// * every `rt_par::run_tasks` batch adds its task count to the
///   `par.tasks` counter,
/// * batch queue latency (enqueue → first worker claim) feeds the
///   `par.queue_ms` histogram,
/// * pool (re)builds set the `par.pool_threads` gauge,
/// * watchdog deadline trips increment the `watchdog.trips` counter,
/// * self-healing worker respawns increment `par.worker_respawns`.
///
/// `rt-par` sits below `rt-obs` in the crate graph and therefore cannot
/// emit telemetry itself; this adapter injects plain function pointers
/// via `rt_par::set_observer`. Installation is first-call-wins and the
/// hooks degrade to no-op metric handles whenever telemetry is disabled,
/// so calling this is always safe. Invoked automatically by every
/// `init_*` path; returns whether this call performed the installation.
pub fn install_par_observer() -> bool {
    rt_par::set_observer(rt_par::ParObserver {
        on_tasks: |n| counter("par.tasks").add(n),
        on_queue_ms: |ms| {
            histogram("par.queue_ms").observe(ms);
            trace_queue_point(ms);
        },
        on_pool_threads: |n| gauge("par.pool_threads").set(n as f64),
        on_watchdog_trip: |n| counter("watchdog.trips").add(n),
        on_worker_respawn: |n| counter("par.worker_respawns").add(n),
    })
}

/// Wires the [`rt_tensor::pool`] buffer pool's telemetry hooks into this
/// crate's metrics:
///
/// * recycled leases add their byte size to `pool.hits` (count) and
///   `pool.bytes_leased`,
/// * leases that had to allocate fresh memory increment `pool.misses`
///   (and also count toward `pool.bytes_leased`),
/// * new process-wide peaks of outstanding leased bytes move the
///   `mem.peak_pool_bytes` gauge.
///
/// Like [`install_par_observer`], this injects plain function pointers
/// (`rt_tensor::pool::set_observer`) because `rt-tensor` sits below
/// `rt-obs` in the crate graph. Installation is first-call-wins, the
/// hooks degrade to no-op metric handles when telemetry is disabled, and
/// every `init_*` path invokes it automatically; returns whether this
/// call performed the installation.
pub fn install_pool_observer() -> bool {
    rt_tensor::pool::set_observer(rt_tensor::pool::PoolObserver {
        on_hit: |bytes| {
            counter("pool.hits").add(1);
            counter("pool.bytes_leased").add(bytes);
        },
        on_miss: |bytes| {
            counter("pool.misses").add(1);
            counter("pool.bytes_leased").add(bytes);
        },
        on_peak: |bytes| gauge("mem.peak_pool_bytes").set(bytes as f64),
    })
}

/// Appends a `par.queue` instant to the trace buffer (only — the JSONL
/// stream already carries the `par.queue_ms` histogram, and per-batch
/// points would bloat it) so pool queue/idle time shows up as a track in
/// the exported flamegraph.
fn trace_queue_point(queue_ms: f64) {
    if !spans_enabled() {
        return;
    }
    with_inner(|inner| {
        if inner.trace.is_none() {
            return;
        }
        let ts_ms = inner.ts_ms();
        let mut attrs = serde_json::Map::new();
        attrs.insert("queue_ms".into(), serde_json::Value::from(queue_ms));
        let ev = Event::Point {
            name: "par.queue".to_string(),
            ts_ms,
            attrs,
            seq: next_seq(),
        };
        if let Some(tb) = inner.trace.as_mut() {
            tb.events.push(ev);
        }
    });
}

/// Flushes telemetry durably: drains any spans still open on this thread
/// (so early-exit paths like the runner's `ExitCode::exit` — which calls
/// `process::exit` and therefore skips `Drop` — still record their root
/// spans), snapshots every counter/gauge/histogram/cost into the event
/// stream (level `all`), writes the Chrome trace file when capture is on,
/// then flushes and fsyncs the sink — the telemetry analog of `rt-nn`'s
/// atomic checkpoint writes. Call at the end of a run; in-memory
/// aggregates survive, so [`snapshot`] still works afterwards.
pub fn finalize() {
    if level() == Level::Off {
        return;
    }
    // Must happen before the registry snapshot (closing spans folds their
    // stats in) and outside `with_inner` (span close takes the lock).
    span::drain_open_spans();
    let snap_events = metrics_enabled();
    with_inner(|inner| {
        if snap_events {
            let mut events: Vec<Event> = Vec::new();
            let mut counters: Vec<(&String, u64)> = inner
                .counters
                .iter()
                .map(|(k, v)| (k, v.load(Ordering::Relaxed)))
                .collect();
            counters.sort();
            for (name, value) in counters {
                events.push(Event::Counter {
                    name: name.clone(),
                    value,
                    seq: next_seq(),
                });
            }
            let mut gauges: Vec<(&String, f64)> = inner
                .gauges
                .iter()
                .map(|(k, v)| (k, f64::from_bits(v.load(Ordering::Relaxed))))
                .collect();
            gauges.sort_by(|a, b| a.0.cmp(b.0));
            for (name, value) in gauges {
                events.push(Event::Gauge {
                    name: name.clone(),
                    value,
                    seq: next_seq(),
                });
            }
            let mut hists: Vec<(&String, &std::sync::Arc<metrics::HistogramInner>)> =
                inner.histograms.iter().collect();
            hists.sort_by(|a, b| a.0.cmp(b.0));
            for (name, hist) in hists {
                let snap = hist.snapshot(name);
                events.push(Event::Hist {
                    name: snap.name,
                    bounds: snap.bounds,
                    counts: snap.counts,
                    sum: snap.sum,
                    count: snap.count,
                    seq: next_seq(),
                });
            }
            let mut costs: Vec<&report::CostStat> = inner.costs.values().collect();
            costs.sort_by(|a, b| a.name.cmp(&b.name));
            let cost_events: Vec<Event> = costs
                .into_iter()
                .map(|c| Event::Cost {
                    name: c.name.clone(),
                    calls: c.calls,
                    flops: c.flops,
                    dense_flops: c.dense_flops,
                    bytes: c.bytes,
                    params_total: c.params_total,
                    params_live: c.params_live,
                    seq: next_seq(),
                })
                .collect();
            events.extend(cost_events);
            for event in &events {
                inner.emit(event);
            }
        }
        if let Some(tb) = inner.trace.as_ref() {
            // Atomic rewrite from the retained buffer: finalize may run
            // more than once (ObsSession drop + explicit exit paths) and
            // each write must be a complete, parseable document.
            let json = trace::chrome_trace_json(&tb.events);
            if let Err(e) = sink::atomic_write(&tb.path, json.as_bytes()) {
                eprintln!("[rt-obs] cannot write trace {}: {e}", tb.path.display());
            }
        }
        if let Some(sink) = inner.sink.as_mut() {
            sink.flush_sync();
        }
    });
}

/// Captures the current in-memory registry + span aggregates.
pub fn snapshot() -> report::Snapshot {
    with_inner(|inner| {
        let mut snap = report::Snapshot {
            wall_ms: inner.ts_ms(),
            ..report::Snapshot::default()
        };
        for (name, c) in &inner.counters {
            snap.counters
                .insert(name.clone(), c.load(Ordering::Relaxed));
        }
        for (name, g) in &inner.gauges {
            snap.gauges
                .insert(name.clone(), f64::from_bits(g.load(Ordering::Relaxed)));
        }
        for (name, h) in &inner.histograms {
            snap.histograms.push(h.snapshot(name));
        }
        snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        snap.spans = inner.span_stats.values().cloned().collect();
        snap.spans.sort_by(|a, b| a.path.cmp(&b.path));
        snap.costs = inner.costs.values().cloned().collect();
        snap.costs.sort_by(|a, b| a.name.cmp(&b.name));
        snap
    })
    .unwrap_or_default()
}

/// Number of registered metric + span-aggregate entries — used by tests to
/// prove the `off` level produces zero registry growth.
pub fn registry_len() -> usize {
    with_inner(|inner| {
        inner.counters.len()
            + inner.gauges.len()
            + inner.histograms.len()
            + inner.span_stats.len()
            + inner.costs.len()
    })
    .unwrap_or(0)
}

/// Emits a structured one-off event (level `all`); no-op otherwise.
pub fn event(name: &str, attrs: &[(&str, AttrValue)]) {
    if !metrics_enabled() {
        return;
    }
    let map: serde_json::Map<String, serde_json::Value> = attrs
        .iter()
        .map(|(k, v)| ((*k).to_string(), v.clone().into()))
        .collect();
    with_inner(|inner| {
        let ev = Event::Point {
            name: name.to_string(),
            ts_ms: inner.ts_ms(),
            attrs: map,
            seq: next_seq(),
        };
        inner.emit(&ev);
    });
}

/// Writes `msg` to stderr and, at level `all`, mirrors it into the
/// telemetry stream as a `log` event. The [`console!`] macro is the
/// ergonomic front door; this is its implementation.
pub fn console_line(msg: &str) {
    eprintln!("{msg}");
    if !metrics_enabled() {
        return;
    }
    with_inner(|inner| {
        let ev = Event::Log {
            msg: msg.to_string(),
            ts_ms: inner.ts_ms(),
            seq: next_seq(),
        };
        inner.emit(&ev);
    });
}

/// Writes `msg` to **stdout** and, at level `all`, mirrors it into the
/// telemetry stream as a `log` event. The [`console_out!`] macro is the
/// ergonomic front door; this is its implementation. Reserved for output
/// that *is* the program's product (e.g. a record's markdown table);
/// diagnostics belong on stderr via [`console!`].
pub fn stdout_line(msg: &str) {
    println!("{msg}");
    if !metrics_enabled() {
        return;
    }
    with_inner(|inner| {
        let ev = Event::Log {
            msg: msg.to_string(),
            ts_ms: inner.ts_ms(),
            seq: next_seq(),
        };
        inner.emit(&ev);
    });
}

/// Attaches a `key = value` attribute to the innermost open span on this
/// thread (no-op when spans are disabled or no span is open).
pub fn span_attr(key: &str, value: impl Into<AttrValue>) {
    if !spans_enabled() {
        return;
    }
    span::attach_attr(key, value.into());
}

/// Opens a wall-time span. RAII: the span closes (and is recorded) when
/// the returned guard drops.
///
/// ```
/// let _g = rt_obs::span!("pretrain");
/// let _h = rt_obs::span!("train.epoch", "epoch" => 3usize, "lr" => 0.05f64);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
    ($name:expr, $($k:expr => $v:expr),+ $(,)?) => {
        if $crate::spans_enabled() {
            $crate::SpanGuard::enter_with(
                $name,
                vec![$(($k.to_string(), $crate::AttrValue::from($v))),+],
            )
        } else {
            $crate::SpanGuard::inactive()
        }
    };
}

/// `eprintln!` for library crates: prints to stderr and mirrors into the
/// telemetry stream at level `all`. `ci.sh` rejects bare
/// `println!`/`eprintln!` under `crates/*/src`; use this instead.
#[macro_export]
macro_rules! console {
    ($($arg:tt)*) => {
        $crate::console_line(&format!($($arg)*))
    };
}

/// `println!` for library crates: prints to stdout and mirrors into the
/// telemetry stream at level `all`. For product output (tables, records);
/// diagnostics go through [`console!`].
#[macro_export]
macro_rules! console_out {
    ($($arg:tt)*) => {
        $crate::stdout_line(&format!($($arg)*))
    };
}

/// Creates (or fetches) the counter `name`. Returns a no-op handle when
/// metrics are disabled — the registry never grows at level < `all`.
pub fn counter(name: &str) -> Counter {
    metrics::counter(name)
}

/// Creates (or fetches) the gauge `name` (no-op handle when disabled).
pub fn gauge(name: &str) -> Gauge {
    metrics::gauge(name)
}

/// Creates (or fetches) the histogram `name` with the default
/// millisecond-scaled buckets (no-op handle when disabled).
pub fn histogram(name: &str) -> Histogram {
    metrics::histogram(name)
}

/// Creates (or fetches) the histogram `name` with explicit upper bounds
/// (ascending; an implicit overflow bucket is appended).
pub fn histogram_with_buckets(name: &str, bounds: &[f64]) -> Histogram {
    metrics::histogram_with_buckets(name, bounds)
}

/// Test support: a process-wide lock that serializes tests mutating the
/// global telemetry state, resetting it on acquisition *and* release.
pub mod testing {
    use super::*;

    static TEST_LOCK: Mutex<()> = Mutex::new(());

    /// Holds the test lock; state is reset when acquired and when dropped.
    pub struct TestGuard(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);

    impl Drop for TestGuard {
        fn drop(&mut self) {
            reset();
        }
    }

    /// Acquires the telemetry test lock (resetting all global state).
    pub fn lock() -> TestGuard {
        let guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        TestGuard(guard)
    }

    fn reset() {
        LEVEL.store(0, Ordering::SeqCst);
        INITIALIZED.store(false, Ordering::SeqCst);
        *lock_inner() = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_observer_feeds_pool_metrics() {
        let _t = testing::lock();
        let _h = init_memory(Level::All);
        // `install` wired the observer (first-call-wins, so a previous
        // test may have done it — either way the hooks point here now
        // that the registry was reset).
        assert!(counter("par.tasks").get() == 0);
        rt_par::run_tasks(8, &|_| {});
        assert_eq!(counter("par.tasks").get(), 8, "batch task count recorded");
        // Rebuilding the pool refreshes the thread gauge.
        let n = rt_par::threads();
        rt_par::set_threads(n + 1);
        assert_eq!(gauge("par.pool_threads").get(), (n + 1) as f64);
        rt_par::set_threads(n);
        assert_eq!(gauge("par.pool_threads").get(), n as f64);
    }

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("SPANS"), Some(Level::Spans));
        assert_eq!(Level::parse("All"), Some(Level::All));
        assert_eq!(Level::parse("verbose"), None);
        assert!(Level::Spans < Level::All);
    }

    #[test]
    fn off_level_is_a_true_noop() {
        let _t = testing::lock();
        let path = std::env::temp_dir().join("rt-obs-off-noop.jsonl");
        let _ = std::fs::remove_file(&path);
        // `init_manual` at Off must not create the file.
        init_manual(Level::Off, Some(&path)).unwrap();
        assert_eq!(level(), Level::Off);
        assert!(!spans_enabled());
        // Instrumentation sites all degrade to no-ops.
        {
            let _g = span!("dead");
            let _h = span!("dead2", "k" => 1u64);
            counter("c").inc();
            gauge("g").set(1.0);
            histogram("h").observe(1.0);
            event("e", &[("k", AttrValue::from(1u64))]);
        }
        assert_eq!(registry_len(), 0, "off level must not grow the registry");
        assert!(!path.exists(), "off level must not create the sink file");
    }

    #[test]
    fn init_from_env_is_idempotent() {
        let _t = testing::lock();
        // No RT_OBS in the test environment: stays off, and a second call
        // cannot flip state installed in between.
        init_from_env();
        let first = level();
        init_memory(Level::All);
        init_from_env(); // must be a no-op now
        assert_eq!(level(), Level::All);
        assert_eq!(first, Level::Off);
    }

    #[test]
    fn finalize_snapshots_metrics_into_the_stream() {
        let _t = testing::lock();
        let handle = init_memory(Level::All);
        counter("runner.retries").add(3);
        gauge("train.lr").set(0.05);
        histogram("train.batch_ms").observe(2.0);
        finalize();
        let lines = handle.lines();
        let joined = lines.join("\n");
        assert!(joined.contains("\"t\":\"meta\""), "{joined}");
        assert!(joined.contains("runner.retries"), "{joined}");
        assert!(joined.contains("train.lr"), "{joined}");
        assert!(joined.contains("train.batch_ms"), "{joined}");
        // Every line is valid JSON.
        for line in &lines {
            serde_json::from_str::<serde_json::Value>(line).expect("well-formed JSONL");
        }
    }

    #[test]
    fn finalize_writes_an_atomic_trace_file() {
        let _t = testing::lock();
        let path = std::env::temp_dir().join("rt-obs-trace-test.json");
        let _ = std::fs::remove_file(&path);
        init_memory(Level::All);
        set_trace_output(&path);
        {
            let _outer = span!("outer");
            let _inner = span!("inner", "k" => 7u64);
        }
        event("mark", &[("n", AttrValue::from(1u64))]);
        finalize();
        let text = std::fs::read_to_string(&path).expect("trace file written");
        let doc: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let events = doc["traceEvents"].as_array().expect("object form");
        let xs: Vec<_> = events.iter().filter(|e| e["ph"] == "X").collect();
        assert_eq!(xs.len(), 2, "both spans exported: {events:?}");
        assert!(events.iter().any(|e| e["ph"] == "i"), "instant exported");
        assert!(events.iter().any(|e| e["ph"] == "M"), "thread track named");
        // finalize again: the file is rewritten whole, still parseable.
        finalize();
        let again = std::fs::read_to_string(&path).unwrap();
        serde_json::from_str::<serde_json::Value>(&again).expect("still valid");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn console_mirrors_into_the_stream_at_level_all() {
        let _t = testing::lock();
        let handle = init_memory(Level::All);
        console!("hello {}", 42);
        let lines = handle.lines();
        assert!(lines.iter().any(|l| l.contains("hello 42")), "{lines:?}");
    }

    #[test]
    fn spans_level_skips_metrics_but_keeps_spans() {
        let _t = testing::lock();
        let handle = init_memory(Level::Spans);
        counter("never").inc();
        {
            let _g = span!("visible");
        }
        assert_eq!(snapshot().counters.len(), 0);
        assert_eq!(snapshot().spans.len(), 1);
        let lines = handle.lines();
        assert!(lines.iter().any(|l| l.contains("\"visible\"")), "{lines:?}");
        assert!(!lines.iter().any(|l| l.contains("never")));
    }
}
