//! Hierarchical RAII wall-time spans with a thread-local span stack.
//!
//! [`SpanGuard::enter`] pushes a frame onto the current thread's stack;
//! dropping the guard pops it, computes total and *self* time (total
//! minus time attributed to child spans), folds the timing into the
//! process-global span-stat registry, and — when a sink is installed —
//! emits a `span` event. Panics unwind through guards normally, so a
//! crashed cell still records every span it closed on the way out.

use crate::sink::{AttrValue, Event};
use crate::{next_seq, report::SpanStat, spans_enabled, with_inner};
use std::cell::RefCell;
use std::time::{Duration, Instant};

struct Frame {
    name: String,
    path: String,
    depth: usize,
    start: Instant,
    child: Duration,
    attrs: Vec<(String, AttrValue)>,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one span. Created by [`SpanGuard::enter`] /
/// [`crate::span!`]; the span is recorded when the guard drops.
#[must_use = "a span closes as soon as its guard drops"]
pub struct SpanGuard {
    active: bool,
}

impl SpanGuard {
    /// Opens a span named `name` (no attributes). Returns an inactive
    /// guard — one relaxed atomic load, no allocation — when spans are
    /// disabled.
    pub fn enter(name: &str) -> SpanGuard {
        if !spans_enabled() {
            return SpanGuard { active: false };
        }
        Self::enter_with(name, Vec::new())
    }

    /// Opens a span with initial attributes. Callers should gate on
    /// [`crate::spans_enabled`] (the [`crate::span!`] macro does) so the
    /// attribute vector is never built when telemetry is off.
    pub fn enter_with(name: &str, attrs: Vec<(String, AttrValue)>) -> SpanGuard {
        if !spans_enabled() {
            return SpanGuard { active: false };
        }
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let (path, depth) = match stack.last() {
                Some(parent) => (format!("{}/{}", parent.path, name), parent.depth + 1),
                None => (name.to_string(), 0),
            };
            stack.push(Frame {
                name: name.to_string(),
                path,
                depth,
                start: Instant::now(),
                child: Duration::ZERO,
                attrs,
            });
        });
        SpanGuard { active: true }
    }

    /// An inactive guard (used by the [`crate::span!`] macro's disabled
    /// branch).
    pub fn inactive() -> SpanGuard {
        SpanGuard { active: false }
    }

    /// Whether this guard actually records a span.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Attaches an attribute to *this* span (must be the innermost open
    /// span on the thread — which it is for idiomatic RAII use).
    pub fn attr(&self, key: &str, value: impl Into<AttrValue>) {
        if self.active {
            attach_attr(key, value.into());
        }
    }
}

/// Attaches an attribute to the innermost open span on this thread.
pub(crate) fn attach_attr(key: &str, value: AttrValue) {
    STACK.with(|stack| {
        if let Some(frame) = stack.borrow_mut().last_mut() {
            frame.attrs.push((key.to_string(), value));
        }
    });
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        close_top_frame();
    }
}

/// Drains every span still open on the *current* thread, closing them
/// innermost-first as if their guards had dropped. Returns how many were
/// closed.
///
/// This exists for early-exit paths: `std::process::exit` (used by the
/// runner's `ExitCode::exit`, e.g. on deadline-budget exhaustion) skips
/// `Drop`, so without draining, the root `ObsSession` span — and with it
/// the run's coverage and its trace file — would be lost. [`crate::finalize`]
/// calls this first; spans on *other* threads cannot be drained from here,
/// but every exit path runs on the thread that owns the root spans.
pub(crate) fn drain_open_spans() -> usize {
    let mut closed = 0usize;
    while STACK.with(|stack| !stack.borrow().is_empty()) {
        attach_attr("drained", AttrValue::B(true));
        if !close_top_frame() {
            break;
        }
        closed += 1;
    }
    closed
}

/// Closes the innermost open frame on this thread (the shared body of
/// `SpanGuard::drop` and [`drain_open_spans`]): pops it, computes total
/// and self time, credits the parent's child time, folds the stats into
/// the registry, and emits a `span` event when a sink is recording.
/// Returns whether a frame was actually closed.
fn close_top_frame() -> bool {
    {
        let Some(frame) = STACK.with(|stack| stack.borrow_mut().pop()) else {
            return false; // unbalanced (test reset mid-span); never panic in Drop
        };
        let total = frame.start.elapsed();
        let self_time = total.saturating_sub(frame.child);
        STACK.with(|stack| {
            if let Some(parent) = stack.borrow_mut().last_mut() {
                parent.child += total;
            }
        });
        let total_ms = total.as_secs_f64() * 1e3;
        let self_ms = self_time.as_secs_f64() * 1e3;
        let emit_event = spans_enabled();
        with_inner(|inner| {
            let stat = inner
                .span_stats
                .entry(frame.path.clone())
                .or_insert_with(|| SpanStat::new(&frame.path, &frame.name, frame.depth));
            stat.count += 1;
            stat.total_ms += total_ms;
            stat.self_ms += self_ms;
            if total_ms > stat.max_ms {
                stat.max_ms = total_ms;
            }
            if emit_event {
                let attrs: serde_json::Map<String, serde_json::Value> = frame
                    .attrs
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone().into()))
                    .collect();
                let ev = Event::Span {
                    name: frame.name.clone(),
                    path: frame.path.clone(),
                    depth: frame.depth,
                    ms: total_ms,
                    self_ms,
                    ts_ms: inner.ts_ms(),
                    thread: std::thread::current().name().unwrap_or("").to_string(),
                    attrs,
                    seq: next_seq(),
                };
                inner.emit(&ev);
            }
        });
    }
    true
}

#[cfg(test)]
mod tests {
    use crate::{snapshot, testing, Level};

    fn spin_for_ms(ms: u64) {
        let t0 = std::time::Instant::now();
        while t0.elapsed() < std::time::Duration::from_millis(ms) {
            std::hint::black_box(0u64);
        }
    }

    #[test]
    fn nesting_builds_paths_and_self_time() {
        let _t = testing::lock();
        crate::init_manual(Level::Spans, None).unwrap();
        {
            let _outer = crate::span!("outer");
            spin_for_ms(4);
            {
                let _inner = crate::span!("inner");
                spin_for_ms(4);
            }
        }
        let snap = snapshot();
        let outer = snap
            .spans
            .iter()
            .find(|s| s.path == "outer")
            .expect("outer recorded");
        let inner = snap
            .spans
            .iter()
            .find(|s| s.path == "outer/inner")
            .expect("inner path nests under outer");
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.name, "inner");
        // Self-time accounting: outer's self time excludes inner's total.
        assert!(
            outer.total_ms >= inner.total_ms,
            "outer {} < inner {}",
            outer.total_ms,
            inner.total_ms
        );
        assert!(
            outer.self_ms <= outer.total_ms - inner.total_ms + 1.0,
            "outer self {} must exclude inner total {} (outer total {})",
            outer.self_ms,
            inner.total_ms,
            outer.total_ms
        );
        assert!(outer.self_ms >= 3.0, "outer did ~4ms of its own work");
    }

    #[test]
    fn repeated_spans_aggregate_counts() {
        let _t = testing::lock();
        crate::init_manual(Level::Spans, None).unwrap();
        for _ in 0..5 {
            let _g = crate::span!("loop");
        }
        let snap = snapshot();
        let stat = snap.spans.iter().find(|s| s.path == "loop").unwrap();
        assert_eq!(stat.count, 5);
        assert!(stat.total_ms >= stat.self_ms);
        assert!(stat.max_ms <= stat.total_ms + 1e-9);
    }

    #[test]
    fn attrs_flow_into_events() {
        let _t = testing::lock();
        let handle = crate::init_memory(Level::All);
        {
            let g = crate::span!("epoch", "epoch" => 3usize, "lr" => 0.05f64);
            g.attr("loss", 1.25f64);
            crate::span_attr("imgs_per_sec", 100.0f64);
        }
        let lines = handle.lines();
        let span_line = lines
            .iter()
            .find(|l| l.contains("\"t\":\"span\""))
            .expect("span event emitted");
        assert!(span_line.contains("\"epoch\":3"), "{span_line}");
        assert!(span_line.contains("\"lr\":0.05"), "{span_line}");
        assert!(span_line.contains("\"loss\":1.25"), "{span_line}");
        assert!(span_line.contains("\"imgs_per_sec\":100.0"), "{span_line}");
    }

    #[test]
    fn sibling_spans_share_a_parent_path() {
        let _t = testing::lock();
        crate::init_manual(Level::Spans, None).unwrap();
        {
            let _root = crate::span!("root");
            {
                let _a = crate::span!("a");
            }
            {
                let _b = crate::span!("b");
            }
        }
        let snap = snapshot();
        let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
        assert!(paths.contains(&"root"));
        assert!(paths.contains(&"root/a"));
        assert!(paths.contains(&"root/b"));
        // Parent child-time includes both siblings.
        let root = snap.spans.iter().find(|s| s.path == "root").unwrap();
        let a = snap.spans.iter().find(|s| s.path == "root/a").unwrap();
        let b = snap.spans.iter().find(|s| s.path == "root/b").unwrap();
        assert!(root.total_ms + 1e-6 >= a.total_ms + b.total_ms);
    }

    #[test]
    fn drain_closes_open_spans_for_early_exit() {
        let _t = testing::lock();
        let handle = crate::init_memory(Level::All);
        let root = crate::span!("session");
        let inner = crate::span!("cell");
        // Simulate the ExitCode::exit path: finalize before any Drop runs.
        crate::finalize();
        let lines = handle.lines();
        let spans: Vec<&String> = lines
            .iter()
            .filter(|l| l.contains("\"t\":\"span\""))
            .collect();
        assert_eq!(spans.len(), 2, "both open spans recorded: {lines:?}");
        assert!(
            spans.iter().all(|l| l.contains("\"drained\":true")),
            "force-closed spans are marked: {spans:?}"
        );
        // Innermost closes first, so the root still nests correctly.
        assert!(spans[0].contains("session/cell"), "{spans:?}");
        let snap = snapshot();
        assert!(snap.spans.iter().any(|s| s.path == "session"));
        // The guards drop afterwards onto an empty stack: harmless no-ops.
        drop(inner);
        drop(root);
        assert_eq!(
            snapshot().spans.iter().map(|s| s.count).sum::<u64>(),
            2,
            "late guard drops must not double-count"
        );
    }

    #[test]
    fn inactive_guard_touches_nothing() {
        let _t = testing::lock();
        // Level off: no init at all.
        {
            let g = crate::span!("ghost");
            assert!(!g.is_active());
            g.attr("k", 1u64);
        }
        assert_eq!(crate::registry_len(), 0);
    }
}
