//! Process-global metric registry: counters, gauges, fixed-bucket
//! histograms.
//!
//! Handles are cheap `Arc` clones into the registry; when metrics are
//! disabled (level < `all`) every constructor returns a no-op handle
//! without touching the registry, so the disabled path is one relaxed
//! atomic load and the registry provably never grows.

use crate::report::HistSnapshot;
use crate::{metrics_enabled, with_inner};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default histogram bucket upper bounds, tuned for millisecond-scale
/// timings (spans a 50 µs batch to a minute-long cell).
pub const DEFAULT_MS_BOUNDS: [f64; 19] = [
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
    5000.0, 10_000.0, 30_000.0, 60_000.0,
];

/// A monotone counter. Cloneable; no-op when telemetry is off.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// True when this handle is wired to the registry.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }
}

/// A last-value-wins gauge (stored as `f64` bits in an atomic).
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.0 {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 for a no-op handle).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }

    /// True when this handle is wired to the registry.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }
}

/// Lock-free fixed-bucket histogram storage.
pub struct HistogramInner {
    /// Ascending upper bounds; observation `v` lands in the first bucket
    /// with `v <= bound`, or the trailing overflow bucket.
    pub(crate) bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets (last = overflow).
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl HistogramInner {
    fn new(bounds: Vec<f64>) -> Self {
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        HistogramInner {
            bounds,
            counts,
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: f64) {
        // First bound >= v; equality lands in the bucket it bounds.
        let idx = self.bounds.partition_point(|b| *b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // CAS loop for the f64 sum (contention is negligible at our rates).
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    /// Snapshots the histogram under `name`.
    pub(crate) fn snapshot(&self, name: &str) -> HistSnapshot {
        HistSnapshot {
            name: name.to_string(),
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// A fixed-bucket histogram handle. Cloneable; no-op when telemetry is
/// off — hoist the handle out of hot loops and gate timing capture on
/// [`Histogram::is_active`] so even `Instant::now()` is skipped.
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistogramInner>>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: f64) {
        if let Some(inner) = &self.0 {
            inner.observe(v);
        }
    }

    /// Number of observations so far (0 for a no-op handle).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |h| h.count.load(Ordering::Relaxed))
    }

    /// True when this handle is wired to the registry — gate
    /// `Instant::now()` calls on this.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }
}

/// See [`crate::counter`].
pub(crate) fn counter(name: &str) -> Counter {
    if !metrics_enabled() {
        return Counter(None);
    }
    Counter(with_inner(|inner| {
        inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone()
    }))
}

/// See [`crate::gauge`].
pub(crate) fn gauge(name: &str) -> Gauge {
    if !metrics_enabled() {
        return Gauge(None);
    }
    Gauge(with_inner(|inner| {
        inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0.0f64.to_bits())))
            .clone()
    }))
}

/// See [`crate::histogram`].
pub(crate) fn histogram(name: &str) -> Histogram {
    histogram_with_buckets(name, &DEFAULT_MS_BOUNDS)
}

/// See [`crate::histogram_with_buckets`].
pub(crate) fn histogram_with_buckets(name: &str, bounds: &[f64]) -> Histogram {
    if !metrics_enabled() {
        return Histogram(None);
    }
    debug_assert!(
        bounds.windows(2).all(|w| w[0] < w[1]),
        "histogram bounds must be strictly ascending"
    );
    Histogram(with_inner(|inner| {
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramInner::new(bounds.to_vec())))
            .clone()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{testing, Level};

    #[test]
    fn histogram_bucket_edges_are_inclusive_upper_bounds() {
        let _t = testing::lock();
        crate::init_manual(Level::All, None).unwrap();
        let h = crate::histogram_with_buckets("edges", &[1.0, 2.0, 4.0]);
        h.observe(0.5); // <= 1.0  → bucket 0
        h.observe(1.0); // == 1.0  → bucket 0 (inclusive upper bound)
        h.observe(1.0001); // → bucket 1
        h.observe(2.0); // == 2.0  → bucket 1
        h.observe(4.0); // == 4.0  → bucket 2
        h.observe(4.5); // > 4.0   → overflow bucket 3
        h.observe(1e9); // → overflow bucket 3
        let snap = crate::snapshot();
        let hist = snap.histograms.iter().find(|s| s.name == "edges").unwrap();
        assert_eq!(hist.counts, vec![2, 2, 1, 2]);
        assert_eq!(hist.count, 7);
        let expected_sum = 0.5 + 1.0 + 1.0001 + 2.0 + 4.0 + 4.5 + 1e9;
        assert!((hist.sum - expected_sum).abs() < 1e-6);
    }

    #[test]
    fn same_name_returns_the_same_underlying_metric() {
        let _t = testing::lock();
        crate::init_manual(Level::All, None).unwrap();
        crate::counter("shared").add(2);
        crate::counter("shared").add(3);
        assert_eq!(crate::counter("shared").get(), 5);
        assert_eq!(crate::registry_len(), 1);
    }

    #[test]
    fn concurrent_counter_increments_are_lossless() {
        let _t = testing::lock();
        crate::init_manual(Level::All, None).unwrap();
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                std::thread::spawn(move || {
                    let c = crate::counter("concurrent");
                    for _ in 0..per_thread {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(crate::counter("concurrent").get(), threads * per_thread);
    }

    #[test]
    fn concurrent_histogram_observations_are_lossless() {
        let _t = testing::lock();
        crate::init_manual(Level::All, None).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let h = crate::histogram_with_buckets("conc-hist", &[10.0, 100.0]);
                    for i in 0..1000 {
                        h.observe((t * 1000 + i) as f64 % 150.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = crate::snapshot();
        let hist = snap
            .histograms
            .iter()
            .find(|s| s.name == "conc-hist")
            .unwrap();
        assert_eq!(hist.count, 4000);
        assert_eq!(hist.counts.iter().sum::<u64>(), 4000);
    }

    #[test]
    fn gauge_is_last_value_wins() {
        let _t = testing::lock();
        crate::init_manual(Level::All, None).unwrap();
        let g = crate::gauge("lr");
        g.set(0.1);
        g.set(0.05);
        assert!((crate::gauge("lr").get() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn disabled_handles_are_inert() {
        let _t = testing::lock();
        // Level stays Off.
        let c = crate::counter("ghost");
        let g = crate::gauge("ghost");
        let h = crate::histogram("ghost");
        assert!(!c.is_active() && !g.is_active() && !h.is_active());
        c.inc();
        g.set(1.0);
        h.observe(1.0);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(crate::registry_len(), 0);
    }
}
