//! Span-forest reconstruction and timestamp sanitization for trace export.
//!
//! The JSONL stream records spans **at close time** (RAII guards emit on
//! Drop), so a thread's spans arrive in post-order: every child closes
//! before its parent, and siblings close in chronological order. This
//! module rebuilds the forest from that close order plus the recorded
//! depths, then clamps the integer-microsecond intervals so that any two
//! spans on one thread are either properly nested or disjoint — the
//! invariant Chrome's `trace_event` viewer and Perfetto require to draw a
//! flamegraph instead of garbage.
//!
//! Clamping matters because span timestamps are reconstructed from two
//! floating-point millisecond fields (`ts_ms` at close, `ms` duration):
//! rounding each to integer microseconds independently can make a child
//! appear to start 1 µs before its parent or overlap a sibling by 1 µs.
//! The viewer treats such traces as malformed. `clamp_forest` repairs
//! them deterministically: parents win over children, earlier siblings
//! win over later ones, and durations only ever shrink to fit.
//!
//! Everything here is std-only and pure (no I/O, no globals) so the
//! module is testable standalone; the serde-facing conversion lives in
//! [`crate::trace`].

/// One closed span as it appears in the stream, in close (emit) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CloseRec {
    /// Nesting depth at record time (0 = top-level span of its thread).
    pub depth: usize,
    /// Start timestamp in integer microseconds (may be inconsistent).
    pub start_us: i64,
    /// End timestamp in integer microseconds (may be inconsistent).
    pub end_us: i64,
}

/// A reconstructed span node; `rec` indexes the input slice so callers
/// can recover names/attrs without this module knowing about them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    pub rec: usize,
    pub start_us: i64,
    pub end_us: i64,
    /// Children in chronological (close) order.
    pub children: Vec<Node>,
}

/// A flattened span ready for emission: `[start_us, start_us + dur_us)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatSpan {
    pub rec: usize,
    pub start_us: i64,
    pub dur_us: i64,
}

/// Rebuilds the span forest of ONE thread from its close-ordered records.
///
/// A close at depth `d` adopts every pending node at depth `d + 1`: those
/// are exactly the children that closed since the previous depth-`d` span
/// was consumed (RAII guarantees children close before their parent).
/// Records at a depth deeper than `parent_depth + 1` (possible if a
/// stream was torn mid-run) are treated as children of the next shallower
/// close; depth gaps never panic.
pub fn build_forest(closes: &[CloseRec]) -> Vec<Node> {
    // pending[d] = completed subtrees at depth d awaiting their parent.
    let mut pending: Vec<Vec<Node>> = Vec::new();
    for (i, rec) in closes.iter().enumerate() {
        let d = rec.depth;
        if pending.len() <= d + 1 {
            pending.resize_with(d + 2, Vec::new);
        }
        // Adopt everything strictly deeper than this close, deepest level
        // first so a torn stream's orphans attach to the nearest parent.
        let mut children = Vec::new();
        for level in pending.iter_mut().skip(d + 1).rev() {
            // Orphans from deeper levels are spliced in close order.
            let mut adopted = std::mem::take(level);
            adopted.extend(children);
            children = adopted;
        }
        children.sort_by_key(|c| c.rec); // restore stream (close) order
        pending[d].push(Node {
            rec: i,
            start_us: rec.start_us,
            end_us: rec.end_us,
            children,
        });
    }
    // Whatever remains below depth 0 are orphans of torn parents; promote
    // them to roots so no recorded span is silently dropped.
    let mut roots = Vec::new();
    for level in pending.into_iter() {
        roots.extend(level);
    }
    roots.sort_by_key(|n| n.rec);
    roots
}

/// Clamps every interval so the forest is viewer-consistent: children lie
/// within `[parent.start, parent.end]`, siblings are disjoint and in
/// order, and every duration is non-negative. Earlier spans win.
pub fn clamp_forest(forest: &mut [Node]) {
    let mut cursor = i64::MIN;
    for node in forest.iter_mut() {
        clamp_node(node, cursor, i64::MAX);
        cursor = node.end_us;
    }
}

fn clamp_node(node: &mut Node, min_start: i64, max_end: i64) {
    node.start_us = node.start_us.clamp(min_start, max_end);
    node.end_us = node.end_us.clamp(node.start_us, max_end);
    let mut cursor = node.start_us;
    for child in node.children.iter_mut() {
        clamp_node(child, cursor, node.end_us);
        cursor = child.end_us;
    }
}

/// Pre-order flatten of a (clamped) forest into emission-ready spans.
pub fn flatten(forest: &[Node]) -> Vec<FlatSpan> {
    let mut out = Vec::new();
    for node in forest {
        flatten_into(node, &mut out);
    }
    out
}

fn flatten_into(node: &Node, out: &mut Vec<FlatSpan>) {
    out.push(FlatSpan {
        rec: node.rec,
        start_us: node.start_us,
        dur_us: node.end_us - node.start_us,
    });
    for child in &node.children {
        flatten_into(child, out);
    }
}

/// Checks the viewer invariant on flattened spans paired with their
/// depths: any two spans are disjoint or properly nested. Used by tests
/// (including the proptest in `tests/trace_export.rs`); exported so the
/// test harness does not reimplement the predicate.
pub fn intervals_consistent(spans: &[FlatSpan]) -> bool {
    for (i, a) in spans.iter().enumerate() {
        if a.dur_us < 0 {
            return false;
        }
        let (a0, a1) = (a.start_us, a.start_us + a.dur_us);
        for b in spans.iter().skip(i + 1) {
            let (b0, b1) = (b.start_us, b.start_us + b.dur_us);
            let disjoint = a1 <= b0 || b1 <= a0;
            let a_in_b = b0 <= a0 && a1 <= b1;
            let b_in_a = a0 <= b0 && b1 <= a1;
            if !(disjoint || a_in_b || b_in_a) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(depth: usize, start_us: i64, end_us: i64) -> CloseRec {
        CloseRec { depth, start_us, end_us }
    }

    #[test]
    fn single_span_roundtrips() {
        let forest = build_forest(&[rec(0, 100, 200)]);
        assert_eq!(forest.len(), 1);
        assert_eq!(forest[0].rec, 0);
        assert!(forest[0].children.is_empty());
    }

    #[test]
    fn child_closes_before_parent() {
        // Stream order: child (depth 1) then parent (depth 0).
        let forest = build_forest(&[rec(1, 110, 150), rec(0, 100, 200)]);
        assert_eq!(forest.len(), 1);
        assert_eq!(forest[0].rec, 1);
        assert_eq!(forest[0].children.len(), 1);
        assert_eq!(forest[0].children[0].rec, 0);
    }

    #[test]
    fn siblings_attach_to_their_own_parent() {
        // parent A {child a}, parent B {child b} — four closes.
        let closes = [
            rec(1, 10, 20),  // a
            rec(0, 0, 30),   // A adopts a
            rec(1, 40, 50),  // b
            rec(0, 35, 60),  // B adopts b (a was already consumed)
        ];
        let forest = build_forest(&closes);
        assert_eq!(forest.len(), 2);
        assert_eq!(forest[0].children.len(), 1);
        assert_eq!(forest[0].children[0].rec, 0);
        assert_eq!(forest[1].children.len(), 1);
        assert_eq!(forest[1].children[0].rec, 2);
    }

    #[test]
    fn deep_nesting_reconstructs() {
        // d2 inside d1 inside d0, closing inner-out.
        let closes = [rec(2, 3, 4), rec(1, 2, 5), rec(0, 1, 6)];
        let forest = build_forest(&closes);
        assert_eq!(forest.len(), 1);
        let d0 = &forest[0];
        assert_eq!(d0.children.len(), 1);
        assert_eq!(d0.children[0].children.len(), 1);
        assert_eq!(d0.children[0].children[0].rec, 0);
    }

    #[test]
    fn torn_stream_orphans_become_roots() {
        // A depth-1 close whose parent never closed (process killed).
        let forest = build_forest(&[rec(1, 10, 20)]);
        assert_eq!(forest.len(), 1);
        assert_eq!(forest[0].rec, 0);
    }

    #[test]
    fn depth_gap_adopts_nearest_parent() {
        // depth 3 close followed directly by depth 1 (depth 2 torn).
        let forest = build_forest(&[rec(3, 10, 20), rec(1, 5, 30)]);
        assert_eq!(forest.len(), 1);
        assert_eq!(forest[0].rec, 1);
        assert_eq!(forest[0].children.len(), 1);
        assert_eq!(forest[0].children[0].rec, 0);
    }

    #[test]
    fn clamp_pulls_child_inside_parent() {
        // Child [90, 250] sticks out of parent [100, 200] on both sides.
        let mut forest = build_forest(&[rec(1, 90, 250), rec(0, 100, 200)]);
        clamp_forest(&mut forest);
        let child = &forest[0].children[0];
        assert_eq!(child.start_us, 100);
        assert_eq!(child.end_us, 200);
        assert!(intervals_consistent(&flatten(&forest)));
    }

    #[test]
    fn clamp_separates_overlapping_siblings() {
        let closes = [rec(0, 0, 100), rec(0, 50, 150)];
        let mut forest = build_forest(&closes);
        clamp_forest(&mut forest);
        assert_eq!(forest[0].end_us, 100);
        assert_eq!(forest[1].start_us, 100); // pushed after sibling
        assert!(intervals_consistent(&flatten(&forest)));
    }

    #[test]
    fn clamp_never_negative_duration() {
        // End before start, child "later" than parent — worst case.
        let closes = [rec(1, 500, 400), rec(0, 300, 100)];
        let mut forest = build_forest(&closes);
        clamp_forest(&mut forest);
        for s in flatten(&forest) {
            assert!(s.dur_us >= 0);
        }
        assert!(intervals_consistent(&flatten(&forest)));
    }

    #[test]
    fn consistent_input_is_untouched() {
        let closes = [
            rec(1, 10, 20),
            rec(1, 25, 40),
            rec(0, 0, 50),
            rec(0, 60, 90),
        ];
        let mut forest = build_forest(&closes);
        let before = flatten(&forest);
        clamp_forest(&mut forest);
        assert_eq!(before, flatten(&forest));
    }

    /// Splitmix64 — deterministic generator for the fuzz sweep below
    /// (keeps this module std-only; the real proptest lives in
    /// tests/trace_export.rs).
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn fuzz_random_close_sequences_stay_consistent() {
        let mut state = 0x5EED_0007u64;
        for _case in 0..500 {
            let n = (splitmix(&mut state) % 12 + 1) as usize;
            let mut depth = 0usize;
            let mut closes = Vec::new();
            for _ in 0..n {
                // Random walk over depths, biased downward so parents
                // actually close; timings are arbitrary garbage.
                let step = splitmix(&mut state) % 3;
                depth = match step {
                    0 => depth + 1,
                    _ => depth.saturating_sub(1),
                };
                let a = (splitmix(&mut state) % 10_000) as i64;
                let b = (splitmix(&mut state) % 10_000) as i64;
                closes.push(rec(depth, a, b));
            }
            let mut forest = build_forest(&closes);
            clamp_forest(&mut forest);
            let flat = flatten(&forest);
            assert_eq!(flat.len(), closes.len(), "no span dropped");
            assert!(
                intervals_consistent(&flat),
                "inconsistent intervals for closes {closes:?} -> {flat:?}"
            );
        }
    }
}
