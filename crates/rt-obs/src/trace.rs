//! Chrome `trace_event` export: turns recorded span/point events into a
//! JSON document that `chrome://tracing` and Perfetto open as a
//! flamegraph.
//!
//! Spans are recorded at *close* time (`ts_ms` = close timestamp, `ms` =
//! duration), so the exporter first reconstructs each thread's span
//! forest from the close order + depths ([`crate::trace_tree`]), then
//! clamps the integer-microsecond intervals so the viewer never sees a
//! child outside its parent or overlapping siblings (float-rounding can
//! produce both), and finally emits:
//!
//! * one `M` (`thread_name`) metadata record per thread track,
//! * one `X` (complete) event per span — `args` carry the span's
//!   attributes plus its hierarchical `path` and `self_ms`,
//! * one `i` (instant) event per structured point event, on a dedicated
//!   `events` track (points carry no thread field).
//!
//! The document is the standard object form `{"traceEvents": [...]}`.
//! Capture is wired up by `RT_OBS_TRACE=path.json` (see
//! [`crate::init_from_env`]); [`crate::finalize`] writes the file
//! atomically. Offline, [`jsonl_to_trace`] converts an existing
//! `RT_OBS` JSONL stream into the same document.

use crate::sink::Event;
use crate::trace_tree::{build_forest, clamp_forest, flatten, CloseRec};
use serde_json::{json, Map, Value};

/// Synthetic tid of the instant-event track.
const EVENTS_TID: u64 = 0;

/// Converts recorded events into a Chrome `trace_event` JSON document
/// (object form). Only `span` and `event` records contribute; everything
/// else in the stream is ignored.
pub fn chrome_trace_json(events: &[Event]) -> String {
    build_trace(events).to_string()
}

/// Converts a JSONL telemetry stream (an `RT_OBS` file) into a Chrome
/// trace document — the offline path for runs that only kept the stream.
/// Returns the document and the number of malformed lines skipped.
pub fn jsonl_to_trace(text: &str) -> (String, usize) {
    let (events, malformed) = crate::report::parse_jsonl(text);
    (chrome_trace_json(&events), malformed)
}

/// [`chrome_trace_json`] as a structured value (used by tests).
pub fn build_trace(events: &[Event]) -> Value {
    let mut trace_events: Vec<Value> = Vec::new();

    // --- Group span closes by thread, preserving stream order. --------
    // (name, attrs-ref, self_ms) per close, parallel to the CloseRecs.
    type SpanRef<'a> = (&'a str, &'a Map<String, Value>, f64, &'a str);
    let mut threads: Vec<(String, Vec<CloseRec>, Vec<SpanRef>)> = Vec::new();
    let mut points: Vec<&Event> = Vec::new();
    for ev in events {
        match ev {
            Event::Span {
                name,
                path,
                depth,
                ms,
                self_ms,
                ts_ms,
                thread,
                attrs,
                ..
            } => {
                let label = if thread.is_empty() { "main" } else { thread };
                let idx = match threads.iter().position(|(t, _, _)| t == label) {
                    Some(i) => i,
                    None => {
                        threads.push((label.to_string(), Vec::new(), Vec::new()));
                        threads.len() - 1
                    }
                };
                let end_us = (ts_ms * 1e3).round() as i64;
                let start_us = ((ts_ms - ms) * 1e3).round() as i64;
                threads[idx].1.push(CloseRec {
                    depth: *depth,
                    start_us,
                    end_us,
                });
                threads[idx].2.push((name, attrs, *self_ms, path));
            }
            Event::Point { .. } => points.push(ev),
            _ => {}
        }
    }

    // --- Thread-name metadata tracks (tid = first-appearance order). --
    if !points.is_empty() {
        trace_events.push(thread_meta(EVENTS_TID, "events"));
    }
    for (i, (label, _, _)) in threads.iter().enumerate() {
        trace_events.push(thread_meta(i as u64 + 1, label));
    }

    // --- Spans: rebuild each thread's forest, clamp, emit X events. ---
    for (i, (_, closes, refs)) in threads.iter().enumerate() {
        let tid = i as u64 + 1;
        let mut forest = build_forest(closes);
        clamp_forest(&mut forest);
        for span in flatten(&forest) {
            let (name, attrs, self_ms, path) = refs[span.rec];
            let mut args = attrs.clone();
            args.insert("path".into(), Value::from(path));
            args.insert("self_ms".into(), Value::from(self_ms));
            trace_events.push(json!({
                "name": name,
                "cat": "span",
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": span.start_us,
                "dur": span.dur_us,
                "args": Value::Object(args),
            }));
        }
    }

    // --- Points: instants on the dedicated events track. --------------
    for ev in points {
        if let Event::Point {
            name, ts_ms, attrs, ..
        } = ev
        {
            trace_events.push(json!({
                "name": name,
                "cat": "event",
                "ph": "i",
                "s": "t",
                "pid": 1,
                "tid": EVENTS_TID,
                "ts": (ts_ms * 1e3).round() as i64,
                "args": Value::Object(attrs.clone()),
            }));
        }
    }

    json!({ "traceEvents": trace_events })
}

fn thread_meta(tid: u64, label: &str) -> Value {
    json!({
        "name": "thread_name",
        "ph": "M",
        "pid": 1,
        "tid": tid,
        "args": { "name": label },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        name: &str,
        path: &str,
        depth: usize,
        ms: f64,
        ts_ms: f64,
        thread: &str,
    ) -> Event {
        Event::Span {
            name: name.into(),
            path: path.into(),
            depth,
            ms,
            self_ms: ms,
            ts_ms,
            thread: thread.into(),
            attrs: Map::new(),
            seq: 0,
        }
    }

    fn x_events(doc: &Value) -> Vec<&Value> {
        doc["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["ph"] == "X")
            .collect()
    }

    #[test]
    fn nested_spans_stay_nested_in_export() {
        // child [40,90] closes before parent [0,100] (RAII order).
        let events = vec![
            span("child", "parent/child", 1, 50.0, 90.0, ""),
            span("parent", "parent", 0, 100.0, 100.0, ""),
        ];
        let doc = build_trace(&events);
        let xs = x_events(&doc);
        assert_eq!(xs.len(), 2);
        let parent = xs.iter().find(|e| e["name"] == "parent").unwrap();
        let child = xs.iter().find(|e| e["name"] == "child").unwrap();
        let (p0, pd) = (parent["ts"].as_i64().unwrap(), parent["dur"].as_i64().unwrap());
        let (c0, cd) = (child["ts"].as_i64().unwrap(), child["dur"].as_i64().unwrap());
        assert!(p0 <= c0 && c0 + cd <= p0 + pd, "child within parent");
        assert_eq!(pd, 100_000, "100 ms = 100_000 us");
        assert_eq!(child["args"]["path"], "parent/child");
    }

    #[test]
    fn threads_get_separate_named_tracks() {
        let events = vec![
            span("a", "a", 0, 1.0, 1.0, ""),
            span("b", "b", 0, 1.0, 1.5, "rt-par-0"),
        ];
        let doc = build_trace(&events);
        let all = doc["traceEvents"].as_array().unwrap();
        let metas: Vec<&Value> = all.iter().filter(|e| e["ph"] == "M").collect();
        let names: Vec<&str> = metas
            .iter()
            .map(|m| m["args"]["name"].as_str().unwrap())
            .collect();
        assert_eq!(names, vec!["main", "rt-par-0"]);
        let a = x_events(&doc).into_iter().find(|e| e["name"] == "a").unwrap()["tid"]
            .as_u64()
            .unwrap();
        let b = x_events(&doc).into_iter().find(|e| e["name"] == "b").unwrap()["tid"]
            .as_u64()
            .unwrap();
        assert_ne!(a, b, "per-thread tracks");
    }

    #[test]
    fn attrs_become_args_and_points_become_instants() {
        let mut attrs = Map::new();
        attrs.insert("epoch".into(), Value::from(3u64));
        let events = vec![
            Event::Span {
                name: "train.epoch".into(),
                path: "train.epoch".into(),
                depth: 0,
                ms: 2.0,
                self_ms: 1.5,
                ts_ms: 2.0,
                thread: String::new(),
                attrs: attrs.clone(),
                seq: 0,
            },
            Event::Point {
                name: "runner.cell".into(),
                ts_ms: 1.0,
                attrs,
                seq: 1,
            },
        ];
        let doc = build_trace(&events);
        let x = &x_events(&doc)[0];
        assert_eq!(x["args"]["epoch"], 3);
        assert_eq!(x["args"]["self_ms"], 1.5);
        let inst = doc["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e["ph"] == "i")
            .expect("instant emitted");
        assert_eq!(inst["name"], "runner.cell");
        assert_eq!(inst["tid"].as_u64(), Some(EVENTS_TID));
        assert_eq!(inst["args"]["epoch"], 3);
    }

    #[test]
    fn non_trace_events_are_ignored() {
        let events = vec![Event::Counter {
            name: "n".into(),
            value: 1,
            seq: 0,
        }];
        let doc = build_trace(&events);
        assert_eq!(doc["traceEvents"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn jsonl_round_trip_produces_parseable_trace() {
        let lines = [
            serde_json::to_string(&span("inner", "outer/inner", 1, 5.0, 8.0, "")).unwrap(),
            serde_json::to_string(&span("outer", "outer", 0, 10.0, 10.0, "")).unwrap(),
            "{\"t\":\"span\",\"name\":\"torn".to_string(),
        ];
        let (json, malformed) = jsonl_to_trace(&lines.join("\n"));
        assert_eq!(malformed, 1);
        let doc: Value = serde_json::from_str(&json).expect("valid JSON document");
        assert_eq!(x_events(&doc).len(), 2);
    }
}
