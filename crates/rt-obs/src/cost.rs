//! FLOP/byte cost accounting: a process-global registry of how much
//! arithmetic each accounting site (typically one layer) actually
//! performed, what a dense execution would have needed, and how much data
//! it moved.
//!
//! Sites call [`record_cost`] with an integer-exact [`CostDelta`] per
//! execution; `rt-nn`'s layers derive the deltas from their shapes and —
//! when a ticket mask is active — from the compiled `rt-sparse` plan's
//! `plan_flops`/`dense_flops`, so the registry reports the *real* FLOPs
//! saved by robust-ticket sparsity, cross-checkable against
//! `rt-prune::stats::sparse_exec_report` with exact `==`.
//!
//! Recording is gated on [`crate::metrics_enabled`] (level `all`): when
//! telemetry is off a site pays one relaxed atomic load and nothing else.
//! Aggregated state surfaces three ways: the `model.flops`/`model.bytes`
//! counters (so cell spans can attach per-cell deltas), per-site
//! [`crate::report::CostStat`] rows in [`crate::snapshot`] (rendered as
//! the roofline-style table), and `cost` events in the JSONL stream at
//! [`crate::finalize`].

use crate::report::CostStat;

/// The integer-exact cost of one execution of a site.
///
/// All fields are exact counts, never estimates: reports built from them
/// are compared against `sparse_exec_report` with integer equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostDelta {
    /// FLOPs actually executed (plan-aware when a sparse plan ran).
    pub flops: u64,
    /// FLOPs a dense execution of the same shapes would have needed.
    pub dense_flops: u64,
    /// Bytes moved: activations read + written plus live weights read.
    pub bytes: u64,
    /// Total parameter count of the site (dense weight length).
    pub params_total: u64,
    /// Live (unpruned) parameter count of the site.
    pub params_live: u64,
}

/// Records one execution of `name`. No-op below level `all` — the
/// registry never grows and nothing allocates. Work fields accumulate;
/// parameter counts are descriptive and last-wins.
///
/// Also feeds the `model.flops` / `model.bytes` counters so coarse
/// consumers (e.g. the runner's per-cell spans) can read deltas without
/// walking the per-site table.
pub fn record_cost(name: &str, delta: CostDelta) {
    if !crate::metrics_enabled() {
        return;
    }
    // Counter handles take the registry lock themselves, so bump them
    // before entering `with_inner` (the lock is not reentrant).
    crate::counter("model.flops").add(delta.flops);
    crate::counter("model.bytes").add(delta.bytes);
    crate::with_inner(|inner| {
        let stat = inner
            .costs
            .entry(name.to_string())
            .or_insert_with(|| CostStat::new(name));
        stat.calls += 1;
        stat.flops += delta.flops;
        stat.dense_flops += delta.dense_flops;
        stat.bytes += delta.bytes;
        stat.params_total = delta.params_total;
        stat.params_live = delta.params_live;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{testing, Level};

    fn delta(flops: u64) -> CostDelta {
        CostDelta {
            flops,
            dense_flops: flops * 2,
            bytes: flops * 4,
            params_total: 10,
            params_live: 5,
        }
    }

    #[test]
    fn record_accumulates_work_and_keeps_params() {
        let _t = testing::lock();
        crate::init_memory(Level::All);
        record_cost("layer.w", delta(100));
        record_cost("layer.w", delta(50));
        let snap = crate::snapshot();
        assert_eq!(snap.costs.len(), 1);
        let c = &snap.costs[0];
        assert_eq!(c.name, "layer.w");
        assert_eq!(c.calls, 2);
        assert_eq!(c.flops, 150);
        assert_eq!(c.dense_flops, 300);
        assert_eq!(c.bytes, 600);
        assert_eq!(c.params_total, 10);
        assert_eq!(c.params_live, 5);
        // The coarse counters mirror the totals.
        assert_eq!(snap.counters.get("model.flops"), Some(&150));
        assert_eq!(snap.counters.get("model.bytes"), Some(&600));
    }

    #[test]
    fn below_level_all_recording_is_a_noop() {
        let _t = testing::lock();
        crate::init_manual(Level::Spans, None).unwrap();
        record_cost("dead.w", delta(100));
        assert_eq!(crate::snapshot().costs.len(), 0);
        assert_eq!(crate::registry_len(), 0);
    }

    #[test]
    fn finalize_emits_cost_events_that_round_trip() {
        let _t = testing::lock();
        let handle = crate::init_memory(Level::All);
        record_cost("b.w", delta(7));
        record_cost("a.w", delta(3));
        crate::finalize();
        let text = handle.lines().join("\n");
        let (events, malformed) = crate::report::parse_jsonl(&text);
        assert_eq!(malformed, 0);
        let offline = crate::report::aggregate(&events);
        assert_eq!(offline.costs.len(), 2);
        // Sorted by name, integer-exact round trip.
        assert_eq!(offline.costs[0].name, "a.w");
        assert_eq!(offline.costs[0].flops, 3);
        assert_eq!(offline.costs[1].name, "b.w");
        assert_eq!(offline.costs[1].dense_flops, 14);
        assert_eq!(offline.costs, crate::snapshot().costs);
    }
}
