//! Event schema and sinks.
//!
//! Every telemetry record is one [`Event`], serialized as a single JSON
//! line (`{"t":"span",...}`). The `t` tag discriminates the variants; the
//! schema is versioned through the `meta` event every stream starts with.
//!
//! Two sinks exist: [`JsonlSink`] (buffered file writer, fsync'd by
//! [`crate::finalize`]) and [`MemorySink`] (test capture). Unknown event
//! kinds and malformed lines are tolerated by the offline parser
//! ([`crate::report::parse_jsonl`]) so schema evolution and torn final
//! lines never brick a report.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Version stamped into the `meta` event of every stream.
pub const SCHEMA_VERSION: u32 = 1;

/// A span/event attribute value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum AttrValue {
    /// Boolean.
    B(bool),
    /// Unsigned integer.
    U(u64),
    /// Signed integer.
    I(i64),
    /// Float.
    F(f64),
    /// String.
    S(String),
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::B(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U(v as u64)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I(v)
    }
}
impl From<i32> for AttrValue {
    fn from(v: i32) -> Self {
        AttrValue::I(v as i64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F(v)
    }
}
impl From<f32> for AttrValue {
    fn from(v: f32) -> Self {
        AttrValue::F(v as f64)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::S(v.to_string())
    }
}
impl From<&String> for AttrValue {
    fn from(v: &String) -> Self {
        AttrValue::S(v.clone())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::S(v)
    }
}

impl From<AttrValue> for serde_json::Value {
    fn from(v: AttrValue) -> Self {
        match v {
            AttrValue::B(b) => serde_json::Value::Bool(b),
            AttrValue::U(u) => serde_json::Value::from(u),
            AttrValue::I(i) => serde_json::Value::from(i),
            AttrValue::F(f) => serde_json::Value::from(f),
            AttrValue::S(s) => serde_json::Value::String(s),
        }
    }
}

/// One telemetry record (one JSON line in the stream).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "t")]
pub enum Event {
    /// Stream header: schema version, wall-clock origin, process, level.
    #[serde(rename = "meta")]
    Meta {
        /// Schema version ([`SCHEMA_VERSION`]).
        v: u32,
        /// Unix epoch milliseconds at stream creation.
        unix_ms: u64,
        /// Emitting process id.
        pid: u32,
        /// Telemetry level label (`spans` / `all`).
        level: String,
        /// Global event sequence number.
        seq: u64,
    },
    /// A closed span.
    #[serde(rename = "span")]
    Span {
        /// Leaf span name (e.g. `train.epoch`).
        name: String,
        /// Full hierarchical path (e.g. `fig1/pretrain/train.run/train.epoch`).
        path: String,
        /// Nesting depth (0 = top level).
        depth: usize,
        /// Total wall time of the span, milliseconds.
        ms: f64,
        /// Wall time minus time spent in child spans, milliseconds.
        self_ms: f64,
        /// Milliseconds since stream start at span *close*.
        ts_ms: f64,
        /// Emitting thread name (empty when unnamed).
        thread: String,
        /// Key → value attributes.
        #[serde(default, skip_serializing_if = "serde_json::Map::is_empty")]
        attrs: serde_json::Map<String, serde_json::Value>,
        /// Global event sequence number.
        seq: u64,
    },
    /// A structured one-off event (e.g. a runner cell outcome).
    #[serde(rename = "event")]
    Point {
        /// Event name (e.g. `runner.cell`).
        name: String,
        /// Milliseconds since stream start.
        ts_ms: f64,
        /// Key → value attributes.
        #[serde(default, skip_serializing_if = "serde_json::Map::is_empty")]
        attrs: serde_json::Map<String, serde_json::Value>,
        /// Global event sequence number.
        seq: u64,
    },
    /// A mirrored console line.
    #[serde(rename = "log")]
    Log {
        /// The console message.
        msg: String,
        /// Milliseconds since stream start.
        ts_ms: f64,
        /// Global event sequence number.
        seq: u64,
    },
    /// Counter snapshot (emitted by [`crate::finalize`]).
    #[serde(rename = "counter")]
    Counter {
        /// Counter name.
        name: String,
        /// Current value.
        value: u64,
        /// Global event sequence number.
        seq: u64,
    },
    /// Gauge snapshot (emitted by [`crate::finalize`]).
    #[serde(rename = "gauge")]
    Gauge {
        /// Gauge name.
        name: String,
        /// Current value.
        value: f64,
        /// Global event sequence number.
        seq: u64,
    },
    /// Per-site cost-model snapshot (emitted by [`crate::finalize`]):
    /// accumulated FLOPs / bytes moved and last-seen parameter counts for
    /// one accounting site (typically one layer).
    #[serde(rename = "cost")]
    Cost {
        /// Accounting site name (e.g. the layer's parameter name).
        name: String,
        /// Number of recorded executions.
        calls: u64,
        /// Accumulated FLOPs actually executed (plan-aware).
        flops: u64,
        /// Accumulated FLOPs a dense execution would have needed.
        dense_flops: u64,
        /// Accumulated bytes moved (activations + live weights).
        bytes: u64,
        /// Total parameter count of the site (last-wins).
        params_total: u64,
        /// Live (unpruned) parameter count of the site (last-wins).
        params_live: u64,
        /// Global event sequence number.
        seq: u64,
    },
    /// Histogram snapshot (emitted by [`crate::finalize`]).
    #[serde(rename = "hist")]
    Hist {
        /// Histogram name.
        name: String,
        /// Ascending bucket upper bounds (`value <= bound`); an implicit
        /// overflow bucket follows the last bound.
        bounds: Vec<f64>,
        /// Per-bucket counts (`bounds.len() + 1` entries).
        counts: Vec<u64>,
        /// Sum of observed values.
        sum: f64,
        /// Number of observations.
        count: u64,
        /// Global event sequence number.
        seq: u64,
    },
}

/// Destination for serialized event lines.
pub trait Sink: Send {
    /// Appends one pre-serialized JSON line.
    fn emit_line(&mut self, line: &str);
    /// Flushes buffers and (for durable sinks) fsyncs to disk.
    fn flush_sync(&mut self);
}

/// Buffered JSONL file sink.
pub struct JsonlSink {
    writer: std::io::BufWriter<std::fs::File>,
    path: PathBuf,
}

impl JsonlSink {
    /// Creates (truncating) the stream file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink {
            writer: std::io::BufWriter::new(file),
            path: path.to_path_buf(),
        })
    }

    /// The stream file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Sink for JsonlSink {
    fn emit_line(&mut self, line: &str) {
        // Telemetry writes are best-effort: an I/O error must never take
        // down the run being observed.
        let _ = writeln!(self.writer, "{line}");
    }

    fn flush_sync(&mut self) {
        let _ = self.writer.flush();
        let _ = self.writer.get_ref().sync_all();
    }
}

/// Shared handle to the lines captured by a [`MemorySink`].
#[derive(Debug, Clone, Default)]
pub struct MemoryHandle(Arc<Mutex<Vec<String>>>);

impl MemoryHandle {
    /// Snapshot of every line emitted so far.
    pub fn lines(&self) -> Vec<String> {
        self.0.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }
}

/// In-memory sink for tests.
pub struct MemorySink(MemoryHandle);

impl MemorySink {
    /// Wraps a handle.
    pub fn new(handle: MemoryHandle) -> Self {
        MemorySink(handle)
    }
}

impl Sink for MemorySink {
    fn emit_line(&mut self, line: &str) {
        self.0
             .0
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(line.to_string());
    }

    fn flush_sync(&mut self) {}
}

/// Atomic whole-file write (temp file + fsync + rename + parent-dir
/// fsync), mirroring `rt-nn::checkpoint::atomic_write` so reports and
/// summaries are never torn by an interrupted process — and the rename
/// itself is durable across power loss, since POSIX only persists
/// directory entries when the directory is fsynced. Lives here too
/// because `rt-obs` depends on nothing in the workspace.
///
/// # Errors
///
/// Propagates I/O errors (the temp file is cleaned up on failure).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp-{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)?;
        sync_parent_dir(path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Fsyncs `path`'s parent directory (no-op where directories cannot be
/// opened for syncing).
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        std::fs::File::open(parent)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = path;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_json() {
        let mut attrs = serde_json::Map::new();
        attrs.insert("epoch".into(), serde_json::Value::from(3u64));
        let ev = Event::Span {
            name: "train.epoch".into(),
            path: "fig1/train.epoch".into(),
            depth: 1,
            ms: 12.5,
            self_ms: 10.0,
            ts_ms: 100.0,
            thread: "main".into(),
            attrs,
            seq: 7,
        };
        let line = serde_json::to_string(&ev).unwrap();
        assert!(line.starts_with("{\"t\":\"span\""), "{line}");
        let back: Event = serde_json::from_str(&line).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn attr_values_serialize_naturally() {
        assert_eq!(
            serde_json::to_string(&AttrValue::from(0.5f64)).unwrap(),
            "0.5"
        );
        assert_eq!(serde_json::to_string(&AttrValue::from(3usize)).unwrap(), "3");
        assert_eq!(
            serde_json::to_string(&AttrValue::from("hi")).unwrap(),
            "\"hi\""
        );
        assert_eq!(
            serde_json::to_string(&AttrValue::from(true)).unwrap(),
            "true"
        );
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let path = std::env::temp_dir().join("rt-obs-sink-test.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut sink = JsonlSink::create(&path).unwrap();
        sink.emit_line("{\"a\":1}");
        sink.emit_line("{\"b\":2}");
        sink.flush_sync();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"b\":2}\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let path = std::env::temp_dir().join("rt-obs-atomic-test.json");
        atomic_write(&path, b"first").unwrap();
        atomic_write(&path, b"second-longer").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second-longer");
        let _ = std::fs::remove_file(&path);
    }
}
